//! # deft-codec — versioned binary state codec for simulator snapshots
//!
//! The vendored `serde` is a no-op shim (see `vendor/README.md`), so
//! snapshot/resume needs an in-house wire format. This crate provides it:
//!
//! * [`Encoder`]/[`Decoder`] — length-prefixed, little-endian primitive
//!   encoding with descriptive, typed decode errors ([`CodecError`],
//!   never a panic on malformed input).
//! * [`Persist`] — the round-trip trait every piece of live simulator
//!   state implements: `decode(encode(s)) == s`, byte-deterministically.
//! * [`SnapshotWriter`]/[`SnapshotReader`] — the container format: a
//!   [`MAGIC`] + [`FORMAT_VERSION`] header followed by tagged,
//!   length-prefixed, FNV-1a-checksummed sections.
//!
//! The container layout is:
//!
//! ```text
//! "DEFTSNAP"            8 bytes   magic
//! format version        4 bytes   u32 LE
//! section*                        repeated:
//!   tag                 4 bytes   ASCII section name
//!   payload length      4 bytes   u32 LE
//!   payload             n bytes   Persist-encoded section body
//!   checksum            8 bytes   fnv1a64(payload), u64 LE
//! ```
//!
//! Sections are read in writer order; a reader asking for section `X` and
//! finding `Y` gets [`CodecError::UnexpectedSection`] — the format carries
//! no random-access index because snapshots are decoded whole, exactly
//! once, into an already-constructed simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;

use std::error::Error;
use std::fmt;

/// The 8-byte magic every snapshot file starts with.
pub const MAGIC: [u8; 8] = *b"DEFTSNAP";

/// Snapshot format version, encoded right after [`MAGIC`].
///
/// **Bump rule:** increment this constant whenever the byte layout of any
/// section changes — a field added, removed, reordered, or re-typed
/// anywhere under a [`Persist`] impl or a `save_state` hook. Decoders
/// reject any other version outright ([`CodecError::WrongVersion`]); there
/// is deliberately no cross-version migration, because snapshots are
/// short-lived artifacts (a checkpoint of a run in flight), not archives.
/// The same commit that bumps this constant must update the golden
/// snapshot pin in `tests/golden_outputs.rs`, which exists precisely so
/// the layout cannot drift *without* a bump.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit over `bytes` — the section checksum, and the repo's
/// standard content fingerprint (same constants as the golden-output
/// pins in `tests/golden_outputs.rs`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A typed decode failure. Every malformed, truncated, or mismatched
/// input maps to one of these variants; decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the expected data.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The input does not start with the [`MAGIC`] bytes.
    BadMagic {
        /// The first bytes actually found (zero-padded if short).
        found: [u8; 8],
    },
    /// The header's format version is not [`FORMAT_VERSION`].
    WrongVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// A section's stored checksum does not match its payload.
    Checksum {
        /// Tag of the corrupt section.
        section: [u8; 4],
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The next section's tag is not the one the reader expected.
    UnexpectedSection {
        /// Tag the reader asked for.
        expected: [u8; 4],
        /// Tag actually found.
        found: [u8; 4],
    },
    /// A value decoded fine structurally but is semantically invalid
    /// (bad enum discriminant, non-UTF-8 string, impossible length, ...).
    Invalid(String),
    /// The snapshot is well-formed but belongs to a different run setup
    /// than the simulator it is being resumed into (different topology,
    /// config, algorithm, traffic, or timeline).
    Mismatch(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn tag(t: &[u8; 4]) -> String {
            String::from_utf8_lossy(t).into_owned()
        }
        match self {
            CodecError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} more byte(s), {available} available"
            ),
            CodecError::BadMagic { found } => write!(
                f,
                "not a DeFT snapshot: expected magic {:?}, found {:?}",
                String::from_utf8_lossy(&MAGIC),
                String::from_utf8_lossy(found)
            ),
            CodecError::WrongVersion { found, expected } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {expected})"
            ),
            CodecError::Checksum {
                section,
                stored,
                computed,
            } => write!(
                f,
                "section {:?} is corrupt: stored checksum {stored:#018x}, computed {computed:#018x}",
                tag(section)
            ),
            CodecError::UnexpectedSection { expected, found } => write!(
                f,
                "expected section {:?}, found {:?}",
                tag(expected),
                tag(found)
            ),
            CodecError::Invalid(why) => write!(f, "invalid snapshot data: {why}"),
            CodecError::Mismatch(why) => write!(f, "snapshot does not match this run: {why}"),
        }
    }
}

impl Error for CodecError {}

/// Little-endian binary encoder over a growable byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit regardless of
    /// host width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` via its IEEE-754 bit pattern (deterministic,
    /// NaN-payload-preserving).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte string (`u64` length + raw bytes).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes without a length prefix (the caller's layout
    /// must make the length recoverable).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Little-endian binary decoder over a byte slice. All reads are
/// bounds-checked and return [`CodecError::Truncated`] past the end.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { buf: bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n - self.remaining(),
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is
    /// [`CodecError::Invalid`].
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid(format!(
                "bool byte must be 0 or 1, found {other}"
            ))),
        }
    }

    /// Reads a `usize` (stored as `u64`); values beyond the host's
    /// address width are [`CodecError::Invalid`].
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| CodecError::Invalid(format!("length {v} exceeds the host usize")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte string written by
    /// [`Encoder::put_bytes`].
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            // Surface the bogus length as truncation with honest numbers
            // instead of attempting a huge take.
            return Err(CodecError::Truncated {
                needed: n - self.remaining(),
                available: self.remaining(),
            });
        }
        self.take(n)
    }

    /// Asserts every byte was consumed; trailing garbage is
    /// [`CodecError::Invalid`].
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Invalid(format!(
                "{} trailing byte(s) after the last expected field",
                self.remaining()
            )))
        }
    }
}

/// Deterministic binary round-trip: `T::decode(encode(t)) == t`, with the
/// encoding byte-identical across runs and platforms.
pub trait Persist: Sized {
    /// Appends `self`'s encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Decodes one value from `dec`, consuming exactly the bytes
    /// [`encode`](Self::encode) wrote.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError>;
}

macro_rules! persist_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Persist for $ty {
            fn encode(&self, enc: &mut Encoder) {
                enc.$put(*self);
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
                dec.$get()
            }
        }
    };
}

persist_prim!(u8, put_u8, get_u8);
persist_prim!(u16, put_u16, get_u16);
persist_prim!(u32, put_u32, get_u32);
persist_prim!(u64, put_u64, get_u64);
persist_prim!(usize, put_usize, get_usize);
persist_prim!(bool, put_bool, get_bool);
persist_prim!(f64, put_f64, get_f64);

impl Persist for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self.as_bytes());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let bytes = dec.get_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::Invalid(format!("string is not UTF-8: {e}")))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_bool(false),
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        if dec.get_bool()? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = dec.get_usize()?;
        // A corrupt length must not drive allocation: cap the preallocation
        // by what the input could possibly hold (1 byte per element floor).
        let mut out = Vec::with_capacity(n.min(dec.remaining()));
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn encode(&self, enc: &mut Encoder) {
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(dec)?);
        }
        out.try_into()
            .map_err(|_| CodecError::Invalid("array length mismatch".into()))
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}

impl<K: Persist + Ord, V: Persist> Persist for std::collections::BTreeMap<K, V> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for (k, v) in self {
            k.encode(enc);
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let n = dec.get_usize()?;
        let mut out = std::collections::BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(dec)?;
            let v = V::decode(dec)?;
            // Canonical form: entries are written in strictly increasing
            // key order (BTreeMap iteration order), so any out-of-order or
            // duplicate key marks a non-round-trip encoding.
            if out.last_key_value().is_some_and(|(last, _)| *last >= k) {
                return Err(CodecError::Invalid(
                    "map keys are not strictly increasing".into(),
                ));
            }
            out.insert(k, v);
        }
        Ok(out)
    }
}

/// Convenience: one value's standalone encoding (its [`Persist`] bytes,
/// no container framing).
pub fn encode_value<T: Persist>(v: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    v.encode(&mut enc);
    enc.into_bytes()
}

/// Content fingerprint of one value: [`fnv1a`] over its standalone
/// encoding. Used for the snapshot identity checks (traffic pattern and
/// fault timeline must match the run being resumed).
pub fn fingerprint_value<T: Persist>(v: &T) -> u64 {
    fnv1a(&encode_value(v))
}

/// Writes the container format: magic + version header, then tagged,
/// checksummed sections in call order.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a snapshot: writes the [`MAGIC`] + [`FORMAT_VERSION`]
    /// header.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        Self { buf }
    }

    /// Appends one section: `fill` encodes the payload into a fresh
    /// [`Encoder`], and the writer frames it with `tag`, a `u32` length,
    /// and an FNV-1a checksum.
    ///
    /// # Panics
    /// Panics if the payload exceeds `u32::MAX` bytes (no real snapshot
    /// section approaches this).
    pub fn section(&mut self, tag: [u8; 4], fill: impl FnOnce(&mut Encoder)) {
        let mut enc = Encoder::new();
        fill(&mut enc);
        let payload = enc.into_bytes();
        let len = u32::try_from(payload.len()).expect("section payload exceeds u32::MAX bytes");
        self.buf.extend_from_slice(&tag);
        self.buf.extend_from_slice(&len.to_le_bytes());
        let sum = fnv1a(&payload);
        self.buf.extend_from_slice(&payload);
        self.buf.extend_from_slice(&sum.to_le_bytes());
    }

    /// Finishes the snapshot, returning its bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Reads the container format written by [`SnapshotWriter`], verifying
/// the header once and each section's tag and checksum on access.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    dec: Decoder<'a>,
}

impl<'a> SnapshotReader<'a> {
    /// Opens a snapshot: validates [`MAGIC`] and [`FORMAT_VERSION`].
    pub fn new(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut dec = Decoder::new(bytes);
        let magic = dec.take(MAGIC.len()).map_err(|_| {
            let mut found = [0u8; 8];
            found[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
            CodecError::BadMagic { found }
        })?;
        if magic != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(magic);
            return Err(CodecError::BadMagic { found });
        }
        let version = dec.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(CodecError::WrongVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        Ok(Self { dec })
    }

    /// Reads the next section, which must carry `tag`; verifies its
    /// checksum and returns a [`Decoder`] over the payload. The caller
    /// should end with [`Decoder::finish`] to reject trailing bytes.
    pub fn section(&mut self, tag: [u8; 4]) -> Result<Decoder<'a>, CodecError> {
        let found: [u8; 4] = self
            .dec
            .take(4)?
            .try_into()
            .expect("take(4) returns 4 bytes");
        if found != tag {
            return Err(CodecError::UnexpectedSection {
                expected: tag,
                found,
            });
        }
        let len = self.dec.get_u32()? as usize;
        let payload = self.dec.take(len)?;
        let stored = self.dec.get_u64()?;
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(CodecError::Checksum {
                section: tag,
                stored,
                computed,
            });
        }
        Ok(Decoder::new(payload))
    }

    /// Asserts no sections remain; trailing bytes are
    /// [`CodecError::Invalid`].
    pub fn finish(&self) -> Result<(), CodecError> {
        self.dec.finish()
    }
}

/// Content-addressed identity of one cacheable computation.
///
/// A key is built from named fields via [`CacheKeyBuilder`]; the full
/// field material (which always begins with [`FORMAT_VERSION`], so a
/// codec bump invalidates every existing entry) is retained alongside
/// its FNV-1a hash. Stores embed the material in each entry and compare
/// it on probe, so a 64-bit hash collision degrades to a miss instead
/// of returning another cell's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    material: Vec<u8>,
    hash: u64,
}

impl CacheKey {
    /// The 64-bit content hash (FNV-1a over [`Self::material`]).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The full encoded field material the hash was derived from.
    pub fn material(&self) -> &[u8] {
        &self.material
    }

    /// Canonical file name for this key's store entry.
    pub fn file_name(&self) -> String {
        format!("{:016x}.dce", self.hash)
    }
}

/// Builds a [`CacheKey`] from named, typed fields.
///
/// Every field is encoded as its name (length-prefixed) followed by its
/// [`Persist`] encoding, so two keys collide only if they agree on the
/// domain, the field names, *and* every field value. `f64` fields are
/// hashed by bit pattern (`to_bits`), so `-0.0 != 0.0` and NaNs are
/// stable.
#[derive(Debug)]
pub struct CacheKeyBuilder {
    enc: Encoder,
}

impl CacheKeyBuilder {
    /// Starts a key in `domain` (e.g. one experiment's cell type).
    /// The material opens with [`FORMAT_VERSION`] so any wire-format
    /// bump changes every key.
    pub fn new(domain: &str) -> Self {
        let mut enc = Encoder::new();
        enc.put_u32(FORMAT_VERSION);
        enc.put_bytes(domain.as_bytes());
        Self { enc }
    }

    fn field(&mut self, name: &str) -> &mut Encoder {
        self.enc.put_bytes(name.as_bytes());
        &mut self.enc
    }

    /// Adds a `u64` field (also used for smaller integer widths).
    pub fn u64(mut self, name: &str, v: u64) -> Self {
        self.field(name).put_u64(v);
        self
    }

    /// Adds a `bool` field.
    pub fn bool(mut self, name: &str, v: bool) -> Self {
        self.field(name).put_bool(v);
        self
    }

    /// Adds an `f64` field by bit pattern.
    pub fn f64(mut self, name: &str, v: f64) -> Self {
        self.field(name).put_u64(v.to_bits());
        self
    }

    /// Adds a string field.
    pub fn str(mut self, name: &str, v: &str) -> Self {
        self.field(name).put_bytes(v.as_bytes());
        self
    }

    /// Seals the key: hashes the accumulated material.
    pub fn finish(self) -> CacheKey {
        let material = self.enc.into_bytes();
        let hash = fnv1a(&material);
        CacheKey { material, hash }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        0xABu8.encode(&mut enc);
        0xBEEFu16.encode(&mut enc);
        0xDEAD_BEEFu32.encode(&mut enc);
        0x0123_4567_89AB_CDEFu64.encode(&mut enc);
        true.encode(&mut enc);
        false.encode(&mut enc);
        42usize.encode(&mut enc);
        (-0.5f64).encode(&mut enc);
        String::from("wörm").encode(&mut enc);
        let bytes = enc.into_bytes();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(u8::decode(&mut dec).unwrap(), 0xAB);
        assert_eq!(u16::decode(&mut dec).unwrap(), 0xBEEF);
        assert_eq!(u32::decode(&mut dec).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::decode(&mut dec).unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(bool::decode(&mut dec).unwrap());
        assert!(!bool::decode(&mut dec).unwrap());
        assert_eq!(usize::decode(&mut dec).unwrap(), 42);
        assert_eq!(f64::decode(&mut dec).unwrap(), -0.5);
        assert_eq!(String::decode(&mut dec).unwrap(), "wörm");
        dec.finish().unwrap();
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<(u32, bool)>> = vec![None, Some((7, true)), Some((0, false))];
        let bytes = encode_value(&v);
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Vec::<Option<(u32, bool)>>::decode(&mut dec).unwrap(), v);
        dec.finish().unwrap();

        let arr = [1u64, 2, 3, 4];
        let bytes = encode_value(&arr);
        let mut dec = Decoder::new(&bytes);
        assert_eq!(<[u64; 4]>::decode(&mut dec).unwrap(), arr);
        dec.finish().unwrap();
    }

    #[test]
    fn encoding_is_little_endian_and_length_prefixed() {
        // The wire layout itself is part of the contract (FORMAT_VERSION
        // bump rule), so pin it on one sample of each shape.
        assert_eq!(encode_value(&0x0102u16), vec![0x02, 0x01]);
        assert_eq!(encode_value(&1u32), vec![1, 0, 0, 0]);
        assert_eq!(
            encode_value(&String::from("ab")),
            vec![2, 0, 0, 0, 0, 0, 0, 0, b'a', b'b']
        );
        assert_eq!(encode_value(&None::<u8>), vec![0]);
        assert_eq!(encode_value(&Some(9u8)), vec![1, 9]);
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut dec = Decoder::new(&[1, 2]);
        assert_eq!(
            u32::decode(&mut dec),
            Err(CodecError::Truncated {
                needed: 2,
                available: 2
            })
        );
        // A length prefix pointing past the end must not panic or allocate.
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            String::decode(&mut dec),
            Err(CodecError::Truncated { .. }) | Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn invalid_bool_and_trailing_bytes_are_rejected() {
        let mut dec = Decoder::new(&[2]);
        assert!(matches!(
            bool::decode(&mut dec),
            Err(CodecError::Invalid(_))
        ));
        let dec = Decoder::new(&[0]);
        assert!(matches!(dec.finish(), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn fnv1a_is_the_reference_implementation() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    fn sample_snapshot() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section(*b"AAAA", |enc| {
            7u64.encode(enc);
        });
        w.section(*b"BBBB", |enc| {
            vec![1u8, 2, 3].encode(enc);
        });
        w.finish()
    }

    #[test]
    fn container_round_trips_sections_in_order() {
        let bytes = sample_snapshot();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let mut a = r.section(*b"AAAA").unwrap();
        assert_eq!(u64::decode(&mut a).unwrap(), 7);
        a.finish().unwrap();
        let mut b = r.section(*b"BBBB").unwrap();
        assert_eq!(Vec::<u8>::decode(&mut b).unwrap(), vec![1, 2, 3]);
        b.finish().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn out_of_order_section_is_a_typed_error() {
        let bytes = sample_snapshot();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert_eq!(
            r.section(*b"BBBB").unwrap_err(),
            CodecError::UnexpectedSection {
                expected: *b"BBBB",
                found: *b"AAAA",
            }
        );
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let mut bytes = sample_snapshot();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotReader::new(&bytes),
            Err(CodecError::BadMagic { .. })
        ));
        // Including inputs shorter than the magic itself.
        assert!(matches!(
            SnapshotReader::new(b"DEF"),
            Err(CodecError::BadMagic { .. })
        ));
        assert!(matches!(
            SnapshotReader::new(b""),
            Err(CodecError::BadMagic { .. })
        ));
    }

    #[test]
    fn wrong_version_is_a_typed_error() {
        let mut bytes = sample_snapshot();
        bytes[8] = FORMAT_VERSION as u8 + 1;
        assert_eq!(
            SnapshotReader::new(&bytes).unwrap_err(),
            CodecError::WrongVersion {
                found: FORMAT_VERSION + 1,
                expected: FORMAT_VERSION,
            }
        );
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let mut bytes = sample_snapshot();
        // Flip one payload byte of section AAAA (header is 12 bytes, tag 4,
        // length 4 → payload starts at 20).
        bytes[20] ^= 0xFF;
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert!(matches!(
            r.section(*b"AAAA"),
            Err(CodecError::Checksum { section, .. }) if section == *b"AAAA"
        ));
    }

    #[test]
    fn truncated_file_is_a_typed_error_at_every_cut() {
        // Every prefix of a valid snapshot must decode to a typed error,
        // never a panic.
        let bytes = sample_snapshot();
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            match SnapshotReader::new(prefix) {
                Err(_) => {}
                Ok(mut r) => {
                    let first = r.section(*b"AAAA");
                    if first.is_err() {
                        continue;
                    }
                    let second = r.section(*b"BBBB");
                    assert!(
                        second.is_err(),
                        "cut {cut} of {} decoded both sections",
                        bytes.len()
                    );
                }
            }
        }
    }

    #[test]
    fn fingerprints_separate_contents() {
        assert_ne!(
            fingerprint_value(&vec![1u64, 2, 3]),
            fingerprint_value(&vec![1u64, 2, 4])
        );
        assert_eq!(
            fingerprint_value(&String::from("Uniform")),
            fingerprint_value(&String::from("Uniform"))
        );
    }

    #[test]
    fn errors_display_descriptively() {
        let shown = format!(
            "{}",
            CodecError::Checksum {
                section: *b"RTRS",
                stored: 1,
                computed: 2
            }
        );
        assert!(shown.contains("RTRS") && shown.contains("corrupt"));
        assert!(format!(
            "{}",
            CodecError::WrongVersion {
                found: 9,
                expected: FORMAT_VERSION
            }
        )
        .contains("version 9"));
        assert!(format!("{}", CodecError::Mismatch("algorithm".into())).contains("algorithm"));
    }

    #[test]
    fn tuple3_and_btreemap_round_trip() {
        let triple = (7u64, -0.25f64, String::from("DeFT"));
        let bytes = encode_value(&triple);
        let mut dec = Decoder::new(&bytes);
        let back = <(u64, f64, String)>::decode(&mut dec).expect("tuple3 decodes");
        dec.finish().expect("tuple3 consumes exactly");
        assert_eq!(back, triple);

        let mut map = std::collections::BTreeMap::new();
        map.insert((2u8, 1u8, true), 99u64);
        map.insert((0u8, 3u8, false), 4u64);
        let bytes = encode_value(&map);
        let mut dec = Decoder::new(&bytes);
        let back = <std::collections::BTreeMap<(u8, u8, bool), u64>>::decode(&mut dec)
            .expect("map decodes");
        dec.finish().expect("map consumes exactly");
        assert_eq!(back, map);
    }

    #[test]
    fn btreemap_rejects_unsorted_or_duplicate_keys() {
        // Hand-encode two entries with keys out of order.
        let mut enc = Encoder::new();
        enc.put_usize(2);
        enc.put_u8(5);
        enc.put_u64(1);
        enc.put_u8(3);
        enc.put_u64(2);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let err = <std::collections::BTreeMap<u8, u64>>::decode(&mut dec).unwrap_err();
        assert!(matches!(err, CodecError::Invalid(_)));

        let mut enc = Encoder::new();
        enc.put_usize(2);
        enc.put_u8(5);
        enc.put_u64(1);
        enc.put_u8(5);
        enc.put_u64(2);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let err = <std::collections::BTreeMap<u8, u64>>::decode(&mut dec).unwrap_err();
        assert!(matches!(err, CodecError::Invalid(_)));
    }

    #[test]
    fn cache_key_is_stable_and_field_sensitive() {
        let build = |rate: f64, seed: u64, algo: &str| {
            CacheKeyBuilder::new("latency-point")
                .u64("seed", seed)
                .f64("rate", rate)
                .str("algo", algo)
                .finish()
        };
        let a = build(0.02, 0xDE, "DeFT");
        assert_eq!(a, build(0.02, 0xDE, "DeFT"));
        assert_eq!(a.hash(), fnv1a(a.material()));
        assert_eq!(a.file_name(), format!("{:016x}.dce", a.hash()));

        // Any single field change produces a distinct key.
        for other in [
            build(0.03, 0xDE, "DeFT"),
            build(0.02, 0xDF, "DeFT"),
            build(0.02, 0xDE, "MTR"),
        ] {
            assert_ne!(a, other);
            assert_ne!(a.hash(), other.hash());
        }

        // A different domain with identical fields is a different key.
        let b = CacheKeyBuilder::new("recovery")
            .u64("seed", 0xDE)
            .f64("rate", 0.02)
            .str("algo", "DeFT")
            .finish();
        assert_ne!(a, b);
    }

    #[test]
    fn cache_key_material_embeds_format_version() {
        let key = CacheKeyBuilder::new("d").finish();
        assert_eq!(&key.material()[..4], &FORMAT_VERSION.to_le_bytes());
    }
}
