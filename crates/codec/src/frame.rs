//! Length-prefixed frame transport for the campaign supervisor/worker
//! pipe protocol.
//!
//! A *frame* is a `u32` little-endian byte count followed by exactly that
//! many bytes of payload. Every payload is a full snapshot container
//! ([`SnapshotWriter`] bytes), so each frame
//! carries the [`MAGIC`](crate::MAGIC) + [`FORMAT_VERSION`] header and a
//! per-section FNV-1a checksum for free: a supervisor and a worker built
//! from different wire formats reject each other's first frame with
//! [`CodecError::WrongVersion`] instead of mis-decoding it, and a frame
//! corrupted in flight fails its checksum instead of producing a wrong
//! cell result.
//!
//! Two frame payloads exist:
//!
//! ```text
//! CREQ (supervisor → worker): cell index u64, attempt u32
//! CRES (worker → supervisor): cell index u64, attempt u32, status u8
//!        status 0 (ok):    output bytes (length-prefixed Persist
//!                          encoding), cache-stats delta (7 × u64)
//!        status 1 (panic): panic message (String)
//! ```
//!
//! The transport is deliberately synchronous and ordered: a worker serves
//! one cell at a time, so a response always answers the most recent
//! request and the supervisor treats any index/attempt mismatch as a
//! protocol failure of that worker.

use crate::{CodecError, Persist, SnapshotReader, SnapshotWriter, FORMAT_VERSION};
use std::io::{Read, Write};

/// Section tag of a cell request payload.
const TAG_REQ: [u8; 4] = *b"CREQ";
/// Section tag of a cell response payload.
const TAG_RES: [u8; 4] = *b"CRES";

/// Upper bound on a single frame's payload, in bytes. No real cell
/// output approaches this; a length prefix beyond it marks a corrupt or
/// hostile stream and is rejected before any allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame: `u32` LE length prefix + the container bytes.
/// The caller flushes the stream when the frame must be visible to the
/// peer (a buffered, unflushed request would deadlock a synchronous
/// worker).
pub fn write_frame(w: &mut impl Write, container: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(container.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32::MAX")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(container)
}

/// Reads one frame's container bytes. `Ok(None)` is a clean EOF *at a
/// frame boundary* (the peer closed the stream between frames); EOF
/// inside a frame, or a length prefix beyond [`MAX_FRAME`], is an error.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME}-byte bound"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A supervisor-to-worker cell assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRequest {
    /// Grid index of the cell to execute.
    pub index: u64,
    /// Zero-based attempt number (how many earlier attempts failed).
    pub attempt: u32,
}

impl CellRequest {
    /// Encodes the request as one frame payload (snapshot container).
    pub fn to_container(self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section(TAG_REQ, |enc| {
            enc.put_u64(self.index);
            enc.put_u32(self.attempt);
        });
        w.finish()
    }

    /// Decodes a request from one frame payload.
    pub fn from_container(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = SnapshotReader::new(bytes)?;
        let mut dec = r.section(TAG_REQ)?;
        let req = Self {
            index: dec.get_u64()?,
            attempt: dec.get_u32()?,
        };
        dec.finish()?;
        r.finish()?;
        Ok(req)
    }
}

/// A worker-to-supervisor cell outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellResponse {
    /// The cell executed (or was answered from the shared result store).
    Ok {
        /// Grid index echoed from the request.
        index: u64,
        /// Attempt number echoed from the request.
        attempt: u32,
        /// The cell output's standalone [`Persist`] encoding.
        output: Vec<u8>,
        /// Cache-counter delta this cell contributed on the worker, in
        /// [`STATS_WORDS`] order. All zeros when no store is configured.
        stats: [u64; STATS_WORDS],
    },
    /// The cell panicked inside the worker's `catch_unwind`; the worker
    /// stays alive long enough to report the message.
    Panic {
        /// Grid index echoed from the request.
        index: u64,
        /// Attempt number echoed from the request.
        attempt: u32,
        /// The panic payload, stringified.
        message: String,
    },
}

/// Number of cache-counter words a response carries: hits, misses,
/// corrupt, stored, bytes read, bytes written, write errors.
pub const STATS_WORDS: usize = 7;

impl CellResponse {
    /// Encodes the response as one frame payload (snapshot container).
    pub fn to_container(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section(TAG_RES, |enc| match self {
            CellResponse::Ok {
                index,
                attempt,
                output,
                stats,
            } => {
                enc.put_u64(*index);
                enc.put_u32(*attempt);
                enc.put_u8(0);
                enc.put_bytes(output);
                for word in stats {
                    enc.put_u64(*word);
                }
            }
            CellResponse::Panic {
                index,
                attempt,
                message,
            } => {
                enc.put_u64(*index);
                enc.put_u32(*attempt);
                enc.put_u8(1);
                message.encode(enc);
            }
        });
        w.finish()
    }

    /// Decodes a response from one frame payload.
    pub fn from_container(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = SnapshotReader::new(bytes)?;
        let mut dec = r.section(TAG_RES)?;
        let index = dec.get_u64()?;
        let attempt = dec.get_u32()?;
        let out = match dec.get_u8()? {
            0 => {
                let output = dec.get_bytes()?.to_vec();
                let mut stats = [0u64; STATS_WORDS];
                for word in &mut stats {
                    *word = dec.get_u64()?;
                }
                CellResponse::Ok {
                    index,
                    attempt,
                    output,
                    stats,
                }
            }
            1 => CellResponse::Panic {
                index,
                attempt,
                message: String::decode(&mut dec)?,
            },
            other => {
                return Err(CodecError::Invalid(format!(
                    "cell response status must be 0 or 1, found {other}"
                )))
            }
        };
        dec.finish()?;
        r.finish()?;
        Ok(out)
    }
}

/// The version both ends of the pipe must agree on — re-exported here so
/// supervisor diagnostics can name it without importing the root.
pub const WIRE_VERSION: u32 = FORMAT_VERSION;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_a_frame() {
        let req = CellRequest {
            index: 17,
            attempt: 3,
        };
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &req.to_container()).unwrap();
        let mut cursor = pipe.as_slice();
        let payload = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(CellRequest::from_container(&payload).unwrap(), req);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn response_variants_round_trip() {
        let ok = CellResponse::Ok {
            index: 5,
            attempt: 0,
            output: vec![1, 2, 3, 4],
            stats: [1, 2, 3, 4, 5, 6, 7],
        };
        let back = CellResponse::from_container(&ok.to_container()).unwrap();
        assert_eq!(back, ok);

        let panic = CellResponse::Panic {
            index: 9,
            attempt: 1,
            message: "cell 9 exploded".into(),
        };
        let back = CellResponse::from_container(&panic.to_container()).unwrap();
        assert_eq!(back, panic);
    }

    #[test]
    fn eof_inside_a_frame_is_an_error() {
        let req = CellRequest {
            index: 1,
            attempt: 0,
        };
        let mut pipe = Vec::new();
        write_frame(&mut pipe, &req.to_container()).unwrap();
        for cut in 1..pipe.len() {
            let mut cursor = &pipe[..cut];
            assert!(
                read_frame(&mut cursor).is_err(),
                "cut at {cut} of {} did not error",
                pipe.len()
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut pipe = Vec::new();
        pipe.extend_from_slice(&u32::MAX.to_le_bytes());
        pipe.extend_from_slice(b"junk");
        let mut cursor = pipe.as_slice();
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_container_is_a_typed_codec_error() {
        let mut bytes = CellRequest {
            index: 2,
            attempt: 1,
        }
        .to_container();
        let mid = bytes.len() - 9; // inside the payload, before the checksum
        bytes[mid] ^= 0xFF;
        assert!(CellRequest::from_container(&bytes).is_err());
        // And a response payload can never decode as a request.
        let res = CellResponse::Panic {
            index: 0,
            attempt: 0,
            message: "x".into(),
        };
        assert!(matches!(
            CellRequest::from_container(&res.to_container()),
            Err(CodecError::UnexpectedSection { .. })
        ));
    }

    #[test]
    fn invalid_status_byte_is_rejected() {
        let mut w = SnapshotWriter::new();
        w.section(TAG_RES, |enc| {
            enc.put_u64(0);
            enc.put_u32(0);
            enc.put_u8(9);
        });
        assert!(matches!(
            CellResponse::from_container(&w.finish()),
            Err(CodecError::Invalid(_))
        ));
    }
}
