//! Shared helpers for the DeFT benchmark harness.
//!
//! Each bench target regenerates one table or figure of the paper (printing
//! the same rows/series the paper reports) and then times a representative
//! kernel of that experiment with Criterion. The full-resolution regenerated
//! data lives in `EXPERIMENTS.md`; benches use the quick configuration to
//! keep `cargo bench` affordable.
//!
//! ## Data flow
//!
//! The top of the workspace: benches call only the `deft` facade's
//! experiment API (which fans each figure's run grid out through the
//! campaign runner) and render through `deft::report`, so a bench measures
//! exactly what `deft-repro` executes.

use deft::experiments::ExpConfig;
use std::sync::Once;

/// The configuration used by all benches.
pub fn bench_config() -> ExpConfig {
    ExpConfig::quick()
}

/// Prints a figure's regenerated data exactly once per bench process
/// (Criterion calls the setup many times).
pub fn print_once(once: &'static Once, render: impl FnOnce() -> String) {
    once.call_once(|| {
        println!("\n{}", render());
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Once;

    #[test]
    fn print_once_runs_exactly_once() {
        static ONCE: Once = Once::new();
        let mut calls = 0;
        for _ in 0..3 {
            print_once(&ONCE, || {
                calls += 1;
                String::from("x")
            });
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_config_is_quick() {
        assert!(bench_config().sim.measure <= 5_000);
    }
}
