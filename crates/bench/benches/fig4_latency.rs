//! Fig. 4: average latency vs injection rate for DeFT/MTR/RC under
//! Uniform, Localized, and Hotspot traffic (4 chiplets) and Uniform
//! (6 chiplets). Prints all four regenerated panels, then times one
//! representative sweep point per panel.

use criterion::{criterion_group, criterion_main, Criterion};
use deft::experiments::{fig4, Algo, SynPattern};
use deft::report::render_latency_sweep;
use deft_bench::{bench_config, print_once};
use deft_topo::ChipletSystem;
use std::sync::Once;

static PRINT: Once = Once::new();

fn bench_fig4(c: &mut Criterion) {
    let cfg = bench_config();
    print_once(&PRINT, || {
        let mut out = String::new();
        let sys4 = ChipletSystem::baseline_4();
        for p in [
            SynPattern::Uniform,
            SynPattern::Localized,
            SynPattern::Hotspot,
        ] {
            out += &render_latency_sweep(&fig4(&sys4, p, &p.paper_rates(), &Algo::MAIN, &cfg));
        }
        let sys6 = ChipletSystem::baseline_6();
        out += &render_latency_sweep(&fig4(
            &sys6,
            SynPattern::Uniform,
            &[0.001, 0.002, 0.003, 0.004, 0.005, 0.006],
            &Algo::MAIN,
            &cfg,
        ));
        out
    });

    let sys4 = ChipletSystem::baseline_4();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for pattern in [
        SynPattern::Uniform,
        SynPattern::Localized,
        SynPattern::Hotspot,
    ] {
        group.bench_function(format!("{}_4chiplets_midload", pattern.name()), |b| {
            b.iter(|| fig4(&sys4, pattern, &[0.004], &Algo::MAIN, &cfg))
        });
    }
    let sys6 = ChipletSystem::baseline_6();
    group.bench_function("Uniform_6chiplets_midload", |b| {
        b.iter(|| fig4(&sys6, SynPattern::Uniform, &[0.003], &Algo::MAIN, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
