//! Micro-benchmarks of the simulator's active-set scheduler against the
//! dense-scan reference step ([`Simulator::run_dense_reference`]).
//!
//! The active set skips routers holding no flits, so its advantage grows
//! as load drops: at the Fig. 4 mid-load point most of the win comes from
//! idle drain/warmup cycles, while at trickle load nearly every router
//! scan is skipped. The dense reference is the pre-refactor engine shape
//! and is kept precisely so this comparison (and the differential
//! correctness tests) stay runnable.

use criterion::{criterion_group, criterion_main, Criterion};
use deft::prelude::*;
use deft_traffic::uniform;

fn cfg() -> SimConfig {
    SimConfig {
        warmup: 0,
        measure: 1_000,
        drain: 0,
        ..SimConfig::default()
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let sys = ChipletSystem::baseline_4();
    let faults = FaultState::none(&sys);
    let mut group = c.benchmark_group("engine_step");
    for (label, rate) in [("mid_load_0.004", 0.004), ("trickle_0.0005", 0.0005)] {
        let pattern = uniform(&sys, rate);
        group.bench_function(format!("active_set/{label}"), |b| {
            b.iter(|| {
                Simulator::new(
                    &sys,
                    faults.clone(),
                    Box::new(DeftRouting::distance_based(&sys)),
                    &pattern,
                    cfg(),
                )
                .run()
            })
        });
        group.bench_function(format!("dense_reference/{label}"), |b| {
            b.iter(|| {
                Simulator::new(
                    &sys,
                    faults.clone(),
                    Box::new(DeftRouting::distance_based(&sys)),
                    &pattern,
                    cfg(),
                )
                .run_dense_reference()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
