//! Micro-benchmarks of the lane-batched engine on the 16×16 large grid
//! (the scaling datapoint `BENCH_sim.json` tracks as `large-grid-16x16`).
//!
//! Three shapes of the same simulation:
//!
//! * `lane_batched` — the production serial path: word-level
//!   `trailing_zeros` walks over the packed occupancy words (one branch
//!   retires four idle routers) plus idle-cycle skipping.
//! * `scalar_reference` — [`Simulator::run_dense_reference`]: the same
//!   phases driven tick-every-cycle with skipping disabled, the closest
//!   surviving stand-in for the retired scalar per-router scan. The gap
//!   to `lane_batched` is what batching + skipping buy at each load.
//! * `lane_batched_tick4` — the serial path sharded across 4 tick
//!   workers, measuring what the phase-B move buckets buy on this host.
//!
//! At mid load most routers hold flits (the word scan's win is cache
//! density); at trickle load nearly every word is zero (the win is
//! skipping 4 routers per branch and whole idle windows).

use criterion::{criterion_group, criterion_main, Criterion};
use deft::prelude::*;
use deft_traffic::uniform;

fn cfg(threads: usize) -> SimConfig {
    SimConfig {
        warmup: 0,
        measure: 200,
        drain: 0,
        tick_threads: threads,
        ..SimConfig::default()
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let sys = ChipletSystem::chiplet_grid(16, 16).expect("16x16 grid is valid");
    let faults = FaultState::none(&sys);
    let mut group = c.benchmark_group("engine_step_16x16");
    group.sample_size(10);
    for (label, rate) in [("mid_load_0.004", 0.004), ("trickle_0.0005", 0.0005)] {
        let pattern = uniform(&sys, rate);
        group.bench_function(format!("lane_batched/{label}"), |b| {
            b.iter(|| {
                Simulator::new(
                    &sys,
                    faults.clone(),
                    Box::new(DeftRouting::distance_based(&sys)),
                    &pattern,
                    cfg(1),
                )
                .run()
            })
        });
        group.bench_function(format!("scalar_reference/{label}"), |b| {
            b.iter(|| {
                Simulator::new(
                    &sys,
                    faults.clone(),
                    Box::new(DeftRouting::distance_based(&sys)),
                    &pattern,
                    cfg(1),
                )
                .run_dense_reference()
            })
        });
        group.bench_function(format!("lane_batched_tick4/{label}"), |b| {
            b.iter(|| {
                Simulator::new(
                    &sys,
                    faults.clone(),
                    Box::new(DeftRouting::distance_based(&sys)),
                    &pattern,
                    cfg(4),
                )
                .run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
