//! Table I: router area and power for MTR, RC (non-boundary/boundary),
//! and DeFT at 45 nm / 1 GHz. Prints the regenerated table, then times
//! the model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use deft::report::render_table1;
use deft_bench::print_once;
use deft_power::{table1, RouterParams, RouterVariant, Tech45nm};
use std::sync::Once;

static PRINT: Once = Once::new();

fn bench_table1(c: &mut Criterion) {
    print_once(&PRINT, || {
        render_table1(&table1(
            &RouterParams::paper_default(),
            &Tech45nm::default(),
        ))
    });

    let params = RouterParams::paper_default();
    let tech = Tech45nm::default();
    let mut group = c.benchmark_group("table1");
    group.bench_function("full_table", |b| b.iter(|| table1(&params, &tech)));
    group.bench_function("single_estimate", |b| {
        b.iter(|| params.estimate(RouterVariant::deft_default(), &tech))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
