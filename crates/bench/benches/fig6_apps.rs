//! Fig. 6: latency improvement under application traffic — (a) single
//! PARSEC-profile applications, (b) co-scheduled pairs sorted by load.
//! Prints both regenerated panels, then times one single-app comparison
//! and one pair comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use deft::experiments::{fig6_pairs, fig6_single};
use deft::report::render_app_improvements;
use deft_bench::{bench_config, print_once};
use deft_topo::ChipletSystem;
use std::sync::Once;

static PRINT: Once = Once::new();

fn bench_fig6(c: &mut Criterion) {
    let cfg = bench_config();
    print_once(&PRINT, || {
        let sys = ChipletSystem::baseline_4();
        let mut out =
            render_app_improvements("single application (Fig. 6a)", &fig6_single(&sys, &cfg));
        out += &render_app_improvements("two applications (Fig. 6b)", &fig6_pairs(&sys, &cfg));
        out
    });

    let sys = ChipletSystem::baseline_4();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("single_apps_panel", |b| b.iter(|| fig6_single(&sys, &cfg)));
    group.bench_function("app_pairs_panel", |b| b.iter(|| fig6_pairs(&sys, &cfg)));
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
