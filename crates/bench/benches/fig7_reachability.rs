//! Fig. 7: reachability vs number of faulty VLs (exact analysis) for the
//! 4- and 6-chiplet systems. Prints both regenerated panels, then times
//! the exact average and worst-case engines.

use criterion::{criterion_group, criterion_main, Criterion};
use deft::experiments::{fig7, Algo};
use deft::report::render_reachability;
use deft_bench::print_once;
use deft_routing::reachability::ReachabilityEngine;
use deft_topo::ChipletSystem;
use std::sync::Once;

static PRINT: Once = Once::new();

fn bench_fig7(c: &mut Criterion) {
    print_once(&PRINT, || {
        let mut out = render_reachability(
            "4 Chiplets (32 VLs)",
            &fig7(&ChipletSystem::baseline_4(), 8),
        );
        out += &render_reachability(
            "6 Chiplets (48 VLs)",
            &fig7(&ChipletSystem::baseline_6(), 8),
        );
        out
    });

    let sys = ChipletSystem::baseline_4();
    let mtr = ReachabilityEngine::new(&sys, Algo::Mtr.build(&sys).as_ref());
    let mut group = c.benchmark_group("fig7");
    group.bench_function("engine_construction", |b| {
        b.iter(|| ReachabilityEngine::new(&sys, Algo::Mtr.build(&sys).as_ref()))
    });
    group.bench_function("exact_average_k8", |b| b.iter(|| mtr.average(8)));
    group.bench_function("exact_worst_case_k8", |b| b.iter(|| mtr.worst_case(8)));
    group.bench_function("monte_carlo_1000_k8", |b| {
        b.iter(|| mtr.monte_carlo(&sys, 8, 1_000, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
