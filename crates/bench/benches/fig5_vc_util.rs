//! Fig. 5: DeFT's per-region VC utilization under synthetic traffic.
//! Prints the regenerated chart rows, then times one measurement run.

use criterion::{criterion_group, criterion_main, Criterion};
use deft::experiments::{fig5, SynPattern};
use deft::report::render_vc_util;
use deft_bench::{bench_config, print_once};
use deft_topo::ChipletSystem;
use std::sync::Once;

static PRINT: Once = Once::new();

fn bench_fig5(c: &mut Criterion) {
    let cfg = bench_config();
    print_once(&PRINT, || {
        let sys = ChipletSystem::baseline_4();
        [
            SynPattern::Uniform,
            SynPattern::Localized,
            SynPattern::Hotspot,
        ]
        .iter()
        .map(|&p| render_vc_util(p.name(), &fig5(&sys, p, 0.004, &cfg)))
        .collect()
    });

    let sys = ChipletSystem::baseline_4();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("vc_utilization_uniform", |b| {
        b.iter(|| fig5(&sys, SynPattern::Uniform, 0.004, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
