//! Microbenchmarks of the core components: the simulator cycle loop, the
//! offline VL-selection optimizer (Algorithm 2), the VN-assignment fast
//! path (Algorithm 1), and CDG construction. These back the ablation
//! discussion in `DESIGN.md` §8.

use criterion::{criterion_group, criterion_main, Criterion};
use deft::prelude::*;
use deft_routing::{SelectionLut, VlOptimizer};
use deft_topo::Coord;

fn bench_components(c: &mut Criterion) {
    let sys = ChipletSystem::baseline_4();
    let faults = FaultState::none(&sys);

    // Simulator throughput: cycles/second on the baseline system.
    c.bench_function("sim_1000_cycles_uniform_0.004", |b| {
        let pattern = uniform(&sys, 0.004);
        b.iter(|| {
            let cfg = SimConfig {
                warmup: 0,
                measure: 1_000,
                drain: 0,
                ..SimConfig::default()
            };
            Simulator::new(
                &sys,
                faults.clone(),
                Box::new(DeftRouting::distance_based(&sys)),
                &pattern,
                cfg,
            )
            .run()
        })
    });

    // Algorithm 2: optimizing one chiplet's selection for one scenario.
    c.bench_function("optimizer_one_chiplet_one_fault", |b| {
        let coords: Vec<Coord> = (0..4)
            .flat_map(|y| (0..4).map(move |x| Coord::new(x, y)))
            .collect();
        let vls = vec![
            Coord::new(1, 3),
            Coord::new(3, 2),
            Coord::new(2, 0),
            Coord::new(0, 1),
        ];
        b.iter(|| {
            let problem = deft_routing::deft::SelectionProblem::new(
                vls.clone(),
                coords.clone(),
                vec![1.0; 16],
                0b0111,
                0.01,
            );
            VlOptimizer::new().solve(&problem)
        })
    });

    // Full LUT construction (all chiplets, all 15 scenarios each).
    c.bench_function("lut_build_full_system", |b| {
        b.iter(|| SelectionLut::build(&sys, &VlOptimizer::new(), |_| 1.0))
    });

    // Algorithm 1 fast path: inject + per-hop routing of one packet.
    c.bench_function("route_one_inter_chiplet_packet", |b| {
        let mut deft = DeftRouting::new(&sys);
        let src = NodeId(0);
        let dst = sys.chiplet_nodes(ChipletId(3)).last().unwrap();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let mut ctx = deft.on_inject(&sys, &faults, src, dst, seq).unwrap();
            let mut cur = src;
            let mut hops = 0;
            while cur != dst {
                let d = deft.route(&sys, &faults, cur, dst, &mut ctx);
                cur = sys.neighbor(cur, d.dir).unwrap();
                hops += 1;
            }
            hops
        })
    });

    // Deadlock verification on a 2-chiplet system.
    c.bench_function("cdg_build_and_check_2_chiplets", |b| {
        let small = deft_topo::SystemBuilder::new(8, 4)
            .chiplet(Coord::new(0, 0), 4, 4, &deft_topo::PINWHEEL_VLS_4X4)
            .chiplet(Coord::new(4, 0), 4, 4, &deft_topo::PINWHEEL_VLS_4X4)
            .build()
            .unwrap();
        let deft = DeftRouting::distance_based(&small);
        let f = FaultState::none(&small);
        b.iter(|| {
            let cdg = ChannelDependencyGraph::build(&small, &deft, &f);
            assert!(!cdg.has_cycle());
            cdg.channel_count()
        })
    });

    // Serialized-VL ablation (paper §IV-A cites serialization as a cost
    // reduction): latency cost of narrowing the vertical links.
    c.bench_function("sim_vl_serialization_x4", |b| {
        let pattern = uniform(&sys, 0.004);
        b.iter(|| {
            let cfg = SimConfig {
                warmup: 0,
                measure: 1_000,
                drain: 0,
                vl_serialization: 4,
                ..SimConfig::default()
            };
            Simulator::new(
                &sys,
                faults.clone(),
                Box::new(DeftRouting::distance_based(&sys)),
                &pattern,
                cfg,
            )
            .run()
        })
    });

    // Reachability engine hot query.
    c.bench_function("reachability_under_one_scenario", |b| {
        let engine = ReachabilityEngine::new(&sys, &MtrRouting::new(&sys));
        let mut f = FaultState::none(&sys);
        f.inject(VlLinkId {
            chiplet: ChipletId(0),
            index: 1,
            dir: VlDir::Down,
        });
        f.inject(VlLinkId {
            chiplet: ChipletId(2),
            index: 2,
            dir: VlDir::Up,
        });
        b.iter(|| engine.reachability_under(&sys, &f))
    });
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
