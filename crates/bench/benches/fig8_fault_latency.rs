//! Fig. 8: latency under VL faults with DeFT's three VL-selection
//! strategies (optimized / distance-based / random), at 12.5% and 25%
//! fault rates. Prints both regenerated panels, then times one sweep
//! point per fault rate.

use criterion::{criterion_group, criterion_main, Criterion};
use deft::experiments::fig8;
use deft::report::render_latency_sweep;
use deft_bench::{bench_config, print_once};
use deft_topo::{ChipletId, ChipletSystem, FaultState, VlDir, VlLinkId};
use std::sync::Once;

static PRINT: Once = Once::new();

fn faults_12_5(sys: &ChipletSystem) -> FaultState {
    let mut f = FaultState::none(sys);
    f.inject(VlLinkId {
        chiplet: ChipletId(0),
        index: 0,
        dir: VlDir::Down,
    });
    f.inject(VlLinkId {
        chiplet: ChipletId(1),
        index: 1,
        dir: VlDir::Up,
    });
    f.inject(VlLinkId {
        chiplet: ChipletId(2),
        index: 2,
        dir: VlDir::Down,
    });
    f.inject(VlLinkId {
        chiplet: ChipletId(3),
        index: 3,
        dir: VlDir::Up,
    });
    f
}

fn faults_25(sys: &ChipletSystem) -> FaultState {
    let mut f = faults_12_5(sys);
    f.inject(VlLinkId {
        chiplet: ChipletId(0),
        index: 2,
        dir: VlDir::Up,
    });
    f.inject(VlLinkId {
        chiplet: ChipletId(1),
        index: 3,
        dir: VlDir::Down,
    });
    f.inject(VlLinkId {
        chiplet: ChipletId(2),
        index: 0,
        dir: VlDir::Up,
    });
    f.inject(VlLinkId {
        chiplet: ChipletId(3),
        index: 1,
        dir: VlDir::Down,
    });
    f
}

fn bench_fig8(c: &mut Criterion) {
    let cfg = bench_config();
    print_once(&PRINT, || {
        let sys = ChipletSystem::baseline_4();
        let mut out = render_latency_sweep(&fig8(
            &sys,
            &faults_12_5(&sys),
            &[0.004, 0.005, 0.006, 0.007, 0.008],
            &cfg,
        ));
        out += &render_latency_sweep(&fig8(
            &sys,
            &faults_25(&sys),
            &[0.004, 0.005, 0.006, 0.007],
            &cfg,
        ));
        out
    });

    let sys = ChipletSystem::baseline_4();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("ablation_12_5pct_midload", |b| {
        let f = faults_12_5(&sys);
        b.iter(|| fig8(&sys, &f, &[0.005], &cfg))
    });
    group.bench_function("ablation_25pct_midload", |b| {
        let f = faults_25(&sys);
        b.iter(|| fig8(&sys, &f, &[0.005], &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
