//! Trace recording and deterministic playback.
//!
//! Noxim (and the paper's GEM5 flow) supports *trace-driven* simulation:
//! pre-recorded injection events replayed cycle-exactly. [`Trace::record`]
//! pre-draws a stochastic pattern's events with the same per-cycle,
//! node-ordered process the simulator uses, so replaying a trace through
//! `deft-sim` with any seed reproduces the recorded run's injections
//! exactly. Traces serialize to a simple line-oriented text format
//! (`cycle src dst`) for archiving or external tooling.

use crate::pattern::TrafficPattern;
use deft_topo::{ChipletSystem, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// One recorded injection: node `src` generates a packet for `dst` at
/// `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceEvent {
    /// Generation cycle.
    pub cycle: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// Error from [`Trace::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseTraceError {}

/// A recorded injection trace, playable as a [`TrafficPattern`].
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    name: String,
    events: Vec<TraceEvent>,
    /// `(cycle, src)` → destination, for O(1) playback lookup. At most one
    /// packet per node per cycle (the Bernoulli process's property).
    index: HashMap<(u64, u32), NodeId>,
    /// Mean rate per node, for `injection_rate` consumers (e.g. DeFT's
    /// traffic-aware optimizer).
    mean_rates: Vec<f64>,
    /// Per-node event cycles, ascending: `arrivals[node]` answers
    /// [`TrafficPattern::next_arrival_at_or_after`] with one binary
    /// search, which is what lets the simulator skip the idle stretches
    /// between trace events.
    arrivals: Vec<Vec<u64>>,
}

impl Trace {
    /// Builds a trace from raw events.
    ///
    /// # Panics
    /// Panics if two events share the same (cycle, source) slot.
    pub fn new(name: impl Into<String>, mut events: Vec<TraceEvent>, node_count: usize) -> Self {
        events.sort();
        let mut index = HashMap::with_capacity(events.len());
        let mut mean_rates = vec![0.0; node_count];
        let mut arrivals = vec![Vec::new(); node_count];
        let horizon = events.iter().map(|e| e.cycle + 1).max().unwrap_or(1);
        for e in &events {
            let prev = index.insert((e.cycle, e.src.0), e.dst);
            assert!(
                prev.is_none(),
                "duplicate trace event at cycle {} node {}",
                e.cycle,
                e.src
            );
            if let Some(r) = mean_rates.get_mut(e.src.index()) {
                *r += 1.0 / horizon as f64;
            }
            if let Some(a) = arrivals.get_mut(e.src.index()) {
                a.push(e.cycle); // events are sorted, so each list is too
            }
        }
        Self {
            name: name.into(),
            events,
            index,
            mean_rates,
            arrivals,
        }
    }

    /// Records `cycles` cycles of `pattern` on `sys`, drawing events with
    /// the same node-ordered per-cycle process the simulator uses: replaying
    /// the trace reproduces a live run with the same `seed` injection for
    /// injection.
    pub fn record(
        sys: &ChipletSystem,
        pattern: &dyn TrafficPattern,
        cycles: u64,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for cycle in 0..cycles {
            for src in sys.nodes() {
                if let Some(dst) = pattern.next_packet(src, cycle, &mut rng) {
                    events.push(TraceEvent { cycle, src, dst });
                }
            }
        }
        Self::new(
            format!("trace({})", pattern.name()),
            events,
            sys.node_count(),
        )
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, sorted by (cycle, src, dst).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serializes to the line format `cycle src dst`, one event per line,
    /// with a `# deft-trace` header.
    pub fn to_text(&self) -> String {
        let mut out = format!("# deft-trace {}\n", self.name);
        for e in &self.events {
            out.push_str(&format!("{} {} {}\n", e.cycle, e.src.0, e.dst.0));
        }
        out
    }

    /// Parses the [`Trace::to_text`] format.
    ///
    /// # Errors
    /// Returns [`ParseTraceError`] on malformed lines.
    pub fn from_text(text: &str, node_count: usize) -> Result<Trace, ParseTraceError> {
        let mut name = String::from("trace");
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                if let Some(n) = rest.trim().strip_prefix("deft-trace ") {
                    name = n.to_owned();
                }
                continue;
            }
            let mut parts = line.split_whitespace();
            let mut field = |what: &str| -> Result<u64, ParseTraceError> {
                parts
                    .next()
                    .ok_or_else(|| ParseTraceError {
                        line: i + 1,
                        reason: format!("missing {what}"),
                    })?
                    .parse()
                    .map_err(|_| ParseTraceError {
                        line: i + 1,
                        reason: format!("invalid {what}"),
                    })
            };
            let cycle = field("cycle")?;
            let src = field("src")?;
            let dst = field("dst")?;
            if src as usize >= node_count || dst as usize >= node_count {
                return Err(ParseTraceError {
                    line: i + 1,
                    reason: format!("node id out of range (< {node_count})"),
                });
            }
            events.push(TraceEvent {
                cycle,
                src: NodeId(src as u32),
                dst: NodeId(dst as u32),
            });
        }
        Ok(Trace::new(name, events, node_count))
    }
}

impl TrafficPattern for Trace {
    fn name(&self) -> &str {
        &self.name
    }

    fn injection_rate(&self, node: NodeId) -> f64 {
        self.mean_rates.get(node.index()).copied().unwrap_or(0.0)
    }

    fn pick_destination(&self, _node: NodeId, _rng: &mut SmallRng) -> Option<NodeId> {
        None // destinations come from recorded events only
    }

    fn next_packet(&self, node: NodeId, cycle: u64, _rng: &mut SmallRng) -> Option<NodeId> {
        self.index.get(&(cycle, node.0)).copied()
    }

    fn next_arrival_at_or_after(&self, node: NodeId, cycle: u64) -> Option<u64> {
        let a = self.arrivals.get(node.index())?;
        let i = a.partition_point(|&c| c < cycle);
        a.get(i).copied()
    }

    /// Traces with the same name can hold different events, so the
    /// fingerprint covers the name and the full event list (the derived
    /// index/rate/arrival tables are functions of the events).
    fn fingerprint(&self) -> u64 {
        let mut enc = deft_codec::Encoder::new();
        deft_codec::Persist::encode(&self.name, &mut enc);
        enc.put_usize(self.events.len());
        for e in &self.events {
            enc.put_u64(e.cycle);
            enc.put_u32(e.src.0);
            enc.put_u32(e.dst.0);
        }
        deft_codec::fnv1a(enc.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::uniform;
    use deft_topo::ChipletSystem;

    #[test]
    fn record_produces_plausible_event_count() {
        let sys = ChipletSystem::baseline_4();
        let pattern = uniform(&sys, 0.004);
        let trace = Trace::record(&sys, &pattern, 2_000, 1);
        // Expectation: 0.004 x 128 nodes x 2000 cycles = 1024 events.
        let expect = 0.004 * 128.0 * 2_000.0;
        assert!(
            (trace.len() as f64 - expect).abs() < expect * 0.2,
            "{} events vs expected ~{expect}",
            trace.len()
        );
    }

    #[test]
    fn playback_replays_exactly_the_recorded_events() {
        let sys = ChipletSystem::baseline_4();
        let pattern = uniform(&sys, 0.01);
        let trace = Trace::record(&sys, &pattern, 200, 2);
        let mut rng = SmallRng::seed_from_u64(999); // seed must not matter
        let mut replayed = Vec::new();
        for cycle in 0..200 {
            for src in sys.nodes() {
                if let Some(dst) = trace.next_packet(src, cycle, &mut rng) {
                    replayed.push(TraceEvent { cycle, src, dst });
                }
            }
        }
        assert_eq!(replayed, trace.events());
    }

    #[test]
    fn text_round_trip_preserves_the_trace() {
        let sys = ChipletSystem::baseline_4();
        let pattern = uniform(&sys, 0.006);
        let trace = Trace::record(&sys, &pattern, 500, 3);
        let text = trace.to_text();
        let back = Trace::from_text(&text, sys.node_count()).expect("parses");
        assert_eq!(back.events(), trace.events());
        assert_eq!(back.name(), trace.name());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Trace::from_text("1 2", 128).is_err());
        assert!(Trace::from_text("x 2 3", 128).is_err());
        assert!(
            Trace::from_text("1 999 3", 128).is_err(),
            "node id out of range"
        );
        let e = Trace::from_text("5 1", 128).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("missing dst"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let t = Trace::from_text("# deft-trace mytrace\n\n10 0 5\n", 128).unwrap();
        assert_eq!(t.name(), "mytrace");
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.events()[0],
            TraceEvent {
                cycle: 10,
                src: NodeId(0),
                dst: NodeId(5)
            }
        );
    }

    #[test]
    fn mean_rates_reflect_event_density() {
        let events = vec![
            TraceEvent {
                cycle: 0,
                src: NodeId(3),
                dst: NodeId(4),
            },
            TraceEvent {
                cycle: 5,
                src: NodeId(3),
                dst: NodeId(7),
            },
            TraceEvent {
                cycle: 9,
                src: NodeId(0),
                dst: NodeId(1),
            },
        ];
        let t = Trace::new("t", events, 16);
        assert!((t.injection_rate(NodeId(3)) - 0.2).abs() < 1e-12);
        assert!((t.injection_rate(NodeId(0)) - 0.1).abs() < 1e-12);
        assert_eq!(t.injection_rate(NodeId(9)), 0.0);
    }
}
