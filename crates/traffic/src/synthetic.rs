//! The paper's synthetic patterns (§IV-B) plus two classic extras.

use crate::pattern::{Mixture, TableTraffic};
use deft_topo::{ChipletSystem, Coord, Layer, NodeAddr, NodeId};

/// The fraction of intra-chiplet packets in the paper's Localized pattern
/// ("for 40 % of the packets, the source and destination are on the same
/// chiplet").
pub const LOCALIZED_FRACTION: f64 = 0.4;

/// Number of hotspot nodes in the paper's Hotspot pattern.
pub const HOTSPOT_COUNT: usize = 3;

/// Extra probability mass each hotspot receives ("3 hotspot points with
/// 10 % rate on each").
pub const HOTSPOT_RATE: f64 = 0.10;

fn all_other_nodes(sys: &ChipletSystem, node: NodeId) -> Vec<NodeId> {
    sys.nodes().filter(|&n| n != node).collect()
}

/// Uniform random traffic: every node injects at `rate` packets/cycle
/// toward a uniformly random other node (Fig. 4(a)/(d)).
pub fn uniform(sys: &ChipletSystem, rate: f64) -> TableTraffic {
    let rates = vec![rate; sys.node_count()];
    let dists = sys
        .nodes()
        .map(|n| Mixture::uniform(all_other_nodes(sys, n)))
        .collect();
    TableTraffic::new("Uniform", rates, dists)
}

/// Localized traffic (Fig. 4(b)): 40 % of packets stay on the source
/// chiplet (or, for interposer sources, on the interposer); the rest are
/// uniform over all other nodes.
pub fn localized(sys: &ChipletSystem, rate: f64) -> TableTraffic {
    let rates = vec![rate; sys.node_count()];
    let dists = sys
        .nodes()
        .map(|n| {
            let here = sys.layer(n);
            let local: Vec<NodeId> = sys
                .nodes()
                .filter(|&m| m != n && sys.layer(m) == here)
                .collect();
            let remote: Vec<NodeId> = sys
                .nodes()
                .filter(|&m| m != n && sys.layer(m) != here)
                .collect();
            let mut mix = Mixture::empty();
            mix.push(LOCALIZED_FRACTION, local);
            mix.push(1.0 - LOCALIZED_FRACTION, remote);
            mix
        })
        .collect();
    TableTraffic::new("Localized", rates, dists)
}

/// The default hotspot nodes: one core near the center of each of the
/// first [`HOTSPOT_COUNT`] chiplets.
pub fn default_hotspots(sys: &ChipletSystem) -> Vec<NodeId> {
    sys.chiplets()
        .iter()
        .take(HOTSPOT_COUNT)
        .map(|c| {
            let mid = Coord::new(c.width() / 2, c.height() / 2);
            sys.node_id(NodeAddr::new(Layer::Chiplet(c.id()), mid))
                .expect("chiplet center exists")
        })
        .collect()
}

/// Hotspot traffic (Fig. 4(c)): each packet goes to one of the three
/// hotspots with probability 10 % each, otherwise to a uniformly random
/// node. Pass `None` for the paper's default hotspot placement.
pub fn hotspot(sys: &ChipletSystem, rate: f64, hotspots: Option<Vec<NodeId>>) -> TableTraffic {
    let hotspots = hotspots.unwrap_or_else(|| default_hotspots(sys));
    let rates = vec![rate; sys.node_count()];
    let dists = sys
        .nodes()
        .map(|n| {
            let mut mix = Mixture::empty();
            for &h in &hotspots {
                if h != n {
                    mix.push(HOTSPOT_RATE, vec![h]);
                }
            }
            mix.push(
                1.0 - HOTSPOT_RATE * hotspots.len() as f64,
                all_other_nodes(sys, n),
            );
            mix
        })
        .collect();
    TableTraffic::new("Hotspot", rates, dists)
}

/// The *footprint coordinate* of a node: its position projected onto the
/// interposer grid (chiplet nodes project through their chiplet origin).
fn footprint(sys: &ChipletSystem, node: NodeId) -> Coord {
    match sys.addr(node) {
        NodeAddr {
            layer: Layer::Interposer,
            coord,
        } => coord,
        NodeAddr {
            layer: Layer::Chiplet(c),
            coord,
        } => sys.chiplet(c).to_interposer(coord),
    }
}

fn node_at_footprint(sys: &ChipletSystem, layer_like: NodeId, fp: Coord) -> Option<NodeId> {
    // Same-layer-kind partner: chiplet nodes map to the chiplet node above
    // `fp`, interposer nodes to the interposer node at `fp`.
    match sys.layer(layer_like) {
        Layer::Interposer => sys.node_id(NodeAddr::new(Layer::Interposer, fp)),
        Layer::Chiplet(_) => sys.chiplets().iter().find_map(|c| {
            let o = c.origin();
            (fp.x >= o.x && fp.y >= o.y)
                .then(|| Coord::new(fp.x - o.x, fp.y - o.y))
                .and_then(|local| {
                    c.contains(local)
                        .then(|| sys.node_id(NodeAddr::new(Layer::Chiplet(c.id()), local)))
                        .flatten()
                })
        }),
    }
}

/// Transpose traffic: node at footprint (x, y) sends to the same-kind node
/// at (y, x). Nodes whose transposed coordinate does not exist (non-square
/// footprints) stay silent. An extra pattern beyond the paper.
pub fn transpose(sys: &ChipletSystem, rate: f64) -> TableTraffic {
    let mut rates = Vec::with_capacity(sys.node_count());
    let mut dists = Vec::with_capacity(sys.node_count());
    for n in sys.nodes() {
        let fp = footprint(sys, n);
        let target = node_at_footprint(sys, n, Coord::new(fp.y, fp.x)).filter(|&t| t != n);
        match target {
            Some(t) => {
                rates.push(rate);
                dists.push(Mixture::uniform(vec![t]));
            }
            None => {
                rates.push(0.0);
                dists.push(Mixture::empty());
            }
        }
    }
    TableTraffic::new("Transpose", rates, dists)
}

/// Bit-complement traffic: node at footprint (x, y) sends to the same-kind
/// node at (W−1−x, H−1−y). An extra pattern beyond the paper.
pub fn bit_complement(sys: &ChipletSystem, rate: f64) -> TableTraffic {
    let (w, h) = (sys.interposer_width(), sys.interposer_height());
    let mut rates = Vec::with_capacity(sys.node_count());
    let mut dists = Vec::with_capacity(sys.node_count());
    for n in sys.nodes() {
        let fp = footprint(sys, n);
        let comp = Coord::new(w - 1 - fp.x, h - 1 - fp.y);
        let target = node_at_footprint(sys, n, comp).filter(|&t| t != n);
        match target {
            Some(t) => {
                rates.push(rate);
                dists.push(Mixture::uniform(vec![t]));
            }
            None => {
                rates.push(0.0);
                dists.push(Mixture::empty());
            }
        }
    }
    TableTraffic::new("BitComplement", rates, dists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TrafficPattern;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sys() -> ChipletSystem {
        ChipletSystem::baseline_4()
    }

    #[test]
    fn uniform_never_targets_self() {
        let s = sys();
        let t = uniform(&s, 0.004);
        let mut rng = SmallRng::seed_from_u64(3);
        for n in s.nodes().take(16) {
            for _ in 0..32 {
                assert_ne!(t.pick_destination(n, &mut rng), Some(n));
            }
        }
    }

    #[test]
    fn localized_hits_the_40_percent_fraction() {
        let s = sys();
        let t = localized(&s, 0.004);
        let src = NodeId(5); // chiplet 0
        let p_local = t.mixture(src).probability(|d| s.layer(d) == s.layer(src));
        assert!((p_local - LOCALIZED_FRACTION).abs() < 1e-12);
    }

    #[test]
    fn hotspot_mass_matches_the_paper() {
        let s = sys();
        let t = hotspot(&s, 0.004, None);
        let hs = default_hotspots(&s);
        assert_eq!(hs.len(), 3);
        let src = s.interposer_nodes().next().unwrap();
        for &h in &hs {
            let p = t.mixture(src).probability(|d| d == h);
            // 10% dedicated mass plus the small uniform share.
            assert!(p > HOTSPOT_RATE && p < HOTSPOT_RATE + 0.02, "p = {p}");
        }
    }

    #[test]
    fn transpose_is_an_involution_where_defined() {
        let s = sys();
        let t = transpose(&s, 0.004);
        let mut rng = SmallRng::seed_from_u64(0);
        for n in s.nodes() {
            if let Some(d) = t.pick_destination(n, &mut rng) {
                if let Some(back) = t.pick_destination(d, &mut rng) {
                    assert_eq!(back, n, "transpose({d}) should return to {n}");
                }
            }
        }
    }

    #[test]
    fn bit_complement_covers_all_core_nodes() {
        let s = sys();
        let t = bit_complement(&s, 0.004);
        let silent = s.nodes().filter(|&n| t.injection_rate(n) == 0.0).count();
        assert_eq!(silent, 0, "8x8 footprint complement always exists");
    }

    #[test]
    fn inter_chiplet_rate_is_zero_for_interposer_sources() {
        let s = sys();
        let t = uniform(&s, 0.004);
        let ip = s.interposer_nodes().next().unwrap();
        assert_eq!(t.inter_chiplet_rate(&s, ip), 0.0);
        let core = NodeId(0);
        let r = t.inter_chiplet_rate(&s, core);
        // 112 of 127 destinations are off-chiplet.
        assert!((r - 0.004 * 112.0 / 127.0).abs() < 1e-12);
    }

    #[test]
    fn six_chiplet_transpose_silences_out_of_range_nodes() {
        let s = ChipletSystem::baseline_6(); // 12x8 footprint: not square
        let t = transpose(&s, 0.004);
        let silent = s.nodes().filter(|&n| t.injection_rate(n) == 0.0).count();
        assert!(silent > 0);
    }
}
