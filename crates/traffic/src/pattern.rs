//! The traffic-pattern interface and the table-driven implementation.

use deft_codec::Persist;
use deft_topo::{ChipletSystem, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

/// A packet workload: per-node injection rates and destination
/// distributions.
///
/// The simulator calls [`injection_rate`](Self::injection_rate) once per
/// (node, cycle) as a Bernoulli probability and
/// [`pick_destination`](Self::pick_destination) when a packet is generated.
///
/// Patterns must be `Send + Sync`: they are immutable lookup tables (all
/// randomness flows through the caller-supplied RNG), and experiment
/// campaigns share or move them across worker threads.
pub trait TrafficPattern: Send + Sync {
    /// Human-readable pattern name ("Uniform", "Hotspot", "CA+FA", ...).
    fn name(&self) -> &str;

    /// Packet-injection probability of `node` per cycle.
    fn injection_rate(&self, node: NodeId) -> f64;

    /// Draws a destination for a packet injected at `node`, or `None` when
    /// the node never injects.
    fn pick_destination(&self, node: NodeId, rng: &mut SmallRng) -> Option<NodeId>;

    /// Decides whether `node` generates a packet this `cycle`, and toward
    /// whom. The default is the open-loop Bernoulli process used by all
    /// stochastic patterns; trace playback overrides it with recorded
    /// events.
    fn next_packet(&self, node: NodeId, cycle: u64, rng: &mut SmallRng) -> Option<NodeId> {
        let _ = cycle;
        let rate = self.injection_rate(node);
        if rate > 0.0 && rng.random_bool(rate.min(1.0)) {
            self.pick_destination(node, rng)
        } else {
            None
        }
    }

    /// The earliest cycle `>= cycle` at which `node` *might* generate a
    /// packet, or `None` when it never will again. The simulator's
    /// idle-cycle skipping takes the minimum over all nodes as its jump
    /// target, so answers must be **conservative**: returning a cycle
    /// earlier than the true next arrival only costs skipped-cycle
    /// opportunity, while returning a later one would silently drop
    /// packets.
    ///
    /// The default — correct for every stochastic pattern — answers
    /// "possibly right now" whenever the node's rate is positive, which
    /// disables skipping: a Bernoulli draw happens (and consumes RNG
    /// state) every cycle, so there is never a provably-idle window.
    /// Deterministic patterns (trace playback) override this with the
    /// exact next event.
    fn next_arrival_at_or_after(&self, node: NodeId, cycle: u64) -> Option<u64> {
        if self.injection_rate(node) > 0.0 {
            Some(cycle)
        } else {
            None
        }
    }

    /// The node's *inter-chiplet* injection rate `T_r^inter` (Eq. 1 of the
    /// paper): the portion of its traffic that must leave its chiplet
    /// through a vertical link. Used by DeFT's traffic-aware offline
    /// optimizer. The default conservatively returns the full rate.
    fn inter_chiplet_rate(&self, sys: &ChipletSystem, node: NodeId) -> f64 {
        let _ = sys;
        self.injection_rate(node)
    }

    /// A deterministic fingerprint of the workload, stored in simulator
    /// snapshots so a resume can verify it reattaches the same pattern
    /// the snapshot was taken under (the pattern itself is borrowed
    /// configuration and is not serialized).
    ///
    /// The default hashes the name only; patterns whose behaviour is not
    /// determined by their name (per-node tables, traces) override it to
    /// hash their full contents.
    fn fingerprint(&self) -> u64 {
        deft_codec::fnv1a(self.name().as_bytes())
    }
}

/// A destination distribution: a weighted mixture of uniform-over-set
/// components.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Mixture {
    components: Vec<(f64, Vec<NodeId>)>,
    total_weight: f64,
}

impl Mixture {
    /// An empty mixture (node never injects).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A single uniform component.
    pub fn uniform(targets: Vec<NodeId>) -> Self {
        let mut m = Self::empty();
        m.push(1.0, targets);
        m
    }

    /// Adds a component with the given weight. Empty target sets and
    /// non-positive weights are ignored.
    pub fn push(&mut self, weight: f64, targets: Vec<NodeId>) {
        if weight > 0.0 && !targets.is_empty() {
            self.total_weight += weight;
            self.components.push((weight, targets));
        }
    }

    /// Whether the mixture has no component.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Samples a destination.
    pub fn sample(&self, rng: &mut SmallRng) -> Option<NodeId> {
        if self.components.is_empty() {
            return None;
        }
        let mut pick = rng.random::<f64>() * self.total_weight;
        for (w, targets) in &self.components {
            if pick < *w || std::ptr::eq(targets, &self.components.last().unwrap().1) {
                return Some(targets[rng.random_range(0..targets.len())]);
            }
            pick -= w;
        }
        unreachable!("mixture sampling fell through")
    }

    /// The probability that a sampled destination satisfies `pred`, computed
    /// exactly from the mixture.
    pub fn probability(&self, mut pred: impl FnMut(NodeId) -> bool) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        let mut p = 0.0;
        for (w, targets) in &self.components {
            let hits = targets.iter().filter(|&&t| pred(t)).count();
            p += w / self.total_weight * hits as f64 / targets.len() as f64;
        }
        p
    }
}

/// A fully-tabulated traffic pattern: one rate and one [`Mixture`] per node.
///
/// All concrete generators in this crate ([`synthetic`](crate::synthetic),
/// [`apps`](crate::apps), [`workload`](crate::workload)) produce this type.
#[derive(Debug, Clone)]
pub struct TableTraffic {
    name: String,
    rates: Vec<f64>,
    dists: Vec<Mixture>,
}

impl TableTraffic {
    /// Creates a pattern from per-node tables.
    ///
    /// # Panics
    /// Panics if the two tables have different lengths.
    pub fn new(name: impl Into<String>, rates: Vec<f64>, dists: Vec<Mixture>) -> Self {
        assert_eq!(rates.len(), dists.len(), "one mixture per node");
        Self {
            name: name.into(),
            rates,
            dists,
        }
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        self.rates.len()
    }

    /// The aggregate offered load in packets/cycle.
    pub fn offered_load(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Scales every node's injection rate by `factor` (used for
    /// injection-rate sweeps).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            name: self.name.clone(),
            rates: self.rates.iter().map(|r| r * factor).collect(),
            dists: self.dists.clone(),
        }
    }

    /// The destination mixture of a node.
    pub fn mixture(&self, node: NodeId) -> &Mixture {
        &self.dists[node.index()]
    }
}

impl TrafficPattern for TableTraffic {
    fn name(&self) -> &str {
        &self.name
    }

    fn injection_rate(&self, node: NodeId) -> f64 {
        self.rates.get(node.index()).copied().unwrap_or(0.0)
    }

    fn pick_destination(&self, node: NodeId, rng: &mut SmallRng) -> Option<NodeId> {
        self.dists.get(node.index())?.sample(rng)
    }

    fn inter_chiplet_rate(&self, sys: &ChipletSystem, node: NodeId) -> f64 {
        let Some(src_chiplet) = sys.chiplet_of(node) else {
            return 0.0; // interposer sources never descend
        };
        let p_inter =
            self.dists[node.index()].probability(|dst| sys.chiplet_of(dst) != Some(src_chiplet));
        self.injection_rate(node) * p_inter
    }

    /// Two table patterns can share a name but differ per node (e.g. two
    /// rate-sweep points), so the fingerprint covers the full tables:
    /// name, per-node rates, and every mixture component.
    fn fingerprint(&self) -> u64 {
        let mut enc = deft_codec::Encoder::new();
        self.name.encode(&mut enc);
        self.rates.encode(&mut enc);
        enc.put_usize(self.dists.len());
        for m in &self.dists {
            enc.put_f64(m.total_weight);
            enc.put_usize(m.components.len());
            for (w, targets) in &m.components {
                enc.put_f64(*w);
                enc.put_usize(targets.len());
                for t in targets {
                    enc.put_u32(t.0);
                }
            }
        }
        deft_codec::fnv1a(enc.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_topo::ChipletSystem;
    use rand::SeedableRng;

    #[test]
    fn empty_mixture_never_yields() {
        let m = Mixture::empty();
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(m.sample(&mut rng), None);
        assert!(m.is_empty());
    }

    #[test]
    fn mixture_respects_weights() {
        let mut m = Mixture::empty();
        m.push(0.9, vec![NodeId(1)]);
        m.push(0.1, vec![NodeId(2)]);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut ones = 0;
        for _ in 0..10_000 {
            if m.sample(&mut rng) == Some(NodeId(1)) {
                ones += 1;
            }
        }
        let frac = ones as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn probability_is_exact() {
        let mut m = Mixture::empty();
        m.push(0.5, vec![NodeId(0), NodeId(1)]);
        m.push(0.5, vec![NodeId(2)]);
        // P(dst == 1) = 0.5 * 0.5 = 0.25
        assert!((m.probability(|n| n == NodeId(1)) - 0.25).abs() < 1e-12);
        assert!((m.probability(|_| true) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_and_empty_components_are_dropped() {
        let mut m = Mixture::empty();
        m.push(0.0, vec![NodeId(1)]);
        m.push(1.0, vec![]);
        assert!(m.is_empty());
    }

    #[test]
    fn table_traffic_scaling() {
        let sys = ChipletSystem::baseline_4();
        let n = sys.node_count();
        let t = TableTraffic::new(
            "t",
            vec![0.002; n],
            (0..n).map(|_| Mixture::uniform(vec![NodeId(0)])).collect(),
        );
        let s = t.scaled(2.0);
        assert!((s.injection_rate(NodeId(3)) - 0.004).abs() < 1e-12);
        assert!((s.offered_load() - 2.0 * t.offered_load()).abs() < 1e-12);
    }

    #[test]
    fn inter_chiplet_rate_counts_only_remote_destinations() {
        let sys = ChipletSystem::baseline_4();
        let n = sys.node_count();
        // Node 0 (chiplet 0) sends 50/50 to an intra-chiplet node and a
        // remote one.
        let mut dists: Vec<Mixture> = (0..n).map(|_| Mixture::empty()).collect();
        let mut m = Mixture::empty();
        m.push(0.5, vec![NodeId(5)]); // same chiplet
        m.push(0.5, vec![NodeId(20)]); // chiplet 1
        dists[0] = m;
        let mut rates = vec![0.0; n];
        rates[0] = 0.01;
        let t = TableTraffic::new("t", rates, dists);
        assert!((t.inter_chiplet_rate(&sys, NodeId(0)) - 0.005).abs() < 1e-12);
    }
}
