//! # deft-traffic — traffic generation for 2.5D chiplet simulations
//!
//! Workload generators for the DeFT evaluation:
//!
//! * The paper's synthetic patterns ([`synthetic`]): **Uniform**,
//!   **Localized** (40 % intra-chiplet), and **Hotspot** (three hotspots at
//!   10 % each), plus transpose and bit-complement extras.
//! * Application profiles ([`apps`]): seeded stochastic substitutes for the
//!   paper's GEM5-generated PARSEC traces (see `DESIGN.md` §3) — eight
//!   applications with characteristic injection rates, locality, and
//!   memory-controller traffic toward interposer nodes.
//! * Multi-application workloads ([`workload`]): co-scheduled applications
//!   on disjoint chiplet partitions sharing the interposer memory nodes,
//!   reproducing the congestion regime of the paper's Fig. 6(b).
//!
//! All generators implement [`TrafficPattern`]; destinations are drawn from
//! precomputed mixtures, so generation is O(1) per packet and fully
//! deterministic under a seeded RNG. [`Trace`] adds Noxim-style
//! trace-driven simulation: record any pattern once, replay it
//! cycle-exactly.
//!
//! ## Data flow
//!
//! Node maps come in from `deft-topo`; immutable [`TableTraffic`] tables
//! go out to `deft-sim` (packet generation) and to DeFT's offline
//! optimizer in `deft-routing` (per-node inter-chiplet rates, paper
//! Eq. 1). [`TrafficPattern`] is `Send + Sync` — patterns carry no RNG of
//! their own — so the `deft` crate's campaign runner shares one table
//! across the worker threads of a sweep.
//!
//! ```
//! use deft_topo::ChipletSystem;
//! use deft_traffic::{uniform, TrafficPattern};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let sys = ChipletSystem::baseline_4();
//! let pattern = uniform(&sys, 0.004);
//! let mut rng = SmallRng::seed_from_u64(1);
//! let src = deft_topo::NodeId(0);
//! let dst = pattern.pick_destination(src, &mut rng).expect("uniform sources always inject");
//! assert_ne!(src, dst);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod pattern;
pub mod synthetic;
pub mod trace;
pub mod workload;

pub use apps::{AppProfile, PARSEC_PROFILES};
pub use pattern::{Mixture, TableTraffic, TrafficPattern};
pub use synthetic::{bit_complement, hotspot, localized, transpose, uniform};
pub use trace::{ParseTraceError, Trace, TraceEvent};
pub use workload::{memory_nodes, multi_app, single_app};
