//! Application traffic profiles: the PARSEC substitution.
//!
//! The paper generates traffic from eight PARSEC benchmarks with GEM5 in
//! full-system mode (64 x86 cores, four coherence directories, four shared
//! L2 banks) and replays it in Noxim. We have neither GEM5 nor PARSEC, so —
//! per the substitution policy in `DESIGN.md` §3 — each application becomes
//! a seeded stochastic profile with a characteristic mean injection rate,
//! intra-chiplet locality, memory-traffic fraction (toward directory/L2
//! nodes on the interposer), and per-core rate skew.
//!
//! The relative rates are chosen so the paper's two-application load
//! ordering holds exactly (Fig. 6(b), "sorted based on trafﬁc load, from
//! low (FA+FL) to high (ST+FL)").

/// A stochastic stand-in for one PARSEC application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Full benchmark name.
    pub name: &'static str,
    /// The paper's two-letter x-axis label.
    pub abbrev: &'static str,
    /// Mean packet-injection rate per core (packets/cycle) when the
    /// application runs on *all* cores of the system. Workload builders
    /// scale this inversely with the core count actually assigned: the same
    /// problem on fewer cores produces proportionally more miss traffic per
    /// core, which is why co-scheduling congests the network (Fig. 6(b)).
    pub rate: f64,
    /// Fraction of core traffic that goes to memory nodes (directories and
    /// L2 banks on the interposer).
    pub memory_fraction: f64,
    /// Fraction of the remaining core-to-core traffic that stays on the
    /// source chiplet (sharing locality).
    pub local_fraction: f64,
    /// Relative per-core rate skew in `[0, 1)`: individual core rates are
    /// drawn from `rate * [1 - skew, 1 + skew]`.
    pub skew: f64,
}

/// The eight PARSEC profiles used in the paper's Fig. 6.
///
/// Rates are packets/cycle/core, calibrated so single applications run
/// lightly loaded and co-scheduled pairs congest the shared vertical links
/// (the paper's Fig. 6 regime), and satisfy the
/// paper's pair ordering:
/// `FA+FL < CA+FA < FL+DE < DE+FA < BO+CA < BL+DE < SW+CA < ST+FL`.
pub const PARSEC_PROFILES: [AppProfile; 8] = [
    AppProfile {
        name: "blackscholes",
        abbrev: "BL",
        rate: 0.0022,
        memory_fraction: 0.55,
        local_fraction: 0.35,
        skew: 0.20,
    },
    AppProfile {
        name: "bodytrack",
        abbrev: "BO",
        rate: 0.0025,
        memory_fraction: 0.60,
        local_fraction: 0.30,
        skew: 0.35,
    },
    AppProfile {
        name: "canneal",
        abbrev: "CA",
        rate: 0.0024,
        memory_fraction: 0.60,
        local_fraction: 0.15,
        skew: 0.25,
    },
    AppProfile {
        name: "dedup",
        abbrev: "DE",
        rate: 0.0029,
        memory_fraction: 0.60,
        local_fraction: 0.25,
        skew: 0.40,
    },
    AppProfile {
        name: "facesim",
        abbrev: "FA",
        rate: 0.0017,
        memory_fraction: 0.55,
        local_fraction: 0.40,
        skew: 0.25,
    },
    AppProfile {
        name: "fluidanimate",
        abbrev: "FL",
        rate: 0.0013,
        memory_fraction: 0.50,
        local_fraction: 0.45,
        skew: 0.20,
    },
    AppProfile {
        name: "streamcluster",
        abbrev: "ST",
        rate: 0.0040,
        memory_fraction: 0.65,
        local_fraction: 0.20,
        skew: 0.30,
    },
    AppProfile {
        name: "swaptions",
        abbrev: "SW",
        rate: 0.0028,
        memory_fraction: 0.52,
        local_fraction: 0.35,
        skew: 0.15,
    },
];

impl AppProfile {
    /// Looks up a profile by its two-letter abbreviation.
    pub fn by_abbrev(abbrev: &str) -> Option<&'static AppProfile> {
        PARSEC_PROFILES.iter().find(|p| p.abbrev == abbrev)
    }

    /// The paper's Fig. 6(a) single-application order.
    pub fn fig6a_order() -> [&'static str; 8] {
        ["FA", "FL", "CA", "DE", "BO", "BL", "SW", "ST"]
    }

    /// The paper's Fig. 6(b) two-application combinations, sorted by load.
    pub fn fig6b_pairs() -> [(&'static str, &'static str); 8] {
        [
            ("FA", "FL"),
            ("CA", "FA"),
            ("FL", "DE"),
            ("DE", "FA"),
            ("BO", "CA"),
            ("BL", "DE"),
            ("SW", "CA"),
            ("ST", "FL"),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_benchmarks_are_present() {
        let names: Vec<&str> = PARSEC_PROFILES.iter().map(|p| p.name).collect();
        for expected in [
            "blackscholes",
            "bodytrack",
            "canneal",
            "dedup",
            "facesim",
            "fluidanimate",
            "streamcluster",
            "swaptions",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn abbreviations_are_first_two_letters() {
        for p in &PARSEC_PROFILES {
            assert_eq!(p.abbrev.to_lowercase(), p.name[..2].to_lowercase());
        }
    }

    #[test]
    fn pair_loads_follow_the_papers_order() {
        let load = |ab: &str| AppProfile::by_abbrev(ab).unwrap().rate;
        let pairs = AppProfile::fig6b_pairs();
        let sums: Vec<f64> = pairs.iter().map(|(a, b)| load(a) + load(b)).collect();
        for w in sums.windows(2) {
            assert!(w[0] < w[1] + 1e-12, "pair loads must ascend: {sums:?}");
        }
    }

    #[test]
    fn fractions_are_probabilities() {
        for p in &PARSEC_PROFILES {
            assert!(p.memory_fraction > 0.0 && p.memory_fraction < 1.0);
            assert!(p.local_fraction > 0.0 && p.local_fraction < 1.0);
            assert!(p.skew >= 0.0 && p.skew < 1.0);
            assert!(p.rate > 0.0 && p.rate < 0.01);
        }
    }

    #[test]
    fn lookup_by_abbrev() {
        assert_eq!(AppProfile::by_abbrev("ST").unwrap().name, "streamcluster");
        assert!(AppProfile::by_abbrev("XX").is_none());
    }
}
