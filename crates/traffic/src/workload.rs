//! Single- and multi-application workload construction (paper Fig. 6).
//!
//! Cores live on the chiplets; four coherence directories and four shared
//! L2 banks live on the interposer (the paper's GEM5 configuration), so
//! memory traffic always crosses vertical links. In the two-application
//! scenario each application owns half the chiplets but the memory nodes
//! are shared — which is exactly what congests the VLs and lets DeFT's
//! balanced selection shine at high load.

use crate::apps::AppProfile;
use crate::pattern::{Mixture, TableTraffic};
use deft_topo::{ChipletId, ChipletSystem, Coord, Layer, NodeAddr, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The eight memory nodes of the paper's system: four coherence
/// directories (interposer corners) and four shared L2 banks (interposer
/// edge midpoints).
pub fn memory_nodes(sys: &ChipletSystem) -> Vec<NodeId> {
    let w = sys.interposer_width();
    let h = sys.interposer_height();
    let coords = [
        // Directories: corners.
        Coord::new(0, 0),
        Coord::new(w - 1, 0),
        Coord::new(0, h - 1),
        Coord::new(w - 1, h - 1),
        // L2 banks: edge midpoints.
        Coord::new(w / 2, 0),
        Coord::new(0, h / 2),
        Coord::new(w - 1, h / 2),
        Coord::new(w / 2, h - 1),
    ];
    coords
        .into_iter()
        .map(|c| {
            sys.node_id(NodeAddr::new(Layer::Interposer, c))
                .expect("interposer corner/edge exists")
        })
        .collect()
}

/// A single application running on all chiplets (Fig. 6(a)).
pub fn single_app(sys: &ChipletSystem, profile: &AppProfile, seed: u64) -> TableTraffic {
    let all: Vec<ChipletId> = sys.chiplets().iter().map(|c| c.id()).collect();
    build(sys, &[(*profile, all)], seed)
}

/// Two applications co-scheduled on disjoint halves of the chiplets
/// (Fig. 6(b): "each application executed on 32 cores").
pub fn multi_app(sys: &ChipletSystem, a: &AppProfile, b: &AppProfile, seed: u64) -> TableTraffic {
    let ids: Vec<ChipletId> = sys.chiplets().iter().map(|c| c.id()).collect();
    let half = ids.len() / 2;
    build(
        sys,
        &[(*a, ids[..half].to_vec()), (*b, ids[half..].to_vec())],
        seed,
    )
}

/// Builds a workload from explicit (application, chiplet set) assignments.
///
/// # Panics
/// Panics if an assignment has no chiplets.
pub fn build(
    sys: &ChipletSystem,
    assignments: &[(AppProfile, Vec<ChipletId>)],
    seed: u64,
) -> TableTraffic {
    let mem = memory_nodes(sys);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rates = vec![0.0; sys.node_count()];
    let mut dists: Vec<Mixture> = vec![Mixture::empty(); sys.node_count()];

    // Per-core rates scale inversely with the fraction of the system's
    // cores an application owns: a fixed problem on fewer cores produces
    // proportionally more traffic per core. This reproduces the paper's
    // observation that two co-scheduled 32-core applications congest the
    // network where one 64-core application does not.
    let total_cores: usize = sys.chiplets().iter().map(|c| c.node_count()).sum();

    // Per-app request mass toward memory, for proportional responses.
    let mut app_request_mass: Vec<f64> = Vec::with_capacity(assignments.len());
    let mut app_cores: Vec<Vec<NodeId>> = Vec::with_capacity(assignments.len());

    for (profile, chiplets) in assignments {
        assert!(
            !chiplets.is_empty(),
            "application must own at least one chiplet"
        );
        let cores: Vec<NodeId> = chiplets
            .iter()
            .flat_map(|&c| sys.chiplet_nodes(c))
            .collect();
        // Draw skewed per-core rates, then renormalize so the application's
        // total offered load is exactly `rate * cores`: skew redistributes
        // load across cores without changing the aggregate.
        let per_core_rate = profile.rate * total_cores as f64 / cores.len() as f64;
        let raw: Vec<f64> = cores
            .iter()
            .map(|_| per_core_rate * (1.0 + profile.skew * (2.0 * rng.random::<f64>() - 1.0)))
            .collect();
        let raw_sum: f64 = raw.iter().sum();
        let scale = per_core_rate * cores.len() as f64 / raw_sum;
        let mut mass = 0.0;
        for (&core, &r) in cores.iter().zip(&raw) {
            let skewed = r * scale;
            rates[core.index()] = skewed;
            mass += skewed * profile.memory_fraction;

            let my_chiplet = sys.chiplet_of(core).expect("cores are chiplet nodes");
            let local: Vec<NodeId> = sys
                .chiplet_nodes(my_chiplet)
                .filter(|&n| n != core)
                .collect();
            let remote: Vec<NodeId> = cores
                .iter()
                .copied()
                .filter(|&n| n != core && sys.chiplet_of(n) != Some(my_chiplet))
                .collect();

            let mut mix = Mixture::empty();
            mix.push(profile.memory_fraction, mem.clone());
            let core_share = 1.0 - profile.memory_fraction;
            mix.push(core_share * profile.local_fraction, local);
            mix.push(core_share * (1.0 - profile.local_fraction), remote);
            dists[core.index()] = mix;
        }
        app_request_mass.push(mass);
        app_cores.push(cores);
    }

    // Memory responses: each memory node receives 1/|mem| of every app's
    // request mass and answers it toward that app's cores.
    for &m in &mem {
        let mut mix = Mixture::empty();
        let mut total = 0.0;
        for (mass, cores) in app_request_mass.iter().zip(&app_cores) {
            mix.push(*mass, cores.clone());
            total += mass / mem.len() as f64;
        }
        rates[m.index()] = total;
        dists[m.index()] = mix;
    }

    let name = assignments
        .iter()
        .map(|(p, _)| p.abbrev)
        .collect::<Vec<_>>()
        .join("+");
    TableTraffic::new(name, rates, dists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TrafficPattern;
    use crate::PARSEC_PROFILES;

    fn sys() -> ChipletSystem {
        ChipletSystem::baseline_4()
    }

    #[test]
    fn memory_nodes_are_eight_distinct_interposer_routers() {
        let s = sys();
        let mem = memory_nodes(&s);
        assert_eq!(mem.len(), 8);
        let mut dedup = mem.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
        for &m in &mem {
            assert!(s.layer(m).is_interposer());
        }
    }

    #[test]
    fn single_app_names_and_rates() {
        let s = sys();
        let fa = AppProfile::by_abbrev("FA").unwrap();
        let t = single_app(&s, fa, 1);
        assert_eq!(t.name(), "FA");
        // Every core injects within the (renormalized) skew band, and the
        // aggregate core load is exactly rate x cores.
        let mut total = 0.0;
        for c in s.chiplets() {
            for n in s.chiplet_nodes(c.id()) {
                let r = t.injection_rate(n);
                assert!(
                    r >= fa.rate * (1.0 - fa.skew) * 0.9 && r <= fa.rate * (1.0 + fa.skew) * 1.1,
                    "rate {r} outside skew band"
                );
                total += r;
            }
        }
        assert!(
            (total - fa.rate * 64.0).abs() < 1e-9,
            "normalized aggregate load"
        );
    }

    #[test]
    fn multi_app_partitions_core_traffic() {
        let s = sys();
        let st = AppProfile::by_abbrev("ST").unwrap();
        let fl = AppProfile::by_abbrev("FL").unwrap();
        let t = multi_app(&s, st, fl, 2);
        assert_eq!(t.name(), "ST+FL");
        // A core of app A never targets cores of app B.
        let app_a_cores: Vec<NodeId> = [ChipletId(0), ChipletId(1)]
            .into_iter()
            .flat_map(|c| s.chiplet_nodes(c))
            .collect();
        let src = app_a_cores[5];
        let mem = memory_nodes(&s);
        let p_forbidden = t.mixture(src).probability(|d| {
            !mem.contains(&d) && matches!(s.chiplet_of(d), Some(c) if c.index() >= 2)
        });
        assert_eq!(
            p_forbidden, 0.0,
            "app A core leaks traffic into app B cores"
        );
    }

    #[test]
    fn memory_nodes_respond_to_both_apps() {
        let s = sys();
        let st = AppProfile::by_abbrev("ST").unwrap();
        let fl = AppProfile::by_abbrev("FL").unwrap();
        let t = multi_app(&s, st, fl, 2);
        let mem = memory_nodes(&s);
        for &m in &mem {
            assert!(t.injection_rate(m) > 0.0, "memory node {m} is silent");
            let p_a = t
                .mixture(m)
                .probability(|d| matches!(s.chiplet_of(d), Some(c) if c.index() < 2));
            let p_b = t
                .mixture(m)
                .probability(|d| matches!(s.chiplet_of(d), Some(c) if c.index() >= 2));
            assert!(p_a > 0.0 && p_b > 0.0);
            // ST is the heavier app; its share of responses must dominate.
            assert!(
                p_a > p_b,
                "responses should be proportional to request mass"
            );
        }
    }

    #[test]
    fn pair_offered_load_ascends_like_fig6b() {
        let s = sys();
        let mut last = 0.0;
        for (a, b) in AppProfile::fig6b_pairs() {
            let t = multi_app(
                &s,
                AppProfile::by_abbrev(a).unwrap(),
                AppProfile::by_abbrev(b).unwrap(),
                3,
            );
            let load = t.offered_load();
            assert!(
                load > last,
                "{a}+{b} load {load} must exceed previous {last}"
            );
            last = load;
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let s = sys();
        let de = AppProfile::by_abbrev("DE").unwrap();
        let t1 = single_app(&s, de, 9);
        let t2 = single_app(&s, de, 9);
        for n in s.nodes() {
            assert_eq!(t1.injection_rate(n), t2.injection_rate(n));
        }
        let t3 = single_app(&s, de, 10);
        assert!(s
            .nodes()
            .any(|n| t1.injection_rate(n) != t3.injection_rate(n)));
    }

    #[test]
    fn all_profiles_build_on_the_6_chiplet_system() {
        let s = ChipletSystem::baseline_6();
        for p in &PARSEC_PROFILES {
            let t = single_app(&s, p, 4);
            assert!(t.offered_load() > 0.0);
        }
    }
}
