//! Table I generation.

use crate::params::Tech45nm;
use crate::router_model::{RouterParams, RouterVariant};
use deft_codec::{CodecError, Decoder, Encoder, Persist};
use serde::Serialize;
use std::fmt;

/// One row of the paper's Table I.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table1Row {
    /// Variant label.
    pub variant: &'static str,
    /// Router area in µm².
    pub area_um2: f64,
    /// Area normalized to the MTR router.
    pub norm_area: f64,
    /// Router power in mW.
    pub power_mw: f64,
    /// Power normalized to the MTR router.
    pub norm_power: f64,
}

impl Persist for Table1Row {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self.variant.as_bytes());
        enc.put_f64(self.area_um2);
        enc.put_f64(self.norm_area);
        enc.put_f64(self.power_mw);
        enc.put_f64(self.norm_power);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let label = String::decode(dec)?;
        // The row keeps a `&'static str` label, so map the decoded string
        // back onto the closed set of `RouterVariant::label` values.
        let variant = [
            RouterVariant::Mtr.label(),
            RouterVariant::RcNonBoundary.label(),
            RouterVariant::RcBoundary.label(),
            RouterVariant::deft_default().label(),
        ]
        .into_iter()
        .find(|&l| l == label)
        .ok_or_else(|| CodecError::Invalid(format!("unknown Table I variant {label:?}")))?;
        Ok(Self {
            variant,
            area_um2: dec.get_f64()?,
            norm_area: dec.get_f64()?,
            power_mw: dec.get_f64()?,
            norm_power: dec.get_f64()?,
        })
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>10.0} {:>8.3} {:>10.3} {:>8.3}",
            self.variant, self.area_um2, self.norm_area, self.power_mw, self.norm_power
        )
    }
}

/// The router variants of Table I, in the paper's row order.
pub fn table1_variants() -> [RouterVariant; 4] {
    [
        RouterVariant::Mtr,
        RouterVariant::RcNonBoundary,
        RouterVariant::RcBoundary,
        RouterVariant::deft_default(),
    ]
}

/// Computes a single Table I row. Normalization is always against the MTR
/// reference router, so rows are independent of each other — callers may
/// compute them in any order (or in parallel) and still get the exact
/// [`table1`] values.
pub fn table1_row(params: &RouterParams, tech: &Tech45nm, variant: RouterVariant) -> Table1Row {
    let base = params.estimate(RouterVariant::Mtr, tech);
    let est = params.estimate(variant, tech);
    Table1Row {
        variant: est.variant,
        area_um2: est.area_um2,
        norm_area: est.area_um2 / base.area_um2,
        power_mw: est.power_mw,
        norm_power: est.power_mw / base.power_mw,
    }
}

/// Regenerates the paper's Table I: area and power of the MTR,
/// RC (non-boundary and boundary), and DeFT routers, normalized to MTR.
pub fn table1(params: &RouterParams, tech: &Tech45nm) -> Vec<Table1Row> {
    table1_variants()
        .into_iter()
        .map(|v| table1_row(params, tech, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_four_rows_in_paper_order() {
        let rows = table1(&RouterParams::paper_default(), &Tech45nm::default());
        let labels: Vec<&str> = rows.iter().map(|r| r.variant).collect();
        assert_eq!(labels, vec!["MTR", "RC non-bndry", "RC bndry", "DeFT"]);
    }

    #[test]
    fn normalized_values_match_paper_within_tolerance() {
        // Paper Table I: norm area 1 / 1.017 / 1.133 / 1.016,
        //                norm power 1 / 1.009 / 1.102 / 1.004.
        let rows = table1(&RouterParams::paper_default(), &Tech45nm::default());
        let expect_area = [1.0, 1.017, 1.133, 1.016];
        let expect_power = [1.0, 1.009, 1.102, 1.004];
        for (row, (&ea, &ep)) in rows.iter().zip(expect_area.iter().zip(&expect_power)) {
            assert!(
                (row.norm_area - ea).abs() < 0.005,
                "{}: norm area {} vs paper {ea}",
                row.variant,
                row.norm_area
            );
            assert!(
                (row.norm_power - ep).abs() < 0.005,
                "{}: norm power {} vs paper {ep}",
                row.variant,
                row.norm_power
            );
        }
    }

    #[test]
    fn rows_round_trip_through_persist() {
        for row in table1(&RouterParams::paper_default(), &Tech45nm::default()) {
            let bytes = deft_codec::encode_value(&row);
            let mut dec = Decoder::new(&bytes);
            let back = Table1Row::decode(&mut dec).expect("row decodes");
            dec.finish().expect("row consumes exactly");
            assert_eq!(back.variant, row.variant);
            assert_eq!(back.area_um2.to_bits(), row.area_um2.to_bits());
            assert_eq!(back.norm_power.to_bits(), row.norm_power.to_bits());
        }
        let mut enc = Encoder::new();
        enc.put_bytes(b"bogus");
        enc.put_f64(1.0);
        enc.put_f64(1.0);
        enc.put_f64(1.0);
        enc.put_f64(1.0);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            Table1Row::decode(&mut dec),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn rows_render_for_reports() {
        let rows = table1(&RouterParams::paper_default(), &Tech45nm::default());
        let s = rows[3].to_string();
        assert!(s.contains("DeFT"));
    }
}
