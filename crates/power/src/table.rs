//! Table I generation.

use crate::params::Tech45nm;
use crate::router_model::{RouterParams, RouterVariant};
use serde::Serialize;
use std::fmt;

/// One row of the paper's Table I.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Variant label.
    pub variant: &'static str,
    /// Router area in µm².
    pub area_um2: f64,
    /// Area normalized to the MTR router.
    pub norm_area: f64,
    /// Router power in mW.
    pub power_mw: f64,
    /// Power normalized to the MTR router.
    pub norm_power: f64,
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>10.0} {:>8.3} {:>10.3} {:>8.3}",
            self.variant, self.area_um2, self.norm_area, self.power_mw, self.norm_power
        )
    }
}

/// The router variants of Table I, in the paper's row order.
pub fn table1_variants() -> [RouterVariant; 4] {
    [
        RouterVariant::Mtr,
        RouterVariant::RcNonBoundary,
        RouterVariant::RcBoundary,
        RouterVariant::deft_default(),
    ]
}

/// Computes a single Table I row. Normalization is always against the MTR
/// reference router, so rows are independent of each other — callers may
/// compute them in any order (or in parallel) and still get the exact
/// [`table1`] values.
pub fn table1_row(params: &RouterParams, tech: &Tech45nm, variant: RouterVariant) -> Table1Row {
    let base = params.estimate(RouterVariant::Mtr, tech);
    let est = params.estimate(variant, tech);
    Table1Row {
        variant: est.variant,
        area_um2: est.area_um2,
        norm_area: est.area_um2 / base.area_um2,
        power_mw: est.power_mw,
        norm_power: est.power_mw / base.power_mw,
    }
}

/// Regenerates the paper's Table I: area and power of the MTR,
/// RC (non-boundary and boundary), and DeFT routers, normalized to MTR.
pub fn table1(params: &RouterParams, tech: &Tech45nm) -> Vec<Table1Row> {
    table1_variants()
        .into_iter()
        .map(|v| table1_row(params, tech, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_four_rows_in_paper_order() {
        let rows = table1(&RouterParams::paper_default(), &Tech45nm::default());
        let labels: Vec<&str> = rows.iter().map(|r| r.variant).collect();
        assert_eq!(labels, vec!["MTR", "RC non-bndry", "RC bndry", "DeFT"]);
    }

    #[test]
    fn normalized_values_match_paper_within_tolerance() {
        // Paper Table I: norm area 1 / 1.017 / 1.133 / 1.016,
        //                norm power 1 / 1.009 / 1.102 / 1.004.
        let rows = table1(&RouterParams::paper_default(), &Tech45nm::default());
        let expect_area = [1.0, 1.017, 1.133, 1.016];
        let expect_power = [1.0, 1.009, 1.102, 1.004];
        for (row, (&ea, &ep)) in rows.iter().zip(expect_area.iter().zip(&expect_power)) {
            assert!(
                (row.norm_area - ea).abs() < 0.005,
                "{}: norm area {} vs paper {ea}",
                row.variant,
                row.norm_area
            );
            assert!(
                (row.norm_power - ep).abs() < 0.005,
                "{}: norm power {} vs paper {ep}",
                row.variant,
                row.norm_power
            );
        }
    }

    #[test]
    fn rows_render_for_reports() {
        let rows = table1(&RouterParams::paper_default(), &Tech45nm::default());
        let s = rows[3].to_string();
        assert!(s.contains("DeFT"));
    }
}
