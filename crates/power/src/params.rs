//! Technology coefficients.

use serde::{Deserialize, Serialize};

/// Per-component cost coefficients at 45 nm / 1 GHz, ORION-3.0-class.
///
/// Areas are in µm², powers in mW (total = dynamic at nominal activity +
/// leakage, folded into a single coefficient as ORION's reports do). The
/// constants are calibrated so the six-port, 2-VC, 4×32-bit reference
/// router totals the paper's 45 878 µm² / 11.644 mW; see `DESIGN.md` §3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tech45nm {
    /// Input-buffer storage, per bit (SRAM cell + read/write ports).
    pub buffer_area_per_bit: f64,
    /// Input-buffer power, per bit.
    pub buffer_power_per_bit: f64,
    /// Crossbar, per port²·bit term.
    pub xbar_area_coeff: f64,
    /// Crossbar power, per port²·bit term.
    pub xbar_power_coeff: f64,
    /// VC + switch allocators, per (ports·VCs)² term.
    pub alloc_area_coeff: f64,
    /// Allocator power, per (ports·VCs)² term.
    pub alloc_power_coeff: f64,
    /// Base routing/control logic area.
    pub logic_area_base: f64,
    /// Base routing/control logic power.
    pub logic_power_base: f64,
    /// LUT storage (register file) area, per bit.
    pub lut_area_per_bit: f64,
    /// LUT power, per bit.
    pub lut_power_per_bit: f64,
    /// RC-buffer (flip-flop packet buffer) area, per bit.
    pub rc_buffer_area_per_bit: f64,
    /// RC-buffer power, per bit.
    pub rc_buffer_power_per_bit: f64,
    /// MTR turn-restriction comparators, area.
    pub turn_logic_area: f64,
    /// MTR turn-restriction comparators, power.
    pub turn_logic_power: f64,
    /// RC permission-network interface (request/grant wiring + state), area.
    pub perm_interface_area: f64,
    /// RC permission-network interface, power.
    pub perm_interface_power: f64,
    /// RC boundary-router permission arbiter, area.
    pub perm_arbiter_area: f64,
    /// RC boundary-router permission arbiter, power.
    pub perm_arbiter_power: f64,
    /// DeFT VN-assignment logic (Algorithm 1 state machine), area.
    pub vn_logic_area: f64,
    /// DeFT VN-assignment logic, power.
    pub vn_logic_power: f64,
}

impl Tech45nm {
    /// Content fingerprint over every coefficient, for memoized-campaign
    /// cache keys (f64s hashed by bit pattern).
    pub fn fingerprint(&self) -> u64 {
        let mut enc = deft_codec::Encoder::new();
        for v in [
            self.buffer_area_per_bit,
            self.buffer_power_per_bit,
            self.xbar_area_coeff,
            self.xbar_power_coeff,
            self.alloc_area_coeff,
            self.alloc_power_coeff,
            self.logic_area_base,
            self.logic_power_base,
            self.lut_area_per_bit,
            self.lut_power_per_bit,
            self.rc_buffer_area_per_bit,
            self.rc_buffer_power_per_bit,
            self.turn_logic_area,
            self.turn_logic_power,
            self.perm_interface_area,
            self.perm_interface_power,
            self.perm_arbiter_area,
            self.perm_arbiter_power,
            self.vn_logic_area,
            self.vn_logic_power,
        ] {
            enc.put_f64(v);
        }
        deft_codec::fnv1a(enc.as_bytes())
    }
}

impl Default for Tech45nm {
    fn default() -> Self {
        Self {
            buffer_area_per_bit: 17.0,
            buffer_power_per_bit: 0.004_05,
            xbar_area_coeff: 9.5,
            xbar_power_coeff: 0.002_2,
            alloc_area_coeff: 40.0,
            alloc_power_coeff: 0.012,
            logic_area_base: 3_000.0,
            logic_power_base: 1.15,
            lut_area_per_bit: 10.0,
            lut_power_per_bit: 0.000_7,
            rc_buffer_area_per_bit: 18.0,
            rc_buffer_power_per_bit: 0.003_99,
            turn_logic_area: 62.0,
            turn_logic_power: 0.011,
            perm_interface_area: 847.0,
            perm_interface_power: 0.127,
            perm_arbiter_area: 713.0,
            perm_arbiter_power: 0.060,
            vn_logic_area: 275.0,
            vn_logic_power: 0.021,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_are_positive() {
        let t = Tech45nm::default();
        for v in [
            t.buffer_area_per_bit,
            t.buffer_power_per_bit,
            t.xbar_area_coeff,
            t.xbar_power_coeff,
            t.alloc_area_coeff,
            t.alloc_power_coeff,
            t.logic_area_base,
            t.logic_power_base,
            t.lut_area_per_bit,
            t.lut_power_per_bit,
            t.rc_buffer_area_per_bit,
            t.rc_buffer_power_per_bit,
            t.turn_logic_area,
            t.turn_logic_power,
            t.perm_interface_area,
            t.perm_interface_power,
            t.perm_arbiter_area,
            t.perm_arbiter_power,
            t.vn_logic_area,
            t.vn_logic_power,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn storage_dominates_control() {
        // Sanity on relative magnitudes: a buffer bit costs more area than a
        // LUT register bit read once per packet, and both dwarf per-unit
        // logic constants relative to their multiplicities.
        let t = Tech45nm::default();
        assert!(t.buffer_area_per_bit > t.lut_area_per_bit);
        assert!(t.rc_buffer_area_per_bit > t.lut_area_per_bit);
    }
}
