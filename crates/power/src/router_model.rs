//! The component-level router cost model.

use crate::params::Tech45nm;
use serde::{Deserialize, Serialize};

/// Microarchitectural parameters of the router being estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterParams {
    /// Router ports (6 in the paper's Table I: Local, 4 horizontal,
    /// vertical).
    pub ports: u32,
    /// Virtual channels per port.
    pub vcs: u32,
    /// Input-buffer depth per VC, in flits.
    pub buffer_depth: u32,
    /// Flit width in bits.
    pub flit_width: u32,
    /// Flits per packet (sizes RC's packet buffer).
    pub packet_size: u32,
}

impl RouterParams {
    /// The paper's configuration: 6 ports, 2 VCs, 4-flit buffers, 32-bit
    /// flits, 8-flit packets.
    pub fn paper_default() -> Self {
        Self {
            ports: 6,
            vcs: 2,
            buffer_depth: 4,
            flit_width: 32,
            packet_size: 8,
        }
    }

    /// Total input-buffer storage bits.
    pub fn buffer_bits(&self) -> u32 {
        self.ports * self.vcs * self.buffer_depth * self.flit_width
    }

    /// Content fingerprint over every microarchitectural parameter, for
    /// memoized-campaign cache keys.
    pub fn fingerprint(&self) -> u64 {
        let mut enc = deft_codec::Encoder::new();
        enc.put_u32(self.ports);
        enc.put_u32(self.vcs);
        enc.put_u32(self.buffer_depth);
        enc.put_u32(self.flit_width);
        enc.put_u32(self.packet_size);
        deft_codec::fnv1a(enc.as_bytes())
    }
}

/// Which routing scheme's extra hardware to include.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterVariant {
    /// MTR: turn-restriction comparators only.
    Mtr,
    /// RC, routers not attached to a VL: permission-network interface.
    RcNonBoundary,
    /// RC boundary router: permission network + arbiter + whole-packet
    /// RC-buffer.
    RcBoundary,
    /// DeFT: VN-assignment logic + per-router selection LUTs.
    Deft {
        /// Stored fault scenarios (14 for a 4-VL chiplet: C(4,1) + C(4,2) +
        /// C(4,3); the fault-free selection is the reset state).
        lut_entries: u32,
        /// Bits per entry (log2 of the VL count).
        bits_per_entry: u32,
        /// Tables per router (one each for the down and up selections).
        tables: u32,
    },
}

impl RouterVariant {
    /// DeFT with the paper's LUT dimensions: "14 VL addresses are saved in
    /// each router" per direction, 2 bits each for 4 VLs.
    pub fn deft_default() -> Self {
        RouterVariant::Deft {
            lut_entries: 14,
            bits_per_entry: 2,
            tables: 2,
        }
    }

    /// Table-row label.
    pub fn label(&self) -> &'static str {
        match self {
            RouterVariant::Mtr => "MTR",
            RouterVariant::RcNonBoundary => "RC non-bndry",
            RouterVariant::RcBoundary => "RC bndry",
            RouterVariant::Deft { .. } => "DeFT",
        }
    }

    /// Content fingerprint over the variant *and* its parameters (the
    /// label alone hides DeFT's LUT dimensions), for memoized-campaign
    /// cache keys.
    pub fn fingerprint(&self) -> u64 {
        let mut enc = deft_codec::Encoder::new();
        match self {
            RouterVariant::Mtr => enc.put_u8(0),
            RouterVariant::RcNonBoundary => enc.put_u8(1),
            RouterVariant::RcBoundary => enc.put_u8(2),
            RouterVariant::Deft {
                lut_entries,
                bits_per_entry,
                tables,
            } => {
                enc.put_u8(3);
                enc.put_u32(*lut_entries);
                enc.put_u32(*bits_per_entry);
                enc.put_u32(*tables);
            }
        }
        deft_codec::fnv1a(enc.as_bytes())
    }
}

/// One component's contribution.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ComponentCost {
    /// Component name.
    pub name: &'static str,
    /// Area in µm².
    pub area_um2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// A complete router estimate with per-component breakdown.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RouterEstimate {
    /// Variant label.
    pub variant: &'static str,
    /// Total area in µm².
    pub area_um2: f64,
    /// Total power in mW.
    pub power_mw: f64,
    /// Per-component contributions.
    pub breakdown: Vec<ComponentCost>,
}

impl RouterParams {
    /// Estimates area and power of one router variant.
    pub fn estimate(&self, variant: RouterVariant, tech: &Tech45nm) -> RouterEstimate {
        let mut breakdown = Vec::new();
        let bits = self.buffer_bits() as f64;
        breakdown.push(ComponentCost {
            name: "input buffers",
            area_um2: bits * tech.buffer_area_per_bit,
            power_mw: bits * tech.buffer_power_per_bit,
        });
        let xbar_term = (self.ports * self.ports * self.flit_width) as f64;
        breakdown.push(ComponentCost {
            name: "crossbar",
            area_um2: xbar_term * tech.xbar_area_coeff,
            power_mw: xbar_term * tech.xbar_power_coeff,
        });
        let alloc_term = ((self.ports * self.vcs) * (self.ports * self.vcs)) as f64;
        breakdown.push(ComponentCost {
            name: "vc+sw allocators",
            area_um2: alloc_term * tech.alloc_area_coeff,
            power_mw: alloc_term * tech.alloc_power_coeff,
        });
        breakdown.push(ComponentCost {
            name: "routing/control logic",
            area_um2: tech.logic_area_base,
            power_mw: tech.logic_power_base,
        });

        match variant {
            RouterVariant::Mtr => breakdown.push(ComponentCost {
                name: "turn-restriction logic",
                area_um2: tech.turn_logic_area,
                power_mw: tech.turn_logic_power,
            }),
            RouterVariant::RcNonBoundary => breakdown.push(ComponentCost {
                name: "permission interface",
                area_um2: tech.perm_interface_area,
                power_mw: tech.perm_interface_power,
            }),
            RouterVariant::RcBoundary => {
                breakdown.push(ComponentCost {
                    name: "permission interface",
                    area_um2: tech.perm_interface_area,
                    power_mw: tech.perm_interface_power,
                });
                breakdown.push(ComponentCost {
                    name: "permission arbiter",
                    area_um2: tech.perm_arbiter_area,
                    power_mw: tech.perm_arbiter_power,
                });
                let rc_bits = (self.packet_size * self.flit_width) as f64;
                breakdown.push(ComponentCost {
                    name: "RC packet buffer",
                    area_um2: rc_bits * tech.rc_buffer_area_per_bit,
                    power_mw: rc_bits * tech.rc_buffer_power_per_bit,
                });
            }
            RouterVariant::Deft {
                lut_entries,
                bits_per_entry,
                tables,
            } => {
                breakdown.push(ComponentCost {
                    name: "VN-assignment logic",
                    area_um2: tech.vn_logic_area,
                    power_mw: tech.vn_logic_power,
                });
                let lut_bits = (lut_entries * bits_per_entry * tables) as f64;
                breakdown.push(ComponentCost {
                    name: "selection LUT",
                    area_um2: lut_bits * tech.lut_area_per_bit,
                    power_mw: lut_bits * tech.lut_power_per_bit,
                });
            }
        }

        RouterEstimate {
            variant: variant.label(),
            area_um2: breakdown.iter().map(|c| c.area_um2).sum(),
            power_mw: breakdown.iter().map(|c| c.power_mw).sum(),
            breakdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> [RouterVariant; 4] {
        [
            RouterVariant::Mtr,
            RouterVariant::RcNonBoundary,
            RouterVariant::RcBoundary,
            RouterVariant::deft_default(),
        ]
    }

    #[test]
    fn reference_router_matches_the_papers_mtr_numbers() {
        let p = RouterParams::paper_default();
        let est = p.estimate(RouterVariant::Mtr, &Tech45nm::default());
        assert!(
            (est.area_um2 - 45_878.0).abs() < 1.0,
            "area {}",
            est.area_um2
        );
        assert!(
            (est.power_mw - 11.644).abs() < 0.01,
            "power {}",
            est.power_mw
        );
    }

    #[test]
    fn deft_overhead_is_below_2_percent() {
        let p = RouterParams::paper_default();
        let t = Tech45nm::default();
        let mtr = p.estimate(RouterVariant::Mtr, &t);
        let deft = p.estimate(RouterVariant::deft_default(), &t);
        let area_ratio = deft.area_um2 / mtr.area_um2;
        let power_ratio = deft.power_mw / mtr.power_mw;
        assert!(
            area_ratio > 1.0 && area_ratio < 1.02,
            "area ratio {area_ratio}"
        );
        assert!(
            power_ratio > 1.0 && power_ratio < 1.01,
            "power ratio {power_ratio}"
        );
    }

    #[test]
    fn rc_boundary_is_the_most_expensive() {
        let p = RouterParams::paper_default();
        let t = Tech45nm::default();
        let areas: Vec<f64> = all_variants()
            .iter()
            .map(|&v| p.estimate(v, &t).area_um2)
            .collect();
        let rc_bndry = areas[2];
        for (i, &a) in areas.iter().enumerate() {
            if i != 2 {
                assert!(rc_bndry > a);
            }
        }
        // Paper: RC boundary ≈ 1.133x MTR.
        let ratio = rc_bndry / areas[0];
        assert!((ratio - 1.133).abs() < 0.01, "RC boundary ratio {ratio}");
    }

    #[test]
    fn buffers_dominate_total_area() {
        let p = RouterParams::paper_default();
        let est = p.estimate(RouterVariant::Mtr, &Tech45nm::default());
        let buffers = est
            .breakdown
            .iter()
            .find(|c| c.name == "input buffers")
            .unwrap();
        assert!(buffers.area_um2 / est.area_um2 > 0.4);
    }

    #[test]
    fn scaling_buffers_scales_cost() {
        let t = Tech45nm::default();
        let small = RouterParams {
            buffer_depth: 2,
            ..RouterParams::paper_default()
        };
        let big = RouterParams {
            buffer_depth: 8,
            ..RouterParams::paper_default()
        };
        assert!(
            big.estimate(RouterVariant::Mtr, &t).area_um2
                > small.estimate(RouterVariant::Mtr, &t).area_um2
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let p = RouterParams::paper_default();
        for v in all_variants() {
            let est = p.estimate(v, &Tech45nm::default());
            let sum: f64 = est.breakdown.iter().map(|c| c.area_um2).sum();
            assert!((sum - est.area_um2).abs() < 1e-9);
            let sum: f64 = est.breakdown.iter().map(|c| c.power_mw).sum();
            assert!((sum - est.power_mw).abs() < 1e-9);
        }
    }

    #[test]
    fn lut_size_matches_the_paper() {
        // 14 scenarios x 2 bits x 2 tables = 56 bits of LUT per router.
        if let RouterVariant::Deft {
            lut_entries,
            bits_per_entry,
            tables,
        } = RouterVariant::deft_default()
        {
            assert_eq!(lut_entries * bits_per_entry * tables, 56);
        } else {
            unreachable!()
        }
    }
}
