//! # deft-power — parametric router area/power estimation
//!
//! The paper evaluates hardware cost with Cadence Genus and ORION 3.0 at
//! 45 nm / 1 GHz (Table I). Neither tool is available here, so this crate
//! provides an ORION-class *parametric component model*: per-bit and
//! per-port coefficients for input buffers, crossbar, allocators, and
//! control logic, calibrated so the MTR reference router lands at the
//! paper's 45 878 µm² / 11.644 mW. The *relative* overheads — DeFT's
//! VN-assignment logic and selection LUTs, RC's RC-buffer and permission
//! network — then follow from the model structure, which is what Table I
//! actually compares.
//!
//! ## Data flow
//!
//! A leaf crate: it depends on nothing in the workspace and feeds only
//! the `deft` facade, where [`table1`]/[`table1_row`] rows are rendered
//! (and, through the campaign runner, computed one variant per worker —
//! every row normalizes against the MTR reference internally, so rows
//! are order-independent).
//!
//! ```
//! use deft_power::{RouterParams, RouterVariant, Tech45nm};
//!
//! let params = RouterParams::paper_default();
//! let deft = params.estimate(RouterVariant::deft_default(), &Tech45nm::default());
//! let mtr = params.estimate(RouterVariant::Mtr, &Tech45nm::default());
//! assert!(deft.area_um2 / mtr.area_um2 < 1.02, "DeFT adds < 2% area");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod params;
mod router_model;
mod table;

pub use params::Tech45nm;
pub use router_model::{ComponentCost, RouterEstimate, RouterParams, RouterVariant};
pub use table::{table1, table1_row, table1_variants, Table1Row};
