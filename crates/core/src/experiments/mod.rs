//! Experiment runners: one per figure/table of the paper's evaluation.
//!
//! Every runner is deterministic (seeded) and comes in *quick* and *full*
//! flavours via [`ExpConfig`]; the quick flavour keeps CI and `cargo bench`
//! affordable while the full flavour is what `EXPERIMENTS.md` records.
//!
//! Each runner expands its figure into a grid of independent cells and
//! executes them through the [`Campaign`](crate::campaign::Campaign)
//! runner; [`ExpConfig::jobs`] (or the `_jobs` function variants, for the
//! runners that take no config) selects the worker count, and results are
//! byte-identical for every value of it.

mod ablation;
mod app_latency;
mod fork_sweep;
mod latency_sweep;
mod perf;
mod power_table;
mod reachability;
mod recovery;
mod scaling;
mod vc_util;

pub use ablation::{
    rho_ablation, rho_ablation_cached, rho_ablation_jobs, rho_ablation_with, RhoRow, RHO_SWEEP,
};
pub use app_latency::{fig6_pairs, fig6_single, AppImprovement};
pub use fork_sweep::{
    fork_sweep, fork_sweep_cycle, fork_sweep_timelines, ForkSweepRow, FORK_SWEEP_K,
};
pub use latency_sweep::{fig4, fig8, LatencyCurve, LatencySweep, SynPattern};
pub use perf::{
    perf, PerfCellResult, PerfReport, PhaseBreakdown, CACHE_HIT_CELL, CACHE_HIT_RATES,
    FIG4_MID_CELL, FORK_SWEEP_CELL, FORK_SWEEP_COLD_CELL, LARGE_GRID_16_CELL,
    LARGE_GRID_16_QUICK_CELL, LARGE_GRID_CELL, LARGE_GRID_THREADED_CELLS, PERF_RATE,
    PR4_FULL_BASELINE, TRICKLE_CELL, TRICKLE_PERIOD,
};
pub use power_table::{
    table1_campaign, table1_campaign_cached, table1_campaign_jobs, table1_campaign_with,
};
pub use reachability::{fig7, fig7_cached, fig7_jobs, fig7_with, ReachabilityCurves};
pub use recovery::{
    recovery, recovery_scenarios, recovery_with, RecoveryRow, RecoveryScenario, RECOVERY_RATE,
    RECOVERY_SEEDS,
};
pub use scaling::{scaling_study, ScalingRow, SCALING_GRIDS};
pub use vc_util::{fig5, fig5_panels, VcUtilRow};

use crate::campaign::{CacheStore, ExecMode, ExecPolicy, SupervisorOpts};
use deft_routing::{DeftRouting, MtrRouting, RcRouting, RoutingAlgorithm};
use deft_sim::SimConfig;
use deft_topo::ChipletSystem;
use std::sync::Arc;

/// The routing algorithms of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// DeFT with the offline-optimized VL selection.
    Deft,
    /// DeFT with distance-based selection (Fig. 8 ablation).
    DeftDis,
    /// DeFT with random selection (Fig. 8 ablation).
    DeftRan,
    /// The MTR baseline.
    Mtr,
    /// The RC baseline.
    Rc,
}

impl Algo {
    /// The three algorithms compared in Fig. 4 and Fig. 6.
    pub const MAIN: [Algo; 3] = [Algo::Deft, Algo::Mtr, Algo::Rc];

    /// The VL-selection ablation of Fig. 8.
    pub const ABLATION: [Algo; 3] = [Algo::Deft, Algo::DeftDis, Algo::DeftRan];

    /// Builds a fresh algorithm instance (they carry per-run state).
    pub fn build(self, sys: &ChipletSystem) -> Box<dyn RoutingAlgorithm> {
        match self {
            Algo::Deft => Box::new(DeftRouting::new(sys)),
            Algo::DeftDis => Box::new(DeftRouting::distance_based(sys)),
            Algo::DeftRan => Box::new(DeftRouting::random_selection(sys, 0xDEF7)),
            Algo::Mtr => Box::new(MtrRouting::new(sys)),
            Algo::Rc => Box::new(RcRouting::new(sys)),
        }
    }

    /// Display name, matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Deft => "DeFT",
            Algo::DeftDis => "DeFT-Dis.",
            Algo::DeftRan => "DeFT-Ran.",
            Algo::Mtr => "MTR",
            Algo::Rc => "RC",
        }
    }
}

/// Shared experiment knobs.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Simulation parameters.
    pub sim: SimConfig,
    /// Base seed; individual runs derive seeds from it deterministically.
    pub seed: u64,
    /// Worker threads for the campaign fan-out
    /// ([`Campaign`](crate::campaign::Campaign)). Results are byte-identical
    /// for every value — per-run seeds derive from the grid position, not
    /// from scheduling — so this only trades wall-clock time. Defaults to
    /// the machine's available parallelism.
    pub jobs: usize,
    /// Optional memoized result store: when set, every campaign cell
    /// probes it first and only simulates on a miss
    /// ([`Campaign::execute_cached`](crate::campaign::Campaign::execute_cached)).
    /// Never part of any cache key — like `jobs`, it cannot change
    /// results, only wall-clock time.
    pub cache: Option<Arc<CacheStore>>,
    /// Where campaigns execute: in-process threads (the default),
    /// supervised worker processes, or serving cells as a worker. Like
    /// `jobs` and `cache`, byte-identity-neutral: every mode merges the
    /// same outputs in the same grid order.
    pub mode: ExecMode,
}

impl ExpConfig {
    /// The full configuration used for `EXPERIMENTS.md` numbers.
    pub fn full() -> Self {
        Self {
            sim: SimConfig {
                warmup: 2_000,
                measure: 10_000,
                drain: 60_000,
                ..SimConfig::default()
            },
            seed: 0x0DE,
            jobs: crate::campaign::default_jobs(),
            cache: None,
            mode: ExecMode::InProcess,
        }
    }

    /// A fast configuration for tests and benches: same structure, shorter
    /// windows.
    pub fn quick() -> Self {
        Self {
            sim: SimConfig {
                warmup: 300,
                measure: 1_500,
                drain: 20_000,
                ..SimConfig::default()
            },
            seed: 0x0DE,
            jobs: crate::campaign::default_jobs(),
            cache: None,
            mode: ExecMode::InProcess,
        }
    }

    /// Returns the configuration with the given campaign worker count
    /// (`1` = strictly serial).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Returns the configuration with the given in-simulator worker count
    /// ([`SimConfig::tick_threads`]; `1` = the serial engine). Composes
    /// with [`ExpConfig::with_jobs`]: the campaign fans cells out across
    /// `jobs` processes-worth of threads and each simulator shards its
    /// cycle across `tick_threads` workers, with byte-identical results
    /// for every combination of the two.
    #[must_use]
    pub fn with_tick_threads(mut self, tick_threads: usize) -> Self {
        self.sim.tick_threads = tick_threads.max(1);
        self
    }

    /// Returns the configuration with the given memoized result store.
    /// Campaign cells then probe it first and only simulate on a miss;
    /// results stay byte-identical to the uncached run.
    #[must_use]
    pub fn with_cache(mut self, store: Arc<CacheStore>) -> Self {
        self.cache = Some(store);
        self
    }

    /// The memoized result store, if one is configured.
    pub fn cache_store(&self) -> Option<&CacheStore> {
        self.cache.as_deref()
    }

    /// Returns the configuration running campaigns across supervised
    /// worker *processes* (`deft-repro --workers N`): crash isolation,
    /// retries with backoff, optional per-cell deadlines, and poison-cell
    /// quarantine — with output byte-identical to the in-process path.
    #[must_use]
    pub fn with_workers(mut self, opts: Arc<SupervisorOpts>) -> Self {
        self.mode = ExecMode::Supervised(opts);
        self
    }

    /// Returns the configuration in worker mode: the campaign with this
    /// ordinal is served over stdin/stdout frames (never returning), and
    /// every other campaign passes through as placeholder defaults.
    #[must_use]
    pub fn with_serve(mut self, target: usize) -> Self {
        self.mode = ExecMode::Serve { target };
        self
    }

    /// The campaign execution policy this configuration encodes — what
    /// every experiment hands to
    /// [`Campaign::execute_policy`](crate::campaign::Campaign::execute_policy).
    pub fn policy(&self) -> ExecPolicy {
        ExecPolicy {
            jobs: self.jobs,
            cache: self.cache.clone(),
            mode: self.mode.clone(),
        }
    }

    /// Derives a per-run simulation config with a distinct seed.
    pub fn run_sim(&self, salt: u64) -> SimConfig {
        SimConfig {
            seed: self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(salt),
            ..self.sim
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_builders_produce_named_instances() {
        let sys = ChipletSystem::baseline_4();
        for a in [
            Algo::Deft,
            Algo::DeftDis,
            Algo::DeftRan,
            Algo::Mtr,
            Algo::Rc,
        ] {
            let alg = a.build(&sys);
            assert!(!alg.name().is_empty());
        }
        assert_eq!(Algo::Deft.build(&sys).name(), "DeFT");
        assert_eq!(Algo::Mtr.name(), "MTR");
    }

    #[test]
    fn derived_seeds_differ_per_salt() {
        let cfg = ExpConfig::quick();
        assert_ne!(cfg.run_sim(1).seed, cfg.run_sim(2).seed);
        assert_eq!(cfg.run_sim(1).seed, cfg.run_sim(1).seed);
    }
}
