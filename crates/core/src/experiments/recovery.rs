//! Recovery experiment: algorithms under *dynamic* fault timelines.
//!
//! The paper evaluates resilience against static fault scenarios only;
//! this experiment is its dynamic sequel. Link faults inject and heal at
//! scheduled cycles while traffic is in flight
//! ([`deft_topo::FaultTimeline`]), and the algorithms are compared on
//! *recovery behaviour*: packets dropped at injection, packets lost in
//! flight, and the recovery latency of each fault transition (cycles
//! until losses cease — see
//! [`EpochStats::recovery_latency`](deft_sim::EpochStats::recovery_latency)).
//!
//! The grid is scenario × algorithm × seed, executed through the
//! [`Campaign`](crate::campaign::Campaign) runner. Within one (scenario,
//! seed) column every algorithm faces the *same* timeline and the same
//! traffic seed, so the loss deltas are attributable to the algorithm
//! alone. The expected shape mirrors the paper's static Fig. 7 claim in
//! the dynamic setting: DeFT re-selects among healthy VLs at every
//! injection (its LUT is indexed by the healthy mask, so recovery costs
//! zero reconfiguration cycles) and loses only worms already committed to
//! a failing link, while RC keeps dropping every flow designated to a
//! faulty VL until it heals, and MTR sits in between.

use super::{Algo, ExpConfig};
use crate::campaign::{Campaign, Run};
use deft_codec::{
    fingerprint_value, CacheKey, CacheKeyBuilder, CodecError, Decoder, Encoder, Persist,
};
use deft_sim::Simulator;
use deft_topo::{
    BurstConfig, ChipletSystem, FaultState, FaultTimeline, RegionConfig, TransientConfig,
};
use deft_traffic::uniform;
use serde::Serialize;

/// Uniform-traffic injection rate of the recovery runs: comfortably below
/// the fault-free saturation knee, so losses measure fault handling, not
/// congestion.
pub const RECOVERY_RATE: f64 = 0.003;

/// One scenario class of the recovery grid: which timeline generator runs
/// and with what parameters (see `deft_topo`'s generator docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryScenario {
    /// Random transient faults with exponential up/down times per link.
    Transient {
        /// Mean healthy period per link (cycles); the per-link fault rate
        /// is its reciprocal.
        mean_healthy: f64,
        /// Mean faulty period per link (cycles).
        mean_faulty: f64,
    },
    /// Several links fail together at random instants.
    Burst {
        /// Number of bursts over the generation window.
        bursts: usize,
        /// Links failing per burst.
        links_per_burst: usize,
        /// Cycles from inject to heal.
        duration: u64,
    },
    /// A chiplet-adjacent failure: all-but-one links of one (chiplet,
    /// direction) group fail together.
    Region {
        /// Cycles from inject to heal.
        duration: u64,
    },
}

impl RecoveryScenario {
    /// Scenario label used in reports and CSV (comma-free).
    pub fn name(&self) -> String {
        match self {
            RecoveryScenario::Transient {
                mean_healthy,
                mean_faulty,
            } => format!("transient-mtbf{mean_healthy:.0}-mttr{mean_faulty:.0}"),
            RecoveryScenario::Burst {
                bursts,
                links_per_burst,
                duration,
            } => format!("burst-{bursts}x{links_per_burst}-d{duration}"),
            RecoveryScenario::Region { duration } => format!("region-d{duration}"),
        }
    }

    /// Materializes the scenario's timeline over `[0, horizon)` for the
    /// given seed. Deterministic per `(system, scenario, horizon, seed)`.
    pub fn timeline(&self, sys: &ChipletSystem, horizon: u64, seed: u64) -> FaultTimeline {
        match *self {
            RecoveryScenario::Transient {
                mean_healthy,
                mean_faulty,
            } => FaultTimeline::transient(
                sys,
                &TransientConfig {
                    mean_healthy,
                    mean_faulty,
                    horizon,
                    seed,
                },
            ),
            RecoveryScenario::Burst {
                bursts,
                links_per_burst,
                duration,
            } => FaultTimeline::burst(
                sys,
                &BurstConfig {
                    bursts,
                    links_per_burst,
                    duration,
                    horizon,
                    seed,
                },
            ),
            RecoveryScenario::Region { duration } => FaultTimeline::region(
                sys,
                &RegionConfig {
                    start: horizon / 3,
                    duration,
                    seed,
                },
            ),
        }
    }
}

/// The default scenario set: two transient fault rates, a burst class,
/// and a region class. Period-like parameters scale with `horizon` (the
/// run's generation window) so quick and full configurations see
/// comparable fault density.
pub fn recovery_scenarios(horizon: u64) -> Vec<RecoveryScenario> {
    let h = horizon.max(1) as f64;
    vec![
        RecoveryScenario::Transient {
            mean_healthy: h * 2.0,
            mean_faulty: h / 6.0,
        },
        RecoveryScenario::Transient {
            mean_healthy: h * 0.75,
            mean_faulty: h / 6.0,
        },
        RecoveryScenario::Burst {
            bursts: 2,
            links_per_burst: 5,
            duration: horizon / 4,
        },
        RecoveryScenario::Region {
            duration: horizon / 3,
        },
    ]
}

/// One row of the recovery report: one (scenario, algorithm, seed) cell.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RecoveryRow {
    /// Scenario label ([`RecoveryScenario::name`]).
    pub scenario: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Seed replica index within the scenario.
    pub seed: u64,
    /// Fault transitions the run went through (timeline events grouped by
    /// cycle, as observed: epochs − 1).
    pub transitions: u64,
    /// Packets dropped as unroutable at injection.
    pub dropped_unroutable: u64,
    /// Packets lost in flight at transitions.
    pub lost_in_flight: u64,
    /// Total losses per transition (0 when the timeline was empty).
    pub losses_per_transition: f64,
    /// Mean recovery latency over the transition-opened epochs, in
    /// cycles: how long losses persisted after each transition.
    pub avg_recovery_latency: f64,
    /// Mean delivered-packet latency over the whole run.
    pub avg_latency: f64,
    /// Measured packets delivered.
    pub delivered: u64,
}

impl Persist for RecoveryRow {
    fn encode(&self, enc: &mut Encoder) {
        self.scenario.encode(enc);
        self.algorithm.encode(enc);
        enc.put_u64(self.seed);
        enc.put_u64(self.transitions);
        enc.put_u64(self.dropped_unroutable);
        enc.put_u64(self.lost_in_flight);
        enc.put_f64(self.losses_per_transition);
        enc.put_f64(self.avg_recovery_latency);
        enc.put_f64(self.avg_latency);
        enc.put_u64(self.delivered);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            scenario: String::decode(dec)?,
            algorithm: String::decode(dec)?,
            seed: dec.get_u64()?,
            transitions: dec.get_u64()?,
            dropped_unroutable: dec.get_u64()?,
            lost_in_flight: dec.get_u64()?,
            losses_per_transition: dec.get_f64()?,
            avg_recovery_latency: dec.get_f64()?,
            avg_latency: dec.get_f64()?,
            delivered: dec.get_u64()?,
        })
    }
}

/// One campaign cell: a full timeline-driven simulation.
struct RecoveryRun<'a> {
    sys: &'a ChipletSystem,
    scenario: RecoveryScenario,
    algo: Algo,
    seed: u64,
    /// Salt shared by every algorithm of one (scenario, seed) column, so
    /// they face identical timelines and traffic.
    column_salt: u64,
    cfg: &'a ExpConfig,
}

impl Run for RecoveryRun<'_> {
    type Output = RecoveryRow;

    fn label(&self) -> String {
        format!(
            "recovery/{}/{} seed {}",
            self.scenario.name(),
            self.algo.name(),
            self.seed
        )
    }

    fn execute(&self) -> RecoveryRow {
        let horizon = self.cfg.sim.warmup + self.cfg.sim.measure;
        let timeline = self.scenario.timeline(
            self.sys,
            horizon,
            self.cfg.seed.wrapping_add(self.column_salt),
        );
        let pattern = uniform(self.sys, RECOVERY_RATE);
        let report = Simulator::new(
            self.sys,
            FaultState::none(self.sys),
            self.algo.build(self.sys),
            &pattern,
            self.cfg.run_sim(self.column_salt),
        )
        .with_timeline(&timeline)
        .run();
        assert!(
            !report.deadlocked,
            "{} deadlocked under {}",
            self.algo.name(),
            self.scenario.name()
        );

        let transitions = report.epochs.len().saturating_sub(1) as u64;
        let total_losses = report.total_losses();
        let losses_per_transition = if transitions == 0 {
            0.0
        } else {
            total_losses as f64 / transitions as f64
        };
        let avg_recovery_latency = if transitions == 0 {
            0.0
        } else {
            report.epochs[1..]
                .iter()
                .map(|e| e.recovery_latency() as f64)
                .sum::<f64>()
                / transitions as f64
        };
        RecoveryRow {
            scenario: self.scenario.name(),
            algorithm: self.algo.name().to_owned(),
            seed: self.seed,
            transitions,
            dropped_unroutable: report.dropped_unroutable,
            lost_in_flight: report.lost_in_flight,
            losses_per_transition,
            avg_recovery_latency,
            avg_latency: report.avg_latency,
            delivered: report.delivered,
        }
    }

    fn cache_key(&self) -> Option<CacheKey> {
        // Materializing the timeline here costs one cheap generator pass;
        // its fingerprint covers the scenario parameters, the horizon,
        // *and* the timeline seed in one stable value.
        let horizon = self.cfg.sim.warmup + self.cfg.sim.measure;
        let timeline = self.scenario.timeline(
            self.sys,
            horizon,
            self.cfg.seed.wrapping_add(self.column_salt),
        );
        Some(
            CacheKeyBuilder::new("recovery")
                .u64("sys", self.sys.fingerprint())
                .str("scenario", &self.scenario.name())
                .u64("seed", self.seed)
                .str("algo", self.algo.name())
                .f64("rate", RECOVERY_RATE)
                .u64("timeline", timeline.fingerprint())
                .u64(
                    "sim",
                    fingerprint_value(&self.cfg.run_sim(self.column_salt)),
                )
                .finish(),
        )
    }
}

/// Number of seed replicas per scenario in [`recovery`].
pub const RECOVERY_SEEDS: u64 = 2;

/// Runs the recovery experiment over the default scenario set
/// ([`recovery_scenarios`]), the paper's three algorithms, and
/// [`RECOVERY_SEEDS`] seed replicas, fanned out over `cfg.jobs` workers.
/// Row order is scenario-major, then seed, then algorithm (the three
/// algorithms of one (scenario, seed) column are adjacent) — identical
/// for every worker count.
pub fn recovery(sys: &ChipletSystem, cfg: &ExpConfig) -> Vec<RecoveryRow> {
    let horizon = cfg.sim.warmup + cfg.sim.measure;
    recovery_with(sys, &recovery_scenarios(horizon), RECOVERY_SEEDS, cfg)
}

/// [`recovery`] over an explicit scenario set and seed-replica count.
pub fn recovery_with(
    sys: &ChipletSystem,
    scenarios: &[RecoveryScenario],
    seeds: u64,
    cfg: &ExpConfig,
) -> Vec<RecoveryRow> {
    let mut grid = Vec::new();
    for (si, &scenario) in scenarios.iter().enumerate() {
        for seed in 0..seeds {
            let column_salt = (si as u64) * 1_000 + seed;
            for algo in Algo::MAIN {
                grid.push(RecoveryRun {
                    sys,
                    scenario,
                    algo,
                    seed,
                    column_salt,
                    cfg,
                });
            }
        }
    }
    Campaign::new("recovery", grid).execute_policy(&cfg.policy())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_are_csv_safe_and_distinct() {
        let scens = recovery_scenarios(12_000);
        let names: Vec<String> = scens.iter().map(RecoveryScenario::name).collect();
        for n in &names {
            assert!(!n.contains(','), "comma in scenario name {n:?}");
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
    }

    #[test]
    fn scenario_timelines_are_deterministic_and_admissible() {
        let sys = ChipletSystem::baseline_4();
        for scenario in recovery_scenarios(6_000) {
            let a = scenario.timeline(&sys, 6_000, 5);
            let b = scenario.timeline(&sys, 6_000, 5);
            assert_eq!(a, b, "{}", scenario.name());
            assert!(a.is_admissible(&sys), "{}", scenario.name());
            assert!(!a.is_empty(), "{} generated no events", scenario.name());
        }
    }

    #[test]
    fn region_column_shows_deft_beating_rc() {
        // The acceptance shape: under a chiplet-adjacent failure DeFT
        // loses strictly fewer packets than RC on the same timeline.
        let sys = ChipletSystem::baseline_4();
        let cfg = ExpConfig::quick();
        let rows = recovery_with(&sys, &[RecoveryScenario::Region { duration: 800 }], 1, &cfg);
        assert_eq!(rows.len(), 3);
        let losses = |name: &str| {
            let r = rows.iter().find(|r| r.algorithm == name).unwrap();
            r.dropped_unroutable + r.lost_in_flight
        };
        assert!(
            losses("DeFT") < losses("RC"),
            "DeFT {} vs RC {}",
            losses("DeFT"),
            losses("RC")
        );
        for r in &rows {
            assert!(r.delivered > 0, "{} delivered nothing", r.algorithm);
            assert_eq!(r.scenario, "region-d800");
            assert!(r.transitions >= 1);
        }
    }
}
