//! Ablation of the VL-selection cost weight ρ (paper Eq. 6, §III-B).
//!
//! The paper "experimentally found ρ = 0.01 to be efficient": large enough
//! that distance breaks ties between equally-balanced selections, small
//! enough that load balance dominates. This ablation sweeps ρ and reports
//! the two objectives — maximum VL load (balance) and total hop distance —
//! of the resulting optimal selection under a one-fault scenario, making
//! the trade-off visible.

use crate::campaign::{default_jobs, CacheStore, Campaign, ExecPolicy, Run};
use deft_codec::{CacheKey, CacheKeyBuilder, CodecError, Decoder, Encoder, Persist};
use deft_routing::deft::SelectionProblem;
use deft_routing::VlOptimizer;
use deft_topo::{ChipletId, ChipletSystem, Coord};
use serde::Serialize;

/// One row of the ρ sweep.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RhoRow {
    /// The distance weight ρ.
    pub rho: f64,
    /// Maximum per-VL load of the optimal selection (uniform rates; ideal
    /// for 16 routers over 3 healthy VLs is 16/3 ≈ 5.33).
    pub max_vl_load: f64,
    /// Total router→VL hop distance of the selection (Eq. 5 summed).
    pub total_distance: u32,
    /// The optimal cost C_s* at this ρ.
    pub cost: f64,
}

impl Persist for RhoRow {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.rho);
        enc.put_f64(self.max_vl_load);
        enc.put_u32(self.total_distance);
        enc.put_f64(self.cost);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            rho: dec.get_f64()?,
            max_vl_load: dec.get_f64()?,
            total_distance: dec.get_u32()?,
            cost: dec.get_f64()?,
        })
    }
}

/// The ρ values swept (the paper's choice 0.01 in the middle).
pub const RHO_SWEEP: [f64; 5] = [0.0, 0.001, 0.01, 0.1, 1.0];

/// One ρ value of the sweep as a campaign cell: an independent run of the
/// offline VL-selection optimizer.
struct RhoPointRun<'a> {
    sys: &'a ChipletSystem,
    rho: f64,
}

impl Run for RhoPointRun<'_> {
    type Output = RhoRow;

    fn label(&self) -> String {
        format!("rho {}", self.rho)
    }

    fn execute(&self) -> RhoRow {
        let chiplet = self.sys.chiplet(ChipletId(0));
        let vl_coords: Vec<Coord> = chiplet
            .vertical_links()
            .iter()
            .map(|vl| vl.chiplet_coord)
            .collect();
        let router_coords: Vec<Coord> = chiplet.coords().collect();
        let healthy = (((1u16 << chiplet.vl_count()) - 1) as u8) & !1; // VL 0 faulty
        let problem = SelectionProblem::new(
            vl_coords,
            router_coords,
            vec![1.0; chiplet.node_count()],
            healthy,
            self.rho,
        );
        let (assignment, cost) = VlOptimizer::new().solve(&problem);
        let loads = problem.vl_loads(&assignment);
        let max_vl_load = loads.iter().cloned().fold(0.0, f64::max);
        let total_distance: u32 = assignment
            .iter()
            .enumerate()
            .map(|(r, &v)| problem.distance(r, v))
            .sum();
        RhoRow {
            rho: self.rho,
            max_vl_load,
            total_distance,
            cost,
        }
    }

    fn cache_key(&self) -> Option<CacheKey> {
        // The optimizer is exact and deterministic: topology + ρ fully
        // determine the selection (the fault scenario and rates are
        // constants of this experiment, fixed under the domain string).
        Some(
            CacheKeyBuilder::new("rho-point")
                .u64("sys", self.sys.fingerprint())
                .f64("rho", self.rho)
                .finish(),
        )
    }
}

/// Sweeps ρ on one chiplet of `sys` with VL 0 faulty and uniform traffic,
/// fanning the ρ values out over the default worker count.
pub fn rho_ablation(sys: &ChipletSystem) -> Vec<RhoRow> {
    rho_ablation_jobs(sys, default_jobs())
}

/// [`rho_ablation`] with an explicit worker count (`1` = strictly serial).
pub fn rho_ablation_jobs(sys: &ChipletSystem, jobs: usize) -> Vec<RhoRow> {
    rho_ablation_cached(sys, jobs, None)
}

/// [`rho_ablation_jobs`] with an optional memoized result store.
pub fn rho_ablation_cached(
    sys: &ChipletSystem,
    jobs: usize,
    cache: Option<&CacheStore>,
) -> Vec<RhoRow> {
    Campaign::new("rho ablation", rho_grid(sys))
        .jobs(jobs)
        .execute_cached(cache)
}

/// [`rho_ablation`] under a full [`ExecPolicy`] — the variant
/// `deft-repro` routes through, so the sweep runs in-process,
/// supervised, or served identically.
pub fn rho_ablation_with(sys: &ChipletSystem, policy: &ExecPolicy) -> Vec<RhoRow> {
    Campaign::new("rho ablation", rho_grid(sys)).execute_policy(policy)
}

fn rho_grid(sys: &ChipletSystem) -> Vec<RhoPointRun<'_>> {
    RHO_SWEEP
        .iter()
        .map(|&rho| RhoPointRun { sys, rho })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_trades_balance_for_distance() {
        let sys = ChipletSystem::baseline_4();
        let rows = rho_ablation(&sys);
        assert_eq!(rows.len(), RHO_SWEEP.len());
        // Distance never increases as rho grows; max load never decreases.
        for w in rows.windows(2) {
            assert!(
                w[1].total_distance <= w[0].total_distance,
                "distance must not grow with rho: {rows:?}"
            );
            assert!(
                w[1].max_vl_load + 1e-9 >= w[0].max_vl_load,
                "balance must not improve with rho: {rows:?}"
            );
        }
        // At rho = 0 the selection is perfectly balanced over 3 VLs.
        assert!(rows[0].max_vl_load <= 6.0 + 1e-9);
        // At the paper's rho = 0.01, balance still dominates.
        let paper = rows.iter().find(|r| (r.rho - 0.01).abs() < 1e-12).unwrap();
        assert!(
            paper.max_vl_load <= 6.0 + 1e-9,
            "rho=0.01 keeps balance: {paper:?}"
        );
    }

    #[test]
    fn large_rho_collapses_to_distance_based() {
        let sys = ChipletSystem::baseline_4();
        let rows = rho_ablation(&sys);
        let large = rows.last().unwrap();
        // With rho = 1.0, distance dominates: total distance equals the
        // distance-based assignment's.
        let chiplet = sys.chiplet(ChipletId(0));
        let problem = SelectionProblem::new(
            chiplet
                .vertical_links()
                .iter()
                .map(|vl| vl.chiplet_coord)
                .collect(),
            chiplet.coords().collect(),
            vec![1.0; 16],
            0b1110,
            1.0,
        );
        let dist_assignment = problem.distance_assignment();
        let min_distance: u32 = dist_assignment
            .iter()
            .enumerate()
            .map(|(r, &v)| problem.distance(r, v))
            .sum();
        assert_eq!(large.total_distance, min_distance);
    }
}
