//! Engine-performance experiment: wall-clock throughput of representative
//! simulation cells, emitted as `BENCH_sim.json`.
//!
//! Unlike every other experiment, `perf` measures the *simulator*, not the
//! network: the same cells every figure is built from (uniform and
//! transpose traffic, fault-free and transient-timeline, DeFT vs RC) are
//! run **serially** under a wall clock, and the report records cycles/sec,
//! ns per flit-hop, and the peak cell wall time. `deft-repro perf` writes
//! the JSON next to the invocation so CI can archive a `BENCH_sim.json`
//! trajectory per commit; regressions on the
//! [`FIG4_MID_CELL`] cell gate hot-path changes (see `EXPERIMENTS.md`).
//!
//! Timing covers [`Simulator::run`] only — algorithm construction (DeFT's
//! offline LUT build) and traffic-table setup happen before the clock
//! starts, mirroring how campaigns amortize them across a grid.

use super::{Algo, ExpConfig};
use deft_sim::{SimReport, Simulator};
use deft_topo::{ChipletSystem, FaultState, FaultTimeline, TransientConfig};
use deft_traffic::{transpose, uniform, TableTraffic};
use serde::Serialize;
use std::time::Instant;

/// Name of the acceptance cell: the Fig. 4 uniform-traffic mid-load point
/// (0.004 packets/cycle/node on the 4-chiplet system) under DeFT. The
/// repo's throughput trajectory is tracked on this cell.
pub const FIG4_MID_CELL: &str = "fig4-uniform-mid/DeFT";

/// The mid-load injection rate of the Fig. 4 uniform sweep.
pub const PERF_RATE: f64 = 0.004;

/// One timed simulation cell.
#[derive(Debug, Clone, Serialize)]
pub struct PerfCellResult {
    /// Cell name (`workload/algorithm`).
    pub name: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Traffic-pattern name.
    pub pattern: String,
    /// Cycles the cell actually simulated (including drain).
    pub cycles: u64,
    /// Total buffer writes over the run (injections + per-hop writes):
    /// the flit-hop work the engine performed.
    pub flit_hops: u64,
    /// Measured packets delivered.
    pub delivered: u64,
    /// Wall-clock time of [`Simulator::run`], in milliseconds.
    pub wall_ms: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Wall-clock nanoseconds per flit-hop of engine work.
    pub ns_per_flit_hop: f64,
}

/// The `perf` experiment's result set.
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    /// `"quick"` or `"full"` simulation windows.
    pub mode: String,
    /// One entry per timed cell, in execution order.
    pub cells: Vec<PerfCellResult>,
}

impl PerfReport {
    /// The slowest cell's wall time in milliseconds (0.0 when empty).
    pub fn peak_cell_wall_ms(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_ms).fold(0.0, f64::max)
    }

    /// The tracked acceptance cell ([`FIG4_MID_CELL`]), if present.
    pub fn fig4_mid_load(&self) -> Option<&PerfCellResult> {
        self.cells.iter().find(|c| c.name == FIG4_MID_CELL)
    }
}

/// Times one already-assembled simulation and folds the report into a
/// [`PerfCellResult`].
fn time_cell(name: &str, sim: Simulator<'_>) -> PerfCellResult {
    let start = Instant::now();
    let report: SimReport = sim.run();
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    let flit_hops: u64 = report.vc_usage.values().map(|u| u.vc0 + u.vc1).sum();
    PerfCellResult {
        name: name.to_owned(),
        algorithm: report.algorithm.clone(),
        pattern: report.pattern.clone(),
        cycles: report.cycles,
        flit_hops,
        delivered: report.delivered,
        wall_ms,
        cycles_per_sec: report.cycles as f64 / wall.as_secs_f64().max(1e-12),
        ns_per_flit_hop: wall.as_secs_f64() * 1e9 / (flit_hops.max(1)) as f64,
    }
}

/// Runs the perf cells serially on `sys` (one cell at a time, so wall
/// times are not polluted by sibling cells) and returns the timed report.
/// The *simulated* behaviour of every cell is deterministic under
/// `cfg.seed`; only the wall-clock fields vary between invocations.
pub fn perf(sys: &ChipletSystem, cfg: &ExpConfig, mode: &str) -> PerfReport {
    let mut cells = Vec::new();
    let uniform_mid: TableTraffic = uniform(sys, PERF_RATE);
    let transpose_mid: TableTraffic = transpose(sys, PERF_RATE);

    // Fault-free cells: the acceptance cell first, then the RC contrast
    // (store-and-forward keeps more routers busy) and the transpose
    // workload (deterministic point-to-point flows).
    for (name, algo, pattern) in [
        (FIG4_MID_CELL, Algo::Deft, &uniform_mid),
        ("fig4-uniform-mid/RC", Algo::Rc, &uniform_mid),
        ("transpose-mid/DeFT", Algo::Deft, &transpose_mid),
    ] {
        let sim = Simulator::new(
            sys,
            FaultState::none(sys),
            algo.build(sys),
            pattern,
            cfg.run_sim(0),
        );
        cells.push(time_cell(name, sim));
    }

    // Transient-timeline cell: mid-run inject/heal transitions exercise
    // the packet-removal and re-route paths under the wall clock.
    let horizon = cfg.sim.warmup + cfg.sim.measure;
    let timeline = FaultTimeline::transient(
        sys,
        &TransientConfig {
            mean_healthy: horizon as f64 * 2.0,
            mean_faulty: horizon as f64 / 6.0,
            horizon,
            seed: cfg.seed,
        },
    );
    let sim = Simulator::new(
        sys,
        FaultState::none(sys),
        Algo::Deft.build(sys),
        &uniform_mid,
        cfg.run_sim(1),
    )
    .with_timeline(&timeline);
    cells.push(time_cell("transient-timeline/DeFT", sim));

    PerfReport {
        mode: mode.to_owned(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        let mut cfg = ExpConfig::quick();
        cfg.sim.warmup = 50;
        cfg.sim.measure = 300;
        cfg.sim.drain = 5_000;
        cfg
    }

    #[test]
    fn perf_runs_all_cells_and_derives_consistent_rates() {
        let sys = ChipletSystem::baseline_4();
        let report = perf(&sys, &tiny_cfg(), "quick");
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.mode, "quick");
        assert!(report.fig4_mid_load().is_some());
        assert!(report.peak_cell_wall_ms() > 0.0);
        for c in &report.cells {
            assert!(c.cycles > 0, "{} simulated nothing", c.name);
            assert!(c.delivered > 0, "{} delivered nothing", c.name);
            assert!(c.flit_hops > 0);
            assert!(c.wall_ms > 0.0);
            assert!(c.cycles_per_sec > 0.0);
            assert!(c.ns_per_flit_hop > 0.0);
            // cycles/sec and wall time must describe the same measurement.
            let implied = c.cycles as f64 / (c.wall_ms / 1e3);
            assert!(
                (implied - c.cycles_per_sec).abs() / c.cycles_per_sec < 1e-6,
                "{}: inconsistent rate",
                c.name
            );
        }
    }

    #[test]
    fn perf_cells_simulate_deterministically() {
        // Wall clocks differ between runs; the simulated outcomes do not.
        let sys = ChipletSystem::baseline_4();
        let a = perf(&sys, &tiny_cfg(), "quick");
        let b = perf(&sys, &tiny_cfg(), "quick");
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.name, cb.name);
            assert_eq!(ca.cycles, cb.cycles);
            assert_eq!(ca.flit_hops, cb.flit_hops);
            assert_eq!(ca.delivered, cb.delivered);
        }
    }
}
