//! Engine-performance experiment: wall-clock throughput of representative
//! simulation cells, emitted as `BENCH_sim.json`.
//!
//! Unlike every other experiment, `perf` measures the *simulator*, not the
//! network: the same cells every figure is built from (uniform and
//! transpose traffic, fault-free and transient-timeline, DeFT vs RC) are
//! run **serially** under a wall clock, and the report records cycles/sec,
//! ns per flit-hop, and the peak cell wall time. `deft-repro perf` writes
//! the JSON next to the invocation so CI can archive a `BENCH_sim.json`
//! trajectory per commit; regressions on the
//! [`FIG4_MID_CELL`] cell gate hot-path changes (see `EXPERIMENTS.md`).
//!
//! Timing covers [`Simulator::run`] only — algorithm construction (DeFT's
//! offline LUT build) and traffic-table setup happen before the clock
//! starts, mirroring how campaigns amortize them across a grid.

use super::{Algo, ExpConfig};
use crate::campaign::{CacheStore, Campaign, Run};
use deft_codec::{fingerprint_value, CacheKey, CacheKeyBuilder};
use deft_sim::{SimConfig, SimReport, Simulator};
use deft_topo::{ChipletSystem, FaultState, FaultTimeline, NodeId, TransientConfig};
use deft_traffic::{transpose, uniform, TableTraffic, Trace, TraceEvent, TrafficPattern};
use serde::Serialize;
use std::time::Instant;

/// Name of the acceptance cell: the Fig. 4 uniform-traffic mid-load point
/// (0.004 packets/cycle/node on the 4-chiplet system) under DeFT. The
/// repo's throughput trajectory is tracked on this cell.
pub const FIG4_MID_CELL: &str = "fig4-uniform-mid/DeFT";

/// The mid-load injection rate of the Fig. 4 uniform sweep.
pub const PERF_RATE: f64 = 0.004;

/// Name of the trickle-load cell: sparse trace-driven traffic (one packet
/// per [`TRICKLE_PERIOD`] cycles) whose provably-idle windows the engine's
/// idle-cycle skipping jumps over. This cell tracks the skip machinery the
/// way [`FIG4_MID_CELL`] tracks the data plane.
pub const TRICKLE_CELL: &str = "trickle-trace/DeFT";

/// Cycles between injections in the trickle cell's trace. Fixed across
/// quick and full windows (so the cell's cycles/sec is window-independent
/// and CI's quick run is comparable to the committed full-mode baseline);
/// only sub-`--quick` test windows shrink it to keep a few events in
/// range.
pub const TRICKLE_PERIOD: u64 = 400;

/// Name of the large-grid scaling cell: an 8×8 arrangement of 4×4
/// chiplets (2048 routers — 16× the baseline) under uniform traffic, the
/// first datapoint of the engine's scaling trajectory toward
/// production-size systems.
pub const LARGE_GRID_CELL: &str = "large-grid-8x8/DeFT-Dis";

/// Name of the second scaling datapoint: a 16×16 arrangement of 4×4
/// chiplets (8k+ routers — 64× the baseline chiplet count), tracked
/// warn-only in CI until its trajectory stabilizes.
pub const LARGE_GRID_16_CELL: &str = "large-grid-16x16/DeFT-Dis";

/// Name of the quick-scaled 16×16 cell: the same system as
/// [`LARGE_GRID_16_CELL`] but with its windows clamped to the quick
/// profile in *every* mode, so the cell costs seconds rather than the
/// full cell's tens of seconds. Because the windows are mode-independent
/// (like [`TRICKLE_PERIOD`]), CI's quick perf smoke exercises the
/// large-grid code path and its numbers are directly comparable to the
/// committed full-mode baseline.
pub const LARGE_GRID_16_QUICK_CELL: &str = "large-grid-16x16-quick/DeFT-Dis";

/// The threaded large-grid cells: the same 8×8 run as
/// [`LARGE_GRID_CELL`] with the cycle sharded across 4 and 8 tick
/// workers ([`deft_sim::SimConfig::tick_threads`]). The simulated
/// outcome is identical to the serial cell by the parallel engine's
/// determinism contract (the perf tests assert it); only the wall
/// clock measures what sharding buys on this host.
pub const LARGE_GRID_THREADED_CELLS: [(&str, usize); 2] = [
    ("large-grid-8x8/DeFT-Dis/tick4", 4),
    ("large-grid-8x8/DeFT-Dis/tick8", 8),
];

/// Name of the fork-sweep cell: [`FORK_SWEEP_K`] fault futures branched
/// off one shared traffic prefix with
/// [`Simulator::fork_with_timeline`] — the Monte-Carlo sweep the
/// snapshot/fork engine exists for. Timing starts *after* the shared
/// prefix is simulated; its companion [`FORK_SWEEP_COLD_CELL`] runs the
/// same `K` futures cold (full run each), and the acceptance target is
/// `fork wall ≤ cold wall / 3`.
///
/// [`FORK_SWEEP_K`]: super::FORK_SWEEP_K
pub const FORK_SWEEP_CELL: &str = "fork-sweep-k200/DeFT";

/// Name of the cold-baseline companion of [`FORK_SWEEP_CELL`]: the same
/// `K` timelines, each simulated from cycle 0 with no shared prefix.
pub const FORK_SWEEP_COLD_CELL: &str = "fork-sweep-k200-cold/DeFT";

/// Name of the warm-cache cell: an 8-point Fig. 4-style uniform DeFT
/// sweep answered entirely from a content-addressed result store
/// ([`crate::campaign::CacheStore`]). The populating cold pass runs
/// before the clock starts; the timed pass must be all hits (asserted),
/// so the cell tracks store probe + decode throughput rather than
/// simulation speed. Its cycles/flit-hops/delivered totals are the
/// decoded reports' — byte-identical to the cold pass by the store's
/// differential contract.
pub const CACHE_HIT_CELL: &str = "cache-hit/fig4-sweep/DeFT";

/// The injection rates of the warm-cache cell's sweep.
pub const CACHE_HIT_RATES: [f64; 8] = [0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008];

/// Full-mode cycles/sec of the cells as committed at PR 4 (schema
/// `deft-bench-sim/v1`): the denominators of each cell's
/// [`PerfCellResult::baseline_delta`]. Cells introduced later have no
/// entry and report `null`.
pub const PR4_FULL_BASELINE: [(&str, f64); 4] = [
    ("fig4-uniform-mid/DeFT", 60_573.4),
    ("fig4-uniform-mid/RC", 61_709.8),
    ("transpose-mid/DeFT", 69_106.2),
    ("transient-timeline/DeFT", 55_065.4),
];

/// Per-phase wall-time breakdown of one cell, in nanoseconds — the
/// serialized shape of [`deft_sim::PhaseProfile`]. Collected from a
/// **separate profiled re-run** of the cell (never from the timed run,
/// whose headline wall numbers must stay free of timestamp overhead),
/// so the four phase times need not sum to the cell's `wall_ms`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PhaseBreakdown {
    /// Phase 2: route computation + VC allocation.
    pub route_ns: u64,
    /// Phase 3: switch allocation.
    pub switch_ns: u64,
    /// Phase 4: commit (flit movement, credits, ejection stats).
    pub commit_ns: u64,
    /// Everything else in the cycle body: generation and injection.
    pub postlude_ns: u64,
}

impl From<deft_sim::PhaseProfile> for PhaseBreakdown {
    fn from(p: deft_sim::PhaseProfile) -> Self {
        Self {
            route_ns: p.route_ns,
            switch_ns: p.switch_ns,
            commit_ns: p.commit_ns,
            postlude_ns: p.postlude_ns,
        }
    }
}

/// One timed simulation cell.
#[derive(Debug, Clone, Serialize)]
pub struct PerfCellResult {
    /// Cell name (`workload/algorithm`).
    pub name: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Traffic-pattern name.
    pub pattern: String,
    /// Cycles the cell actually simulated (including drain).
    pub cycles: u64,
    /// Total buffer writes over the run (injections + per-hop writes):
    /// the flit-hop work the engine performed.
    pub flit_hops: u64,
    /// Measured packets delivered.
    pub delivered: u64,
    /// Wall-clock time of [`Simulator::run`], in milliseconds.
    pub wall_ms: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Wall-clock nanoseconds per flit-hop of engine work.
    pub ns_per_flit_hop: f64,
    /// Speed multiplier over the PR 4 full-mode baseline
    /// ([`PR4_FULL_BASELINE`]): `cycles_per_sec / baseline`. `None` for
    /// cells without a recorded baseline and in quick mode (quick windows
    /// are not comparable to the committed full-mode numbers).
    pub baseline_delta: Option<f64>,
    /// Additive (schema `deft-bench-sim/v2`, still): per-phase wall-time
    /// breakdown from a separate profiled re-run of the same cell. Only
    /// populated for the tracked hot-path cells ([`FIG4_MID_CELL`] and
    /// [`LARGE_GRID_16_QUICK_CELL`]); `null` elsewhere.
    pub phase_breakdown: Option<PhaseBreakdown>,
}

/// The `perf` experiment's result set.
#[derive(Debug, Clone, Serialize)]
pub struct PerfReport {
    /// `"quick"` or `"full"` simulation windows.
    pub mode: String,
    /// Core count of the host that timed the cells
    /// (`std::thread::available_parallelism`). The key to reading the
    /// threaded large-grid cells: on a single-core host they measure
    /// pool overhead, not scaling.
    pub host_parallelism: usize,
    /// One entry per timed cell, in execution order.
    pub cells: Vec<PerfCellResult>,
}

impl PerfReport {
    /// The slowest cell's wall time in milliseconds (0.0 when empty).
    pub fn peak_cell_wall_ms(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_ms).fold(0.0, f64::max)
    }

    /// The tracked acceptance cell ([`FIG4_MID_CELL`]), if present.
    pub fn fig4_mid_load(&self) -> Option<&PerfCellResult> {
        self.cells.iter().find(|c| c.name == FIG4_MID_CELL)
    }
}

/// Folds measured totals into a [`PerfCellResult`] (shared by the
/// single-run and aggregate cells).
#[allow(clippy::too_many_arguments)]
fn cell_from_totals(
    name: &str,
    mode: &str,
    algorithm: &str,
    pattern: &str,
    cycles: u64,
    flit_hops: u64,
    delivered: u64,
    wall: std::time::Duration,
) -> PerfCellResult {
    let cycles_per_sec = cycles as f64 / wall.as_secs_f64().max(1e-12);
    let baseline_delta = (mode == "full")
        .then(|| {
            PR4_FULL_BASELINE
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, base)| cycles_per_sec / base)
        })
        .flatten();
    PerfCellResult {
        name: name.to_owned(),
        algorithm: algorithm.to_owned(),
        pattern: pattern.to_owned(),
        cycles,
        flit_hops,
        delivered,
        wall_ms: wall.as_secs_f64() * 1e3,
        cycles_per_sec,
        ns_per_flit_hop: wall.as_secs_f64() * 1e9 / (flit_hops.max(1)) as f64,
        baseline_delta,
        phase_breakdown: None,
    }
}

/// Runs one already-assembled simulation with per-phase profiling
/// enabled and returns the breakdown. The run is *not* the timed one —
/// profiling inserts timestamps into the cycle body, so the headline
/// cell is always measured unprofiled and this re-run (identical
/// simulated behaviour, the profile is host measurement state only)
/// pays for the breakdown separately.
fn profile_cell(mut sim: Simulator<'_>) -> PhaseBreakdown {
    sim.enable_phase_profile();
    sim.start();
    let ended = sim.advance_to(u64::MAX);
    debug_assert!(ended, "profiled perf cell did not run to completion");
    sim.phase_profile()
        .expect("profiling was enabled above")
        .into()
}

/// Total buffer writes of a run: the flit-hop work the engine performed.
fn report_flit_hops(report: &SimReport) -> u64 {
    report.vc_usage.values().map(|u| u.vc0 + u.vc1).sum()
}

/// Times one already-assembled simulation and folds the report into a
/// [`PerfCellResult`].
fn time_cell(name: &str, mode: &str, sim: Simulator<'_>) -> PerfCellResult {
    let start = Instant::now();
    let report: SimReport = sim.run();
    let wall = start.elapsed();
    cell_from_totals(
        name,
        mode,
        &report.algorithm,
        &report.pattern,
        report.cycles,
        report_flit_hops(&report),
        report.delivered,
        wall,
    )
}

/// One uniform-traffic point of the warm-cache cell's sweep (mirrors the
/// Fig. 4 campaign cell, with its own key domain so perf runs never
/// alias a real sweep's entries).
struct CachePointRun<'a> {
    sys: &'a ChipletSystem,
    pattern: &'a TableTraffic,
    rate: f64,
    sim: SimConfig,
}

impl Run for CachePointRun<'_> {
    type Output = SimReport;

    fn label(&self) -> String {
        format!("cache-hit rate {}", self.rate)
    }

    fn execute(&self) -> SimReport {
        Simulator::new(
            self.sys,
            FaultState::none(self.sys),
            Algo::Deft.build(self.sys),
            self.pattern,
            self.sim,
        )
        .run()
    }

    fn cache_key(&self) -> Option<CacheKey> {
        Some(
            CacheKeyBuilder::new("perf-cache-point")
                .u64("sys", self.sys.fingerprint())
                .str("algo", Algo::Deft.name())
                .f64("rate", self.rate)
                .u64("sim", fingerprint_value(&self.sim))
                .finish(),
        )
    }
}

/// The trickle cell's workload: one packet per [`TRICKLE_PERIOD`] cycles
/// over the generation window, sources and destinations rotating across
/// the system so successive worms exercise different routes. Everything
/// between two events is a provably-idle window the engine can skip.
fn trickle_trace(sys: &ChipletSystem, horizon: u64) -> Trace {
    let n = sys.node_count() as u32;
    let period = (horizon / 4).clamp(1, TRICKLE_PERIOD);
    let events: Vec<TraceEvent> = (0..horizon / period)
        .map(|k| TraceEvent {
            cycle: k * period,
            src: NodeId((11 * k as u32) % n),
            dst: NodeId((37 + 53 * k as u32) % n),
        })
        .filter(|e| e.src != e.dst)
        .collect();
    Trace::new("Trickle", events, sys.node_count())
}

/// Runs the perf cells serially on `sys` (one cell at a time, so wall
/// times are not polluted by sibling cells) and returns the timed report.
/// The *simulated* behaviour of every cell is deterministic under
/// `cfg.seed`; only the wall-clock fields vary between invocations.
pub fn perf(sys: &ChipletSystem, cfg: &ExpConfig, mode: &str) -> PerfReport {
    let mut cells = Vec::new();
    let uniform_mid: TableTraffic = uniform(sys, PERF_RATE);
    let transpose_mid: TableTraffic = transpose(sys, PERF_RATE);

    // Fault-free cells: the acceptance cell first, then the RC contrast
    // (store-and-forward keeps more routers busy) and the transpose
    // workload (deterministic point-to-point flows).
    for (name, algo, pattern) in [
        (FIG4_MID_CELL, Algo::Deft, &uniform_mid),
        ("fig4-uniform-mid/RC", Algo::Rc, &uniform_mid),
        ("transpose-mid/DeFT", Algo::Deft, &transpose_mid),
    ] {
        let sim = Simulator::new(
            sys,
            FaultState::none(sys),
            algo.build(sys),
            pattern,
            cfg.run_sim(0),
        );
        let mut cell = time_cell(name, mode, sim);
        if name == FIG4_MID_CELL {
            cell.phase_breakdown = Some(profile_cell(Simulator::new(
                sys,
                FaultState::none(sys),
                algo.build(sys),
                pattern,
                cfg.run_sim(0),
            )));
        }
        cells.push(cell);
    }

    // Transient-timeline cell: mid-run inject/heal transitions exercise
    // the packet-removal and re-route paths under the wall clock.
    let horizon = cfg.sim.warmup + cfg.sim.measure;
    let timeline = FaultTimeline::transient(
        sys,
        &TransientConfig {
            mean_healthy: horizon as f64 * 2.0,
            mean_faulty: horizon as f64 / 6.0,
            horizon,
            seed: cfg.seed,
        },
    );
    let sim = Simulator::new(
        sys,
        FaultState::none(sys),
        Algo::Deft.build(sys),
        &uniform_mid,
        cfg.run_sim(1),
    )
    .with_timeline(&timeline);
    cells.push(time_cell("transient-timeline/DeFT", mode, sim));

    // Trickle cell: sparse trace events separated by provably-idle
    // windows — the workload where idle-cycle skipping dominates.
    let trickle = trickle_trace(sys, horizon);
    let sim = Simulator::new(
        sys,
        FaultState::none(sys),
        Algo::Deft.build(sys),
        &trickle,
        cfg.run_sim(2),
    );
    cells.push(time_cell(TRICKLE_CELL, mode, sim));

    // Large-grid scaling cell: 16× the baseline router count. Uses
    // distance-based VL selection so the cell times the engine, not
    // DeFT's offline optimizer (which grows with the grid and runs
    // before the clock starts anyway).
    let large = ChipletSystem::chiplet_grid(8, 8).expect("8x8 grid is valid");
    let large_uniform = uniform(&large, PERF_RATE);
    let sim = Simulator::new(
        &large,
        FaultState::none(&large),
        Algo::DeftDis.build(&large),
        &large_uniform,
        cfg.run_sim(3),
    );
    cells.push(time_cell(LARGE_GRID_CELL, mode, sim));

    // Threaded large-grid cells: the same 8×8 run with the cycle sharded
    // across tick workers. Simulated outcomes match the serial cell by
    // the parallel engine's determinism contract; the wall clock measures
    // what sharding buys on this host.
    for (name, threads) in LARGE_GRID_THREADED_CELLS {
        let sim = Simulator::new(
            &large,
            FaultState::none(&large),
            Algo::DeftDis.build(&large),
            &large_uniform,
            cfg.run_sim(3).with_tick_threads(threads),
        );
        cells.push(time_cell(name, mode, sim));
    }

    // Second scaling datapoint: 64× the baseline chiplet count.
    let huge = ChipletSystem::chiplet_grid(16, 16).expect("16x16 grid is valid");
    let huge_uniform = uniform(&huge, PERF_RATE);
    let sim = Simulator::new(
        &huge,
        FaultState::none(&huge),
        Algo::DeftDis.build(&huge),
        &huge_uniform,
        cfg.run_sim(5),
    );
    cells.push(time_cell(LARGE_GRID_16_CELL, mode, sim));

    // Quick-scaled 16×16 variant: windows clamped to the quick profile
    // in every mode, so the cell is (a) cheap enough for the CI perf
    // smoke to exercise the large-grid path and (b) mode-independent —
    // its quick-run numbers compare directly against the committed
    // full-mode baseline. Also the large-grid cell that carries the
    // phase breakdown (a profiled re-run at full 16×16 windows would
    // double a tens-of-seconds cell).
    let quick_windows = ExpConfig::quick().sim;
    let mut huge_quick_sim = cfg.run_sim(7);
    huge_quick_sim.warmup = huge_quick_sim.warmup.min(quick_windows.warmup);
    huge_quick_sim.measure = huge_quick_sim.measure.min(quick_windows.measure);
    huge_quick_sim.drain = huge_quick_sim.drain.min(quick_windows.drain);
    let sim = Simulator::new(
        &huge,
        FaultState::none(&huge),
        Algo::DeftDis.build(&huge),
        &huge_uniform,
        huge_quick_sim,
    );
    let mut cell = time_cell(LARGE_GRID_16_QUICK_CELL, mode, sim);
    cell.phase_breakdown = Some(profile_cell(Simulator::new(
        &huge,
        FaultState::none(&huge),
        Algo::DeftDis.build(&huge),
        &huge_uniform,
        huge_quick_sim,
    )));
    cells.push(cell);

    // Fork-sweep pair: the same K fault futures once via fork (shared
    // traffic prefix simulated a single time) and once cold (full run
    // per future). Both cells account each future's *complete* run —
    // cycles, flit-hops, delivered summed over branches — so their
    // wall-time and ns/flit-hop ratios read directly as the fork
    // engine's speedup (acceptance: fork wall ≤ cold wall / 3).
    // Timelines and algorithm instances are built before the clocks;
    // the cold runs reuse pristine `fork_box` copies of one prototype
    // so neither cell times DeFT's offline LUT construction.
    let sweep_pattern: TableTraffic = uniform(sys, super::RECOVERY_RATE);
    let timelines = super::fork_sweep_timelines(sys, cfg, super::FORK_SWEEP_K);
    let fork_cycle = super::fork_sweep_cycle(cfg);
    let fold = |agg: &mut (u64, u64, u64), rep: &SimReport| {
        agg.0 += rep.cycles;
        agg.1 += report_flit_hops(rep);
        agg.2 += rep.delivered;
    };

    let alg = Algo::Deft.build(sys);
    let start = Instant::now();
    let mut base = Simulator::new(
        sys,
        FaultState::none(sys),
        alg,
        &sweep_pattern,
        cfg.run_sim(4),
    );
    base.start();
    let ended = base.advance_to(fork_cycle);
    assert!(!ended, "perf run ended before the fork cycle {fork_cycle}");
    let mut agg = (0u64, 0u64, 0u64);
    for tl in &timelines {
        fold(&mut agg, &base.fork_with_timeline(tl).finish());
    }
    let wall = start.elapsed();
    cells.push(cell_from_totals(
        FORK_SWEEP_CELL,
        mode,
        "DeFT",
        sweep_pattern.name(),
        agg.0,
        agg.1,
        agg.2,
        wall,
    ));

    let proto = Algo::Deft.build(sys);
    let cold_algs: Vec<_> = timelines.iter().map(|_| proto.fork_box()).collect();
    let start = Instant::now();
    let mut agg = (0u64, 0u64, 0u64);
    for (alg, tl) in cold_algs.into_iter().zip(&timelines) {
        let rep = Simulator::new(
            sys,
            FaultState::none(sys),
            alg,
            &sweep_pattern,
            cfg.run_sim(4),
        )
        .with_timeline(tl)
        .run();
        fold(&mut agg, &rep);
    }
    let wall = start.elapsed();
    cells.push(cell_from_totals(
        FORK_SWEEP_COLD_CELL,
        mode,
        "DeFT",
        sweep_pattern.name(),
        agg.0,
        agg.1,
        agg.2,
        wall,
    ));

    // Warm-cache cell: populate a throwaway store untimed, then time the
    // same sweep re-answered entirely from disk. The pid + sequence
    // number keep concurrently-running perf invocations (e.g. parallel
    // tests) out of each other's stores.
    static PERF_CACHE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = PERF_CACHE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let cache_dir =
        std::env::temp_dir().join(format!("deft-perf-cache-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let store = CacheStore::open(&cache_dir).expect("perf cache store in temp dir");
    let cache_patterns: Vec<TableTraffic> =
        CACHE_HIT_RATES.iter().map(|&r| uniform(sys, r)).collect();
    let grid = |sim: SimConfig| -> Vec<CachePointRun<'_>> {
        CACHE_HIT_RATES
            .iter()
            .zip(&cache_patterns)
            .map(|(&rate, pattern)| CachePointRun {
                sys,
                pattern,
                rate,
                sim,
            })
            .collect()
    };
    let cold: Vec<SimReport> = Campaign::new("perf cache cold", grid(cfg.run_sim(6)))
        .jobs(1)
        .execute_cached(Some(&store));
    let start = Instant::now();
    let warm: Vec<SimReport> = Campaign::new("perf cache warm", grid(cfg.run_sim(6)))
        .jobs(1)
        .execute_cached(Some(&store));
    let wall = start.elapsed();
    let stats = store.stats();
    assert_eq!(
        stats.hits,
        CACHE_HIT_RATES.len() as u64,
        "warm perf pass must be answered entirely from the store"
    );
    assert!(
        cold.iter()
            .zip(&warm)
            .all(|(c, w)| fingerprint_value(c) == fingerprint_value(w)),
        "warm cache pass must decode the cold pass byte-identically"
    );
    let mut agg = (0u64, 0u64, 0u64);
    for rep in &warm {
        fold(&mut agg, rep);
    }
    cells.push(cell_from_totals(
        CACHE_HIT_CELL,
        mode,
        "DeFT",
        "Uniform",
        agg.0,
        agg.1,
        agg.2,
        wall,
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);

    PerfReport {
        mode: mode.to_owned(),
        host_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        let mut cfg = ExpConfig::quick();
        cfg.sim.warmup = 50;
        cfg.sim.measure = 300;
        cfg.sim.drain = 5_000;
        cfg
    }

    #[test]
    fn perf_runs_all_cells_and_derives_consistent_rates() {
        let sys = ChipletSystem::baseline_4();
        let report = perf(&sys, &tiny_cfg(), "quick");
        assert_eq!(report.cells.len(), 13);
        assert_eq!(report.mode, "quick");
        assert!(report.fig4_mid_load().is_some());
        assert!(report.peak_cell_wall_ms() > 0.0);
        assert!(report.cells.iter().any(|c| c.name == TRICKLE_CELL));
        assert!(report.cells.iter().any(|c| c.name == CACHE_HIT_CELL));
        assert!(report.cells.iter().any(|c| c.name == LARGE_GRID_CELL));
        assert!(report.cells.iter().any(|c| c.name == LARGE_GRID_16_CELL));
        assert!(report
            .cells
            .iter()
            .any(|c| c.name == LARGE_GRID_16_QUICK_CELL));
        // The phase breakdown rides on exactly the tracked hot-path cells,
        // and a profiled run records non-zero time in every phase.
        for c in &report.cells {
            let tracked = c.name == FIG4_MID_CELL || c.name == LARGE_GRID_16_QUICK_CELL;
            assert_eq!(
                c.phase_breakdown.is_some(),
                tracked,
                "{}: phase_breakdown presence",
                c.name
            );
            if let Some(p) = c.phase_breakdown {
                assert!(p.route_ns > 0 && p.switch_ns > 0 && p.commit_ns > 0);
                assert!(p.postlude_ns > 0);
            }
        }
        // The threaded large-grid cells must reproduce the serial cell's
        // simulated outcome exactly — tick_threads is a wall-clock knob.
        let serial = report
            .cells
            .iter()
            .find(|c| c.name == LARGE_GRID_CELL)
            .unwrap();
        for (name, _) in LARGE_GRID_THREADED_CELLS {
            let t = report.cells.iter().find(|c| c.name == name).unwrap();
            assert_eq!(
                (t.cycles, t.flit_hops, t.delivered),
                (serial.cycles, serial.flit_hops, serial.delivered),
                "{name} diverges from the serial large-grid cell"
            );
        }
        for c in &report.cells {
            assert!(c.cycles > 0, "{} simulated nothing", c.name);
            assert!(c.delivered > 0, "{} delivered nothing", c.name);
            assert!(c.flit_hops > 0);
            assert!(c.wall_ms > 0.0);
            assert!(c.cycles_per_sec > 0.0);
            assert!(c.ns_per_flit_hop > 0.0);
            // Quick windows are not comparable to the full-mode baseline.
            assert!(c.baseline_delta.is_none());
            // cycles/sec and wall time must describe the same measurement.
            let implied = c.cycles as f64 / (c.wall_ms / 1e3);
            assert!(
                (implied - c.cycles_per_sec).abs() / c.cycles_per_sec < 1e-6,
                "{}: inconsistent rate",
                c.name
            );
        }
    }

    #[test]
    fn baseline_delta_populates_only_tracked_cells_in_full_mode() {
        // The mode string is labeling, so full-mode delta wiring can be
        // exercised at tiny windows.
        let sys = ChipletSystem::baseline_4();
        let report = perf(&sys, &tiny_cfg(), "full");
        for c in &report.cells {
            let tracked = PR4_FULL_BASELINE.iter().any(|(n, _)| *n == c.name);
            assert_eq!(
                c.baseline_delta.is_some(),
                tracked,
                "{}: baseline_delta presence",
                c.name
            );
            if let Some(d) = c.baseline_delta {
                let (_, base) = PR4_FULL_BASELINE
                    .iter()
                    .find(|(n, _)| *n == c.name)
                    .unwrap();
                assert!((d - c.cycles_per_sec / base).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trickle_trace_is_sparse_and_self_avoiding() {
        let sys = ChipletSystem::baseline_4();
        let t = trickle_trace(&sys, 12_000);
        assert!(!t.is_empty());
        assert!(t.len() <= (12_000 / TRICKLE_PERIOD) as usize);
        for w in t.events().windows(2) {
            assert_eq!(w[1].cycle - w[0].cycle, TRICKLE_PERIOD);
        }
        assert!(t.events().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn perf_cells_simulate_deterministically() {
        // Wall clocks differ between runs; the simulated outcomes do not.
        let sys = ChipletSystem::baseline_4();
        let a = perf(&sys, &tiny_cfg(), "quick");
        let b = perf(&sys, &tiny_cfg(), "quick");
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.name, cb.name);
            assert_eq!(ca.cycles, cb.cycles);
            assert_eq!(ca.flit_hops, cb.flit_hops);
            assert_eq!(ca.delivered, cb.delivered);
        }
    }
}
