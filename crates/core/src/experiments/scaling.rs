//! Scaling study beyond the paper: latency and fault tolerance from 2 to 8
//! chiplets.
//!
//! The paper evaluates 4 and 6 chiplets and argues DeFT's efficiency "is
//! not limited by system size" (§IV-B). This extension sweeps chiplet-grid
//! sizes and reports, per size: DeFT's latency under uniform traffic, its
//! latency overhead vs the MTR and RC baselines, and the exact average
//! reachability of all three algorithms at a fixed 4-fault injection.

use super::{Algo, ExpConfig};
use crate::campaign::{Campaign, Run};
use deft_codec::{
    fingerprint_value, CacheKey, CacheKeyBuilder, CodecError, Decoder, Encoder, Persist,
};
use deft_routing::reachability::ReachabilityEngine;
use deft_sim::Simulator;
use deft_topo::{ChipletSystem, FaultState};
use deft_traffic::uniform;
use serde::Serialize;

/// One system size's results.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Number of chiplets.
    pub chiplets: usize,
    /// Total nodes (cores + interposer routers).
    pub nodes: usize,
    /// DeFT average latency under uniform traffic at the probe rate.
    pub deft_latency: f64,
    /// DeFT improvement vs MTR in percent.
    pub vs_mtr_percent: f64,
    /// DeFT improvement vs RC in percent.
    pub vs_rc_percent: f64,
    /// Exact average reachability (%) with 4 faulty unidirectional VLs.
    pub deft_reach: f64,
    /// MTR average reachability (%) at the same fault count.
    pub mtr_reach: f64,
    /// RC average reachability (%) at the same fault count.
    pub rc_reach: f64,
}

/// The grid shapes swept: 2, 4, 6, and 8 chiplets.
pub const SCALING_GRIDS: [(u8, u8); 4] = [(2, 1), (2, 2), (3, 2), (4, 2)];

/// One `(grid shape, algorithm)` cell of the scaling study: builds its own
/// system and traffic, runs one simulation and one exact reachability
/// analysis. Rebuilding the (cheap, deterministic) system per cell keeps
/// cells fully independent for the campaign fan-out.
struct CellRun {
    cols: u8,
    rows: u8,
    algo: Algo,
    rate: f64,
    faults_k: usize,
    cfg: ExpConfig,
}

/// One cell's result: `(chiplets, nodes, avg latency, reachability %)`.
#[derive(Default)]
struct CellOut {
    chiplets: usize,
    nodes: usize,
    latency: f64,
    reach: f64,
}

impl Persist for CellOut {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.chiplets);
        enc.put_usize(self.nodes);
        enc.put_f64(self.latency);
        enc.put_f64(self.reach);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            chiplets: dec.get_usize()?,
            nodes: dec.get_usize()?,
            latency: dec.get_f64()?,
            reach: dec.get_f64()?,
        })
    }
}

impl Run for CellRun {
    type Output = CellOut;

    fn label(&self) -> String {
        format!("scaling {}x{}/{}", self.cols, self.rows, self.algo.name())
    }

    fn execute(&self) -> CellOut {
        let sys = ChipletSystem::chiplet_grid(self.cols, self.rows).expect("valid grid");
        let pattern = uniform(&sys, self.rate);
        let report = Simulator::new(
            &sys,
            FaultState::none(&sys),
            self.algo.build(&sys),
            &pattern,
            self.cfg.run_sim(self.cols as u64 * 16 + self.rows as u64),
        )
        .run();
        let reach = 100.0
            * ReachabilityEngine::new(&sys, self.algo.build(&sys).as_ref()).average(self.faults_k);
        CellOut {
            chiplets: sys.chiplet_count(),
            nodes: sys.node_count(),
            latency: report.avg_latency,
            reach,
        }
    }

    fn cache_key(&self) -> Option<CacheKey> {
        // The cell builds its own system from (cols, rows), so the grid
        // shape *is* the topology component of the key.
        Some(
            CacheKeyBuilder::new("scaling-cell")
                .u64("cols", self.cols as u64)
                .u64("rows", self.rows as u64)
                .str("algo", self.algo.name())
                .f64("rate", self.rate)
                .u64("faults_k", self.faults_k as u64)
                .u64(
                    "sim",
                    fingerprint_value(&self.cfg.run_sim(self.cols as u64 * 16 + self.rows as u64)),
                )
                .finish(),
        )
    }
}

/// Runs the scaling sweep at the given uniform injection rate: a campaign
/// over every `(grid shape, algorithm)` cell, merged into one row per size.
pub fn scaling_study(rate: f64, faults_k: usize, cfg: &ExpConfig) -> Vec<ScalingRow> {
    let grid: Vec<CellRun> = SCALING_GRIDS
        .iter()
        .flat_map(|&(cols, rows)| {
            Algo::MAIN.iter().map(move |&algo| CellRun {
                cols,
                rows,
                algo,
                rate,
                faults_k,
                cfg: cfg.clone(),
            })
        })
        .collect();
    let cells = Campaign::new("scaling study", grid).execute_policy(&cfg.policy());
    let pct = |base: f64, ours: f64| {
        if base > 0.0 {
            100.0 * (base - ours) / base
        } else {
            0.0
        }
    };
    cells
        .chunks_exact(Algo::MAIN.len())
        .map(|cell| {
            // Key by algorithm, not position, so reordering `Algo::MAIN`
            // can never silently swap the columns.
            let by_algo = |algo: Algo| {
                &cell[Algo::MAIN
                    .iter()
                    .position(|&a| a == algo)
                    .expect("algo in MAIN")]
            };
            let (deft, mtr, rc) = (by_algo(Algo::Deft), by_algo(Algo::Mtr), by_algo(Algo::Rc));
            ScalingRow {
                chiplets: deft.chiplets,
                nodes: deft.nodes,
                deft_latency: deft.latency,
                vs_mtr_percent: pct(mtr.latency, deft.latency),
                vs_rc_percent: pct(rc.latency, deft.latency),
                deft_reach: deft.reach,
                mtr_reach: mtr.reach,
                rc_reach: rc.reach,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_study_covers_2_to_8_chiplets() {
        let rows = scaling_study(0.003, 4, &ExpConfig::quick());
        let sizes: Vec<usize> = rows.iter().map(|r| r.chiplets).collect();
        assert_eq!(sizes, vec![2, 4, 6, 8]);
        for r in &rows {
            assert!(
                r.deft_latency > 0.0,
                "{} chiplets produced no traffic",
                r.chiplets
            );
            assert!(
                (r.deft_reach - 100.0).abs() < 1e-9,
                "DeFT stays fully reachable"
            );
            assert!(r.mtr_reach >= r.rc_reach - 1e-9);
            assert!(
                r.vs_rc_percent > 0.0,
                "{} chiplets: DeFT should beat RC, got {}%",
                r.chiplets,
                r.vs_rc_percent
            );
        }
    }
}
