//! Scaling study beyond the paper: latency and fault tolerance from 2 to 8
//! chiplets.
//!
//! The paper evaluates 4 and 6 chiplets and argues DeFT's efficiency "is
//! not limited by system size" (§IV-B). This extension sweeps chiplet-grid
//! sizes and reports, per size: DeFT's latency under uniform traffic, its
//! latency overhead vs the MTR and RC baselines, and the exact average
//! reachability of all three algorithms at a fixed 4-fault injection.

use super::{Algo, ExpConfig};
use deft_routing::reachability::ReachabilityEngine;
use deft_sim::Simulator;
use deft_topo::{ChipletSystem, FaultState};
use deft_traffic::uniform;
use serde::Serialize;

/// One system size's results.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Number of chiplets.
    pub chiplets: usize,
    /// Total nodes (cores + interposer routers).
    pub nodes: usize,
    /// DeFT average latency under uniform traffic at the probe rate.
    pub deft_latency: f64,
    /// DeFT improvement vs MTR in percent.
    pub vs_mtr_percent: f64,
    /// DeFT improvement vs RC in percent.
    pub vs_rc_percent: f64,
    /// Exact average reachability (%) with 4 faulty unidirectional VLs.
    pub deft_reach: f64,
    /// MTR average reachability (%) at the same fault count.
    pub mtr_reach: f64,
    /// RC average reachability (%) at the same fault count.
    pub rc_reach: f64,
}

/// The grid shapes swept: 2, 4, 6, and 8 chiplets.
pub const SCALING_GRIDS: [(u8, u8); 4] = [(2, 1), (2, 2), (3, 2), (4, 2)];

/// Runs the scaling sweep at the given uniform injection rate.
pub fn scaling_study(rate: f64, faults_k: usize, cfg: &ExpConfig) -> Vec<ScalingRow> {
    SCALING_GRIDS
        .iter()
        .map(|&(cols, rows)| {
            let sys = ChipletSystem::chiplet_grid(cols, rows).expect("valid grid");
            let pattern = uniform(&sys, rate);
            let run = |algo: Algo| {
                Simulator::new(
                    &sys,
                    FaultState::none(&sys),
                    algo.build(&sys),
                    &pattern,
                    cfg.run_sim(cols as u64 * 16 + rows as u64),
                )
                .run()
            };
            let deft = run(Algo::Deft);
            let mtr = run(Algo::Mtr);
            let rc = run(Algo::Rc);
            let pct = |base: f64, ours: f64| {
                if base > 0.0 {
                    100.0 * (base - ours) / base
                } else {
                    0.0
                }
            };
            let reach = |algo: Algo| {
                100.0 * ReachabilityEngine::new(&sys, algo.build(&sys).as_ref()).average(faults_k)
            };
            ScalingRow {
                chiplets: sys.chiplet_count(),
                nodes: sys.node_count(),
                deft_latency: deft.avg_latency,
                vs_mtr_percent: pct(mtr.avg_latency, deft.avg_latency),
                vs_rc_percent: pct(rc.avg_latency, deft.avg_latency),
                deft_reach: reach(Algo::Deft),
                mtr_reach: reach(Algo::Mtr),
                rc_reach: reach(Algo::Rc),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_study_covers_2_to_8_chiplets() {
        let rows = scaling_study(0.003, 4, &ExpConfig::quick());
        let sizes: Vec<usize> = rows.iter().map(|r| r.chiplets).collect();
        assert_eq!(sizes, vec![2, 4, 6, 8]);
        for r in &rows {
            assert!(
                r.deft_latency > 0.0,
                "{} chiplets produced no traffic",
                r.chiplets
            );
            assert!(
                (r.deft_reach - 100.0).abs() < 1e-9,
                "DeFT stays fully reachable"
            );
            assert!(r.mtr_reach >= r.rc_reach - 1e-9);
            assert!(
                r.vs_rc_percent > 0.0,
                "{} chiplets: DeFT should beat RC, got {}%",
                r.chiplets,
                r.vs_rc_percent
            );
        }
    }
}
