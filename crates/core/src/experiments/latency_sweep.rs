//! Latency-vs-injection-rate sweeps: Fig. 4 (synthetic patterns, DeFT vs
//! MTR vs RC) and Fig. 8 (VL-selection ablation under faults).

use super::{Algo, ExpConfig};
use crate::campaign::{Campaign, Run};
use deft_codec::{fingerprint_value, CacheKey, CacheKeyBuilder};
use deft_sim::{SimConfig, Simulator};
use deft_topo::{ChipletSystem, FaultState};
use deft_traffic::{hotspot, localized, uniform, TableTraffic};
use serde::Serialize;

/// The synthetic patterns of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynPattern {
    /// Uniform random (Fig. 4(a)/(d)).
    Uniform,
    /// 40 % intra-chiplet (Fig. 4(b)).
    Localized,
    /// Three 10 % hotspots (Fig. 4(c)).
    Hotspot,
}

impl SynPattern {
    /// Builds the pattern at the given per-node injection rate.
    pub fn build(self, sys: &ChipletSystem, rate: f64) -> TableTraffic {
        match self {
            SynPattern::Uniform => uniform(sys, rate),
            SynPattern::Localized => localized(sys, rate),
            SynPattern::Hotspot => hotspot(sys, rate, None),
        }
    }

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            SynPattern::Uniform => "Uniform",
            SynPattern::Localized => "Localized",
            SynPattern::Hotspot => "Hotspot",
        }
    }

    /// The paper's x-axis ranges (packets/cycle/node) per pattern for the
    /// 4-chiplet system.
    pub fn paper_rates(self) -> Vec<f64> {
        match self {
            SynPattern::Uniform => vec![0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008],
            SynPattern::Localized => {
                vec![0.001, 0.002, 0.004, 0.006, 0.008, 0.009, 0.010]
            }
            SynPattern::Hotspot => vec![0.001, 0.002, 0.003, 0.004, 0.005, 0.006],
        }
    }
}

/// One algorithm's latency curve.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyCurve {
    /// Algorithm display name.
    pub algorithm: String,
    /// `(injection rate, avg latency, delivery ratio)` per sweep point. A
    /// delivery ratio below ~0.9 marks saturation; latency there
    /// under-reports (undelivered packets excluded), as in open-loop NoC
    /// methodology.
    pub points: Vec<(f64, f64, f64)>,
}

/// One figure panel: several algorithms swept over the same rates.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySweep {
    /// Panel title ("Uniform - 4 Chiplets", ...).
    pub title: String,
    /// One curve per algorithm.
    pub curves: Vec<LatencyCurve>,
}

impl LatencySweep {
    /// The latency of `algo` at the sweep point nearest `rate`.
    pub fn latency_at(&self, algo: &str, rate: f64) -> Option<f64> {
        let curve = self.curves.iter().find(|c| c.algorithm == algo)?;
        curve
            .points
            .iter()
            .min_by(|a, b| {
                (a.0 - rate)
                    .abs()
                    .partial_cmp(&(b.0 - rate).abs())
                    .expect("finite rates")
            })
            .map(|p| p.1)
    }
}

/// Runs one Fig. 4 panel: the given synthetic pattern on `sys`, sweeping
/// `rates` for each algorithm in `algos`.
pub fn fig4(
    sys: &ChipletSystem,
    pattern: SynPattern,
    rates: &[f64],
    algos: &[Algo],
    cfg: &ExpConfig,
) -> LatencySweep {
    sweep(
        sys,
        &FaultState::none(sys),
        pattern,
        rates,
        algos,
        cfg,
        format!("{} - {} Chiplets", pattern.name(), sys.chiplet_count()),
    )
}

/// Runs one Fig. 8 panel: DeFT's VL-selection ablation under the given
/// fault state (the paper uses 4 and 8 faulty VLs ≙ 12.5 % and 25 %).
pub fn fig8(
    sys: &ChipletSystem,
    faults: &FaultState,
    rates: &[f64],
    cfg: &ExpConfig,
) -> LatencySweep {
    let pct = 100.0 * faults.faulty_count() as f64 / sys.unidirectional_vl_count() as f64;
    sweep(
        sys,
        faults,
        SynPattern::Uniform,
        rates,
        &Algo::ABLATION,
        cfg,
        format!("VL fault rate {pct:.1}% - {} Chiplets", sys.chiplet_count()),
    )
}

/// One grid cell of a latency sweep: a single `(algorithm, rate)` point,
/// simulated in isolation. The per-point seed travels inside `sim`, so the
/// result is a pure function of this struct.
struct PointRun<'a> {
    sys: &'a ChipletSystem,
    faults: &'a FaultState,
    pattern: SynPattern,
    algo: Algo,
    rate: f64,
    sim: SimConfig,
}

impl Run for PointRun<'_> {
    type Output = (f64, f64, f64);

    fn label(&self) -> String {
        format!(
            "{}/{} @ {:.4}",
            self.pattern.name(),
            self.algo.name(),
            self.rate
        )
    }

    fn execute(&self) -> (f64, f64, f64) {
        let traffic = self.pattern.build(self.sys, self.rate);
        let report = Simulator::new(
            self.sys,
            self.faults.clone(),
            self.algo.build(self.sys),
            &traffic,
            self.sim,
        )
        .run();
        assert!(
            !report.deadlocked,
            "{} deadlocked at rate {} under {}",
            self.algo.name(),
            self.rate,
            self.pattern.name()
        );
        (self.rate, report.avg_latency, report.delivery_ratio())
    }

    fn cache_key(&self) -> Option<CacheKey> {
        Some(
            CacheKeyBuilder::new("latency-point")
                .u64("sys", self.sys.fingerprint())
                .u64("faults", fingerprint_value(self.faults))
                .str("pattern", self.pattern.name())
                .str("algo", self.algo.name())
                .f64("rate", self.rate)
                .u64("sim", fingerprint_value(&self.sim))
                .finish(),
        )
    }
}

fn sweep(
    sys: &ChipletSystem,
    faults: &FaultState,
    pattern: SynPattern,
    rates: &[f64],
    algos: &[Algo],
    cfg: &ExpConfig,
    title: String,
) -> LatencySweep {
    let grid: Vec<PointRun> = algos
        .iter()
        .flat_map(|&algo| {
            rates.iter().enumerate().map(move |(i, &rate)| PointRun {
                sys,
                faults,
                pattern,
                algo,
                rate,
                sim: cfg.run_sim(i as u64),
            })
        })
        .collect();
    let mut points = Campaign::new(title.clone(), grid).execute_policy(&cfg.policy());
    let curves = algos
        .iter()
        .map(|&algo| LatencyCurve {
            algorithm: algo.name().to_owned(),
            points: points.drain(..rates.len()).collect(),
        })
        .collect();
    LatencySweep { title, curves }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_topo::{ChipletId, VlDir, VlLinkId};

    #[test]
    fn fig4_uniform_orders_algorithms_at_load() {
        let sys = ChipletSystem::baseline_4();
        let cfg = ExpConfig::quick();
        let sweep = fig4(&sys, SynPattern::Uniform, &[0.005], &Algo::MAIN, &cfg);
        let deft = sweep.latency_at("DeFT", 0.005).unwrap();
        let rc = sweep.latency_at("RC", 0.005).unwrap();
        assert!(deft > 0.0 && rc > 0.0);
        assert!(
            deft <= rc,
            "DeFT {deft} must not lose to RC {rc} under load"
        );
    }

    #[test]
    fn fig8_runs_all_ablation_variants_under_faults() {
        let sys = ChipletSystem::baseline_4();
        let mut faults = FaultState::none(&sys);
        for (c, i, d) in [
            (0u8, 0u8, VlDir::Down),
            (1, 1, VlDir::Up),
            (2, 2, VlDir::Down),
            (3, 3, VlDir::Up),
        ]
        .map(|(c, i, d)| (c, i, d))
        {
            faults.inject(VlLinkId {
                chiplet: ChipletId(c),
                index: i,
                dir: d,
            });
        }
        let cfg = ExpConfig::quick();
        let sweep = fig8(&sys, &faults, &[0.004], &cfg);
        assert_eq!(sweep.curves.len(), 3);
        assert!(sweep.title.contains("12.5%"));
        for c in &sweep.curves {
            assert!(c.points[0].1 > 0.0, "{} produced no latency", c.algorithm);
        }
    }

    #[test]
    fn paper_rate_axes_are_increasing() {
        for p in [
            SynPattern::Uniform,
            SynPattern::Localized,
            SynPattern::Hotspot,
        ] {
            let rates = p.paper_rates();
            assert!(rates.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
