//! Fig. 5: DeFT's VC utilization per region under synthetic traffic.

use super::latency_sweep::SynPattern;
use super::{Algo, ExpConfig};
use crate::campaign::{Campaign, Run};
use deft_codec::{
    fingerprint_value, CacheKey, CacheKeyBuilder, CodecError, Decoder, Encoder, Persist,
};
use deft_sim::{Region, SimConfig, Simulator};
use deft_topo::{ChipletSystem, FaultState};
use serde::Serialize;

/// One Fig. 5 row: a region's VC0/VC1 split in percent.
#[derive(Debug, Clone, Serialize)]
pub struct VcUtilRow {
    /// Region label ("Intrpsr.", "Chip.-1", ...).
    pub region: String,
    /// VC0 share in percent.
    pub vc0_percent: f64,
    /// VC1 share in percent.
    pub vc1_percent: f64,
}

impl Persist for VcUtilRow {
    fn encode(&self, enc: &mut Encoder) {
        self.region.encode(enc);
        enc.put_f64(self.vc0_percent);
        enc.put_f64(self.vc1_percent);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            region: String::decode(dec)?,
            vc0_percent: dec.get_f64()?,
            vc1_percent: dec.get_f64()?,
        })
    }
}

/// One Fig. 5 panel as a campaign cell: DeFT under one pattern at one rate.
struct PanelRun<'a> {
    sys: &'a ChipletSystem,
    pattern: SynPattern,
    rate: f64,
    sim: SimConfig,
}

impl Run for PanelRun<'_> {
    type Output = Vec<VcUtilRow>;

    fn label(&self) -> String {
        format!("fig5/{} @ {:.4}", self.pattern.name(), self.rate)
    }

    fn execute(&self) -> Vec<VcUtilRow> {
        let traffic = self.pattern.build(self.sys, self.rate);
        let report = Simulator::new(
            self.sys,
            FaultState::none(self.sys),
            Algo::Deft.build(self.sys),
            &traffic,
            self.sim,
        )
        .run();
        let mut rows: Vec<VcUtilRow> = report
            .vc_usage
            .iter()
            .map(|(region, usage)| {
                let vc0 = usage.vc0_percent();
                VcUtilRow {
                    region: region.to_string(),
                    vc0_percent: vc0,
                    vc1_percent: 100.0 - vc0,
                }
            })
            .collect();
        // Interposer first, then chiplets — the paper's x-axis order.
        rows.sort_by_key(|r| {
            if r.region == Region::Interposer.to_string() {
                0
            } else {
                1
            }
        });
        rows
    }

    fn cache_key(&self) -> Option<CacheKey> {
        Some(
            CacheKeyBuilder::new("fig5-panel")
                .u64("sys", self.sys.fingerprint())
                .str("pattern", self.pattern.name())
                .f64("rate", self.rate)
                .u64("sim", fingerprint_value(&self.sim))
                .finish(),
        )
    }
}

/// Runs DeFT under the given pattern at `rate` and reports the per-region
/// VC utilization (paper Fig. 5; the paper shows Uniform/Localized in one
/// chart — both balance to 50 % ± 0.4 % — and Hotspot separately).
pub fn fig5(
    sys: &ChipletSystem,
    pattern: SynPattern,
    rate: f64,
    cfg: &ExpConfig,
) -> Vec<VcUtilRow> {
    fig5_panels(sys, &[pattern], rate, cfg)
        .pop()
        .expect("one pattern in, one panel out")
        .1
}

/// Runs the full Fig. 5 chart — one panel per pattern — as a single
/// campaign, so the panels simulate in parallel under `cfg.jobs`.
pub fn fig5_panels(
    sys: &ChipletSystem,
    patterns: &[SynPattern],
    rate: f64,
    cfg: &ExpConfig,
) -> Vec<(SynPattern, Vec<VcUtilRow>)> {
    let grid: Vec<PanelRun> = patterns
        .iter()
        .map(|&pattern| PanelRun {
            sys,
            pattern,
            rate,
            sim: cfg.run_sim(0x5),
        })
        .collect();
    let panels = Campaign::new("fig5", grid).execute_policy(&cfg.policy());
    patterns.iter().copied().zip(panels).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_vc_split_is_balanced_like_fig5() {
        let sys = ChipletSystem::baseline_4();
        let rows = fig5(&sys, SynPattern::Uniform, 0.004, &ExpConfig::quick());
        assert_eq!(rows.len(), 5, "interposer + 4 chiplets");
        assert_eq!(rows[0].region, "Intrpsr.");
        for r in &rows {
            assert!(
                (r.vc0_percent - 50.0).abs() < 10.0,
                "{}: VC0 {}% too far from balance",
                r.region,
                r.vc0_percent
            );
            assert!((r.vc0_percent + r.vc1_percent - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hotspot_skews_vcs_more_than_uniform_but_stays_bounded() {
        // Paper: hotspot deviation < 8% with their exact hotspot placement
        // and full windows; the mechanism (incoming packets restricted to
        // VC1 back-pressure the hotspot chiplets) is what we check — the
        // skew exceeds uniform's but stays bounded well below full
        // starvation.
        let sys = ChipletSystem::baseline_4();
        let hot = fig5(&sys, SynPattern::Hotspot, 0.004, &ExpConfig::quick());
        let uni = fig5(&sys, SynPattern::Uniform, 0.004, &ExpConfig::quick());
        let max_dev = |rows: &[VcUtilRow]| {
            rows.iter()
                .map(|r| (r.vc0_percent - 50.0).abs())
                .fold(0.0, f64::max)
        };
        assert!(
            max_dev(&hot) > max_dev(&uni),
            "hotspot must skew more than uniform"
        );
        for r in &hot {
            assert!(
                (r.vc0_percent - 50.0).abs() <= 25.0,
                "{}: hotspot deviation {}% indicates VC starvation",
                r.region,
                (r.vc0_percent - 50.0).abs()
            );
        }
    }
}
