//! Fig. 5: DeFT's VC utilization per region under synthetic traffic.

use super::latency_sweep::SynPattern;
use super::{Algo, ExpConfig};
use deft_sim::{Region, Simulator};
use deft_topo::{ChipletSystem, FaultState};
use serde::Serialize;

/// One Fig. 5 row: a region's VC0/VC1 split in percent.
#[derive(Debug, Clone, Serialize)]
pub struct VcUtilRow {
    /// Region label ("Intrpsr.", "Chip.-1", ...).
    pub region: String,
    /// VC0 share in percent.
    pub vc0_percent: f64,
    /// VC1 share in percent.
    pub vc1_percent: f64,
}

/// Runs DeFT under the given pattern at `rate` and reports the per-region
/// VC utilization (paper Fig. 5; the paper shows Uniform/Localized in one
/// chart — both balance to 50 % ± 0.4 % — and Hotspot separately).
pub fn fig5(
    sys: &ChipletSystem,
    pattern: SynPattern,
    rate: f64,
    cfg: &ExpConfig,
) -> Vec<VcUtilRow> {
    let traffic = pattern.build(sys, rate);
    let report = Simulator::new(
        sys,
        FaultState::none(sys),
        Algo::Deft.build(sys),
        &traffic,
        cfg.run_sim(0x5),
    )
    .run();
    let mut rows: Vec<VcUtilRow> = report
        .vc_usage
        .iter()
        .map(|(region, usage)| {
            let vc0 = usage.vc0_percent();
            VcUtilRow {
                region: region.to_string(),
                vc0_percent: vc0,
                vc1_percent: 100.0 - vc0,
            }
        })
        .collect();
    // Interposer first, then chiplets — the paper's x-axis order.
    rows.sort_by_key(|r| {
        if r.region == Region::Interposer.to_string() {
            0
        } else {
            1
        }
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_vc_split_is_balanced_like_fig5() {
        let sys = ChipletSystem::baseline_4();
        let rows = fig5(&sys, SynPattern::Uniform, 0.004, &ExpConfig::quick());
        assert_eq!(rows.len(), 5, "interposer + 4 chiplets");
        assert_eq!(rows[0].region, "Intrpsr.");
        for r in &rows {
            assert!(
                (r.vc0_percent - 50.0).abs() < 10.0,
                "{}: VC0 {}% too far from balance",
                r.region,
                r.vc0_percent
            );
            assert!((r.vc0_percent + r.vc1_percent - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hotspot_skews_vcs_more_than_uniform_but_stays_bounded() {
        // Paper: hotspot deviation < 8% with their exact hotspot placement
        // and full windows; the mechanism (incoming packets restricted to
        // VC1 back-pressure the hotspot chiplets) is what we check — the
        // skew exceeds uniform's but stays bounded well below full
        // starvation.
        let sys = ChipletSystem::baseline_4();
        let hot = fig5(&sys, SynPattern::Hotspot, 0.004, &ExpConfig::quick());
        let uni = fig5(&sys, SynPattern::Uniform, 0.004, &ExpConfig::quick());
        let max_dev = |rows: &[VcUtilRow]| {
            rows.iter()
                .map(|r| (r.vc0_percent - 50.0).abs())
                .fold(0.0, f64::max)
        };
        assert!(
            max_dev(&hot) > max_dev(&uni),
            "hotspot must skew more than uniform"
        );
        for r in &hot {
            assert!(
                (r.vc0_percent - 50.0).abs() <= 25.0,
                "{}: hotspot deviation {}% indicates VC starvation",
                r.region,
                (r.vc0_percent - 50.0).abs()
            );
        }
    }
}
