//! Fig. 6: latency improvement of DeFT over MTR and RC under application
//! traffic (single applications and co-scheduled pairs).

use super::{Algo, ExpConfig};
use deft_sim::Simulator;
use deft_topo::{ChipletSystem, FaultState};
use deft_traffic::{multi_app, single_app, AppProfile, TableTraffic, TrafficPattern};
use serde::Serialize;

/// One Fig. 6 bar: DeFT's latency improvement for one workload.
#[derive(Debug, Clone, Serialize)]
pub struct AppImprovement {
    /// Workload label ("FA", "ST+FL", ...).
    pub label: String,
    /// DeFT average latency (cycles).
    pub deft_latency: f64,
    /// Improvement vs MTR in percent.
    pub vs_mtr_percent: f64,
    /// Improvement vs RC in percent.
    pub vs_rc_percent: f64,
}

fn improvement(
    sys: &ChipletSystem,
    traffic: &TableTraffic,
    cfg: &ExpConfig,
    salt: u64,
) -> AppImprovement {
    let run = |algo: Algo| {
        Simulator::new(
            sys,
            FaultState::none(sys),
            algo.build(sys),
            traffic,
            cfg.run_sim(salt),
        )
        .run()
    };
    let deft = run(Algo::Deft);
    let mtr = run(Algo::Mtr);
    let rc = run(Algo::Rc);
    let pct = |base: f64, ours: f64| {
        if base > 0.0 {
            100.0 * (base - ours) / base
        } else {
            0.0
        }
    };
    AppImprovement {
        label: traffic.name().to_owned(),
        deft_latency: deft.avg_latency,
        vs_mtr_percent: pct(mtr.avg_latency, deft.avg_latency),
        vs_rc_percent: pct(rc.avg_latency, deft.avg_latency),
    }
}

/// Fig. 6(a): one bar per single application, in the paper's order.
pub fn fig6_single(sys: &ChipletSystem, cfg: &ExpConfig) -> Vec<AppImprovement> {
    AppProfile::fig6a_order()
        .iter()
        .enumerate()
        .map(|(i, ab)| {
            let profile = AppProfile::by_abbrev(ab).expect("known abbreviation");
            let traffic = single_app(sys, profile, cfg.seed ^ i as u64);
            improvement(sys, &traffic, cfg, 0x6A00 + i as u64)
        })
        .collect()
}

/// Fig. 6(b): one bar per co-scheduled pair, sorted by load as in the
/// paper (low FA+FL to high ST+FL).
pub fn fig6_pairs(sys: &ChipletSystem, cfg: &ExpConfig) -> Vec<AppImprovement> {
    AppProfile::fig6b_pairs()
        .iter()
        .enumerate()
        .map(|(i, (a, b))| {
            let pa = AppProfile::by_abbrev(a).expect("known abbreviation");
            let pb = AppProfile::by_abbrev(b).expect("known abbreviation");
            let traffic = multi_app(sys, pa, pb, cfg.seed ^ (100 + i as u64));
            improvement(sys, &traffic, cfg, 0x6B00 + i as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_app_improvements_are_modest() {
        // Fig. 6(a): low congestion ⇒ small average improvement (paper: 3%
        // on average, all under ~7%).
        let sys = ChipletSystem::baseline_4();
        let cfg = ExpConfig::quick();
        let fa = AppProfile::by_abbrev("FA").unwrap();
        let traffic = single_app(&sys, fa, 1);
        let imp = improvement(&sys, &traffic, &cfg, 1);
        assert!(imp.deft_latency > 0.0);
        assert!(
            imp.vs_mtr_percent.abs() < 25.0,
            "vs MTR {}",
            imp.vs_mtr_percent
        );
        assert!(
            imp.vs_rc_percent > -5.0,
            "DeFT should not lose to RC: {}",
            imp.vs_rc_percent
        );
    }

    #[test]
    fn heavy_pair_beats_both_baselines() {
        // Fig. 6(b)'s right end: ST+FL congests the VLs and DeFT wins
        // clearly against RC (store-and-forward) and MTR (skewed VCs).
        let sys = ChipletSystem::baseline_4();
        let cfg = ExpConfig::quick();
        let st = AppProfile::by_abbrev("ST").unwrap();
        let fl = AppProfile::by_abbrev("FL").unwrap();
        let traffic = multi_app(&sys, st, fl, 7);
        let imp = improvement(&sys, &traffic, &cfg, 7);
        assert!(imp.vs_rc_percent > 0.0, "vs RC {}", imp.vs_rc_percent);
        assert!(imp.vs_mtr_percent > -10.0, "vs MTR {}", imp.vs_mtr_percent);
    }
}
