//! Fig. 6: latency improvement of DeFT over MTR and RC under application
//! traffic (single applications and co-scheduled pairs).

use super::{Algo, ExpConfig};
use crate::campaign::{Campaign, Run};
use deft_codec::{fingerprint_value, CacheKey, CacheKeyBuilder};
use deft_sim::{SimConfig, Simulator};
use deft_topo::{ChipletSystem, FaultState};
use deft_traffic::{multi_app, single_app, AppProfile, TableTraffic, TrafficPattern};
use serde::Serialize;

/// One Fig. 6 bar: DeFT's latency improvement for one workload.
#[derive(Debug, Clone, Serialize)]
pub struct AppImprovement {
    /// Workload label ("FA", "ST+FL", ...).
    pub label: String,
    /// DeFT average latency (cycles).
    pub deft_latency: f64,
    /// Improvement vs MTR in percent.
    pub vs_mtr_percent: f64,
    /// Improvement vs RC in percent.
    pub vs_rc_percent: f64,
}

/// One `(workload, algorithm)` cell of a Fig. 6 panel. The traffic tables
/// are shared immutably across the cells of a workload; each cell builds
/// its own simulator and algorithm instance.
struct AppRun<'a> {
    sys: &'a ChipletSystem,
    traffic: &'a TableTraffic,
    algo: Algo,
    sim: SimConfig,
}

impl Run for AppRun<'_> {
    /// The run's average packet latency in cycles.
    type Output = f64;

    fn label(&self) -> String {
        format!("fig6/{}/{}", self.traffic.name(), self.algo.name())
    }

    fn execute(&self) -> f64 {
        Simulator::new(
            self.sys,
            FaultState::none(self.sys),
            self.algo.build(self.sys),
            self.traffic,
            self.sim,
        )
        .run()
        .avg_latency
    }

    fn cache_key(&self) -> Option<CacheKey> {
        Some(
            CacheKeyBuilder::new("fig6-app")
                .u64("sys", self.sys.fingerprint())
                .u64("traffic", self.traffic.fingerprint())
                .str("algo", self.algo.name())
                .u64("sim", fingerprint_value(&self.sim))
                .finish(),
        )
    }
}

/// Runs every `(workload, algorithm)` combination as one campaign and
/// folds each workload's three latencies into an [`AppImprovement`] bar.
fn improvements(
    sys: &ChipletSystem,
    workloads: &[(TableTraffic, u64)],
    cfg: &ExpConfig,
) -> Vec<AppImprovement> {
    let grid: Vec<AppRun> = workloads
        .iter()
        .flat_map(|(traffic, salt)| {
            Algo::MAIN.iter().map(move |&algo| AppRun {
                sys,
                traffic,
                algo,
                sim: cfg.run_sim(*salt),
            })
        })
        .collect();
    let latencies = Campaign::new("fig6", grid).execute_policy(&cfg.policy());
    let pct = |base: f64, ours: f64| {
        if base > 0.0 {
            100.0 * (base - ours) / base
        } else {
            0.0
        }
    };
    workloads
        .iter()
        .zip(latencies.chunks_exact(Algo::MAIN.len()))
        .map(|((traffic, _), lat)| {
            // Key by algorithm, not position, so reordering `Algo::MAIN`
            // can never silently swap the columns.
            let by_algo = |algo: Algo| {
                lat[Algo::MAIN
                    .iter()
                    .position(|&a| a == algo)
                    .expect("algo in MAIN")]
            };
            let deft = by_algo(Algo::Deft);
            AppImprovement {
                label: traffic.name().to_owned(),
                deft_latency: deft,
                vs_mtr_percent: pct(by_algo(Algo::Mtr), deft),
                vs_rc_percent: pct(by_algo(Algo::Rc), deft),
            }
        })
        .collect()
}

/// One workload's improvement bar (kept for focused tests; the figure
/// runners batch all workloads into a single campaign).
#[cfg(test)]
fn improvement(
    sys: &ChipletSystem,
    traffic: &TableTraffic,
    cfg: &ExpConfig,
    salt: u64,
) -> AppImprovement {
    improvements(sys, &[(traffic.clone(), salt)], cfg)
        .pop()
        .expect("one workload in, one bar out")
}

/// Fig. 6(a): one bar per single application, in the paper's order.
pub fn fig6_single(sys: &ChipletSystem, cfg: &ExpConfig) -> Vec<AppImprovement> {
    let workloads: Vec<(TableTraffic, u64)> = AppProfile::fig6a_order()
        .iter()
        .enumerate()
        .map(|(i, ab)| {
            let profile = AppProfile::by_abbrev(ab).expect("known abbreviation");
            (
                single_app(sys, profile, cfg.seed ^ i as u64),
                0x6A00 + i as u64,
            )
        })
        .collect();
    improvements(sys, &workloads, cfg)
}

/// Fig. 6(b): one bar per co-scheduled pair, sorted by load as in the
/// paper (low FA+FL to high ST+FL).
pub fn fig6_pairs(sys: &ChipletSystem, cfg: &ExpConfig) -> Vec<AppImprovement> {
    let workloads: Vec<(TableTraffic, u64)> = AppProfile::fig6b_pairs()
        .iter()
        .enumerate()
        .map(|(i, (a, b))| {
            let pa = AppProfile::by_abbrev(a).expect("known abbreviation");
            let pb = AppProfile::by_abbrev(b).expect("known abbreviation");
            (
                multi_app(sys, pa, pb, cfg.seed ^ (100 + i as u64)),
                0x6B00 + i as u64,
            )
        })
        .collect();
    improvements(sys, &workloads, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_app_improvements_are_modest() {
        // Fig. 6(a): low congestion ⇒ small average improvement (paper: 3%
        // on average, all under ~7%).
        let sys = ChipletSystem::baseline_4();
        let cfg = ExpConfig::quick();
        let fa = AppProfile::by_abbrev("FA").unwrap();
        let traffic = single_app(&sys, fa, 1);
        let imp = improvement(&sys, &traffic, &cfg, 1);
        assert!(imp.deft_latency > 0.0);
        assert!(
            imp.vs_mtr_percent.abs() < 25.0,
            "vs MTR {}",
            imp.vs_mtr_percent
        );
        assert!(
            imp.vs_rc_percent > -5.0,
            "DeFT should not lose to RC: {}",
            imp.vs_rc_percent
        );
    }

    #[test]
    fn heavy_pair_beats_both_baselines() {
        // Fig. 6(b)'s right end: ST+FL congests the VLs and DeFT wins
        // clearly against RC (store-and-forward) and MTR (skewed VCs).
        let sys = ChipletSystem::baseline_4();
        let cfg = ExpConfig::quick();
        let st = AppProfile::by_abbrev("ST").unwrap();
        let fl = AppProfile::by_abbrev("FL").unwrap();
        let traffic = multi_app(&sys, st, fl, 7);
        let imp = improvement(&sys, &traffic, &cfg, 7);
        assert!(imp.vs_rc_percent > 0.0, "vs RC {}", imp.vs_rc_percent);
        assert!(imp.vs_mtr_percent > -10.0, "vs MTR {}", imp.vs_mtr_percent);
    }
}
