//! Monte-Carlo fault sweep over forked simulators.
//!
//! The question every recovery-style experiment asks — "how much does a
//! fault future cost?" — has a shared structure: the run up to the fault
//! is *identical* across samples. A cold Monte-Carlo sweep re-simulates
//! that shared prefix for every sample; this experiment simulates it
//! **once** per algorithm, then branches `K` independently-seeded
//! transient fault timelines off the warm state with
//! [`Simulator::fork_with_timeline`]. Each branch replays only the
//! suffix (a quarter of the generation window plus drain), so the sweep
//! completes in a fraction of the cold wall time — the speedup is
//! tracked as the `fork-sweep-k200` cells of `BENCH_sim.json`.
//!
//! Every algorithm faces the *same* `K` timelines and the same traffic
//! prefix seed, so the per-algorithm rows are directly comparable, and
//! the per-branch loss/recovery samples aggregate into means with 95%
//! confidence intervals (`1.96·s/√K`) — the statistical payoff of
//! running hundreds of futures instead of [`RECOVERY_SEEDS`](
//! super::RECOVERY_SEEDS) replicas.

use super::{Algo, ExpConfig, RECOVERY_RATE};
use deft_sim::{SimReport, Simulator};
use deft_topo::{ChipletSystem, FaultState, FaultTimeline, TransientConfig};
use deft_traffic::uniform;
use serde::Serialize;

/// Fault futures branched per algorithm in the full experiment.
pub const FORK_SWEEP_K: usize = 200;

/// The cycle the sweep branches at: three quarters into the generation
/// window, so every branch inherits a warm network (in-flight worms,
/// populated source queues) and still generates measured traffic under
/// its faults.
pub fn fork_sweep_cycle(cfg: &ExpConfig) -> u64 {
    cfg.sim.warmup + cfg.sim.measure * 3 / 4
}

/// The `K` branch timelines: independently-seeded transient fault
/// processes over the post-fork window, shifted past the fork point so
/// every fault a branch sees lies in its own future. Deterministic per
/// `(system, cfg, forks)`.
pub fn fork_sweep_timelines(
    sys: &ChipletSystem,
    cfg: &ExpConfig,
    forks: usize,
) -> Vec<FaultTimeline> {
    let fork_cycle = fork_sweep_cycle(cfg);
    let window = (cfg.sim.warmup + cfg.sim.measure).saturating_sub(fork_cycle);
    let w = window.max(1) as f64;
    (0..forks as u64)
        .map(|k| {
            FaultTimeline::transient(
                sys,
                &TransientConfig {
                    mean_healthy: w * 2.0,
                    mean_faulty: w / 6.0,
                    horizon: window,
                    seed: cfg.seed ^ (0xF0A4 + k.wrapping_mul(0x9E37_79B9)),
                },
            )
            .shifted(fork_cycle)
        })
        .collect()
}

/// One row of the fork-sweep report: `forks` branched futures of one
/// algorithm, aggregated.
#[derive(Debug, Clone, Serialize)]
pub struct ForkSweepRow {
    /// Algorithm display name.
    pub algorithm: String,
    /// Fault futures branched (the sample count behind the intervals).
    pub forks: usize,
    /// Cycle the branches forked at ([`fork_sweep_cycle`]).
    pub fork_cycle: u64,
    /// Mean packets lost per branch (dropped unroutable + lost in
    /// flight).
    pub mean_losses: f64,
    /// 95% confidence half-width of [`mean_losses`](Self::mean_losses).
    pub ci95_losses: f64,
    /// Mean per-branch recovery latency (cycles until losses cease after
    /// a fault transition, averaged over the branch's transitions).
    pub mean_recovery_latency: f64,
    /// 95% confidence half-width of
    /// [`mean_recovery_latency`](Self::mean_recovery_latency).
    pub ci95_recovery_latency: f64,
    /// Mean delivered-packet latency across branches, in cycles.
    pub mean_latency: f64,
}

/// Sample mean and 95% confidence half-width (`1.96·s/√n`, sample
/// standard deviation). `(0, 0)` for an empty slice, zero half-width for
/// a single sample.
fn mean_ci95(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

/// Per-branch loss and recovery samples folded out of one branch report.
fn branch_samples(report: &SimReport) -> (f64, f64, f64) {
    let transitions = report.epochs.len().saturating_sub(1);
    let recovery = if transitions == 0 {
        0.0
    } else {
        report.epochs[1..]
            .iter()
            .map(|e| e.recovery_latency() as f64)
            .sum::<f64>()
            / transitions as f64
    };
    (report.total_losses() as f64, recovery, report.avg_latency)
}

/// Runs the fork sweep: for each of the paper's three algorithms,
/// simulate uniform traffic at [`RECOVERY_RATE`] fault-free up to
/// [`fork_sweep_cycle`] once, then branch `forks` transient fault
/// futures ([`fork_sweep_timelines`]) off the warm state and aggregate
/// their losses and recovery latencies. Branches run serially — the
/// shared-prefix reuse, not thread fan-out, is the speedup this
/// experiment exists to exercise — and the result is deterministic per
/// `(system, cfg, forks)`.
///
/// # Panics
/// Panics if the fork cycle is unreachable (a branch ran dry before the
/// fork point) or a branch deadlocks.
pub fn fork_sweep(sys: &ChipletSystem, cfg: &ExpConfig, forks: usize) -> Vec<ForkSweepRow> {
    let fork_cycle = fork_sweep_cycle(cfg);
    let timelines = fork_sweep_timelines(sys, cfg, forks);
    let pattern = uniform(sys, RECOVERY_RATE);
    Algo::MAIN
        .iter()
        .map(|&algo| {
            let mut base = Simulator::new(
                sys,
                FaultState::none(sys),
                algo.build(sys),
                &pattern,
                cfg.run_sim(0xF0),
            );
            base.start();
            let done = base.advance_to(fork_cycle);
            assert!(!done, "run ended before the fork cycle {fork_cycle}");

            let mut losses = Vec::with_capacity(forks);
            let mut recovery = Vec::with_capacity(forks);
            let mut latency = Vec::with_capacity(forks);
            for tl in &timelines {
                let report = base.fork_with_timeline(tl).finish();
                assert!(!report.deadlocked, "{} branch deadlocked", algo.name());
                let (l, r, a) = branch_samples(&report);
                losses.push(l);
                recovery.push(r);
                latency.push(a);
            }
            let (mean_losses, ci95_losses) = mean_ci95(&losses);
            let (mean_recovery_latency, ci95_recovery_latency) = mean_ci95(&recovery);
            let (mean_latency, _) = mean_ci95(&latency);
            ForkSweepRow {
                algorithm: algo.name().to_owned(),
                forks,
                fork_cycle,
                mean_losses,
                ci95_losses,
                mean_recovery_latency,
                ci95_recovery_latency,
                mean_latency,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        let mut cfg = ExpConfig::quick();
        cfg.sim.warmup = 100;
        cfg.sim.measure = 1_200;
        cfg.sim.drain = 10_000;
        cfg
    }

    #[test]
    fn timelines_are_deterministic_distinct_and_post_fork() {
        let sys = ChipletSystem::baseline_4();
        let cfg = tiny_cfg();
        let a = fork_sweep_timelines(&sys, &cfg, 4);
        let b = fork_sweep_timelines(&sys, &cfg, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let fork_cycle = fork_sweep_cycle(&cfg);
        for tl in &a {
            assert!(!tl.is_empty(), "transient window generated no events");
            assert!(tl.events().iter().all(|e| e.cycle >= fork_cycle));
        }
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "branch seeds must differ"
        );
    }

    #[test]
    fn sweep_aggregates_branches_per_algorithm() {
        let sys = ChipletSystem::baseline_4();
        let rows = fork_sweep(&sys, &tiny_cfg(), 6);
        assert_eq!(rows.len(), Algo::MAIN.len());
        for r in &rows {
            assert_eq!(r.forks, 6);
            assert_eq!(r.fork_cycle, fork_sweep_cycle(&tiny_cfg()));
            assert!(r.mean_latency > 0.0, "{} delivered nothing", r.algorithm);
            assert!(r.ci95_losses >= 0.0);
            assert!(r.ci95_recovery_latency >= 0.0);
        }
        // The sweep's faults land mid-flight, so losses occur somewhere.
        assert!(
            rows.iter().any(|r| r.mean_losses > 0.0),
            "no branch lost anything: {rows:?}"
        );
    }

    #[test]
    fn ci_helper_matches_hand_computation() {
        let (m, ci) = mean_ci95(&[1.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        // s = sqrt(2), half-width = 1.96 * sqrt(2)/sqrt(2) = 1.96.
        assert!((ci - 1.96).abs() < 1e-12);
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_ci95(&[5.0]), (5.0, 0.0));
    }
}
