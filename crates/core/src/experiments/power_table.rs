//! Table I (router area & power) through the campaign runner.
//!
//! The estimates themselves live in `deft-power`; this module expands the
//! table into one [`Run`] per router variant so `deft-repro --jobs N`
//! treats the hardware-cost path uniformly with the simulation-backed
//! experiments. Each row normalizes against the MTR reference internally
//! ([`deft_power::table1_row`]), so rows are order-independent and the
//! campaign merge reproduces [`deft_power::table1`] exactly.

use crate::campaign::{default_jobs, CacheStore, Campaign, ExecPolicy, Run};
use deft_codec::{CacheKey, CacheKeyBuilder};
use deft_power::{table1_row, table1_variants, RouterParams, RouterVariant, Table1Row, Tech45nm};

/// One Table I row as a campaign cell.
struct VariantRun<'a> {
    params: &'a RouterParams,
    tech: &'a Tech45nm,
    variant: RouterVariant,
}

impl Run for VariantRun<'_> {
    type Output = Table1Row;

    fn label(&self) -> String {
        format!("table1/{:?}", self.variant)
    }

    fn execute(&self) -> Table1Row {
        table1_row(self.params, self.tech, self.variant)
    }

    fn cache_key(&self) -> Option<CacheKey> {
        Some(
            CacheKeyBuilder::new("table1-row")
                .u64("params", self.params.fingerprint())
                .u64("tech", self.tech.fingerprint())
                .u64("variant", self.variant.fingerprint())
                .finish(),
        )
    }
}

/// Regenerates Table I with the default worker count. Identical to
/// [`deft_power::table1`] row for row.
pub fn table1_campaign(params: &RouterParams, tech: &Tech45nm) -> Vec<Table1Row> {
    table1_campaign_jobs(params, tech, default_jobs())
}

/// [`table1_campaign`] with an explicit worker count (`1` = strictly
/// serial).
pub fn table1_campaign_jobs(params: &RouterParams, tech: &Tech45nm, jobs: usize) -> Vec<Table1Row> {
    table1_campaign_cached(params, tech, jobs, None)
}

/// [`table1_campaign_jobs`] with an optional memoized result store.
pub fn table1_campaign_cached(
    params: &RouterParams,
    tech: &Tech45nm,
    jobs: usize,
    cache: Option<&CacheStore>,
) -> Vec<Table1Row> {
    Campaign::new("table1", table1_grid(params, tech))
        .jobs(jobs)
        .execute_cached(cache)
}

/// [`table1_campaign`] under a full [`ExecPolicy`] — the variant
/// `deft-repro` routes through, so the table runs in-process,
/// supervised, or served identically.
pub fn table1_campaign_with(
    params: &RouterParams,
    tech: &Tech45nm,
    policy: &ExecPolicy,
) -> Vec<Table1Row> {
    Campaign::new("table1", table1_grid(params, tech)).execute_policy(policy)
}

fn table1_grid<'a>(params: &'a RouterParams, tech: &'a Tech45nm) -> Vec<VariantRun<'a>> {
    table1_variants()
        .into_iter()
        .map(|variant| VariantRun {
            params,
            tech,
            variant,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_power::table1;

    #[test]
    fn campaign_rows_match_the_serial_table_exactly() {
        let params = RouterParams::paper_default();
        let tech = Tech45nm::default();
        let serial = table1(&params, &tech);
        for jobs in [1, 4] {
            let parallel = table1_campaign_jobs(&params, &tech, jobs);
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.variant, s.variant);
                assert_eq!(p.area_um2.to_bits(), s.area_um2.to_bits());
                assert_eq!(p.norm_area.to_bits(), s.norm_area.to_bits());
                assert_eq!(p.power_mw.to_bits(), s.power_mw.to_bits());
                assert_eq!(p.norm_power.to_bits(), s.norm_power.to_bits());
            }
        }
    }
}
