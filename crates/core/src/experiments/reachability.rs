//! Fig. 7: reachability vs number of faulty VLs — exact analysis.

use super::Algo;
use deft_routing::reachability::ReachabilityEngine;
use deft_topo::ChipletSystem;
use serde::Serialize;

/// The five curves of one Fig. 7 panel, values in percent per fault count
/// `k = 1..=k_max`.
#[derive(Debug, Clone, Serialize)]
pub struct ReachabilityCurves {
    /// Fault counts (x axis).
    pub k: Vec<usize>,
    /// DeFT (worst case equals average: both 100 % while no chiplet is
    /// disconnected).
    pub deft: Vec<f64>,
    /// MTR average case.
    pub mtr_avg: Vec<f64>,
    /// MTR worst case.
    pub mtr_worst: Vec<f64>,
    /// RC average case.
    pub rc_avg: Vec<f64>,
    /// RC worst case.
    pub rc_worst: Vec<f64>,
}

/// Computes the Fig. 7 panel for `sys` with fault counts `1..=k_max`
/// (the paper uses `k_max = 8` for both the 4- and 6-chiplet systems).
pub fn fig7(sys: &ChipletSystem, k_max: usize) -> ReachabilityCurves {
    let deft_engine = ReachabilityEngine::new(sys, Algo::Deft.build(sys).as_ref());
    let mtr_engine = ReachabilityEngine::new(sys, Algo::Mtr.build(sys).as_ref());
    let rc_engine = ReachabilityEngine::new(sys, Algo::Rc.build(sys).as_ref());

    let ks: Vec<usize> = (1..=k_max).collect();
    let pct = |v: f64| 100.0 * v;
    ReachabilityCurves {
        deft: ks.iter().map(|&k| pct(deft_engine.average(k))).collect(),
        mtr_avg: ks.iter().map(|&k| pct(mtr_engine.average(k))).collect(),
        mtr_worst: ks.iter().map(|&k| pct(mtr_engine.worst_case(k))).collect(),
        rc_avg: ks.iter().map(|&k| pct(rc_engine.average(k))).collect(),
        rc_worst: ks.iter().map(|&k| pct(rc_engine.worst_case(k))).collect(),
        k: ks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_4_chiplets_matches_the_papers_shape() {
        let sys = ChipletSystem::baseline_4();
        let curves = fig7(&sys, 8);
        // DeFT: complete reachability across the whole axis.
        assert!(curves.deft.iter().all(|&r| (r - 100.0).abs() < 1e-9));
        // Averages decrease monotonically with more faults.
        for w in curves.mtr_avg.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        for w in curves.rc_avg.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        // Ordering: DeFT >= MTR-Avg >= RC-Avg; worst <= avg.
        for i in 0..curves.k.len() {
            assert!(curves.deft[i] >= curves.mtr_avg[i]);
            assert!(curves.mtr_avg[i] >= curves.rc_avg[i] - 1e-9);
            assert!(curves.mtr_worst[i] <= curves.mtr_avg[i] + 1e-9);
            assert!(curves.rc_worst[i] <= curves.rc_avg[i] + 1e-9);
        }
        // MTR worst case tolerates exactly one fault (two VLs per facing
        // half); RC tolerates none.
        assert!((curves.mtr_worst[0] - 100.0).abs() < 1e-9);
        assert!(curves.mtr_worst[1] < 100.0);
        assert!(curves.rc_worst[0] < 100.0);
    }

    #[test]
    fn six_chiplet_panel_is_computable_and_ordered() {
        let sys = ChipletSystem::baseline_6();
        let curves = fig7(&sys, 4);
        for i in 0..curves.k.len() {
            assert!((curves.deft[i] - 100.0).abs() < 1e-9);
            assert!(curves.mtr_avg[i] >= curves.rc_avg[i] - 1e-9);
        }
        assert!(
            (curves.mtr_worst[0] - 100.0).abs() < 1e-9,
            "one fault is dodged"
        );
    }
}
