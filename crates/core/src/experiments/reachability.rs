//! Fig. 7: reachability vs number of faulty VLs — exact analysis.

use super::Algo;
use crate::campaign::{default_jobs, CacheStore, Campaign, ExecPolicy, Run};
use deft_codec::{CacheKey, CacheKeyBuilder};
use deft_routing::reachability::ReachabilityEngine;
use deft_topo::ChipletSystem;
use serde::Serialize;

/// The five curves of one Fig. 7 panel, values in percent per fault count
/// `k = 1..=k_max`.
#[derive(Debug, Clone, Serialize)]
pub struct ReachabilityCurves {
    /// Fault counts (x axis).
    pub k: Vec<usize>,
    /// DeFT (worst case equals average: both 100 % while no chiplet is
    /// disconnected).
    pub deft: Vec<f64>,
    /// MTR average case.
    pub mtr_avg: Vec<f64>,
    /// MTR worst case.
    pub mtr_worst: Vec<f64>,
    /// RC average case.
    pub rc_avg: Vec<f64>,
    /// RC worst case.
    pub rc_worst: Vec<f64>,
}

/// One Fig. 7 campaign cell: every average (and, for the baselines, worst
/// case) value of a single algorithm's curve. The engine is built inside
/// the run so each worker owns its state.
struct AlgoCurveRun<'a> {
    sys: &'a ChipletSystem,
    algo: Algo,
    k_max: usize,
    want_worst: bool,
}

impl Run for AlgoCurveRun<'_> {
    /// `(average %, worst-case %)` per `k`; `worst` is empty when not
    /// requested.
    type Output = (Vec<f64>, Vec<f64>);

    fn label(&self) -> String {
        format!("fig7/{} k<={}", self.algo.name(), self.k_max)
    }

    fn execute(&self) -> (Vec<f64>, Vec<f64>) {
        let engine = ReachabilityEngine::new(self.sys, self.algo.build(self.sys).as_ref());
        let avg = (1..=self.k_max)
            .map(|k| 100.0 * engine.average(k))
            .collect();
        let worst = if self.want_worst {
            (1..=self.k_max)
                .map(|k| 100.0 * engine.worst_case(k))
                .collect()
        } else {
            Vec::new()
        };
        (avg, worst)
    }

    fn cache_key(&self) -> Option<CacheKey> {
        // The analysis is exact (no seeds, no simulation windows): the
        // topology, algorithm, axis length, and worst-case flag determine
        // the curves completely.
        Some(
            CacheKeyBuilder::new("fig7-curve")
                .u64("sys", self.sys.fingerprint())
                .str("algo", self.algo.name())
                .u64("k_max", self.k_max as u64)
                .bool("want_worst", self.want_worst)
                .finish(),
        )
    }
}

/// Computes the Fig. 7 panel for `sys` with fault counts `1..=k_max`
/// (the paper uses `k_max = 8` for both the 4- and 6-chiplet systems),
/// fanning the per-algorithm curves out over the default worker count.
pub fn fig7(sys: &ChipletSystem, k_max: usize) -> ReachabilityCurves {
    fig7_jobs(sys, k_max, default_jobs())
}

/// [`fig7`] with an explicit worker count (`1` = strictly serial). The
/// analysis is exact, so the curves are identical for every `jobs` value.
pub fn fig7_jobs(sys: &ChipletSystem, k_max: usize, jobs: usize) -> ReachabilityCurves {
    fig7_cached(sys, k_max, jobs, None)
}

/// [`fig7_jobs`] with an optional memoized result store: each algorithm's
/// curve probes the store first and is only recomputed on a miss.
pub fn fig7_cached(
    sys: &ChipletSystem,
    k_max: usize,
    jobs: usize,
    cache: Option<&CacheStore>,
) -> ReachabilityCurves {
    fig7_finish(
        k_max,
        Campaign::new("fig7", fig7_grid(sys, k_max))
            .jobs(jobs)
            .execute_cached(cache),
    )
}

/// [`fig7`] under a full [`ExecPolicy`] — the variant `deft-repro`
/// routes through, so the panel runs in-process, supervised, or served
/// identically (see
/// [`Campaign::execute_policy`](crate::campaign::Campaign::execute_policy)).
pub fn fig7_with(sys: &ChipletSystem, k_max: usize, policy: &ExecPolicy) -> ReachabilityCurves {
    fig7_finish(
        k_max,
        Campaign::new("fig7", fig7_grid(sys, k_max)).execute_policy(policy),
    )
}

fn fig7_grid(sys: &ChipletSystem, k_max: usize) -> Vec<AlgoCurveRun<'_>> {
    vec![
        AlgoCurveRun {
            sys,
            algo: Algo::Deft,
            k_max,
            want_worst: false,
        },
        AlgoCurveRun {
            sys,
            algo: Algo::Mtr,
            k_max,
            want_worst: true,
        },
        AlgoCurveRun {
            sys,
            algo: Algo::Rc,
            k_max,
            want_worst: true,
        },
    ]
}

fn fig7_finish(k_max: usize, mut curves: Vec<(Vec<f64>, Vec<f64>)>) -> ReachabilityCurves {
    let (rc_avg, rc_worst) = curves.pop().expect("RC curve");
    let (mtr_avg, mtr_worst) = curves.pop().expect("MTR curve");
    let (deft, _) = curves.pop().expect("DeFT curve");
    ReachabilityCurves {
        k: (1..=k_max).collect(),
        deft,
        mtr_avg,
        mtr_worst,
        rc_avg,
        rc_worst,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_4_chiplets_matches_the_papers_shape() {
        let sys = ChipletSystem::baseline_4();
        let curves = fig7(&sys, 8);
        // DeFT: complete reachability across the whole axis.
        assert!(curves.deft.iter().all(|&r| (r - 100.0).abs() < 1e-9));
        // Averages decrease monotonically with more faults.
        for w in curves.mtr_avg.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        for w in curves.rc_avg.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        // Ordering: DeFT >= MTR-Avg >= RC-Avg; worst <= avg.
        for i in 0..curves.k.len() {
            assert!(curves.deft[i] >= curves.mtr_avg[i]);
            assert!(curves.mtr_avg[i] >= curves.rc_avg[i] - 1e-9);
            assert!(curves.mtr_worst[i] <= curves.mtr_avg[i] + 1e-9);
            assert!(curves.rc_worst[i] <= curves.rc_avg[i] + 1e-9);
        }
        // MTR worst case tolerates exactly one fault (two VLs per facing
        // half); RC tolerates none.
        assert!((curves.mtr_worst[0] - 100.0).abs() < 1e-9);
        assert!(curves.mtr_worst[1] < 100.0);
        assert!(curves.rc_worst[0] < 100.0);
    }

    #[test]
    fn six_chiplet_panel_is_computable_and_ordered() {
        let sys = ChipletSystem::baseline_6();
        let curves = fig7(&sys, 4);
        for i in 0..curves.k.len() {
            assert!((curves.deft[i] - 100.0).abs() < 1e-9);
            assert!(curves.mtr_avg[i] >= curves.rc_avg[i] - 1e-9);
        }
        assert!(
            (curves.mtr_worst[0] - 100.0).abs() < 1e-9,
            "one fault is dodged"
        );
    }
}
