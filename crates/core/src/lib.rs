//! # deft — deadlock-free and fault-tolerant routing for 2.5D chiplet networks
//!
//! A complete, from-scratch reproduction of **"DeFT: A Deadlock-Free and
//! Fault-Tolerant Routing Algorithm for 2.5D Chiplet Networks"**
//! (Taheri, Pasricha, Nikdast — DATE 2022). This facade crate re-exports the
//! whole stack and adds the experiment harness that regenerates every table
//! and figure of the paper's evaluation:
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | topology | `deft-topo` | chiplets + interposer + vertical links + faults |
//! | routing  | `deft-routing` | DeFT, MTR, RC, ablations, CDG verifier, reachability |
//! | simulator | `deft-sim` | cycle-accurate wormhole NoC simulation |
//! | traffic | `deft-traffic` | synthetic patterns + PARSEC-substitute profiles |
//! | power | `deft-power` | ORION-class router area/power model |
//! | experiments | this crate | Fig. 4–8 and Table I runners, campaign fan-out, reports |
//!
//! Every experiment expands into a grid of independent runs (algorithm ×
//! injection rate × fault scenario × seed) executed by the
//! [`campaign`] runner: `deft-repro --jobs N` fans the grid out over `N`
//! threads and merges results in grid order, byte-identical to `--jobs 1`.
//!
//! ## Quickstart
//!
//! ```
//! use deft::prelude::*;
//!
//! let sys = ChipletSystem::baseline_4();
//! let pattern = uniform(&sys, 0.003);
//! let cfg = SimConfig { warmup: 300, measure: 1_500, ..SimConfig::default() };
//! let report = Simulator::new(
//!     &sys,
//!     FaultState::none(&sys),
//!     Box::new(DeftRouting::new(&sys)),
//!     &pattern,
//!     cfg,
//! )
//! .run();
//! assert!(!report.deadlocked);
//! ```
//!
//! See `examples/` for runnable scenarios and `deft-repro` (this crate's
//! binary) for the full paper-reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod experiments;
pub mod report;

pub use deft_codec as codec;
pub use deft_power as power;
pub use deft_routing as routing;
pub use deft_sim as sim;
pub use deft_topo as topo;
pub use deft_traffic as traffic;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::campaign::{CacheStats, CacheStore, Campaign, Run};
    pub use crate::experiments::{Algo, ExpConfig};
    pub use deft_power::{table1, RouterParams, RouterVariant, Tech45nm};
    pub use deft_routing::{
        cdg::ChannelDependencyGraph, reachability::ReachabilityEngine, DeftRouting, MtrRouting,
        RcRouting, RouteError, RoutingAlgorithm, Vn,
    };
    pub use deft_sim::{EpochStats, Region, SimConfig, SimReport, Simulator};
    pub use deft_topo::{
        BurstConfig, ChipletId, ChipletSystem, Coord, Direction, FaultEvent, FaultEventKind,
        FaultState, FaultTimeline, Layer, NodeAddr, NodeId, RegionConfig, SystemBuilder,
        TransientConfig, VlDir, VlLinkId,
    };
    pub use deft_traffic::{
        hotspot, localized, multi_app, single_app, uniform, AppProfile, TrafficPattern,
        PARSEC_PROFILES,
    };
}
