//! `deft-repro` — regenerate every table and figure of the DeFT paper.
//!
//! ```text
//! deft-repro [--quick] [fig4|fig5|fig6|fig7|fig8|table1|rho|scaling|all]
//! ```
//!
//! `--quick` shortens the simulation windows (same structure, noisier
//! numbers); the default full windows are what `EXPERIMENTS.md` records.

use deft::experiments::{
    fig4, fig5, fig6_pairs, fig6_single, fig7, fig8, rho_ablation, scaling_study, Algo, ExpConfig,
    SynPattern,
};
use deft::report::{
    render_app_improvements, render_latency_sweep, render_reachability, render_rho_ablation,
    render_scaling, render_table1, render_vc_util,
};
use deft_power::{table1, RouterParams, Tech45nm};
use deft_topo::{ChipletId, ChipletSystem, FaultState, VlDir, VlLinkId};

fn run_fig4(cfg: &ExpConfig) {
    let sys4 = ChipletSystem::baseline_4();
    for pattern in [
        SynPattern::Uniform,
        SynPattern::Localized,
        SynPattern::Hotspot,
    ] {
        let sweep = fig4(&sys4, pattern, &pattern.paper_rates(), &Algo::MAIN, cfg);
        print!("{}", render_latency_sweep(&sweep));
    }
    let sys6 = ChipletSystem::baseline_6();
    let rates6 = [0.001, 0.002, 0.003, 0.004, 0.005, 0.006];
    let sweep = fig4(&sys6, SynPattern::Uniform, &rates6, &Algo::MAIN, cfg);
    print!("{}", render_latency_sweep(&sweep));
}

fn run_fig5(cfg: &ExpConfig) {
    let sys = ChipletSystem::baseline_4();
    for pattern in [
        SynPattern::Uniform,
        SynPattern::Localized,
        SynPattern::Hotspot,
    ] {
        let rows = fig5(&sys, pattern, 0.004, cfg);
        print!("{}", render_vc_util(pattern.name(), &rows));
    }
}

fn run_fig6(cfg: &ExpConfig) {
    let sys = ChipletSystem::baseline_4();
    let single = fig6_single(&sys, cfg);
    print!(
        "{}",
        render_app_improvements("single application (Fig. 6a)", &single)
    );
    let pairs = fig6_pairs(&sys, cfg);
    print!(
        "{}",
        render_app_improvements("two applications (Fig. 6b)", &pairs)
    );
}

fn run_fig7() {
    let sys4 = ChipletSystem::baseline_4();
    print!(
        "{}",
        render_reachability("4 Chiplets (32 VLs)", &fig7(&sys4, 8))
    );
    let sys6 = ChipletSystem::baseline_6();
    print!(
        "{}",
        render_reachability("6 Chiplets (48 VLs)", &fig7(&sys6, 8))
    );
}

fn run_fig8(cfg: &ExpConfig) {
    let sys = ChipletSystem::baseline_4();
    let rates = [0.004, 0.005, 0.006, 0.007, 0.008];
    // 12.5% fault rate: 4 faulty unidirectional VLs, spread over chiplets.
    let mut f4 = FaultState::none(&sys);
    f4.inject(VlLinkId {
        chiplet: ChipletId(0),
        index: 0,
        dir: VlDir::Down,
    });
    f4.inject(VlLinkId {
        chiplet: ChipletId(1),
        index: 1,
        dir: VlDir::Up,
    });
    f4.inject(VlLinkId {
        chiplet: ChipletId(2),
        index: 2,
        dir: VlDir::Down,
    });
    f4.inject(VlLinkId {
        chiplet: ChipletId(3),
        index: 3,
        dir: VlDir::Up,
    });
    print!("{}", render_latency_sweep(&fig8(&sys, &f4, &rates, cfg)));

    // 25% fault rate: 8 faulty unidirectional VLs, *concentrated* — two
    // down (or up) links of the same chiplet fail together, the regime
    // where distance-based selection piles the survivors' load onto the
    // nearest remaining VL (paper Fig. 3(b) / Fig. 8(b)).
    let mut f8 = FaultState::none(&sys);
    f8.inject(VlLinkId {
        chiplet: ChipletId(0),
        index: 0,
        dir: VlDir::Down,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(0),
        index: 1,
        dir: VlDir::Down,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(1),
        index: 2,
        dir: VlDir::Up,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(1),
        index: 3,
        dir: VlDir::Up,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(2),
        index: 1,
        dir: VlDir::Down,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(2),
        index: 2,
        dir: VlDir::Down,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(3),
        index: 0,
        dir: VlDir::Up,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(3),
        index: 3,
        dir: VlDir::Up,
    });
    let rates = [0.004, 0.005, 0.006, 0.007];
    print!("{}", render_latency_sweep(&fig8(&sys, &f8, &rates, cfg)));
}

fn run_rho() {
    let sys = ChipletSystem::baseline_4();
    print!("{}", render_rho_ablation(&rho_ablation(&sys)));
}

fn run_scaling(cfg: &ExpConfig) {
    print!("{}", render_scaling(&scaling_study(0.003, 4, cfg)));
}

fn run_table1() {
    let rows = table1(&RouterParams::paper_default(), &Tech45nm::default());
    print!("{}", render_table1(&rows));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::full()
    };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    match what {
        "fig4" => run_fig4(&cfg),
        "fig5" => run_fig5(&cfg),
        "fig6" => run_fig6(&cfg),
        "fig7" => run_fig7(),
        "fig8" => run_fig8(&cfg),
        "table1" => run_table1(),
        "rho" => run_rho(),
        "scaling" => run_scaling(&cfg),
        "all" => {
            run_fig4(&cfg);
            run_fig5(&cfg);
            run_fig6(&cfg);
            run_fig7();
            run_fig8(&cfg);
            run_table1();
            run_rho();
            run_scaling(&cfg);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!(
                "usage: deft-repro [--quick] [fig4|fig5|fig6|fig7|fig8|table1|rho|scaling|all]"
            );
            std::process::exit(2);
        }
    }
}
