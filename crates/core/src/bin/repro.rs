//! `deft-repro` — regenerate every table and figure of the DeFT paper.
//!
//! ```text
//! deft-repro [--quick] [--jobs N] [--tick-threads N] [--out text|csv] \
//!            [--exp NAME] [--cache DIR] [--no-cache] \
//!            [--workers N] [--cell-timeout MS] [--strict-cells] \
//!            [--snapshot-every K] [--snapshot-file PATH] [--resume PATH] \
//!            [fig4|fig5|fig6|fig7|fig8|table1|rho|scaling|recovery|perf|\
//!             checkpoint|fork_sweep|large-grid|all]
//! ```
//!
//! * `--quick` shortens the simulation windows (same structure, noisier
//!   numbers); the default full windows are what `EXPERIMENTS.md` records.
//! * `--exp NAME` selects the experiment by flag instead of positionally
//!   (the two forms are equivalent; naming it both ways is an error).
//! * `--jobs N` fans each experiment's run grid out over `N` worker
//!   threads (default: available parallelism). Output is byte-identical
//!   for every `N` — per-run seeds derive from the grid position, and the
//!   campaign runner merges in grid order — so `--jobs 1` is the serial
//!   cross-check, not a different experiment.
//! * `--tick-threads N` shards each simulator's *cycle* across `N` worker
//!   threads (the partitioned parallel tick; default 1 = the serial
//!   engine). Composes with `--jobs`: outer campaign workers × inner tick
//!   shards, byte-identical output for every combination of the two.
//! * `--out csv` emits machine-readable CSV blocks (each prefixed with a
//!   `# title` comment line) instead of the aligned text tables.
//! * `perf` times representative engine cells and writes `BENCH_sim.json`
//!   into the current directory (schema in `EXPERIMENTS.md`). It is not
//!   part of `all`: its wall-clock fields vary per invocation, unlike the
//!   deterministic figure outputs.
//! * `checkpoint` runs one resumable simulation: `--snapshot-every K`
//!   writes the full engine state to `--snapshot-file` (default
//!   `deft-checkpoint.snap`) every K cycles, and `--resume FILE` continues
//!   a run from such a file — the final report is byte-identical to an
//!   uninterrupted run. A corrupt or mismatched file is a clean error.
//! * `fork_sweep` branches hundreds of transient fault futures off one
//!   shared warm prefix ([`Simulator::fork_with_timeline`]) and reports
//!   per-algorithm loss/recovery means with confidence intervals. Like
//!   `perf`, it is not part of `all` (it is the scale demo of the fork
//!   engine, not a paper figure).
//! * `large-grid` runs one deterministic 16×16-grid DeFT-Dis simulation
//!   (the scaling datapoint as a figure-style run): its text/CSV output
//!   is byte-identical for every `--tick-threads`, which CI's
//!   parallel-tick smoke pins with a `cmp`. Not part of `all`.
//! * `--cache DIR` memoizes campaign cells in a content-addressed result
//!   store under `DIR`: each cell probes the store first and only
//!   simulates on a miss, with results byte-identical to an uncached run
//!   and a one-line hit/miss summary on stderr at the end. `--no-cache`
//!   overrides it. An unusable `DIR` is a clean one-line error. The
//!   `checkpoint` and `fork_sweep` targets do not route through the
//!   campaign runner and therefore never hit the store.
//! * `--workers N` (campaign-backed targets only) runs each campaign
//!   across `N` supervised worker *processes* instead of in-process
//!   threads: a crashed or hung worker costs a retry on a fresh worker,
//!   not the campaign, and a cell that kills [`SupervisorOpts::max_failures`]
//!   distinct workers is *quarantined* (reported on stderr, its slot
//!   filled with the output type's default). Output is byte-identical to
//!   `--workers 0` (the in-process default) for every `N` and every
//!   failure pattern that stays within the retry budget. `--cell-timeout
//!   MS` reaps a worker whose cell exceeds the deadline (default: no
//!   deadline); `--strict-cells` turns a completed-but-quarantined run
//!   into exit code 3. Workers share the `--cache` store; the final
//!   summary line aggregates their counters.
//! * `worker --serve-campaign K` is the internal worker entry point
//!   spawned by `--workers` (replays the driver to campaign ordinal `K`,
//!   then serves cells over stdin/stdout frames). Not part of the public
//!   interface.
//!
//! Exit codes: `0` success (including quarantined cells without
//! `--strict-cells`), `1` runtime failure, `2` usage error, `3` completed
//! with quarantined cells under `--strict-cells`.

use deft::campaign::supervisor::{FaultPlan, FAULT_PLAN_ENV};
use deft::campaign::{take_quarantines, CacheStore, SupervisorOpts};
use deft::experiments::{
    fig4, fig5_panels, fig6_pairs, fig6_single, fig7_with, fig8, fork_sweep, perf, recovery,
    recovery_scenarios, rho_ablation_with, scaling_study, table1_campaign_with, Algo, ExpConfig,
    SynPattern, FORK_SWEEP_K, PERF_RATE, RECOVERY_RATE,
};
use deft::report::{
    app_improvements_csv, fork_sweep_csv, latency_sweep_csv, perf_json, reachability_csv,
    recovery_csv, render_app_improvements, render_fork_sweep, render_latency_sweep, render_perf,
    render_reachability, render_recovery, render_rho_ablation, render_scaling, render_sim_report,
    render_table1, render_vc_util, rho_ablation_csv, scaling_csv, sim_report_csv, table1_csv,
    vc_util_csv,
};
use deft_power::{RouterParams, Tech45nm};
use deft_sim::Simulator;
use deft_topo::{ChipletId, ChipletSystem, FaultState, VlDir, VlLinkId};
use deft_traffic::uniform;

/// Process exit codes (the table in `README.md`). `0` is implicit
/// success; quarantined cells only turn it into [`EXIT_QUARANTINE`]
/// under `--strict-cells`.
const EXIT_RUNTIME: i32 = 1;
/// Bad flags or flag combinations (see [`usage_and_exit`]).
const EXIT_USAGE: i32 = 2;
/// The run completed but quarantined at least one cell and
/// `--strict-cells` was given.
const EXIT_QUARANTINE: i32 = 3;

/// Output format of the report blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Out {
    /// Aligned, human-readable tables (the default).
    Text,
    /// CSV blocks, each prefixed with a `# title` comment line.
    Csv,
    /// No report output at all — worker mode, where stdout is the frame
    /// pipe back to the supervisor and must carry nothing else.
    Null,
}

impl Out {
    /// Emits one report block: `render` in text mode, `# title` + `csv`
    /// in CSV mode, nothing in worker mode.
    fn emit(self, title: &str, render: impl FnOnce() -> String, csv: impl FnOnce() -> String) {
        match self {
            Out::Text => print!("{}", render()),
            Out::Csv => print!("# {title}\n{}", csv()),
            Out::Null => {}
        }
    }
}

fn run_fig4(cfg: &ExpConfig, out: Out) {
    let sys4 = ChipletSystem::baseline_4();
    for pattern in [
        SynPattern::Uniform,
        SynPattern::Localized,
        SynPattern::Hotspot,
    ] {
        let sweep = fig4(&sys4, pattern, &pattern.paper_rates(), &Algo::MAIN, cfg);
        out.emit(
            &sweep.title,
            || render_latency_sweep(&sweep),
            || latency_sweep_csv(&sweep),
        );
    }
    let sys6 = ChipletSystem::baseline_6();
    let rates6 = [0.001, 0.002, 0.003, 0.004, 0.005, 0.006];
    let sweep = fig4(&sys6, SynPattern::Uniform, &rates6, &Algo::MAIN, cfg);
    out.emit(
        &sweep.title,
        || render_latency_sweep(&sweep),
        || latency_sweep_csv(&sweep),
    );
}

fn run_fig5(cfg: &ExpConfig, out: Out) {
    let sys = ChipletSystem::baseline_4();
    let patterns = [
        SynPattern::Uniform,
        SynPattern::Localized,
        SynPattern::Hotspot,
    ];
    for (pattern, rows) in fig5_panels(&sys, &patterns, 0.004, cfg) {
        out.emit(
            &format!("VC utilization: {}", pattern.name()),
            || render_vc_util(pattern.name(), &rows),
            || vc_util_csv(&rows),
        );
    }
}

fn run_fig6(cfg: &ExpConfig, out: Out) {
    let sys = ChipletSystem::baseline_4();
    let single = fig6_single(&sys, cfg);
    out.emit(
        "Latency improvement: single application (Fig. 6a)",
        || render_app_improvements("single application (Fig. 6a)", &single),
        || app_improvements_csv(&single),
    );
    let pairs = fig6_pairs(&sys, cfg);
    out.emit(
        "Latency improvement: two applications (Fig. 6b)",
        || render_app_improvements("two applications (Fig. 6b)", &pairs),
        || app_improvements_csv(&pairs),
    );
}

fn run_fig7(cfg: &ExpConfig, out: Out) {
    let sys4 = ChipletSystem::baseline_4();
    let curves4 = fig7_with(&sys4, 8, &cfg.policy());
    out.emit(
        "Reachability: 4 Chiplets (32 VLs)",
        || render_reachability("4 Chiplets (32 VLs)", &curves4),
        || reachability_csv(&curves4),
    );
    let sys6 = ChipletSystem::baseline_6();
    let curves6 = fig7_with(&sys6, 8, &cfg.policy());
    out.emit(
        "Reachability: 6 Chiplets (48 VLs)",
        || render_reachability("6 Chiplets (48 VLs)", &curves6),
        || reachability_csv(&curves6),
    );
}

fn run_fig8(cfg: &ExpConfig, out: Out) {
    let sys = ChipletSystem::baseline_4();
    let rates = [0.004, 0.005, 0.006, 0.007, 0.008];
    // 12.5% fault rate: 4 faulty unidirectional VLs, spread over chiplets.
    let mut f4 = FaultState::none(&sys);
    f4.inject(VlLinkId {
        chiplet: ChipletId(0),
        index: 0,
        dir: VlDir::Down,
    });
    f4.inject(VlLinkId {
        chiplet: ChipletId(1),
        index: 1,
        dir: VlDir::Up,
    });
    f4.inject(VlLinkId {
        chiplet: ChipletId(2),
        index: 2,
        dir: VlDir::Down,
    });
    f4.inject(VlLinkId {
        chiplet: ChipletId(3),
        index: 3,
        dir: VlDir::Up,
    });
    let sweep = fig8(&sys, &f4, &rates, cfg);
    out.emit(
        &sweep.title,
        || render_latency_sweep(&sweep),
        || latency_sweep_csv(&sweep),
    );

    // 25% fault rate: 8 faulty unidirectional VLs, *concentrated* — two
    // down (or up) links of the same chiplet fail together, the regime
    // where distance-based selection piles the survivors' load onto the
    // nearest remaining VL (paper Fig. 3(b) / Fig. 8(b)).
    let mut f8 = FaultState::none(&sys);
    f8.inject(VlLinkId {
        chiplet: ChipletId(0),
        index: 0,
        dir: VlDir::Down,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(0),
        index: 1,
        dir: VlDir::Down,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(1),
        index: 2,
        dir: VlDir::Up,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(1),
        index: 3,
        dir: VlDir::Up,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(2),
        index: 1,
        dir: VlDir::Down,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(2),
        index: 2,
        dir: VlDir::Down,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(3),
        index: 0,
        dir: VlDir::Up,
    });
    f8.inject(VlLinkId {
        chiplet: ChipletId(3),
        index: 3,
        dir: VlDir::Up,
    });
    let rates = [0.004, 0.005, 0.006, 0.007];
    let sweep = fig8(&sys, &f8, &rates, cfg);
    out.emit(
        &sweep.title,
        || render_latency_sweep(&sweep),
        || latency_sweep_csv(&sweep),
    );
}

fn run_rho(cfg: &ExpConfig, out: Out) {
    let sys = ChipletSystem::baseline_4();
    let rows = rho_ablation_with(&sys, &cfg.policy());
    out.emit(
        "rho ablation",
        || render_rho_ablation(&rows),
        || rho_ablation_csv(&rows),
    );
}

fn run_scaling(cfg: &ExpConfig, out: Out) {
    let rows = scaling_study(0.003, 4, cfg);
    out.emit(
        "scaling study",
        || render_scaling(&rows),
        || scaling_csv(&rows),
    );
}

fn run_recovery(cfg: &ExpConfig, out: Out) {
    let sys = ChipletSystem::baseline_4();
    let rows = recovery(&sys, cfg);
    out.emit(
        "Recovery: dynamic fault timelines",
        || render_recovery(&rows),
        || recovery_csv(&rows),
    );
}

/// Runs the engine-performance cells, prints the table, and writes
/// `BENCH_sim.json` into the current directory (the repo root under the
/// documented invocation; see EXPERIMENTS.md for the schema). `--out csv`
/// is rejected loudly: perf's machine-readable form is the JSON file, and
/// silently printing the text table would break a CSV consumer.
fn run_perf(cfg: &ExpConfig, quick: bool, out: Out) {
    if out == Out::Csv {
        eprintln!("perf has no CSV form; its machine-readable output is BENCH_sim.json");
        usage_and_exit();
    }
    let sys = ChipletSystem::baseline_4();
    let report = perf(&sys, cfg, if quick { "quick" } else { "full" });
    print!("{}", render_perf(&report));
    let json = perf_json(&report);
    match std::fs::write("BENCH_sim.json", &json) {
        Ok(()) => eprintln!("wrote BENCH_sim.json"),
        Err(e) => {
            eprintln!("cannot write BENCH_sim.json: {e}");
            std::process::exit(EXIT_RUNTIME);
        }
    }
}

/// Snapshot/resume options of the `checkpoint` target.
#[derive(Debug, Default)]
struct SnapshotOpts {
    /// Write a snapshot every N simulated cycles (0 = never).
    every: u64,
    /// Snapshot file path (`--snapshot-file`, default
    /// `deft-checkpoint.snap`).
    file: Option<String>,
    /// Resume from this snapshot file instead of starting fresh.
    resume: Option<String>,
}

impl SnapshotOpts {
    fn in_use(&self) -> bool {
        self.every > 0 || self.file.is_some() || self.resume.is_some()
    }

    fn file(&self) -> &str {
        self.file.as_deref().unwrap_or("deft-checkpoint.snap")
    }
}

/// The `checkpoint` target: one resumable DeFT run — uniform traffic at
/// [`RECOVERY_RATE`] under the first recovery scenario's transient fault
/// timeline. `--snapshot-every K` writes the state to `--snapshot-file`
/// at every K-cycle pause point; `--resume FILE` rebuilds the identical
/// setup and continues from the file instead of cycle 0. The final
/// report (text or single-row CSV) is byte-identical however often the
/// run was paused, snapshotted, or resumed.
fn run_checkpoint(cfg: &ExpConfig, snap: &SnapshotOpts, out: Out) {
    let sys = ChipletSystem::baseline_4();
    let horizon = cfg.sim.warmup + cfg.sim.measure;
    let scenario = recovery_scenarios(horizon)[0];
    let timeline = scenario.timeline(&sys, horizon, cfg.seed);
    let pattern = uniform(&sys, RECOVERY_RATE);
    let mut sim = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Algo::Deft.build(&sys),
        &pattern,
        cfg.run_sim(0xC0),
    )
    .with_timeline(&timeline);

    if let Some(path) = &snap.resume {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot resume from {path}: {e}");
                std::process::exit(EXIT_RUNTIME);
            }
        };
        if let Err(e) = sim.resume_from(&bytes) {
            eprintln!("cannot resume from {path}: {e}");
            std::process::exit(EXIT_RUNTIME);
        }
        eprintln!("resumed {path} at cycle {}", sim.cycle());
    } else {
        sim.start();
    }

    if snap.every > 0 {
        loop {
            let stop = sim.cycle() + snap.every;
            if sim.advance_to(stop) {
                break;
            }
            if let Err(e) = std::fs::write(snap.file(), sim.snapshot()) {
                eprintln!("cannot write snapshot {}: {e}", snap.file());
                std::process::exit(EXIT_RUNTIME);
            }
            eprintln!("wrote {} at cycle {}", snap.file(), sim.cycle());
        }
    }
    let report = sim.finish();
    out.emit(
        "checkpoint run",
        || render_sim_report(&report),
        || sim_report_csv(&report),
    );
}

/// The `large-grid` target: one deterministic 16×16-grid (8k+ router)
/// DeFT-Dis simulation under uniform traffic — the scaling datapoint as
/// a *figure-style* run whose text/CSV output is byte-identical for
/// every `--jobs`/`--tick-threads` combination. CI's parallel-tick smoke
/// `cmp`s the quick CSV of a serial run against `--tick-threads 4` to
/// pin the parallel engine's determinism contract on a grid large enough
/// that every shard owns thousands of routers. Like `perf`, it is not
/// part of `all`.
fn run_large_grid(cfg: &ExpConfig, out: Out) {
    let sys = ChipletSystem::chiplet_grid(16, 16).expect("16x16 grid is valid");
    let pattern = uniform(&sys, PERF_RATE);
    let report = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Algo::DeftDis.build(&sys),
        &pattern,
        cfg.run_sim(0x16),
    )
    .run();
    out.emit(
        "large-grid 16x16 run",
        || render_sim_report(&report),
        || sim_report_csv(&report),
    );
}

/// The `fork_sweep` target: [`FORK_SWEEP_K`] transient fault futures per
/// algorithm, branched off one shared warm prefix (see the experiment's
/// module docs). Like `perf`, it is not part of `all`.
fn run_fork_sweep(cfg: &ExpConfig, out: Out) {
    let sys = ChipletSystem::baseline_4();
    let rows = fork_sweep(&sys, cfg, FORK_SWEEP_K);
    out.emit(
        "fork sweep: Monte-Carlo fault futures",
        || render_fork_sweep(&rows),
        || fork_sweep_csv(&rows),
    );
}

fn run_table1(cfg: &ExpConfig, out: Out) {
    let rows = table1_campaign_with(
        &RouterParams::paper_default(),
        &Tech45nm::default(),
        &cfg.policy(),
    );
    out.emit(
        "Table I: router area and power",
        || render_table1(&rows),
        || table1_csv(&rows),
    );
}

/// The experiment names that expand into campaigns — the targets
/// `--workers` (process supervision) applies to. `perf`, `checkpoint`,
/// `fork_sweep`, and `large-grid` never route through the campaign
/// runner, so naming them with `--workers` is a usage error rather than
/// a silent no-op.
fn campaign_backed(what: &str) -> bool {
    matches!(
        what,
        "fig4"
            | "fig5"
            | "fig6"
            | "fig7"
            | "fig8"
            | "table1"
            | "rho"
            | "scaling"
            | "recovery"
            | "all"
    )
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: deft-repro [--quick] [--jobs N] [--tick-threads N] [--out text|csv] [--exp NAME] \
         [--cache DIR] [--no-cache] \
         [--workers N] [--cell-timeout MS] [--strict-cells] \
         [--snapshot-every K] [--snapshot-file PATH] [--resume PATH] \
         [fig4|fig5|fig6|fig7|fig8|table1|rho|scaling|recovery|perf|checkpoint|fork_sweep|\
         large-grid|all]\n\
         (--snapshot-every/--snapshot-file/--resume apply to the checkpoint target;\n\
          --cache DIR memoizes campaign cells in a content-addressed result store;\n\
          --workers N supervises campaigns across N worker processes — crashes retry,\n\
          poison cells quarantine; --strict-cells exits 3 when any cell was quarantined)"
    );
    std::process::exit(EXIT_USAGE);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut jobs: Option<usize> = None;
    let mut tick_threads: Option<usize> = None;
    let mut out = Out::Text;
    let mut what: Option<String> = None;
    let mut snap = SnapshotOpts::default();
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut workers: usize = 0;
    let mut cell_timeout_ms: Option<u64> = None;
    let mut strict_cells = false;
    let mut worker_mode = false;
    let mut serve_target: Option<usize> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let parse_value = |flag: &str, arg: &str, it: &mut std::vec::IntoIter<String>| {
            match arg.split_once('=') {
                Some((_, v)) => Some(v.to_owned()),
                None => it.next(),
            }
            .unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage_and_exit()
            })
        };
        if arg == "--quick" {
            quick = true;
        } else if arg == "--jobs" || arg.starts_with("--jobs=") {
            let v = parse_value("--jobs", &arg, &mut it);
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs expects a positive integer, got {v:?}");
                    usage_and_exit();
                }
            }
        } else if arg == "--tick-threads" || arg.starts_with("--tick-threads=") {
            let v = parse_value("--tick-threads", &arg, &mut it);
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => tick_threads = Some(n),
                _ => {
                    eprintln!("--tick-threads expects a positive integer, got {v:?}");
                    usage_and_exit();
                }
            }
        } else if arg == "--out" || arg.starts_with("--out=") {
            let v = parse_value("--out", &arg, &mut it);
            out = match v.as_str() {
                "text" => Out::Text,
                "csv" => Out::Csv,
                other => {
                    eprintln!("--out expects text or csv, got {other:?}");
                    usage_and_exit();
                }
            };
        } else if arg == "--snapshot-every" || arg.starts_with("--snapshot-every=") {
            let v = parse_value("--snapshot-every", &arg, &mut it);
            match v.parse::<u64>() {
                Ok(n) if n >= 1 => snap.every = n,
                _ => {
                    eprintln!("--snapshot-every expects a positive cycle count, got {v:?}");
                    usage_and_exit();
                }
            }
        } else if arg == "--snapshot-file" || arg.starts_with("--snapshot-file=") {
            snap.file = Some(parse_value("--snapshot-file", &arg, &mut it));
        } else if arg == "--resume" || arg.starts_with("--resume=") {
            snap.resume = Some(parse_value("--resume", &arg, &mut it));
        } else if arg == "--cache" || arg.starts_with("--cache=") {
            cache_dir = Some(parse_value("--cache", &arg, &mut it));
        } else if arg == "--no-cache" {
            no_cache = true;
        } else if arg == "--workers" || arg.starts_with("--workers=") {
            let v = parse_value("--workers", &arg, &mut it);
            match v.parse::<usize>() {
                Ok(n) => workers = n,
                _ => {
                    eprintln!("--workers expects an integer (0 = in-process), got {v:?}");
                    usage_and_exit();
                }
            }
        } else if arg == "--cell-timeout" || arg.starts_with("--cell-timeout=") {
            let v = parse_value("--cell-timeout", &arg, &mut it);
            match v.parse::<u64>() {
                Ok(n) if n >= 1 => cell_timeout_ms = Some(n),
                _ => {
                    eprintln!("--cell-timeout expects a positive millisecond count, got {v:?}");
                    usage_and_exit();
                }
            }
        } else if arg == "--strict-cells" {
            strict_cells = true;
        } else if arg == "--serve-campaign" || arg.starts_with("--serve-campaign=") {
            let v = parse_value("--serve-campaign", &arg, &mut it);
            match v.parse::<usize>() {
                Ok(n) => serve_target = Some(n),
                _ => {
                    eprintln!("--serve-campaign expects a campaign ordinal, got {v:?}");
                    usage_and_exit();
                }
            }
        } else if arg == "worker" && !worker_mode {
            worker_mode = true;
        } else if arg == "--exp" || arg.starts_with("--exp=") {
            let v = parse_value("--exp", &arg, &mut it);
            if let Some(first) = &what {
                eprintln!("more than one experiment named: {first:?} and {v:?}");
                usage_and_exit();
            }
            what = Some(v);
        } else if arg.starts_with("--") {
            eprintln!("unknown flag {arg:?}");
            usage_and_exit();
        } else if let Some(first) = &what {
            eprintln!("more than one experiment named: {first:?} and {arg:?}");
            usage_and_exit();
        } else {
            what = Some(arg);
        }
    }

    let base = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::full()
    };
    let cfg = match jobs {
        Some(n) => base.with_jobs(n),
        None => base,
    };
    let cfg = match tick_threads {
        Some(n) => cfg.with_tick_threads(n),
        None => cfg,
    };
    let store = match (&cache_dir, no_cache) {
        (Some(dir), false) => match CacheStore::open(dir) {
            Ok(s) => Some(std::sync::Arc::new(s)),
            Err(e) => {
                eprintln!("cannot open cache {dir}: {e}");
                std::process::exit(EXIT_RUNTIME);
            }
        },
        _ => None,
    };
    let cfg = match &store {
        Some(s) => cfg.with_cache(std::sync::Arc::clone(s)),
        None => cfg,
    };

    let what = what.as_deref().unwrap_or("all").to_owned();
    if snap.in_use() && what != "checkpoint" {
        eprintln!("--snapshot-every/--snapshot-file/--resume apply to the checkpoint target only");
        usage_and_exit();
    }
    if worker_mode != serve_target.is_some() {
        eprintln!("worker mode is internal: `worker` and --serve-campaign come as a pair");
        usage_and_exit();
    }
    if worker_mode && workers > 0 {
        eprintln!("a worker cannot itself supervise workers");
        usage_and_exit();
    }
    if (workers > 0 || worker_mode) && !campaign_backed(&what) {
        eprintln!(
            "--workers applies to campaign-backed experiments \
             (fig4..fig8, table1, rho, scaling, recovery, all), not {what:?}"
        );
        usage_and_exit();
    }
    if cell_timeout_ms.is_some() && workers == 0 {
        eprintln!("--cell-timeout needs --workers N (N >= 1)");
        usage_and_exit();
    }

    let cfg = if let Some(target) = serve_target {
        out = Out::Null; // stdout is the frame pipe back to the supervisor
        cfg.with_serve(target)
    } else if workers > 0 {
        // Validate the fault-injection hook *before* spawning anything: a
        // malformed plan would otherwise fail identically inside every
        // respawned worker, and the supervisor would burn the whole retry
        // budget on a configuration error.
        if let Ok(text) = std::env::var(FAULT_PLAN_ENV) {
            if let Err(e) = FaultPlan::parse(&text) {
                eprintln!("invalid {FAULT_PLAN_ENV}: {e}");
                std::process::exit(EXIT_RUNTIME);
            }
        }
        let exe = match std::env::current_exe() {
            Ok(p) => p.to_string_lossy().into_owned(),
            Err(e) => {
                eprintln!("cannot locate own executable to spawn workers: {e}");
                std::process::exit(EXIT_RUNTIME);
            }
        };
        let mut argv = vec![exe, "worker".to_owned(), "--exp".to_owned(), what.clone()];
        if quick {
            argv.push("--quick".to_owned());
        }
        if let Some(n) = tick_threads {
            argv.push(format!("--tick-threads={n}"));
        }
        if let (Some(dir), false) = (&cache_dir, no_cache) {
            argv.push(format!("--cache={dir}"));
        }
        let mut opts = SupervisorOpts::new(workers, argv);
        opts.cell_timeout = cell_timeout_ms.map(std::time::Duration::from_millis);
        cfg.with_workers(std::sync::Arc::new(opts))
    } else {
        cfg
    };

    match what.as_str() {
        "fig4" => run_fig4(&cfg, out),
        "fig5" => run_fig5(&cfg, out),
        "fig6" => run_fig6(&cfg, out),
        "fig7" => run_fig7(&cfg, out),
        "fig8" => run_fig8(&cfg, out),
        "table1" => run_table1(&cfg, out),
        "rho" => run_rho(&cfg, out),
        "scaling" => run_scaling(&cfg, out),
        "recovery" => run_recovery(&cfg, out),
        "perf" => run_perf(&cfg, quick, out),
        "checkpoint" => run_checkpoint(&cfg, &snap, out),
        "fork_sweep" => run_fork_sweep(&cfg, out),
        "large-grid" => run_large_grid(&cfg, out),
        "all" => {
            run_fig4(&cfg, out);
            run_fig5(&cfg, out);
            run_fig6(&cfg, out);
            run_fig7(&cfg, out);
            run_fig8(&cfg, out);
            run_table1(&cfg, out);
            run_rho(&cfg, out);
            run_scaling(&cfg, out);
            run_recovery(&cfg, out);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            usage_and_exit();
        }
    }

    if worker_mode {
        // serve() never returns once the target campaign is reached, so
        // falling through means the ordinal was never consumed — a
        // supervisor/worker mismatch, not a user error.
        eprintln!("worker: campaign ordinal was never reached");
        std::process::exit(EXIT_RUNTIME);
    }

    // stderr so `--out csv` stdout stays byte-comparable across runs.
    if let Some(store) = &store {
        eprintln!("{}", store.summary());
    }

    let quarantined = take_quarantines();
    if !quarantined.is_empty() {
        for q in &quarantined {
            eprintln!("{q}");
        }
        eprintln!(
            "{} campaign cell(s) quarantined; their rows hold default placeholders",
            quarantined.len()
        );
        if strict_cells {
            std::process::exit(EXIT_QUARANTINE);
        }
    }
}
