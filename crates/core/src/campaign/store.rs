//! The content-addressed campaign result store.
//!
//! A [`CacheStore`] memoizes completed campaign cells on disk so
//! repeated and overlapping sweeps hit cache instead of re-simulating.
//! Entries are addressed purely by content: a cell's [`CacheKey`]
//! (built from its full config fingerprint, seeds, and the codec
//! [`FORMAT_VERSION`](deft_codec::FORMAT_VERSION)) names the entry
//! file, and the encoded output is stored inside a
//! [`SnapshotWriter`] container, so every entry carries the magic +
//! version header and per-section FNV-1a checksums of the snapshot
//! format.
//!
//! # Entry layout
//!
//! ```text
//! <hash as 16 hex digits>.dce
//! ├── MAGIC + FORMAT_VERSION            (snapshot header)
//! ├── section "CKEY": full key material (collision/tamper check)
//! └── section "BODY": the output's Persist encoding
//! ```
//!
//! # Degradation contract
//!
//! The store may *lose* work, never corrupt it: any entry that fails to
//! open, parse, checksum, or match the probe key's material is counted
//! as corrupt, treated as a miss, and re-simulated (overwriting the bad
//! entry). A version bump invalidates every existing entry the same way
//! — [`SnapshotReader`] rejects the old header. All store I/O failures
//! degrade to re-simulation; only [`CacheStore::open`] reports errors,
//! so an unusable cache directory surfaces once, up front.

use deft_codec::{CacheKey, CodecError, Persist, SnapshotReader, SnapshotWriter};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Section tag for the embedded key material.
const TAG_KEY: [u8; 4] = *b"CKEY";
/// Section tag for the encoded cell output.
const TAG_BODY: [u8; 4] = *b"BODY";

/// A point-in-time snapshot of a store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from disk.
    pub hits: u64,
    /// Probes that had to execute (absent or corrupt entries).
    pub misses: u64,
    /// The subset of `misses` caused by unreadable/corrupt entries.
    pub corrupt: u64,
    /// Entries written back after a miss.
    pub stored: u64,
    /// Bytes of entry payload decoded on hits.
    pub bytes_read: u64,
    /// Bytes of entry payload written on stores.
    pub bytes_written: u64,
    /// Failed write-backs (the result is still returned, just not
    /// memoized).
    pub write_errors: u64,
}

impl CacheStats {
    /// Component-wise difference `self - earlier` (saturating): the
    /// counter movement between two snapshots of the same store. Workers
    /// report each cell's movement this way so a supervisor can
    /// [`absorb`](CacheStore::absorb) it into one aggregated summary.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            corrupt: self.corrupt.saturating_sub(earlier.corrupt),
            stored: self.stored.saturating_sub(earlier.stored),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            write_errors: self.write_errors.saturating_sub(earlier.write_errors),
        }
    }

    /// The counters as the fixed word array the frame protocol carries
    /// ([`deft_codec::frame::STATS_WORDS`] words, field order of this
    /// struct).
    pub fn to_words(&self) -> [u64; deft_codec::frame::STATS_WORDS] {
        [
            self.hits,
            self.misses,
            self.corrupt,
            self.stored,
            self.bytes_read,
            self.bytes_written,
            self.write_errors,
        ]
    }

    /// Inverse of [`CacheStats::to_words`].
    pub fn from_words(words: [u64; deft_codec::frame::STATS_WORDS]) -> CacheStats {
        CacheStats {
            hits: words[0],
            misses: words[1],
            corrupt: words[2],
            stored: words[3],
            bytes_read: words[4],
            bytes_written: words[5],
            write_errors: words[6],
        }
    }

    /// One-line summary in the format the CLI prints to stderr. "N
    /// simulated" restates the miss count in workload terms: every miss
    /// executed its cell.
    pub fn summary(&self) -> String {
        format!(
            "cache: {} hits, {} misses ({} corrupt), {} simulated, {} stored, {} B read, {} B written",
            self.hits,
            self.misses,
            self.corrupt,
            self.misses,
            self.stored,
            self.bytes_read,
            self.bytes_written
        )
    }
}

/// A content-addressed, on-disk result store shared by every cell of a
/// campaign (and across campaigns — entries are self-describing).
///
/// All methods take `&self` and the counters are atomic, so one store
/// can serve every worker thread of a parallel campaign concurrently.
/// Writes go through a per-process temporary file and an atomic rename,
/// so concurrent writers of the same key leave one intact entry, never
/// a torn one.
#[derive(Debug)]
pub struct CacheStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    stored: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    write_errors: AtomicU64,
    tmp_seq: AtomicU64,
}

impl CacheStore {
    /// Opens (creating if needed) the store rooted at `dir`, verifying
    /// up front that the directory is writable — later write failures
    /// degrade silently to re-simulation, so this is the one place an
    /// unusable cache location is reported.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let probe = dir.join(format!(".probe.{}", std::process::id()));
        std::fs::File::create(&probe).and_then(|mut f| f.write_all(b"ok"))?;
        std::fs::remove_file(&probe)?;
        Ok(Self {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path a key addresses (whether or not it exists yet).
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Paths of all entries currently in the store, sorted by file name
    /// (i.e. by key hash) for deterministic comparison.
    pub fn entries(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "dce"))
            .collect();
        out.sort();
        Ok(out)
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }

    /// One-line hit/miss summary (see [`CacheStats::summary`]).
    pub fn summary(&self) -> String {
        self.stats().summary()
    }

    /// Adds a counter delta (a worker process's contribution, carried
    /// over the frame protocol) into this store's counters, so the
    /// supervisor's summary reports campaign-wide totals — the same
    /// numbers a single-process run would have counted locally.
    pub fn absorb(&self, delta: &CacheStats) {
        self.hits.fetch_add(delta.hits, Ordering::Relaxed);
        self.misses.fetch_add(delta.misses, Ordering::Relaxed);
        self.corrupt.fetch_add(delta.corrupt, Ordering::Relaxed);
        self.stored.fetch_add(delta.stored, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(delta.bytes_read, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(delta.bytes_written, Ordering::Relaxed);
        self.write_errors
            .fetch_add(delta.write_errors, Ordering::Relaxed);
    }

    /// Probes the store: `Ok(Some)` on a hit, `Ok(None)` when the entry
    /// is absent, `Err` when an entry exists but is unreadable, corrupt,
    /// or addressed by a colliding key (its material differs). The
    /// counters treat both `Ok(None)` and `Err` as misses; `Err`
    /// additionally counts as corrupt.
    pub fn probe<T: Persist>(&self, key: &CacheKey) -> Result<Option<T>, CodecError> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
            Err(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                return Err(CodecError::Invalid(format!(
                    "cache entry {} is unreadable: {e}",
                    path.display()
                )));
            }
        };
        match decode_entry::<T>(&bytes, key) {
            Ok(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.bytes_read
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                Ok(Some(v))
            }
            Err(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Writes `value` back under `key` (atomically: temp file + rename).
    /// Failures are counted, not propagated — the computed value is
    /// what matters; the memo is best-effort.
    pub fn store<T: Persist>(&self, key: &CacheKey, value: &T) {
        let bytes = encode_entry(key, value);
        let tmp = self.dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            key.hash(),
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let written =
            std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, self.entry_path(key)));
        match written {
            Ok(()) => {
                self.stored.fetch_add(1, Ordering::Relaxed);
                self.bytes_written
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The memoization primitive: returns the cached value on a hit,
    /// otherwise runs `compute` and stores its result. Corrupt entries
    /// degrade to re-simulation (and are overwritten with the fresh
    /// result) — never to an error or a wrong answer.
    pub fn get_or_run<T: Persist>(&self, key: &CacheKey, compute: impl FnOnce() -> T) -> T {
        if let Ok(Some(v)) = self.probe(key) {
            return v;
        }
        let v = compute();
        self.store(key, &v);
        v
    }
}

/// Encodes one store entry: key material + output body in a snapshot
/// container.
pub fn encode_entry<T: Persist>(key: &CacheKey, value: &T) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.section(TAG_KEY, |enc| enc.put_bytes(key.material()));
    w.section(TAG_BODY, |enc| value.encode(enc));
    w.finish()
}

/// Decodes one store entry addressed by `key`, verifying the snapshot
/// header, both section checksums, and that the embedded key material
/// matches the probe key exactly.
pub fn decode_entry<T: Persist>(bytes: &[u8], key: &CacheKey) -> Result<T, CodecError> {
    let mut r = SnapshotReader::new(bytes)?;
    let mut kdec = r.section(TAG_KEY)?;
    let material = kdec.get_bytes()?;
    kdec.finish()?;
    if material != key.material() {
        return Err(CodecError::Mismatch(
            "cache entry key material (hash collision or foreign entry)".into(),
        ));
    }
    let mut body = r.section(TAG_BODY)?;
    let value = T::decode(&mut body)?;
    body.finish()?;
    r.finish()?;
    Ok(value)
}

/// Structurally verifies one entry file without knowing its output
/// type: header, section order, and checksums. Returns the FNV-1a hash
/// of the embedded key material. This is the fsck primitive the
/// corruption tests assert typed errors through.
pub fn verify_entry(path: &Path) -> Result<u64, CodecError> {
    let bytes = std::fs::read(path).map_err(|e| {
        CodecError::Invalid(format!("cache entry {} is unreadable: {e}", path.display()))
    })?;
    let mut r = SnapshotReader::new(&bytes)?;
    let mut kdec = r.section(TAG_KEY)?;
    let material = kdec.get_bytes()?;
    kdec.finish()?;
    let hash = deft_codec::fnv1a(material);
    // The body's type is unknown here; its checksum (already verified by
    // `section`) is the structural integrity bar.
    let _ = r.section(TAG_BODY)?;
    r.finish()?;
    Ok(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_codec::CacheKeyBuilder;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("deft-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> CacheKey {
        CacheKeyBuilder::new("unit").u64("n", n).finish()
    }

    #[test]
    fn get_or_run_memoizes_and_counts() {
        let dir = tmp_dir("memo");
        let store = CacheStore::open(&dir).expect("open store");
        let mut calls = 0u32;
        let v: u64 = store.get_or_run(&key(7), || {
            calls += 1;
            49
        });
        assert_eq!((v, calls), (49, 1));
        let v: u64 = store.get_or_run(&key(7), || {
            calls += 1;
            49
        });
        assert_eq!((v, calls), (49, 1), "second probe must not recompute");
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.corrupt, s.stored), (1, 1, 0, 1));
        assert!(s.bytes_read > 0 && s.bytes_written > 0);
        assert_eq!(store.entries().expect("list").len(), 1);
        assert!(s
            .summary()
            .contains("1 hits, 1 misses (0 corrupt), 1 simulated"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_keys_do_not_alias() {
        let dir = tmp_dir("alias");
        let store = CacheStore::open(&dir).expect("open store");
        store.store(&key(1), &100u64);
        store.store(&key(2), &200u64);
        assert_eq!(store.probe::<u64>(&key(1)).expect("probe"), Some(100));
        assert_eq!(store.probe::<u64>(&key(2)).expect("probe"), Some(200));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_material_is_a_typed_miss() {
        // Simulate a 64-bit hash collision: an entry whose file name a
        // probe key maps to, but whose embedded material differs.
        let dir = tmp_dir("collide");
        let store = CacheStore::open(&dir).expect("open store");
        let foreign = key(1);
        let entry = encode_entry(&foreign, &11u64);
        std::fs::write(store.entry_path(&key(2)), entry).expect("plant entry");
        let err = store.probe::<u64>(&key(2)).expect_err("material mismatch");
        assert!(matches!(err, CodecError::Mismatch(_)));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.corrupt), (0, 1, 1));
        // The memoizing path degrades to recompute-and-overwrite.
        assert_eq!(store.get_or_run(&key(2), || 22u64), 22);
        assert_eq!(store.probe::<u64>(&key(2)).expect("healed"), Some(22));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_entry_reports_structure() {
        let dir = tmp_dir("verify");
        let store = CacheStore::open(&dir).expect("open store");
        let k = key(3);
        store.store(&k, &33u64);
        let path = store.entry_path(&k);
        assert_eq!(verify_entry(&path).expect("intact"), k.hash());
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(verify_entry(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_unusable_locations() {
        // A regular file where the directory should be: create_dir_all
        // fails, and open reports it instead of deferring the surprise.
        let dir = tmp_dir("file-in-the-way");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let blocker = dir.join("store");
        std::fs::write(&blocker, b"not a directory").expect("write blocker");
        assert!(CacheStore::open(&blocker).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
