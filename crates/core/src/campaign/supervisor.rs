//! Supervised out-of-process campaign execution.
//!
//! `supervise` fans a campaign's cells out across a pool of worker
//! *processes* (spawned from [`SupervisorOpts::argv`], in practice the
//! hidden `deft-repro worker` subcommand) and merges their outputs in
//! grid order, byte-identically to the in-process path. Cells travel as
//! [`CellRequest`]/[`CellResponse`] snapshot containers over
//! length-prefixed stdin/stdout frames (see [`deft_codec::frame`]).
//!
//! # Supervision state machine
//!
//! Each worker slot cycles through `spawning → idle → assigned →
//! (responded | failed)`:
//!
//! * **responded** — the output decodes and echoes the assigned
//!   index/attempt: the cell completes, the slot returns to idle, and
//!   its consecutive-failure counter resets.
//! * **failed** — anything else retires the whole worker incarnation
//!   (one-for-one restart), records a typed [`CellError`] against the
//!   assigned cell, and schedules a respawn after capped exponential
//!   backoff:
//!   - pipe EOF mid-cell → [`CellError::WorkerExit`] (panic/abort/
//!     `kill -9` all land here, with the OS exit status),
//!   - per-cell deadline exceeded → the worker is killed (SIGKILL) and
//!     the cell records [`CellError::Timeout`],
//!   - malformed frame, wrong index/attempt echo, or undecodable output
//!     → [`CellError::Protocol`],
//!   - a `FAIL` frame (the worker caught the cell's panic and stayed
//!     alive to report it) → [`CellError::Panic`].
//!
//! A failed cell is retried at the *front* of the queue on a fresh
//! worker; after [`SupervisorOpts::max_failures`] distinct workers have
//! failed it, the cell is **quarantined**: the campaign still completes,
//! the cell's slot is filled with `Output::default()`, and the failure
//! history lands in the process-wide quarantine log
//! ([`take_quarantines`](crate::campaign::take_quarantines)).
//!
//! # Why byte-identity survives crashes
//!
//! A cell's output is a pure function of its grid position (per-run
//! seeds derive from position, never from scheduling, attempt count, or
//! which worker ran it), every retry re-executes the *same* grid index,
//! and the supervisor writes each output into the slot its index names.
//! So any interleaving of crashes, retries, and worker counts merges to
//! the same vector — the fault-plan tests in
//! `tests/campaign_supervisor.rs` pin this with `cmp`-grade equality.
//!
//! # Deterministic fault injection
//!
//! Workers consult the [`FAULT_PLAN_ENV`] environment variable
//! (`cell:attempt:action` entries separated by `;`, actions
//! `crash|panic|hang|exit-N|garble|kill9`) before executing each cell.
//! The plan is a pure function of (cell, attempt), so every failure
//! path is a deterministic, replayable test instead of a flake.

use super::{panic_message, record_quarantine, Campaign, CellError, ExecPolicy, Quarantine, Run};
use crate::campaign::store::CacheStore;
use deft_codec::frame::{read_frame, write_frame, CellRequest, CellResponse};
use deft_codec::{encode_value, Decoder, Persist};
use std::collections::VecDeque;
use std::io::Write;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Environment variable holding the deterministic worker fault plan.
pub const FAULT_PLAN_ENV: &str = "DEFT_WORKER_FAULT_PLAN";

/// How a planned fault manifests inside a worker, before the cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// `std::process::abort()` — a hard crash mid-cell (SIGABRT).
    Crash,
    /// Panic inside the cell's `catch_unwind`: the worker survives and
    /// reports the panic over the pipe (the `FAIL` frame path).
    Panic,
    /// Sleep far past any reasonable deadline — a wedged worker, reaped
    /// only by `--cell-timeout`.
    Hang,
    /// `std::process::exit(code)` — a clean-but-wrong death.
    Exit(i32),
    /// Write a malformed frame instead of the response — the protocol
    /// failure path.
    Garble,
    /// Have the OS deliver SIGKILL to the worker (via the system `kill`
    /// command: std offers no way to raise a signal at oneself), with an
    /// abort fallback in case no `kill` binary exists.
    Kill9,
}

/// A parsed [`FAULT_PLAN_ENV`] plan: a pure function of (cell, attempt),
/// identical in every worker incarnation.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    entries: Vec<(u64, u32, FaultAction)>,
}

impl FaultPlan {
    /// Parses `cell:attempt:action` entries separated by `;`. Empty
    /// entries are ignored, so trailing separators are harmless.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for part in text.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let mut fields = part.splitn(3, ':');
            let (cell, attempt, action) = match (fields.next(), fields.next(), fields.next()) {
                (Some(c), Some(a), Some(x)) => (c, a, x),
                _ => {
                    return Err(format!(
                        "fault-plan entry {part:?} is not cell:attempt:action"
                    ))
                }
            };
            let cell: u64 = cell
                .parse()
                .map_err(|_| format!("fault-plan cell {cell:?} is not an integer"))?;
            let attempt: u32 = attempt
                .parse()
                .map_err(|_| format!("fault-plan attempt {attempt:?} is not an integer"))?;
            let action =
                match action {
                    "crash" => FaultAction::Crash,
                    "panic" => FaultAction::Panic,
                    "hang" => FaultAction::Hang,
                    "garble" => FaultAction::Garble,
                    "kill9" => FaultAction::Kill9,
                    exit if exit.strip_prefix("exit-").is_some() => {
                        let code = exit.strip_prefix("exit-").expect("checked prefix");
                        FaultAction::Exit(code.parse().map_err(|_| {
                            format!("fault-plan exit code {code:?} is not an integer")
                        })?)
                    }
                    other => {
                        return Err(format!(
                            "fault-plan action {other:?} is not one of \
                         crash|panic|hang|exit-N|garble|kill9"
                        ))
                    }
                };
            entries.push((cell, attempt, action));
        }
        Ok(Self { entries })
    }

    /// Reads and parses [`FAULT_PLAN_ENV`]; an unset variable is the
    /// empty (fault-free) plan.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(text) => Self::parse(&text),
            Err(_) => Ok(Self::default()),
        }
    }

    /// The planned action for this (cell, attempt), if any.
    pub fn action(&self, cell: u64, attempt: u32) -> Option<FaultAction> {
        self.entries
            .iter()
            .find(|(c, a, _)| *c == cell && *a == attempt)
            .map(|(_, _, action)| *action)
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Tuning of one supervised campaign execution: pool size, worker
/// command line, and the failure budget.
#[derive(Debug, Clone)]
pub struct SupervisorOpts {
    /// Worker processes to keep alive (clamped to at least 1, and never
    /// more than the grid has cells).
    pub workers: usize,
    /// Program + arguments of one worker, *without* the trailing
    /// `--serve-campaign N` (the supervisor appends the ordinal of each
    /// campaign it runs).
    pub argv: Vec<String>,
    /// Per-cell wall-clock deadline; a worker past it is killed and the
    /// cell records [`CellError::Timeout`]. `None` (the default) never
    /// reaps — a hung worker then hangs the campaign, exactly as the
    /// serial path would.
    pub cell_timeout: Option<Duration>,
    /// Failures from distinct workers after which a cell is quarantined
    /// instead of retried (default 2).
    pub max_failures: u32,
    /// First respawn backoff after a worker failure (default 10 ms);
    /// doubles per consecutive failure of the same slot.
    pub backoff_base: Duration,
    /// Backoff ceiling (default 500 ms).
    pub backoff_cap: Duration,
}

impl SupervisorOpts {
    /// Options with the default failure budget and backoff.
    pub fn new(workers: usize, argv: Vec<String>) -> Self {
        Self {
            workers,
            argv,
            cell_timeout: None,
            max_failures: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
        }
    }
}

/// What a reader thread forwards from one worker's stdout.
enum Event {
    /// One complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary.
    Eof,
    /// Read error or torn frame.
    Corrupt(String),
}

/// One worker slot of the pool.
struct Slot {
    child: Option<Child>,
    stdin: Option<ChildStdin>,
    /// Spawn-unique id; events from retired incarnations are ignored.
    incarnation: u64,
    assigned: Option<Assigned>,
    consecutive_failures: u32,
    respawn_at: Option<Instant>,
}

struct Assigned {
    cell: usize,
    attempt: u32,
    deadline: Option<Instant>,
}

/// Runs `campaign` across supervised worker processes. Panics only on
/// setup bugs (a worker binary that cannot even be spawned); every
/// runtime failure degrades through retries into quarantine.
pub(super) fn supervise<R: Run>(
    campaign: &Campaign<R>,
    ordinal: usize,
    opts: &SupervisorOpts,
    policy: &ExecPolicy,
) -> Vec<R::Output>
where
    R::Output: Persist + Default,
{
    let n = campaign.runs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = opts.workers.clamp(1, n);
    let max_failures = opts.max_failures.max(1) as usize;
    let (tx, rx) = mpsc::channel::<(usize, u64, Event)>();

    let mut slots: Vec<Slot> = (0..workers)
        .map(|_| Slot {
            child: None,
            stdin: None,
            incarnation: 0,
            assigned: None,
            consecutive_failures: 0,
            respawn_at: None,
        })
        .collect();
    let mut next_incarnation: u64 = 1;
    let mut pending: VecDeque<(usize, u32)> = (0..n).map(|cell| (cell, 0)).collect();
    let mut failures: Vec<Vec<CellError>> = vec![Vec::new(); n];
    let mut outputs: Vec<Option<R::Output>> = (0..n).map(|_| None).collect();
    let mut quarantined = 0usize;
    let mut completed = 0usize;

    // Retires a slot's current incarnation: records `error` against the
    // assigned cell (requeueing or quarantining it), kills and reaps the
    // child, and schedules the respawn backoff. `error: None` means the
    // worker itself misbehaved with no cell in flight (or its pipe died
    // before the assignment reached it) — the cell, if any, is requeued
    // at the same attempt without counting a failure.
    let retire = |slot: &mut Slot,
                  error: Option<CellError>,
                  pending: &mut VecDeque<(usize, u32)>,
                  failures: &mut [Vec<CellError>],
                  quarantined: &mut usize| {
        if let Some(assigned) = slot.assigned.take() {
            match error {
                Some(err) => {
                    failures[assigned.cell].push(err);
                    if failures[assigned.cell].len() >= max_failures {
                        record_quarantine(Quarantine {
                            campaign: campaign.label.clone(),
                            cell: assigned.cell,
                            label: campaign.runs[assigned.cell].label(),
                            failures: failures[assigned.cell].clone(),
                        });
                        *quarantined += 1;
                    } else {
                        pending.push_front((assigned.cell, assigned.attempt + 1));
                    }
                }
                None => pending.push_front((assigned.cell, assigned.attempt)),
            }
        }
        slot.stdin = None;
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        // Retired incarnations must not match later events.
        slot.incarnation = 0;
        slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
        let exp = slot.consecutive_failures.saturating_sub(1).min(16);
        let backoff = opts
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(opts.backoff_cap);
        slot.respawn_at = Some(Instant::now() + backoff);
    };

    while completed + quarantined < n {
        let now = Instant::now();

        // Respawn dead slots (after backoff) while work remains, then
        // hand each idle worker the next pending cell.
        for (slot_idx, slot) in slots.iter_mut().enumerate() {
            if slot.child.is_none() {
                if pending.is_empty() || slot.respawn_at.is_some_and(|t| t > now) {
                    continue;
                }
                let incarnation = next_incarnation;
                next_incarnation += 1;
                let mut child = Command::new(&opts.argv[0])
                    .args(&opts.argv[1..])
                    .arg("--serve-campaign")
                    .arg(ordinal.to_string())
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .spawn()
                    .unwrap_or_else(|e| {
                        panic!("cannot spawn campaign worker {:?}: {e}", opts.argv[0])
                    });
                let stdin = child.stdin.take().expect("worker stdin is piped");
                let mut stdout = child.stdout.take().expect("worker stdout is piped");
                let tx = tx.clone();
                std::thread::spawn(move || loop {
                    match read_frame(&mut stdout) {
                        Ok(Some(frame)) => {
                            if tx
                                .send((slot_idx, incarnation, Event::Frame(frame)))
                                .is_err()
                            {
                                break;
                            }
                        }
                        Ok(None) => {
                            let _ = tx.send((slot_idx, incarnation, Event::Eof));
                            break;
                        }
                        Err(e) => {
                            let _ = tx.send((slot_idx, incarnation, Event::Corrupt(e.to_string())));
                            break;
                        }
                    }
                });
                slot.child = Some(child);
                slot.stdin = Some(stdin);
                slot.incarnation = incarnation;
                slot.respawn_at = None;
            }
            if slot.assigned.is_none() {
                let Some((cell, attempt)) = pending.pop_front() else {
                    continue;
                };
                let frame = CellRequest {
                    index: cell as u64,
                    attempt,
                }
                .to_container();
                let wrote = slot
                    .stdin
                    .as_mut()
                    .map(|pipe| write_frame(pipe, &frame).and_then(|()| pipe.flush()));
                match wrote {
                    Some(Ok(())) => {
                        slot.assigned = Some(Assigned {
                            cell,
                            attempt,
                            deadline: opts.cell_timeout.map(|d| now + d),
                        });
                    }
                    _ => {
                        // Dead pipe before the assignment could land: the
                        // worker's own death will be accounted when its
                        // EOF event arrives; the cell just goes back.
                        pending.push_front((cell, attempt));
                        retire(slot, None, &mut pending, &mut failures, &mut quarantined);
                    }
                }
            }
        }

        // Sleep until the next deadline/backoff, or an event.
        let mut wait = Duration::from_millis(1000);
        for slot in &slots {
            if let Some(deadline) = slot.assigned.as_ref().and_then(|a| a.deadline) {
                wait = wait.min(deadline.saturating_duration_since(now));
            }
            if slot.child.is_none() && !pending.is_empty() {
                if let Some(t) = slot.respawn_at {
                    wait = wait.min(t.saturating_duration_since(now));
                }
            }
        }
        match rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            Ok((slot_idx, incarnation, event)) => {
                let slot = &mut slots[slot_idx];
                if slot.incarnation != incarnation || slot.child.is_none() {
                    // A retired incarnation's tail: already accounted.
                } else {
                    match event {
                        Event::Frame(frame) => match CellResponse::from_container(&frame) {
                            Ok(CellResponse::Ok {
                                index,
                                attempt,
                                output,
                                stats,
                            }) => {
                                let matches = slot.assigned.as_ref().is_some_and(|a| {
                                    a.cell as u64 == index && a.attempt == attempt
                                });
                                if !matches {
                                    retire(
                                        slot,
                                        Some(CellError::Protocol(format!(
                                            "response for cell {index} attempt {attempt} does \
                                             not match the assignment"
                                        ))),
                                        &mut pending,
                                        &mut failures,
                                        &mut quarantined,
                                    );
                                } else {
                                    let mut dec = Decoder::new(&output);
                                    match R::Output::decode(&mut dec).and_then(|v| {
                                        dec.finish()?;
                                        Ok(v)
                                    }) {
                                        Ok(value) => {
                                            let cell =
                                                slot.assigned.take().expect("matched above").cell;
                                            outputs[cell] = Some(value);
                                            completed += 1;
                                            slot.consecutive_failures = 0;
                                            if let Some(store) = policy.cache.as_deref() {
                                                store.absorb(
                                                    &crate::campaign::CacheStats::from_words(stats),
                                                );
                                            }
                                        }
                                        Err(e) => retire(
                                            slot,
                                            Some(CellError::Protocol(format!(
                                                "cell output does not decode: {e}"
                                            ))),
                                            &mut pending,
                                            &mut failures,
                                            &mut quarantined,
                                        ),
                                    }
                                }
                            }
                            Ok(CellResponse::Panic {
                                index,
                                attempt,
                                message,
                            }) => {
                                let matches = slot.assigned.as_ref().is_some_and(|a| {
                                    a.cell as u64 == index && a.attempt == attempt
                                });
                                let error = if matches {
                                    CellError::Panic(message)
                                } else {
                                    CellError::Protocol(format!(
                                        "panic report for cell {index} attempt {attempt} does \
                                         not match the assignment"
                                    ))
                                };
                                retire(
                                    slot,
                                    Some(error),
                                    &mut pending,
                                    &mut failures,
                                    &mut quarantined,
                                );
                            }
                            Err(e) => retire(
                                slot,
                                Some(CellError::Protocol(format!("malformed frame: {e}"))),
                                &mut pending,
                                &mut failures,
                                &mut quarantined,
                            ),
                        },
                        Event::Eof => {
                            let status = slot
                                .child
                                .as_mut()
                                .and_then(|c| c.wait().ok())
                                .map(|s| s.to_string())
                                .unwrap_or_else(|| "unknown exit status".to_owned());
                            let error = slot
                                .assigned
                                .is_some()
                                .then_some(CellError::WorkerExit { status });
                            retire(slot, error, &mut pending, &mut failures, &mut quarantined);
                        }
                        Event::Corrupt(why) => {
                            let error = slot
                                .assigned
                                .is_some()
                                .then_some(CellError::Protocol(format!("torn frame: {why}")));
                            retire(slot, error, &mut pending, &mut failures, &mut quarantined);
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("supervisor holds a live sender")
            }
        }

        // Reap workers past their per-cell deadline.
        let now = Instant::now();
        for slot in slots.iter_mut() {
            let expired = slot
                .assigned
                .as_ref()
                .and_then(|a| a.deadline)
                .is_some_and(|d| d <= now);
            if expired {
                let after = opts.cell_timeout.expect("deadline implies a timeout");
                retire(
                    slot,
                    Some(CellError::Timeout { after }),
                    &mut pending,
                    &mut failures,
                    &mut quarantined,
                );
            }
        }
    }

    // Shutdown: closing stdin asks each worker to exit; the kill is the
    // impatient fallback so a wedged worker cannot hold the exit hostage.
    for slot in slots.iter_mut() {
        slot.stdin = None;
        if let Some(mut child) = slot.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    outputs
        .into_iter()
        .map(|cell| cell.unwrap_or_default())
        .collect()
}

/// The worker side: serves this campaign's cells over stdin/stdout
/// frames until the supervisor closes the pipe, then exits 0. Never
/// returns — a worker's stdout *is* the frame transport, so no driver
/// code downstream of the served campaign may run (it would print into
/// the protocol stream).
pub(super) fn serve<R: Run>(campaign: &Campaign<R>, store: Option<&CacheStore>) -> !
where
    R::Output: Persist,
{
    // Expected panics (injected faults, genuinely panicking cells) are
    // reported over the pipe; keep the inherited stderr clean of hook
    // output so supervisor diagnostics stay readable.
    std::panic::set_hook(Box::new(|_| {}));
    // The supervisor validated the same environment string before
    // spawning, so a parse failure here cannot happen; degrade to the
    // fault-free plan rather than dying over it.
    let plan = FaultPlan::from_env().unwrap_or_default();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    loop {
        let Some(frame) = read_frame(&mut input).unwrap_or(None) else {
            // Clean EOF (or a torn pipe): the supervisor is done with us.
            std::process::exit(0);
        };
        let Ok(req) = CellRequest::from_container(&frame) else {
            // A supervisor speaking another wire format; nothing sane to
            // answer with.
            std::process::exit(1);
        };
        match plan.action(req.index, req.attempt) {
            Some(FaultAction::Crash) => std::process::abort(),
            Some(FaultAction::Exit(code)) => std::process::exit(code),
            Some(FaultAction::Hang) => {
                std::thread::sleep(Duration::from_secs(3600));
                std::process::exit(86); // only reachable without --cell-timeout
            }
            Some(FaultAction::Kill9) => {
                let _ = Command::new("kill")
                    .args(["-9", &std::process::id().to_string()])
                    .status();
                std::thread::sleep(Duration::from_secs(10));
                std::process::abort(); // no `kill` binary: die loudly anyway
            }
            Some(FaultAction::Garble) => {
                let _ = write_frame(&mut output, b"these bytes are not a container")
                    .and_then(|()| output.flush());
                continue;
            }
            Some(FaultAction::Panic) | None => {}
        }
        let inject_panic = plan.action(req.index, req.attempt) == Some(FaultAction::Panic);
        let Some(run) = campaign.runs.get(req.index as usize) else {
            std::process::exit(1); // out-of-range index: protocol bug
        };
        let before = store.map(|s| s.stats()).unwrap_or_default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inject_panic {
                panic!(
                    "injected panic at cell {} attempt {}",
                    req.index, req.attempt
                );
            }
            match (store, run.cache_key()) {
                (Some(s), Some(key)) => s.get_or_run(&key, || run.execute()),
                _ => run.execute(),
            }
        }));
        let response = match result {
            Ok(value) => {
                let after = store.map(|s| s.stats()).unwrap_or_default();
                CellResponse::Ok {
                    index: req.index,
                    attempt: req.attempt,
                    output: encode_value(&value),
                    stats: after.delta_since(&before).to_words(),
                }
            }
            Err(payload) => CellResponse::Panic {
                index: req.index,
                attempt: req.attempt,
                message: panic_message(payload.as_ref()),
            },
        };
        let sent = write_frame(&mut output, &response.to_container()).and_then(|()| output.flush());
        if sent.is_err() {
            // Supervisor went away mid-response; nothing left to serve.
            std::process::exit(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_parses_every_action() {
        let plan =
            FaultPlan::parse("0:0:crash; 3:1:hang;7:0:exit-9;2:2:garble;1:0:kill9;4:1:panic;")
                .expect("valid plan");
        assert_eq!(plan.action(0, 0), Some(FaultAction::Crash));
        assert_eq!(plan.action(3, 1), Some(FaultAction::Hang));
        assert_eq!(plan.action(7, 0), Some(FaultAction::Exit(9)));
        assert_eq!(plan.action(2, 2), Some(FaultAction::Garble));
        assert_eq!(plan.action(1, 0), Some(FaultAction::Kill9));
        assert_eq!(plan.action(4, 1), Some(FaultAction::Panic));
        assert_eq!(plan.action(0, 1), None, "other attempts are fault-free");
        assert!(FaultPlan::parse("").expect("empty plan").is_empty());
    }

    #[test]
    fn fault_plan_rejects_malformed_entries() {
        for bad in [
            "nonsense",
            "0:0",
            "0:0:frobnicate",
            "x:0:crash",
            "0:y:crash",
            "0:0:exit-",
            "0:0:exit-zz",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn supervisor_opts_default_budget() {
        let opts = SupervisorOpts::new(4, vec!["worker".into()]);
        assert_eq!(opts.max_failures, 2);
        assert!(opts.cell_timeout.is_none());
        assert!(opts.backoff_base < opts.backoff_cap);
    }
}
