//! The parallel experiment campaign runner.
//!
//! Every figure and table of the evaluation expands into a *grid* of
//! independent units of work — algorithm × injection rate × fault scenario
//! × seed — each of which is a self-contained simulation or analysis. A
//! [`Campaign`] fans such a grid out across OS threads
//! ([`std::thread::scope`], no external dependencies) and merges the
//! results **deterministically in grid order**, so a parallel campaign is
//! byte-identical to a serial one:
//!
//! * per-run seeds derive from the grid *position* (see
//!   [`ExpConfig::run_sim`](crate::experiments::ExpConfig::run_sim)), never
//!   from execution order or wall-clock time;
//! * every [`Run`] builds its own simulator, routing-algorithm instance,
//!   and traffic tables, so no mutable state is shared between workers;
//! * workers write each result into the slot reserved for its grid index,
//!   and [`Campaign::execute`] returns the slots in order.
//!
//! The experiment modules in [`crate::experiments`] all route their grids
//! through this runner; `deft-repro --jobs N` selects the worker count (and
//! `--jobs 1` recovers the strictly serial path, used by the determinism
//! tests to cross-check the parallel one).
//!
//! ```
//! use deft::campaign::{Campaign, Run};
//!
//! struct Square(u64);
//! impl Run for Square {
//!     type Output = u64;
//!     fn label(&self) -> String {
//!         format!("square {}", self.0)
//!     }
//!     fn execute(&self) -> u64 {
//!         self.0 * self.0
//!     }
//! }
//!
//! let grid: Vec<Square> = (0..8).map(Square).collect();
//! let out = Campaign::new("squares", grid).jobs(4).execute();
//! assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]); // grid order, always
//! ```

use deft_codec::{CacheKey, Persist};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod store;

pub use store::{CacheStats, CacheStore};

/// The number of worker threads used when none is requested explicitly:
/// the machine's available parallelism, or 1 if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// One independent unit of work in a campaign grid.
///
/// A run must be *self-contained*: everything it needs is captured at grid
/// construction time (shared inputs by reference — hence the `Sync` bound —
/// plus per-run parameters by value), and `execute` builds any mutable
/// state (simulator, routing algorithm, RNG) locally. This is what makes
/// the fan-out embarrassingly parallel and the merged output independent
/// of scheduling.
pub trait Run: Sync {
    /// The run's result, sent back from the worker thread.
    type Output: Send;

    /// A short human-readable description, used in diagnostics.
    fn label(&self) -> String;

    /// Performs the work. Called exactly once, possibly on a worker thread.
    fn execute(&self) -> Self::Output;

    /// Content-addressed identity of this run for the memoized result
    /// store, or `None` when the run must always execute.
    ///
    /// The key must cover **every** input that can change the output
    /// (topology, traffic, fault state, seeds, simulation windows,
    /// algorithm) and **nothing** that cannot — in particular not the
    /// worker count or `tick_threads`, which are byte-identity-neutral by
    /// the determinism contract. The default is `None`: caching is
    /// strictly opt-in per run type.
    fn cache_key(&self) -> Option<CacheKey> {
        None
    }
}

/// A grid of independent [`Run`]s executed across worker threads, with
/// results merged in grid order.
///
/// Built with [`Campaign::new`], tuned with [`Campaign::jobs`], consumed by
/// [`Campaign::execute`].
#[derive(Debug)]
pub struct Campaign<R> {
    label: String,
    runs: Vec<R>,
    jobs: usize,
}

impl<R: Run> Campaign<R> {
    /// Creates a campaign over the given grid. The worker count defaults to
    /// [`default_jobs`].
    pub fn new(label: impl Into<String>, runs: Vec<R>) -> Self {
        Self {
            label: label.into(),
            runs,
            jobs: default_jobs(),
        }
    }

    /// Sets the worker-thread count. `1` means strictly serial execution on
    /// the calling thread; values are clamped to at least 1. The results
    /// are identical for every value — only wall-clock time changes.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The campaign's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of runs in the grid.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Executes every run and returns the outputs in grid order.
    ///
    /// With more than one worker, threads pull the next unclaimed grid
    /// index from a shared counter and write the result into that index's
    /// slot, so the merged vector is independent of which worker ran what
    /// and in which order runs finished.
    ///
    /// # Panics
    /// Propagates panics from run execution (e.g. a simulation asserting on
    /// deadlock); with multiple workers the panic surfaces when the scope
    /// joins. Surviving workers stop claiming new grid cells once any run
    /// has panicked, so a failing campaign aborts after the in-flight
    /// cells instead of grinding through the rest of the grid.
    pub fn execute(self) -> Vec<R::Output> {
        self.execute_with(|run| run.execute())
    }

    /// Like [`Campaign::execute`], but each run first probes `store` with
    /// its [`Run::cache_key`]: a hit decodes the stored output instead of
    /// executing, and a miss executes then writes the encoded output back.
    /// Runs without a key, or with `store` `None`, always execute. The
    /// merged output is byte-identical to [`Campaign::execute`] either
    /// way — the differential suite in `tests/campaign_cache.rs` holds the
    /// uncached path as the permanent oracle.
    pub fn execute_cached(self, store: Option<&CacheStore>) -> Vec<R::Output>
    where
        R::Output: Persist,
    {
        match store {
            None => self.execute(),
            Some(s) => self.execute_with(|run| match run.cache_key() {
                Some(key) => s.get_or_run(&key, || run.execute()),
                None => run.execute(),
            }),
        }
    }

    /// Shared fan-out: runs `f` over every grid cell, merging in grid
    /// order (see [`Campaign::execute`] for the ordering and panic
    /// contract).
    fn execute_with<F>(self, f: F) -> Vec<R::Output>
    where
        F: Fn(&R) -> R::Output + Sync,
    {
        let workers = self.jobs.min(self.runs.len());
        if workers <= 1 {
            return self.runs.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let slots: Vec<Mutex<Option<R::Output>>> =
            self.runs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(run) = self.runs.get(i) else {
                        break;
                    };
                    // Raise the abort flag if `execute` unwinds, without
                    // swallowing the panic (it still fails the scope join).
                    struct FailFlag<'f>(&'f AtomicBool);
                    impl Drop for FailFlag<'_> {
                        fn drop(&mut self) {
                            if std::thread::panicking() {
                                self.0.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    let flag = FailFlag(&failed);
                    let out = f(run);
                    std::mem::forget(flag);
                    *slots[i].lock().expect("campaign slot lock poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .expect("campaign slot lock poisoned")
                    .unwrap_or_else(|| {
                        panic!(
                            "campaign {:?}: run {i} ({}) produced no result",
                            self.label,
                            self.runs[i].label()
                        )
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_sim::{SimConfig, SimReport};
    use deft_topo::{ChipletSystem, FaultState};

    /// A run whose duration is deliberately uneven, to shake out ordering
    /// bugs: late grid indices finish first.
    struct Uneven(usize);

    impl Run for Uneven {
        type Output = usize;
        fn label(&self) -> String {
            format!("uneven {}", self.0)
        }
        fn execute(&self) -> usize {
            std::thread::sleep(std::time::Duration::from_micros(
                ((16 - self.0 % 16) * 100) as u64,
            ));
            self.0 * 10
        }
    }

    #[test]
    fn results_arrive_in_grid_order_regardless_of_jobs() {
        let expected: Vec<usize> = (0..24).map(|i| i * 10).collect();
        for jobs in [1, 2, 4, 32] {
            let grid: Vec<Uneven> = (0..24).map(Uneven).collect();
            let out = Campaign::new("order", grid).jobs(jobs).execute();
            assert_eq!(out, expected, "jobs={jobs} permuted the grid");
        }
    }

    #[test]
    fn empty_grid_and_zero_jobs_are_harmless() {
        let out = Campaign::new("empty", Vec::<Uneven>::new())
            .jobs(0)
            .execute();
        assert!(out.is_empty());
        let one = Campaign::new("one", vec![Uneven(3)]).jobs(0).execute();
        assert_eq!(one, vec![30]);
    }

    #[test]
    fn accessors_report_the_grid() {
        let c = Campaign::new("label", vec![Uneven(0), Uneven(1)]);
        assert_eq!(c.label(), "label");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    /// A run that panics on one specific grid index.
    struct Explosive(usize);

    impl Run for Explosive {
        type Output = usize;
        fn label(&self) -> String {
            format!("explosive {}", self.0)
        }
        fn execute(&self) -> usize {
            assert!(self.0 != 2, "cell 2 exploded");
            self.0
        }
    }

    #[test]
    fn a_panicking_run_fails_the_whole_campaign() {
        for jobs in [1, 4] {
            let grid: Vec<Explosive> = (0..8).map(Explosive).collect();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Campaign::new("explosive", grid).jobs(jobs).execute()
            }));
            assert!(result.is_err(), "jobs={jobs} swallowed the panic");
        }
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    /// The cross-crate thread-safety contract the campaign runner relies
    /// on: everything a worker captures or returns is `Send`/`Sync`.
    #[test]
    fn campaign_inputs_and_outputs_are_thread_safe() {
        fn sync<T: Sync>() {}
        fn send<T: Send>() {}
        sync::<ChipletSystem>();
        sync::<FaultState>();
        sync::<SimConfig>();
        send::<FaultState>();
        send::<SimConfig>();
        send::<SimReport>();
        send::<crate::experiments::Algo>();
    }
}
