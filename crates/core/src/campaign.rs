//! The parallel experiment campaign runner.
//!
//! Every figure and table of the evaluation expands into a *grid* of
//! independent units of work — algorithm × injection rate × fault scenario
//! × seed — each of which is a self-contained simulation or analysis. A
//! [`Campaign`] fans such a grid out across OS threads
//! ([`std::thread::scope`], no external dependencies) and merges the
//! results **deterministically in grid order**, so a parallel campaign is
//! byte-identical to a serial one:
//!
//! * per-run seeds derive from the grid *position* (see
//!   [`ExpConfig::run_sim`](crate::experiments::ExpConfig::run_sim)), never
//!   from execution order or wall-clock time;
//! * every [`Run`] builds its own simulator, routing-algorithm instance,
//!   and traffic tables, so no mutable state is shared between workers;
//! * workers write each result into the slot reserved for its grid index,
//!   and [`Campaign::execute`] returns the slots in order.
//!
//! The experiment modules in [`crate::experiments`] all route their grids
//! through this runner; `deft-repro --jobs N` selects the worker count (and
//! `--jobs 1` recovers the strictly serial path, used by the determinism
//! tests to cross-check the parallel one).
//!
//! ```
//! use deft::campaign::{Campaign, Run};
//!
//! struct Square(u64);
//! impl Run for Square {
//!     type Output = u64;
//!     fn label(&self) -> String {
//!         format!("square {}", self.0)
//!     }
//!     fn execute(&self) -> u64 {
//!         self.0 * self.0
//!     }
//! }
//!
//! let grid: Vec<Square> = (0..8).map(Square).collect();
//! let out = Campaign::new("squares", grid).jobs(4).execute();
//! assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]); // grid order, always
//! ```

use deft_codec::{CacheKey, Persist};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

pub mod store;
pub mod supervisor;

pub use store::{CacheStats, CacheStore};
pub use supervisor::SupervisorOpts;

/// How one failed execution attempt of a campaign cell died. The
/// in-process runner and the out-of-process supervisor both degrade
/// through this type, so `--workers 0` and `--workers N` share one
/// failure vocabulary (and one quarantine report format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// The cell's code panicked (caught by `catch_unwind` in-process, or
    /// reported over the pipe by a still-alive worker).
    Panic(String),
    /// The worker process died mid-cell (pipe EOF); `status` is its exit
    /// status as reported by the OS (signal or exit code).
    WorkerExit {
        /// Human-readable exit status (e.g. `signal: 9` or `exit code: 7`).
        status: String,
    },
    /// The cell exceeded the per-cell deadline and its worker was killed.
    Timeout {
        /// The deadline that was exceeded.
        after: std::time::Duration,
    },
    /// The worker broke the frame protocol (malformed frame, wrong
    /// index/attempt echo, undecodable output).
    Protocol(String),
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Panic(msg) => write!(f, "panicked: {msg}"),
            CellError::WorkerExit { status } => write!(f, "worker died ({status})"),
            CellError::Timeout { after } => write!(f, "timed out after {after:?}"),
            CellError::Protocol(why) => write!(f, "protocol failure: {why}"),
        }
    }
}

/// One quarantined campaign cell: it exhausted its retry budget (every
/// attempt in `failures` died) and its slot in the merged output was
/// filled with `Output::default()` so the rest of the campaign could
/// complete. Recorded in the process-wide quarantine log; the CLI
/// reports the log on stderr and `--strict-cells` turns a non-empty log
/// into a non-zero exit.
#[derive(Debug, Clone)]
pub struct Quarantine {
    /// Label of the campaign the cell belongs to.
    pub campaign: String,
    /// Grid index of the cell.
    pub cell: usize,
    /// The cell's [`Run::label`].
    pub label: String,
    /// Every attempt's failure, in attempt order.
    pub failures: Vec<CellError>,
}

impl std::fmt::Display for Quarantine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "quarantined: campaign {:?} cell {} ({})",
            self.campaign, self.cell, self.label
        )?;
        for (attempt, err) in self.failures.iter().enumerate() {
            write!(f, "\n  attempt {attempt}: {err}")?;
        }
        Ok(())
    }
}

/// The process-wide quarantine log ([`record_quarantine`]/[`take_quarantines`]).
static QUARANTINES: Mutex<Vec<Quarantine>> = Mutex::new(Vec::new());

/// Appends one quarantined cell to the process-wide log.
pub fn record_quarantine(q: Quarantine) {
    QUARANTINES
        .lock()
        .expect("quarantine log lock poisoned")
        .push(q);
}

/// Drains the process-wide quarantine log (the CLI calls this once,
/// after all campaigns, to build the stderr report).
pub fn take_quarantines() -> Vec<Quarantine> {
    std::mem::take(&mut *QUARANTINES.lock().expect("quarantine log lock poisoned"))
}

/// Monotonic per-process campaign counter. Every
/// [`Campaign::execute_policy`] call consumes one ordinal *in every
/// execution mode*, so a worker process replaying the same driver code
/// path as its supervisor assigns identical ordinals to identical
/// campaigns — that shared numbering is how `--serve-campaign K` names
/// "the K-th campaign of this invocation" without a cross-process
/// registry of cell types.
static CAMPAIGN_ORDINAL: AtomicUsize = AtomicUsize::new(0);

fn next_campaign_ordinal() -> usize {
    CAMPAIGN_ORDINAL.fetch_add(1, Ordering::Relaxed)
}

/// Where [`Campaign::execute_policy`] runs its cells.
#[derive(Debug, Clone, Default)]
pub enum ExecMode {
    /// In this process, on a thread pool (the classic path).
    #[default]
    InProcess,
    /// Fan cells out across supervised worker processes (crash isolation,
    /// retries, timeouts, quarantine — see [`supervisor`]).
    Supervised(Arc<SupervisorOpts>),
    /// This process *is* a worker: serve cells of the campaign with this
    /// ordinal over stdin/stdout frames and never return; pass every
    /// other campaign through as `Output::default()` placeholders
    /// (nothing downstream of a non-target campaign is rendered in a
    /// worker — its stdout is the frame pipe).
    Serve {
        /// Ordinal of the campaign this worker serves.
        target: usize,
    },
}

/// Everything that decides *how* (not *what*) a campaign executes:
/// thread count, result store, and execution mode. Byte-identity of the
/// merged output across every policy is the repo's determinism contract.
#[derive(Debug, Clone, Default)]
pub struct ExecPolicy {
    /// Worker threads for the in-process path (ignored by the other
    /// modes; 0 is clamped to 1).
    pub jobs: usize,
    /// Optional shared result store; in supervised mode the workers open
    /// the same directory and the supervisor aggregates their counters.
    pub cache: Option<Arc<CacheStore>>,
    /// In-process, supervised, or serving.
    pub mode: ExecMode,
}

/// The number of worker threads used when none is requested explicitly:
/// the machine's available parallelism, or 1 if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// One independent unit of work in a campaign grid.
///
/// A run must be *self-contained*: everything it needs is captured at grid
/// construction time (shared inputs by reference — hence the `Sync` bound —
/// plus per-run parameters by value), and `execute` builds any mutable
/// state (simulator, routing algorithm, RNG) locally. This is what makes
/// the fan-out embarrassingly parallel and the merged output independent
/// of scheduling.
pub trait Run: Sync {
    /// The run's result, sent back from the worker thread.
    type Output: Send;

    /// A short human-readable description, used in diagnostics.
    fn label(&self) -> String;

    /// Performs the work. Called exactly once, possibly on a worker thread.
    fn execute(&self) -> Self::Output;

    /// Content-addressed identity of this run for the memoized result
    /// store, or `None` when the run must always execute.
    ///
    /// The key must cover **every** input that can change the output
    /// (topology, traffic, fault state, seeds, simulation windows,
    /// algorithm) and **nothing** that cannot — in particular not the
    /// worker count or `tick_threads`, which are byte-identity-neutral by
    /// the determinism contract. The default is `None`: caching is
    /// strictly opt-in per run type.
    fn cache_key(&self) -> Option<CacheKey> {
        None
    }
}

/// A grid of independent [`Run`]s executed across worker threads, with
/// results merged in grid order.
///
/// Built with [`Campaign::new`], tuned with [`Campaign::jobs`], consumed by
/// [`Campaign::execute`].
#[derive(Debug)]
pub struct Campaign<R> {
    label: String,
    runs: Vec<R>,
    jobs: usize,
}

impl<R: Run> Campaign<R> {
    /// Creates a campaign over the given grid. The worker count defaults to
    /// [`default_jobs`].
    pub fn new(label: impl Into<String>, runs: Vec<R>) -> Self {
        Self {
            label: label.into(),
            runs,
            jobs: default_jobs(),
        }
    }

    /// Sets the worker-thread count. `1` means strictly serial execution on
    /// the calling thread; values are clamped to at least 1. The results
    /// are identical for every value — only wall-clock time changes.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The campaign's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of runs in the grid.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Executes every run and returns the outputs in grid order.
    ///
    /// With more than one worker, threads pull the next unclaimed grid
    /// index from a shared counter and write the result into that index's
    /// slot, so the merged vector is independent of which worker ran what
    /// and in which order runs finished.
    ///
    /// # Panics
    /// Propagates panics from run execution (e.g. a simulation asserting
    /// on deadlock). Each cell runs under `catch_unwind`, the rest of the
    /// grid still completes, and the first failure is re-raised at merge
    /// time — so one bad cell cannot leave the grid half-executed with
    /// workers mid-flight, and the panic still fails the campaign. Use
    /// [`Campaign::execute_policy`] for the quarantine path that survives
    /// failed cells instead.
    pub fn execute(self) -> Vec<R::Output> {
        self.merge_or_panic(|c| c.execute_isolated(|run| run.execute()))
    }

    /// Like [`Campaign::execute`], but each run first probes `store` with
    /// its [`Run::cache_key`]: a hit decodes the stored output instead of
    /// executing, and a miss executes then writes the encoded output back.
    /// Runs without a key, or with `store` `None`, always execute. The
    /// merged output is byte-identical to [`Campaign::execute`] either
    /// way — the differential suite in `tests/campaign_cache.rs` holds the
    /// uncached path as the permanent oracle.
    pub fn execute_cached(self, store: Option<&CacheStore>) -> Vec<R::Output>
    where
        R::Output: Persist,
    {
        self.merge_or_panic(|c| c.execute_isolated_cached(store))
    }

    /// Executes under an [`ExecPolicy`]: the one entry point that unifies
    /// the in-process thread pool, the supervised worker-process pool,
    /// and the worker-side serve loop. Consumes one campaign ordinal in
    /// every mode (see [`ExecMode::Serve`] for why that matters).
    ///
    /// Unlike [`Campaign::execute`], a cell whose every attempt fails
    /// does **not** panic the campaign: it is recorded in the process-wide
    /// quarantine log ([`take_quarantines`]) and its output slot is
    /// filled with `Output::default()` — the shared degradation contract
    /// of the in-process and supervised paths. In-process, a
    /// deterministic panic would recur on any retry, so one failed
    /// attempt quarantines the cell immediately; the supervisor retries
    /// on fresh workers up to its failure budget first.
    pub fn execute_policy(self, policy: &ExecPolicy) -> Vec<R::Output>
    where
        R::Output: Persist + Default,
    {
        let ordinal = next_campaign_ordinal();
        match &policy.mode {
            ExecMode::InProcess => {
                let store = policy.cache.as_deref();
                let campaign = Self {
                    jobs: policy.jobs.max(1),
                    ..self
                };
                let cells = campaign.execute_isolated_cached(store);
                campaign.quarantine_failures(cells)
            }
            ExecMode::Supervised(opts) => supervisor::supervise(&self, ordinal, opts, policy),
            ExecMode::Serve { target } => {
                if ordinal == *target {
                    supervisor::serve(&self, policy.cache.as_deref());
                }
                // A worker replays the driver path: campaigns before (or
                // after) its target are passed through as placeholder
                // defaults — nothing derived from them is ever rendered
                // in a worker process.
                self.runs.iter().map(|_| R::Output::default()).collect()
            }
        }
    }

    /// The isolated cached fan-out [`Campaign::execute_cached`] and
    /// [`Campaign::execute_policy`] share.
    fn execute_isolated_cached(
        &self,
        store: Option<&CacheStore>,
    ) -> Vec<Result<R::Output, CellError>>
    where
        R::Output: Persist,
    {
        match store {
            None => self.execute_isolated(|run| run.execute()),
            Some(s) => self.execute_isolated(|run| match run.cache_key() {
                Some(key) => s.get_or_run(&key, || run.execute()),
                None => run.execute(),
            }),
        }
    }

    /// Converts isolated results into the panic contract of
    /// [`Campaign::execute`]: the grid completes, then the first failed
    /// cell re-raises its panic at merge time.
    fn merge_or_panic(
        self,
        f: impl FnOnce(&Self) -> Vec<Result<R::Output, CellError>>,
    ) -> Vec<R::Output> {
        let cells = f(&self);
        cells
            .into_iter()
            .enumerate()
            .map(|(i, cell)| {
                cell.unwrap_or_else(|err| {
                    panic!(
                        "campaign {:?}: run {i} ({}) failed: {err}",
                        self.label,
                        self.runs[i].label()
                    )
                })
            })
            .collect()
    }

    /// Converts isolated results into the quarantine contract of
    /// [`Campaign::execute_policy`]: failed cells are logged and default
    /// to `Output::default()`.
    fn quarantine_failures(&self, cells: Vec<Result<R::Output, CellError>>) -> Vec<R::Output>
    where
        R::Output: Default,
    {
        cells
            .into_iter()
            .enumerate()
            .map(|(i, cell)| {
                cell.unwrap_or_else(|err| {
                    record_quarantine(Quarantine {
                        campaign: self.label.clone(),
                        cell: i,
                        label: self.runs[i].label(),
                        failures: vec![err],
                    });
                    R::Output::default()
                })
            })
            .collect()
    }

    /// Shared fan-out: runs `f` over every grid cell under
    /// `catch_unwind`, merging in grid order. Every cell executes even
    /// when earlier cells fail — isolation, not early abort — and a
    /// panicking cell surfaces as [`CellError::Panic`] in its own slot.
    fn execute_isolated<F>(&self, f: F) -> Vec<Result<R::Output, CellError>>
    where
        F: Fn(&R) -> R::Output + Sync,
    {
        let one = |run: &R| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(run)))
                .map_err(|payload| CellError::Panic(panic_message(payload.as_ref())))
        };
        let workers = self.jobs.min(self.runs.len());
        if workers <= 1 {
            return self.runs.iter().map(one).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<CellSlot<R::Output>> = self.runs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(run) = self.runs.get(i) else {
                        break;
                    };
                    let out = one(run);
                    *slots[i].lock().expect("campaign slot lock poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .expect("campaign slot lock poisoned")
                    .unwrap_or_else(|| {
                        panic!(
                            "campaign {:?}: run {i} ({}) produced no result",
                            self.label,
                            self.runs[i].label()
                        )
                    })
            })
            .collect()
    }
}

/// One grid cell's result slot in the isolated parallel fan-out: `None`
/// until some worker claims and finishes the cell.
type CellSlot<T> = Mutex<Option<Result<T, CellError>>>;

/// Stringifies a caught panic payload (the `&str`/`String` payloads real
/// panics carry; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_sim::{SimConfig, SimReport};
    use deft_topo::{ChipletSystem, FaultState};

    /// A run whose duration is deliberately uneven, to shake out ordering
    /// bugs: late grid indices finish first.
    struct Uneven(usize);

    impl Run for Uneven {
        type Output = usize;
        fn label(&self) -> String {
            format!("uneven {}", self.0)
        }
        fn execute(&self) -> usize {
            std::thread::sleep(std::time::Duration::from_micros(
                ((16 - self.0 % 16) * 100) as u64,
            ));
            self.0 * 10
        }
    }

    #[test]
    fn results_arrive_in_grid_order_regardless_of_jobs() {
        let expected: Vec<usize> = (0..24).map(|i| i * 10).collect();
        for jobs in [1, 2, 4, 32] {
            let grid: Vec<Uneven> = (0..24).map(Uneven).collect();
            let out = Campaign::new("order", grid).jobs(jobs).execute();
            assert_eq!(out, expected, "jobs={jobs} permuted the grid");
        }
    }

    #[test]
    fn empty_grid_and_zero_jobs_are_harmless() {
        let out = Campaign::new("empty", Vec::<Uneven>::new())
            .jobs(0)
            .execute();
        assert!(out.is_empty());
        let one = Campaign::new("one", vec![Uneven(3)]).jobs(0).execute();
        assert_eq!(one, vec![30]);
    }

    #[test]
    fn accessors_report_the_grid() {
        let c = Campaign::new("label", vec![Uneven(0), Uneven(1)]);
        assert_eq!(c.label(), "label");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    /// A run that panics on one specific grid index.
    struct Explosive(usize);

    impl Run for Explosive {
        type Output = usize;
        fn label(&self) -> String {
            format!("explosive {}", self.0)
        }
        fn execute(&self) -> usize {
            assert!(self.0 != 2, "cell 2 exploded");
            self.0
        }
    }

    #[test]
    fn a_panicking_run_fails_the_whole_campaign() {
        for jobs in [1, 4] {
            let grid: Vec<Explosive> = (0..8).map(Explosive).collect();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Campaign::new("explosive", grid).jobs(jobs).execute()
            }));
            assert!(result.is_err(), "jobs={jobs} swallowed the panic");
        }
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    /// A persistable output for the policy-path tests.
    #[derive(Debug, Default, Clone, PartialEq)]
    struct Val(u64);

    impl Persist for Val {
        fn encode(&self, enc: &mut deft_codec::Encoder) {
            enc.put_u64(self.0);
        }
        fn decode(dec: &mut deft_codec::Decoder<'_>) -> Result<Self, deft_codec::CodecError> {
            Ok(Self(dec.get_u64()?))
        }
    }

    /// Panics on grid index 2, like [`Explosive`], but with a persistable
    /// output so it can route through [`Campaign::execute_policy`].
    struct BrittleVal(usize);

    impl Run for BrittleVal {
        type Output = Val;
        fn label(&self) -> String {
            format!("brittle {}", self.0)
        }
        fn execute(&self) -> Val {
            assert!(self.0 != 2, "cell 2 exploded");
            Val(self.0 as u64 * 10)
        }
    }

    /// One test (not two) so no concurrently running test drains the
    /// process-wide quarantine log between execute and inspection.
    #[test]
    fn execute_policy_quarantines_panicking_cells_and_spares_healthy_ones() {
        // A panicking cell: the campaign completes, the cell's slot holds
        // the default, and the log records the panic.
        let grid: Vec<BrittleVal> = (0..5).map(BrittleVal).collect();
        let out = Campaign::new("brittle-policy", grid).execute_policy(&ExecPolicy::default());
        assert_eq!(out, vec![Val(0), Val(10), Val::default(), Val(30), Val(40)]);
        let quarantined: Vec<Quarantine> = take_quarantines()
            .into_iter()
            .filter(|q| q.campaign == "brittle-policy")
            .collect();
        assert_eq!(quarantined.len(), 1);
        let q = &quarantined[0];
        assert_eq!((q.cell, q.label.as_str()), (2, "brittle 2"));
        assert_eq!(
            q.failures.len(),
            1,
            "a deterministic panic is not retried in-process"
        );
        assert!(
            matches!(&q.failures[0], CellError::Panic(m) if m.contains("cell 2 exploded")),
            "{:?}",
            q.failures
        );
        assert!(q.to_string().starts_with("quarantined: campaign"));

        // A healthy grid: byte-identical to execute(), nothing quarantined.
        let grid: Vec<BrittleVal> = (0..5).filter(|&i| i != 2).map(BrittleVal).collect();
        let out = Campaign::new("healthy-policy", grid)
            .jobs(2)
            .execute_policy(&ExecPolicy::default());
        assert_eq!(out, vec![Val(0), Val(10), Val(30), Val(40)]);
        assert!(take_quarantines()
            .iter()
            .all(|q| q.campaign != "healthy-policy"));
    }

    /// The cross-crate thread-safety contract the campaign runner relies
    /// on: everything a worker captures or returns is `Send`/`Sync`.
    #[test]
    fn campaign_inputs_and_outputs_are_thread_safe() {
        fn sync<T: Sync>() {}
        fn send<T: Send>() {}
        sync::<ChipletSystem>();
        sync::<FaultState>();
        sync::<SimConfig>();
        send::<FaultState>();
        send::<SimConfig>();
        send::<SimReport>();
        send::<crate::experiments::Algo>();
    }
}
