//! Paper-style text rendering of experiment results.
//!
//! Every renderer prints the same rows/series the paper's figure or table
//! reports, so `deft-repro`'s output can be compared against the paper side
//! by side (see `EXPERIMENTS.md`).

use crate::experiments::{
    AppImprovement, ForkSweepRow, LatencySweep, PerfReport, ReachabilityCurves, RecoveryRow,
    RhoRow, ScalingRow, VcUtilRow,
};
use deft_power::Table1Row;
use deft_sim::SimReport;
use std::fmt::Write as _;

/// Renders a latency sweep (one Fig. 4 / Fig. 8 panel) as an aligned table.
///
/// A sweep with no curves (or curves with no points) renders as the header
/// plus an explicit `(no data)` marker instead of panicking, so partial or
/// filtered campaigns still produce a readable report.
pub fn render_latency_sweep(sweep: &LatencySweep) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", sweep.title);
    let Some(first) = sweep.curves.first() else {
        let _ = writeln!(out, "(no data)");
        return out;
    };
    let _ = write!(out, "{:>10}", "inj.rate");
    for c in &sweep.curves {
        let _ = write!(out, " {:>12}", c.algorithm);
    }
    let _ = writeln!(out);
    let n = first.points.len();
    for i in 0..n {
        let rate = first.points[i].0;
        let _ = write!(out, "{rate:>10.4}");
        for c in &sweep.curves {
            let (_, lat, ratio) = c.points[i];
            if ratio < 0.9 {
                let _ = write!(out, " {lat:>10.1}*s"); // saturated
            } else {
                let _ = write!(out, " {lat:>12.1}");
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(latency in cycles; *s marks saturation, delivery < 90%)"
    );
    out
}

/// Renders a Fig. 5 VC-utilization chart as rows.
pub fn render_vc_util(title: &str, rows: &[VcUtilRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== VC utilization: {title} ==");
    let _ = writeln!(out, "{:>10} {:>8} {:>8}", "region", "VC1", "VC2");
    for r in rows {
        let _ = writeln!(
            out,
            "{:>10} {:>7.1}% {:>7.1}%",
            r.region, r.vc0_percent, r.vc1_percent
        );
    }
    out
}

/// Renders Fig. 6 bars.
pub fn render_app_improvements(title: &str, rows: &[AppImprovement]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Latency improvement: {title} ==");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12}",
        "app", "DeFT (cyc)", "vs MTR (%)", "vs RC (%)"
    );
    let mut avg_mtr = 0.0;
    let mut avg_rc = 0.0;
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8} {:>12.1} {:>12.1} {:>12.1}",
            r.label, r.deft_latency, r.vs_mtr_percent, r.vs_rc_percent
        );
        avg_mtr += r.vs_mtr_percent;
        avg_rc += r.vs_rc_percent;
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12.1} {:>12.1}",
            "Avg",
            "",
            avg_mtr / n,
            avg_rc / n
        );
    }
    out
}

/// Renders a Fig. 7 panel.
pub fn render_reachability(title: &str, c: &ReachabilityCurves) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Reachability (%): {title} ==");
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "#faults", "DeFT", "MTR-Avg", "MTR-Wrst", "RC-Avg", "RC-Wrst"
    );
    for i in 0..c.k.len() {
        let _ = writeln!(
            out,
            "{:>8} {:>8.2} {:>9.2} {:>9.2} {:>8.2} {:>8.2}",
            c.k[i], c.deft[i], c.mtr_avg[i], c.mtr_worst[i], c.rc_avg[i], c.rc_worst[i]
        );
    }
    out
}

/// Renders the ρ-sweep ablation (DESIGN.md §8).
pub fn render_rho_ablation(rows: &[RhoRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== rho ablation: VL selection with one faulty VL (Eq. 6) =="
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>10}",
        "rho", "max VL load", "total dist", "cost"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8.3} {:>12.2} {:>12} {:>10.3}",
            r.rho, r.max_vl_load, r.total_distance, r.cost
        );
    }
    out
}

/// Renders the scaling-study extension.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== scaling study: 2-8 chiplets, uniform traffic, 4 faults =="
    );
    let _ = writeln!(
        out,
        "{:>9} {:>6} {:>11} {:>10} {:>9} {:>10} {:>9} {:>8}",
        "#chiplets",
        "nodes",
        "DeFT (cyc)",
        "vs MTR(%)",
        "vs RC(%)",
        "DeFT rch%",
        "MTR rch%",
        "RC rch%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>9} {:>6} {:>11.1} {:>10.1} {:>9.1} {:>10.2} {:>9.2} {:>8.2}",
            r.chiplets,
            r.nodes,
            r.deft_latency,
            r.vs_mtr_percent,
            r.vs_rc_percent,
            r.deft_reach,
            r.mtr_reach,
            r.rc_reach
        );
    }
    out
}

/// Renders the engine-performance report as an aligned table. The
/// `vs-PR4` column shows each cell's [`baseline_delta`] speed multiplier
/// over the PR 4 full-mode baseline (`-` when not applicable: quick mode,
/// or a cell newer than the baseline).
///
/// [`baseline_delta`]: crate::experiments::PerfCellResult::baseline_delta
pub fn render_perf(report: &PerfReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Engine throughput ({} windows) ==", report.mode);
    let _ = writeln!(
        out,
        "{:>26} {:>10} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "cell", "cycles", "flit-hops", "wall ms", "cycles/s", "ns/fhop", "vs-PR4"
    );
    for c in &report.cells {
        let delta = match c.baseline_delta {
            Some(d) => format!("{d:.2}x"),
            None => "-".to_owned(),
        };
        let _ = writeln!(
            out,
            "{:>26} {:>10} {:>12} {:>10.2} {:>12.0} {:>10.2} {:>8}",
            c.name, c.cycles, c.flit_hops, c.wall_ms, c.cycles_per_sec, c.ns_per_flit_hop, delta
        );
    }
    for c in &report.cells {
        if let Some(p) = c.phase_breakdown {
            let total = (p.route_ns + p.switch_ns + p.commit_ns + p.postlude_ns).max(1) as f64;
            let pct = |ns: u64| ns as f64 * 100.0 / total;
            let _ = writeln!(
                out,
                "  {}: route {:.1}% / switch {:.1}% / commit {:.1}% / postlude {:.1}% \
                 (profiled re-run)",
                c.name,
                pct(p.route_ns),
                pct(p.switch_ns),
                pct(p.commit_ns),
                pct(p.postlude_ns)
            );
        }
    }
    let _ = writeln!(
        out,
        "(peak cell wall time {:.2} ms on {} core(s); wall-clock fields vary per invocation)",
        report.peak_cell_wall_ms(),
        report.host_parallelism
    );
    out
}

/// Serializes the engine-performance report as the `BENCH_sim.json`
/// document (schema `deft-bench-sim/v2`, see `EXPERIMENTS.md`). Emitted by
/// hand because the offline `serde` shim does not serialize; cell names
/// are fixed identifiers that need no escaping.
///
/// v2 extends v1 with one per-cell field: `baseline_delta`, the speed
/// multiplier over the PR 4 full-mode baseline (JSON `null` when not
/// applicable). PR 7 adds the top-level `host_parallelism` (additive, so
/// the schema tag stays v2): the timing host's core count, without which
/// the threaded large-grid cells cannot be read. PR 9 adds the per-cell
/// `phase_breakdown` (additive, schema stays v2): per-phase wall
/// nanoseconds from a separate profiled re-run, `null` on cells that
/// don't carry one.
pub fn perf_json(report: &PerfReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"deft-bench-sim/v2\",");
    let _ = writeln!(out, "  \"mode\": \"{}\",", report.mode);
    let _ = writeln!(out, "  \"host_parallelism\": {},", report.host_parallelism);
    let fig4 = report
        .fig4_mid_load()
        .map(|c| c.cycles_per_sec)
        .unwrap_or(0.0);
    let _ = writeln!(out, "  \"fig4_mid_load_cycles_per_sec\": {fig4:.1},");
    let _ = writeln!(
        out,
        "  \"peak_cell_wall_ms\": {:.3},",
        report.peak_cell_wall_ms()
    );
    out.push_str("  \"cells\": [\n");
    for (i, c) in report.cells.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(
            out,
            "\"name\": \"{}\", \"algorithm\": \"{}\", \"pattern\": \"{}\", \
             \"cycles\": {}, \"flit_hops\": {}, \"delivered\": {}, \
             \"wall_ms\": {:.3}, \"cycles_per_sec\": {:.1}, \"ns_per_flit_hop\": {:.2}, \
             \"baseline_delta\": {}",
            c.name,
            c.algorithm,
            c.pattern,
            c.cycles,
            c.flit_hops,
            c.delivered,
            c.wall_ms,
            c.cycles_per_sec,
            c.ns_per_flit_hop,
            match c.baseline_delta {
                Some(d) => format!("{d:.3}"),
                None => "null".to_owned(),
            }
        );
        let _ = write!(
            out,
            ", \"phase_breakdown\": {}",
            match c.phase_breakdown {
                Some(p) => format!(
                    "{{\"route_ns\": {}, \"switch_ns\": {}, \"commit_ns\": {}, \
                     \"postlude_ns\": {}}}",
                    p.route_ns, p.switch_ns, p.commit_ns, p.postlude_ns
                ),
                None => "null".to_owned(),
            }
        );
        out.push_str(if i + 1 < report.cells.len() {
            "},\n"
        } else {
            "}\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the recovery experiment (dynamic fault timelines): one row per
/// (scenario, algorithm, seed) cell of the campaign grid.
pub fn render_recovery(rows: &[RecoveryRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== recovery: dynamic fault timelines (uniform traffic) =="
    );
    let _ = writeln!(
        out,
        "{:>28} {:>9} {:>5} {:>6} {:>6} {:>6} {:>11} {:>9} {:>9}",
        "scenario", "alg", "seed", "trans", "drop", "lost", "loss/trans", "rec.lat", "latency"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>28} {:>9} {:>5} {:>6} {:>6} {:>6} {:>11.2} {:>9.1} {:>9.1}",
            r.scenario,
            r.algorithm,
            r.seed,
            r.transitions,
            r.dropped_unroutable,
            r.lost_in_flight,
            r.losses_per_transition,
            r.avg_recovery_latency,
            r.avg_latency
        );
    }
    let _ = writeln!(
        out,
        "(drop = unroutable at injection; lost = in flight at a transition; \
         rec.lat = cycles until losses cease after a transition)"
    );
    out
}

/// Renders the fork-sweep experiment: one row per algorithm, aggregated
/// over its branched fault futures with 95% confidence half-widths.
pub fn render_fork_sweep(rows: &[ForkSweepRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== fork sweep: Monte-Carlo fault futures off a shared prefix =="
    );
    let _ = writeln!(
        out,
        "{:>9} {:>6} {:>10} {:>16} {:>18} {:>9}",
        "alg", "forks", "fork@", "losses ±95%", "rec.lat ±95%", "latency"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>9} {:>6} {:>10} {:>9.2} ±{:>5.2} {:>11.1} ±{:>5.1} {:>9.1}",
            r.algorithm,
            r.forks,
            r.fork_cycle,
            r.mean_losses,
            r.ci95_losses,
            r.mean_recovery_latency,
            r.ci95_recovery_latency,
            r.mean_latency
        );
    }
    let _ = writeln!(
        out,
        "(per-branch means; ±95% = 1.96·s/√K over the branched futures)"
    );
    out
}

/// Serializes the fork-sweep experiment as CSV.
pub fn fork_sweep_csv(rows: &[ForkSweepRow]) -> String {
    let mut out = String::from(
        "algorithm,forks,fork_cycle,mean_losses,ci95_losses,\
         mean_recovery_latency,ci95_recovery_latency,mean_latency\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            r.algorithm,
            r.forks,
            r.fork_cycle,
            r.mean_losses,
            r.ci95_losses,
            r.mean_recovery_latency,
            r.ci95_recovery_latency,
            r.mean_latency
        );
    }
    out
}

/// Serializes one simulation report as a single-row CSV (used by the
/// `checkpoint` target, whose resumed and straight-through outputs must
/// compare byte-identical).
pub fn sim_report_csv(r: &SimReport) -> String {
    let mut out = String::from(
        "algorithm,pattern,cycles,injected_measured,delivered,dropped_unroutable,\
         lost_in_flight,generated_total,avg_latency,p50_latency,p95_latency,\
         p99_latency,max_latency,throughput,deadlocked\n",
    );
    let _ = writeln!(
        out,
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        r.algorithm,
        r.pattern,
        r.cycles,
        r.injected_measured,
        r.delivered,
        r.dropped_unroutable,
        r.lost_in_flight,
        r.generated_total,
        r.avg_latency,
        r.p50_latency,
        r.p95_latency,
        r.p99_latency,
        r.max_latency,
        r.throughput,
        r.deadlocked
    );
    out
}

/// Renders one simulation report (the `checkpoint` target's text form).
pub fn render_sim_report(r: &SimReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== checkpoint run: {} / {} ==", r.algorithm, r.pattern);
    let _ = writeln!(
        out,
        "cycles {}  delivered {}  dropped {}  lost {}  avg latency {:.1}  p95 {}  deadlocked {}",
        r.cycles,
        r.delivered,
        r.dropped_unroutable,
        r.lost_in_flight,
        r.avg_latency,
        r.p95_latency,
        r.deadlocked
    );
    out
}

/// Serializes the recovery experiment as CSV.
pub fn recovery_csv(rows: &[RecoveryRow]) -> String {
    let mut out = String::from(
        "scenario,algorithm,seed,transitions,dropped_unroutable,lost_in_flight,\
         losses_per_transition,avg_recovery_latency,avg_latency,delivered\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{}",
            r.scenario,
            r.algorithm,
            r.seed,
            r.transitions,
            r.dropped_unroutable,
            r.lost_in_flight,
            r.losses_per_transition,
            r.avg_recovery_latency,
            r.avg_latency,
            r.delivered
        );
    }
    out
}

/// Serializes a latency sweep as CSV (`rate,<alg1>,<alg1>_delivery,...`),
/// for external plotting. An empty curve set yields just the header.
pub fn latency_sweep_csv(sweep: &LatencySweep) -> String {
    let mut out = String::from("rate");
    for c in &sweep.curves {
        let _ = write!(out, ",{0},{0}_delivery", c.algorithm);
    }
    out.push('\n');
    let Some(first) = sweep.curves.first() else {
        return out;
    };
    for i in 0..first.points.len() {
        let _ = write!(out, "{}", first.points[i].0);
        for c in &sweep.curves {
            let (_, lat, ratio) = c.points[i];
            let _ = write!(out, ",{lat},{ratio}");
        }
        out.push('\n');
    }
    out
}

/// Serializes a Fig. 5 panel as CSV.
pub fn vc_util_csv(rows: &[VcUtilRow]) -> String {
    let mut out = String::from("region,vc0_percent,vc1_percent\n");
    for r in rows {
        let _ = writeln!(out, "{},{},{}", r.region, r.vc0_percent, r.vc1_percent);
    }
    out
}

/// Serializes Fig. 6 bars as CSV.
pub fn app_improvements_csv(rows: &[AppImprovement]) -> String {
    let mut out = String::from("app,deft_latency,vs_mtr_percent,vs_rc_percent\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            r.label, r.deft_latency, r.vs_mtr_percent, r.vs_rc_percent
        );
    }
    out
}

/// Serializes the ρ-sweep ablation as CSV.
pub fn rho_ablation_csv(rows: &[RhoRow]) -> String {
    let mut out = String::from("rho,max_vl_load,total_distance,cost\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            r.rho, r.max_vl_load, r.total_distance, r.cost
        );
    }
    out
}

/// Serializes the scaling study as CSV.
pub fn scaling_csv(rows: &[ScalingRow]) -> String {
    let mut out = String::from(
        "chiplets,nodes,deft_latency,vs_mtr_percent,vs_rc_percent,deft_reach,mtr_reach,rc_reach\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            r.chiplets,
            r.nodes,
            r.deft_latency,
            r.vs_mtr_percent,
            r.vs_rc_percent,
            r.deft_reach,
            r.mtr_reach,
            r.rc_reach
        );
    }
    out
}

/// Serializes Table I as CSV.
pub fn table1_csv(rows: &[Table1Row]) -> String {
    let mut out = String::from("variant,area_um2,norm_area,power_mw,norm_power\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.variant, r.area_um2, r.norm_area, r.power_mw, r.norm_power
        );
    }
    out
}

/// Serializes a Fig. 7 panel as CSV.
pub fn reachability_csv(c: &ReachabilityCurves) -> String {
    let mut out = String::from("faults,deft,mtr_avg,mtr_worst,rc_avg,rc_worst\n");
    for i in 0..c.k.len() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            c.k[i], c.deft[i], c.mtr_avg[i], c.mtr_worst[i], c.rc_avg[i], c.rc_worst[i]
        );
    }
    out
}

/// Renders Table I.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table I: router area and power (45 nm, 1 GHz) ==");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>8} {:>10} {:>8}",
        "variant", "area um2", "norm", "power mW", "norm"
    );
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::LatencyCurve;

    #[test]
    fn latency_sweep_renders_all_points() {
        let sweep = LatencySweep {
            title: "Uniform - 4 Chiplets".into(),
            curves: vec![
                LatencyCurve {
                    algorithm: "DeFT".into(),
                    points: vec![(0.002, 30.0, 1.0), (0.008, 90.0, 0.5)],
                },
                LatencyCurve {
                    algorithm: "MTR".into(),
                    points: vec![(0.002, 32.0, 1.0), (0.008, 120.0, 0.4)],
                },
            ],
        };
        let s = render_latency_sweep(&sweep);
        assert!(s.contains("DeFT") && s.contains("MTR"));
        assert!(s.contains("0.0020"));
        assert!(s.contains("*s"), "saturated points are marked");
    }

    #[test]
    fn empty_curve_sets_render_without_panicking() {
        let empty = LatencySweep {
            title: "Empty - 0 Chiplets".into(),
            curves: vec![],
        };
        let s = render_latency_sweep(&empty);
        assert!(s.contains("== Empty - 0 Chiplets =="));
        assert!(s.contains("(no data)"));
        assert_eq!(latency_sweep_csv(&empty), "rate\n");

        // Curves present but no sweep points: header row only, no panic.
        let pointless = LatencySweep {
            title: "t".into(),
            curves: vec![LatencyCurve {
                algorithm: "DeFT".into(),
                points: vec![],
            }],
        };
        let s = render_latency_sweep(&pointless);
        assert!(s.contains("DeFT"));
        assert_eq!(latency_sweep_csv(&pointless), "rate,DeFT,DeFT_delivery\n");

        // Sibling renderers tolerate empty row sets too.
        assert!(render_vc_util("Uniform", &[]).contains("VC utilization"));
        assert!(render_app_improvements("t", &[]).contains("improvement"));
        assert!(render_rho_ablation(&[]).contains("rho"));
        assert!(render_scaling(&[]).contains("scaling"));
        assert!(render_table1(&[]).contains("Table I"));
        assert!(render_recovery(&[]).contains("recovery"));
        let none = ReachabilityCurves {
            k: vec![],
            deft: vec![],
            mtr_avg: vec![],
            mtr_worst: vec![],
            rc_avg: vec![],
            rc_worst: vec![],
        };
        assert!(render_reachability("t", &none).contains("#faults"));
    }

    #[test]
    fn perf_render_and_json_cover_the_schema() {
        use crate::experiments::PerfCellResult;
        let report = PerfReport {
            mode: "quick".into(),
            host_parallelism: 4,
            cells: vec![
                PerfCellResult {
                    name: crate::experiments::FIG4_MID_CELL.into(),
                    algorithm: "DeFT".into(),
                    pattern: "Uniform".into(),
                    cycles: 12_000,
                    flit_hops: 800_000,
                    delivered: 5_000,
                    wall_ms: 250.0,
                    cycles_per_sec: 48_000.0,
                    ns_per_flit_hop: 312.5,
                    baseline_delta: None,
                    phase_breakdown: Some(crate::experiments::PhaseBreakdown {
                        route_ns: 100,
                        switch_ns: 200,
                        commit_ns: 300,
                        postlude_ns: 400,
                    }),
                },
                PerfCellResult {
                    name: "transpose-mid/DeFT".into(),
                    algorithm: "DeFT".into(),
                    pattern: "Transpose".into(),
                    cycles: 11_000,
                    flit_hops: 400_000,
                    delivered: 2_500,
                    wall_ms: 125.0,
                    cycles_per_sec: 88_000.0,
                    ns_per_flit_hop: 312.5,
                    baseline_delta: Some(1.273),
                    phase_breakdown: None,
                },
            ],
        };
        let text = render_perf(&report);
        assert!(text.contains("Engine throughput (quick windows)"));
        assert!(text.contains("fig4-uniform-mid/DeFT"));
        assert!(text.contains("peak cell wall time 250.00 ms on 4 core(s)"));

        assert!(text.contains(" 1.27x"), "delta column renders: {text}");
        assert!(text.contains(" -\n"), "missing delta renders as dash");

        let json = perf_json(&report);
        assert!(json.contains("\"schema\": \"deft-bench-sim/v2\""));
        assert!(json.contains("\"mode\": \"quick\""));
        assert!(json.contains("\"host_parallelism\": 4"));
        assert!(json.contains("\"fig4_mid_load_cycles_per_sec\": 48000.0"));
        assert!(json.contains("\"peak_cell_wall_ms\": 250.000"));
        assert!(json.contains("\"ns_per_flit_hop\": 312.50"));
        assert!(json.contains("\"baseline_delta\": null"));
        assert!(json.contains("\"baseline_delta\": 1.273"));
        assert!(json.contains(
            "\"phase_breakdown\": {\"route_ns\": 100, \"switch_ns\": 200, \
             \"commit_ns\": 300, \"postlude_ns\": 400}"
        ));
        assert!(json.contains("\"phase_breakdown\": null"));
        assert!(
            text.contains("route 10.0% / switch 20.0% / commit 30.0% / postlude 40.0%"),
            "breakdown footnote renders: {text}"
        );
        // Exactly one comma-separated object per cell, valid-JSON shaped.
        assert_eq!(json.matches("\"name\":").count(), 2);
        assert_eq!(json.matches("},\n").count(), 1);
        assert!(json.trim_end().ends_with('}'));
        // Empty report still emits the tracked fields.
        let empty = perf_json(&PerfReport {
            mode: "full".into(),
            host_parallelism: 1,
            cells: Vec::new(),
        });
        assert!(empty.contains("\"fig4_mid_load_cycles_per_sec\": 0.0"));
    }

    #[test]
    fn csv_emitters_cover_every_experiment() {
        let vc = vc_util_csv(&[VcUtilRow {
            region: "Intrpsr.".into(),
            vc0_percent: 50.5,
            vc1_percent: 49.5,
        }]);
        assert!(vc.starts_with("region,"));
        assert!(vc.contains("Intrpsr.,50.5,49.5"));

        let apps = app_improvements_csv(&[AppImprovement {
            label: "FA".into(),
            deft_latency: 20.0,
            vs_mtr_percent: 3.0,
            vs_rc_percent: 5.0,
        }]);
        assert!(apps.contains("FA,20,3,5"));

        let rho = rho_ablation_csv(&[RhoRow {
            rho: 0.01,
            max_vl_load: 5.5,
            total_distance: 30,
            cost: 5.8,
        }]);
        assert!(rho.contains("0.01,5.5,30,5.8"));

        let scaling = scaling_csv(&[ScalingRow {
            chiplets: 4,
            nodes: 128,
            deft_latency: 25.0,
            vs_mtr_percent: 1.0,
            vs_rc_percent: 2.0,
            deft_reach: 100.0,
            mtr_reach: 99.0,
            rc_reach: 98.0,
        }]);
        assert!(scaling.contains("4,128,25,1,2,100,99,98"));

        let t1 = table1_csv(&[Table1Row {
            variant: "MTR",
            area_um2: 45878.0,
            norm_area: 1.0,
            power_mw: 11.644,
            norm_power: 1.0,
        }]);
        assert!(t1.contains("MTR,45878,1,11.644,1"));
    }

    #[test]
    fn recovery_rows_render_and_serialize() {
        let rows = vec![RecoveryRow {
            scenario: "region-d800".into(),
            algorithm: "DeFT".into(),
            seed: 1,
            transitions: 2,
            dropped_unroutable: 0,
            lost_in_flight: 3,
            losses_per_transition: 1.5,
            avg_recovery_latency: 1.0,
            avg_latency: 27.25,
            delivered: 1234,
        }];
        let txt = render_recovery(&rows);
        assert!(txt.contains("region-d800"));
        assert!(txt.contains("DeFT"));
        assert!(txt.contains("rec.lat"));
        let csv = recovery_csv(&rows);
        assert!(csv.starts_with("scenario,algorithm,seed,"));
        assert!(csv.contains("region-d800,DeFT,1,2,0,3,1.5,1,27.25,1234"));
    }

    #[test]
    fn vc_util_renders_percentages() {
        let rows = vec![VcUtilRow {
            region: "Intrpsr.".into(),
            vc0_percent: 50.1,
            vc1_percent: 49.9,
        }];
        let s = render_vc_util("Uniform", &rows);
        assert!(s.contains("50.1%") && s.contains("49.9%"));
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let sweep = LatencySweep {
            title: "t".into(),
            curves: vec![LatencyCurve {
                algorithm: "DeFT".into(),
                points: vec![(0.002, 30.0, 1.0)],
            }],
        };
        let csv = latency_sweep_csv(&sweep);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("rate,DeFT,DeFT_delivery"));
        assert_eq!(lines.next(), Some("0.002,30,1"));

        let c = ReachabilityCurves {
            k: vec![1],
            deft: vec![100.0],
            mtr_avg: vec![99.0],
            mtr_worst: vec![98.0],
            rc_avg: vec![97.0],
            rc_worst: vec![96.0],
        };
        let csv = reachability_csv(&c);
        assert!(csv.starts_with("faults,deft"));
        assert!(csv.contains("1,100,99,98,97,96"));
    }

    #[test]
    fn reachability_renders_header_and_rows() {
        let c = ReachabilityCurves {
            k: vec![1, 2],
            deft: vec![100.0, 100.0],
            mtr_avg: vec![99.0, 97.0],
            mtr_worst: vec![100.0, 90.0],
            rc_avg: vec![95.0, 91.0],
            rc_worst: vec![93.0, 87.0],
        };
        let s = render_reachability("4 Chiplets", &c);
        assert!(s.contains("MTR-Wrst"));
        assert!(s.contains("100.00"));
    }
}
