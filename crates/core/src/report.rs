//! Paper-style text rendering of experiment results.
//!
//! Every renderer prints the same rows/series the paper's figure or table
//! reports, so `deft-repro`'s output can be compared against the paper side
//! by side (see `EXPERIMENTS.md`).

use crate::experiments::{
    AppImprovement, LatencySweep, ReachabilityCurves, RhoRow, ScalingRow, VcUtilRow,
};
use deft_power::Table1Row;
use std::fmt::Write as _;

/// Renders a latency sweep (one Fig. 4 / Fig. 8 panel) as an aligned table.
pub fn render_latency_sweep(sweep: &LatencySweep) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", sweep.title);
    let _ = write!(out, "{:>10}", "inj.rate");
    for c in &sweep.curves {
        let _ = write!(out, " {:>12}", c.algorithm);
    }
    let _ = writeln!(out);
    let n = sweep.curves.first().map_or(0, |c| c.points.len());
    for i in 0..n {
        let rate = sweep.curves[0].points[i].0;
        let _ = write!(out, "{rate:>10.4}");
        for c in &sweep.curves {
            let (_, lat, ratio) = c.points[i];
            if ratio < 0.9 {
                let _ = write!(out, " {lat:>10.1}*s"); // saturated
            } else {
                let _ = write!(out, " {lat:>12.1}");
            }
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(latency in cycles; *s marks saturation, delivery < 90%)"
    );
    out
}

/// Renders a Fig. 5 VC-utilization chart as rows.
pub fn render_vc_util(title: &str, rows: &[VcUtilRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== VC utilization: {title} ==");
    let _ = writeln!(out, "{:>10} {:>8} {:>8}", "region", "VC1", "VC2");
    for r in rows {
        let _ = writeln!(
            out,
            "{:>10} {:>7.1}% {:>7.1}%",
            r.region, r.vc0_percent, r.vc1_percent
        );
    }
    out
}

/// Renders Fig. 6 bars.
pub fn render_app_improvements(title: &str, rows: &[AppImprovement]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Latency improvement: {title} ==");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12}",
        "app", "DeFT (cyc)", "vs MTR (%)", "vs RC (%)"
    );
    let mut avg_mtr = 0.0;
    let mut avg_rc = 0.0;
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8} {:>12.1} {:>12.1} {:>12.1}",
            r.label, r.deft_latency, r.vs_mtr_percent, r.vs_rc_percent
        );
        avg_mtr += r.vs_mtr_percent;
        avg_rc += r.vs_rc_percent;
    }
    if !rows.is_empty() {
        let n = rows.len() as f64;
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12.1} {:>12.1}",
            "Avg",
            "",
            avg_mtr / n,
            avg_rc / n
        );
    }
    out
}

/// Renders a Fig. 7 panel.
pub fn render_reachability(title: &str, c: &ReachabilityCurves) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Reachability (%): {title} ==");
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "#faults", "DeFT", "MTR-Avg", "MTR-Wrst", "RC-Avg", "RC-Wrst"
    );
    for i in 0..c.k.len() {
        let _ = writeln!(
            out,
            "{:>8} {:>8.2} {:>9.2} {:>9.2} {:>8.2} {:>8.2}",
            c.k[i], c.deft[i], c.mtr_avg[i], c.mtr_worst[i], c.rc_avg[i], c.rc_worst[i]
        );
    }
    out
}

/// Renders the ρ-sweep ablation (DESIGN.md §8).
pub fn render_rho_ablation(rows: &[RhoRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== rho ablation: VL selection with one faulty VL (Eq. 6) =="
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>10}",
        "rho", "max VL load", "total dist", "cost"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8.3} {:>12.2} {:>12} {:>10.3}",
            r.rho, r.max_vl_load, r.total_distance, r.cost
        );
    }
    out
}

/// Renders the scaling-study extension.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== scaling study: 2-8 chiplets, uniform traffic, 4 faults =="
    );
    let _ = writeln!(
        out,
        "{:>9} {:>6} {:>11} {:>10} {:>9} {:>10} {:>9} {:>8}",
        "#chiplets",
        "nodes",
        "DeFT (cyc)",
        "vs MTR(%)",
        "vs RC(%)",
        "DeFT rch%",
        "MTR rch%",
        "RC rch%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>9} {:>6} {:>11.1} {:>10.1} {:>9.1} {:>10.2} {:>9.2} {:>8.2}",
            r.chiplets,
            r.nodes,
            r.deft_latency,
            r.vs_mtr_percent,
            r.vs_rc_percent,
            r.deft_reach,
            r.mtr_reach,
            r.rc_reach
        );
    }
    out
}

/// Serializes a latency sweep as CSV (`rate,<alg1>,<alg1>_delivery,...`),
/// for external plotting.
pub fn latency_sweep_csv(sweep: &LatencySweep) -> String {
    let mut out = String::from("rate");
    for c in &sweep.curves {
        let _ = write!(out, ",{0},{0}_delivery", c.algorithm);
    }
    out.push('\n');
    let n = sweep.curves.first().map_or(0, |c| c.points.len());
    for i in 0..n {
        let _ = write!(out, "{}", sweep.curves[0].points[i].0);
        for c in &sweep.curves {
            let (_, lat, ratio) = c.points[i];
            let _ = write!(out, ",{lat},{ratio}");
        }
        out.push('\n');
    }
    out
}

/// Serializes a Fig. 7 panel as CSV.
pub fn reachability_csv(c: &ReachabilityCurves) -> String {
    let mut out = String::from("faults,deft,mtr_avg,mtr_worst,rc_avg,rc_worst\n");
    for i in 0..c.k.len() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            c.k[i], c.deft[i], c.mtr_avg[i], c.mtr_worst[i], c.rc_avg[i], c.rc_worst[i]
        );
    }
    out
}

/// Renders Table I.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table I: router area and power (45 nm, 1 GHz) ==");
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>8} {:>10} {:>8}",
        "variant", "area um2", "norm", "power mW", "norm"
    );
    for r in rows {
        let _ = writeln!(out, "{r}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::LatencyCurve;

    #[test]
    fn latency_sweep_renders_all_points() {
        let sweep = LatencySweep {
            title: "Uniform - 4 Chiplets".into(),
            curves: vec![
                LatencyCurve {
                    algorithm: "DeFT".into(),
                    points: vec![(0.002, 30.0, 1.0), (0.008, 90.0, 0.5)],
                },
                LatencyCurve {
                    algorithm: "MTR".into(),
                    points: vec![(0.002, 32.0, 1.0), (0.008, 120.0, 0.4)],
                },
            ],
        };
        let s = render_latency_sweep(&sweep);
        assert!(s.contains("DeFT") && s.contains("MTR"));
        assert!(s.contains("0.0020"));
        assert!(s.contains("*s"), "saturated points are marked");
    }

    #[test]
    fn vc_util_renders_percentages() {
        let rows = vec![VcUtilRow {
            region: "Intrpsr.".into(),
            vc0_percent: 50.1,
            vc1_percent: 49.9,
        }];
        let s = render_vc_util("Uniform", &rows);
        assert!(s.contains("50.1%") && s.contains("49.9%"));
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let sweep = LatencySweep {
            title: "t".into(),
            curves: vec![LatencyCurve {
                algorithm: "DeFT".into(),
                points: vec![(0.002, 30.0, 1.0)],
            }],
        };
        let csv = latency_sweep_csv(&sweep);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("rate,DeFT,DeFT_delivery"));
        assert_eq!(lines.next(), Some("0.002,30,1"));

        let c = ReachabilityCurves {
            k: vec![1],
            deft: vec![100.0],
            mtr_avg: vec![99.0],
            mtr_worst: vec![98.0],
            rc_avg: vec![97.0],
            rc_worst: vec![96.0],
        };
        let csv = reachability_csv(&c);
        assert!(csv.starts_with("faults,deft"));
        assert!(csv.contains("1,100,99,98,97,96"));
    }

    #[test]
    fn reachability_renders_header_and_rows() {
        let c = ReachabilityCurves {
            k: vec![1, 2],
            deft: vec![100.0, 100.0],
            mtr_avg: vec![99.0, 97.0],
            mtr_worst: vec![100.0, 90.0],
            rc_avg: vec![95.0, 91.0],
            rc_worst: vec![93.0, 87.0],
        };
        let s = render_reachability("4 Chiplets", &c);
        assert!(s.contains("MTR-Wrst"));
        assert!(s.contains("100.00"));
    }
}
