//! Property-based tests of the routing layer.

use deft_routing::deft::SelectionProblem;
use deft_routing::{DeftRouting, MtrRouting, RcRouting, RoutingAlgorithm, VlOptimizer};
use deft_topo::{ChipletId, ChipletSystem, Coord, FaultState, NodeId, VlDir, VlLinkId};
use proptest::prelude::*;

fn grid_coords(w: u8, h: u8) -> Vec<Coord> {
    (0..h)
        .flat_map(|y| (0..w).map(move |x| Coord::new(x, y)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_never_loses_to_distance_based(
        healthy in 1u8..16,
        rates in prop::collection::vec(0.01f64..2.0, 16),
    ) {
        let problem = SelectionProblem::new(
            vec![Coord::new(1, 3), Coord::new(3, 2), Coord::new(2, 0), Coord::new(0, 1)],
            grid_coords(4, 4),
            rates,
            healthy,
            SelectionProblem::DEFAULT_RHO,
        );
        let (opt, opt_cost) = VlOptimizer::new().solve(&problem);
        let dist_cost = problem.cost(&problem.distance_assignment());
        prop_assert!(opt_cost <= dist_cost + 1e-9, "{opt_cost} > {dist_cost}");
        for &v in &opt {
            prop_assert!(problem.is_healthy(v), "optimizer used faulty vl{v}");
        }
    }

    #[test]
    fn deft_selections_always_avoid_faulty_links(
        faults in prop::collection::vec((0u8..4, 0u8..4, prop::bool::ANY), 0..8),
        src_i in 0u32..64,
        dst_i in 0u32..64,
    ) {
        prop_assume!(src_i != dst_i);
        let sys = ChipletSystem::baseline_4();
        let mut f = FaultState::none(&sys);
        for (c, i, down) in faults {
            f.inject(VlLinkId {
                chiplet: ChipletId(c),
                index: i,
                dir: if down { VlDir::Down } else { VlDir::Up },
            });
        }
        // LUT construction is expensive; share one instance across cases.
        use std::sync::{Mutex, OnceLock};
        static DEFT: OnceLock<Mutex<DeftRouting>> = OnceLock::new();
        let deft = DEFT.get_or_init(|| Mutex::new(DeftRouting::new(&sys)));
        let mut deft = deft.lock().expect("no poisoned lock");
        let (src, dst) = (NodeId(src_i), NodeId(dst_i));
        if let Ok(ctx) = deft.on_inject(&sys, &f, src, dst, 0) {
            if let Some(v) = ctx.down_vl {
                let c = sys.chiplet_of(src).expect("down selection implies chiplet src");
                let link = VlLinkId { chiplet: c, index: v, dir: VlDir::Down };
                prop_assert!(!f.is_faulty(link));
            }
            if let Some(v) = ctx.up_vl {
                let c = sys.chiplet_of(dst).expect("up selection implies chiplet dst");
                let link = VlLinkId { chiplet: c, index: v, dir: VlDir::Up };
                prop_assert!(!f.is_faulty(link));
            }
        }
    }

    #[test]
    fn routes_terminate_for_all_algorithms(src_i in 0u32..128, dst_i in 0u32..128, seq in 0u64..4) {
        prop_assume!(src_i != dst_i);
        let sys = ChipletSystem::baseline_4();
        let f = FaultState::none(&sys);
        let (src, dst) = (NodeId(src_i), NodeId(dst_i));
        for mut alg in [
            Box::new(DeftRouting::distance_based(&sys)) as Box<dyn RoutingAlgorithm>,
            Box::new(MtrRouting::new(&sys)),
            Box::new(RcRouting::new(&sys)),
        ] {
            let mut ctx = alg.on_inject(&sys, &f, src, dst, seq).expect("fault-free");
            let mut cur = src;
            let mut hops = 0;
            while cur != dst {
                let d = alg.route(&sys, &f, cur, dst, &mut ctx);
                cur = sys.neighbor(cur, d.dir).expect("hop stays on the network");
                hops += 1;
                prop_assert!(hops < 64, "{}: runaway {src_i} -> {dst_i}", alg.name());
            }
        }
    }

    #[test]
    fn eligibility_shapes_match_flow_geometry(src_i in 0u32..128, dst_i in 0u32..128) {
        prop_assume!(src_i != dst_i);
        let sys = ChipletSystem::baseline_4();
        let (src, dst) = (NodeId(src_i), NodeId(dst_i));
        for alg in [
            Box::new(DeftRouting::distance_based(&sys)) as Box<dyn RoutingAlgorithm>,
            Box::new(MtrRouting::new(&sys)),
            Box::new(RcRouting::new(&sys)),
        ] {
            let el = alg.eligibility(&sys, src, dst);
            let needs_down = matches!(
                (sys.chiplet_of(src), sys.chiplet_of(dst)),
                (Some(a), b) if b != Some(a)
            );
            let needs_up = matches!(
                (sys.chiplet_of(dst), sys.chiplet_of(src)),
                (Some(a), b) if b != Some(a)
            );
            prop_assert_eq!(el.down.is_some(), needs_down, "{}", alg.name());
            prop_assert_eq!(el.up.is_some(), needs_up, "{}", alg.name());
            if let Some((c, mask)) = el.down {
                prop_assert_eq!(Some(c), sys.chiplet_of(src));
                prop_assert!(mask != 0 && mask < 16);
            }
            if let Some((c, mask)) = el.up {
                prop_assert_eq!(Some(c), sys.chiplet_of(dst));
                prop_assert!(mask != 0 && mask < 16);
            }
        }
    }

    #[test]
    fn rc_eligibility_is_a_subset_of_mtr_like_freedom(src_i in 0u32..64, dst_i in 64u32..128) {
        // RC designates exactly one VL; DeFT allows all. MTR sits between.
        let sys = ChipletSystem::baseline_4();
        let (src, dst) = (NodeId(src_i), NodeId(dst_i));
        prop_assume!(sys.chiplet_of(src) != sys.chiplet_of(dst));
        let deft = DeftRouting::distance_based(&sys);
        let mtr = MtrRouting::new(&sys);
        let rc = RcRouting::new(&sys);
        if let (Some((_, d_deft)), Some((_, d_mtr)), Some((_, d_rc))) = (
            deft.eligibility(&sys, src, dst).down,
            mtr.eligibility(&sys, src, dst).down,
            rc.eligibility(&sys, src, dst).down,
        ) {
            prop_assert!(d_mtr & !d_deft == 0, "MTR ⊆ DeFT");
            prop_assert_eq!(d_rc.count_ones(), 1);
            prop_assert!(d_deft.count_ones() >= d_mtr.count_ones());
        }
    }
}

#[test]
fn lut_respects_every_healthy_mask_on_both_systems() {
    for sys in [ChipletSystem::baseline_4(), ChipletSystem::baseline_6()] {
        let deft = DeftRouting::new(&sys);
        let lut = deft.down_lut().expect("optimized strategy");
        for c in sys.chiplets() {
            for mask in 1u8..16 {
                let a = lut.assignment(c.id(), mask).expect("stored");
                for &v in a {
                    assert!(mask & (1 << v) != 0);
                }
            }
        }
    }
}
