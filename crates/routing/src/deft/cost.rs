//! The VL-selection cost model: Eq. (1)–(6) of the paper.

use deft_topo::Coord;

/// One per-chiplet VL-selection problem instance: which VL should each
/// router of the chiplet use, given the healthy-VL mask of the current
/// fault scenario and per-router inter-chiplet traffic rates.
///
/// The objective (paper Eq. 6) combines VL-load balancing (Eq. 3) and
/// distance minimization (Eq. 5), weighted by `rho` (ρ = 0.01 in the
/// paper's experiments).
#[derive(Debug, Clone)]
pub struct SelectionProblem {
    vl_coords: Vec<Coord>,
    router_coords: Vec<Coord>,
    rates: Vec<f64>,
    healthy: u8,
    rho: f64,
}

impl SelectionProblem {
    /// The paper's weighting of distance vs load balance (§III-B).
    pub const DEFAULT_RHO: f64 = 0.01;

    /// Creates a problem instance.
    ///
    /// `vl_coords` are the chiplet-local positions of *all* VLs (index =
    /// VL index); `healthy` masks the usable ones. `rates` holds
    /// `T_r^inter`, the inter-chiplet traffic rate of each router
    /// (row-major chiplet order).
    ///
    /// # Panics
    /// Panics if `healthy` selects no VL or `rates` length differs from
    /// `router_coords`.
    pub fn new(
        vl_coords: Vec<Coord>,
        router_coords: Vec<Coord>,
        rates: Vec<f64>,
        healthy: u8,
        rho: f64,
    ) -> Self {
        assert!(
            healthy != 0,
            "selection problem needs at least one healthy VL"
        );
        assert_eq!(rates.len(), router_coords.len(), "one rate per router");
        assert!(vl_coords.len() <= 8, "masks are u8");
        Self {
            vl_coords,
            router_coords,
            rates,
            healthy,
            rho,
        }
    }

    /// Number of routers to assign.
    pub fn router_count(&self) -> usize {
        self.router_coords.len()
    }

    /// Number of VLs (healthy and faulty).
    pub fn vl_count(&self) -> usize {
        self.vl_coords.len()
    }

    /// Indices of the healthy VLs.
    pub fn healthy_vls(&self) -> Vec<u8> {
        (0..self.vl_coords.len() as u8)
            .filter(|&v| self.healthy & (1 << v) != 0)
            .collect()
    }

    /// Whether VL `v` is healthy in this scenario.
    pub fn is_healthy(&self, v: u8) -> bool {
        self.healthy & (1 << v) != 0
    }

    /// Hop-count distance from router `r` to VL `v` (Eq. 4).
    pub fn distance(&self, r: usize, v: u8) -> u32 {
        self.router_coords[r].manhattan(self.vl_coords[v as usize])
    }

    /// The load on each VL under `assignment` (Eq. 1): the sum of the
    /// inter-chiplet rates of the routers selecting it.
    pub fn vl_loads(&self, assignment: &[u8]) -> Vec<f64> {
        let mut loads = vec![0.0; self.vl_coords.len()];
        for (r, &v) in assignment.iter().enumerate() {
            loads[v as usize] += self.rates[r];
        }
        loads
    }

    /// The total cost `C_s` of an assignment (Eq. 6):
    /// `Σ_v (ρ·D_v) + L_v` over healthy VLs, with
    /// `L_v = |l_v − l_avg| / l_avg` (Eq. 3) and
    /// `D_v = Σ_r D_r^v · U_r^v` (Eq. 5).
    ///
    /// # Panics
    /// Panics (debug) if the assignment uses a faulty VL.
    pub fn cost(&self, assignment: &[u8]) -> f64 {
        debug_assert_eq!(assignment.len(), self.router_count());
        debug_assert!(
            assignment.iter().all(|&v| self.is_healthy(v)),
            "assignment uses a faulty VL"
        );
        let loads = self.vl_loads(assignment);
        let healthy = self.healthy_vls();
        let total: f64 = healthy.iter().map(|&v| loads[v as usize]).sum();
        let l_avg = total / healthy.len() as f64;

        let mut cost = 0.0;
        for &v in &healthy {
            let l_v = loads[v as usize];
            let load_cost = if l_avg > 0.0 {
                (l_v - l_avg).abs() / l_avg
            } else {
                0.0
            };
            let dist_cost: u32 = assignment
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a == v)
                .map(|(r, _)| self.distance(r, v))
                .sum();
            cost += self.rho * dist_cost as f64 + load_cost;
        }
        cost
    }

    /// The distance-based assignment: each router picks its nearest healthy
    /// VL (ties broken by lowest VL index). This is the common 3D-network
    /// strategy the paper ablates as *DeFT-Dis*.
    pub fn distance_assignment(&self) -> Vec<u8> {
        (0..self.router_count())
            .map(|r| self.nearest_healthy(r))
            .collect()
    }

    /// Nearest healthy VL to router `r`, ties by lowest index.
    pub fn nearest_healthy(&self, r: usize) -> u8 {
        self.healthy_vls()
            .into_iter()
            .min_by_key(|&v| (self.distance(r, v), v))
            .expect("at least one healthy VL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_4x4() -> Vec<Coord> {
        (0..4)
            .flat_map(|y| (0..4).map(move |x| Coord::new(x, y)))
            .collect()
    }

    fn pinwheel() -> Vec<Coord> {
        vec![
            Coord::new(1, 3),
            Coord::new(3, 2),
            Coord::new(2, 0),
            Coord::new(0, 1),
        ]
    }

    fn uniform_problem(healthy: u8) -> SelectionProblem {
        SelectionProblem::new(
            pinwheel(),
            grid_4x4(),
            vec![1.0; 16],
            healthy,
            SelectionProblem::DEFAULT_RHO,
        )
    }

    #[test]
    fn loads_sum_to_total_rate() {
        let p = uniform_problem(0b1111);
        let a = p.distance_assignment();
        let loads = p.vl_loads(&a);
        let total: f64 = loads.iter().sum();
        assert!((total - 16.0).abs() < 1e-9);
    }

    #[test]
    fn distance_assignment_picks_nearest() {
        let p = uniform_problem(0b1111);
        let a = p.distance_assignment();
        for (r, &v) in a.iter().enumerate() {
            for cand in p.healthy_vls() {
                assert!(
                    p.distance(r, v) <= p.distance(r, cand),
                    "router {r} assigned vl{v} but vl{cand} is closer"
                );
            }
        }
    }

    #[test]
    fn distance_assignment_respects_faults() {
        let p = uniform_problem(0b1010); // only VLs 1 and 3 healthy
        let a = p.distance_assignment();
        for &v in &a {
            assert!(v == 1 || v == 3);
        }
    }

    #[test]
    fn perfectly_balanced_assignment_has_zero_load_cost() {
        // With zero rho the cost is pure load imbalance; a 4-4-4-4 split of
        // 16 uniform routers is perfectly balanced.
        let p = SelectionProblem::new(pinwheel(), grid_4x4(), vec![1.0; 16], 0b1111, 0.0);
        let a: Vec<u8> = (0..16).map(|r| (r % 4) as u8).collect();
        assert!(p.cost(&a) < 1e-9);
    }

    #[test]
    fn unbalanced_assignment_costs_more() {
        let p = SelectionProblem::new(pinwheel(), grid_4x4(), vec![1.0; 16], 0b1111, 0.0);
        let balanced: Vec<u8> = (0..16).map(|r| (r % 4) as u8).collect();
        let skewed: Vec<u8> = vec![0; 16];
        assert!(p.cost(&skewed) > p.cost(&balanced));
    }

    #[test]
    fn rho_trades_distance_for_balance() {
        // With a huge rho, the distance-based assignment must be optimal
        // among these two candidates.
        let p = SelectionProblem::new(pinwheel(), grid_4x4(), vec![1.0; 16], 0b1111, 1000.0);
        let dist = p.distance_assignment();
        let other: Vec<u8> = (0..16).map(|r| ((r + 1) % 4) as u8).collect();
        assert!(p.cost(&dist) <= p.cost(&other));
    }

    #[test]
    fn zero_rates_give_zero_load_cost() {
        let p = SelectionProblem::new(pinwheel(), grid_4x4(), vec![0.0; 16], 0b1111, 0.0);
        let a = p.distance_assignment();
        assert_eq!(p.cost(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one healthy VL")]
    fn empty_healthy_mask_is_rejected() {
        let _ = uniform_problem(0);
    }
}
