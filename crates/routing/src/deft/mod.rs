//! The DeFT routing algorithm (paper §III).
//!
//! DeFT combines two mechanisms:
//!
//! 1. **VN separation for deadlock freedom** (§III-A, Fig. 2, Algorithm 1):
//!    two virtual networks with three switching rules, assigned so that VC
//!    utilization stays balanced (Theorems III.1–III.4).
//! 2. **Fault-tolerant, congestion-aware VL selection** (§III-B,
//!    Algorithm 2): an offline optimizer balances VL loads and minimizes
//!    distance for every per-chiplet fault scenario; routers store the
//!    results in small LUTs and look them up online by the current healthy
//!    mask.

mod cost;
mod lut;
mod optimizer;

pub use cost::SelectionProblem;
pub use lut::{local_router_index, SelectionLut};
pub use optimizer::VlOptimizer;

use crate::algorithm::{
    next_direction, FlowChoice, FlowEligibility, RouteDecision, RouteError, RoutingAlgorithm,
};
use crate::state::{RouteCtx, Vn};
use deft_codec::{CodecError, Decoder, Encoder, Persist};
use deft_topo::{ChipletId, ChipletSystem, Direction, FaultState, Layer, NodeId, VlDir};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// How DeFT picks the VL intermediate destinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VlSelectionStrategy {
    /// The paper's offline-optimized LUT selection (plain "DeFT").
    Optimized,
    /// Nearest healthy VL — the common 3D-network approach, ablated as
    /// *DeFT-Dis* in Fig. 8.
    Distance,
    /// Uniform random among healthy VLs — *DeFT-Ran* in Fig. 8.
    Random,
}

/// The DeFT routing algorithm.
///
/// Construct with [`DeftRouting::new`] (uniform-traffic offline
/// optimization, the paper's default), [`DeftRouting::with_traffic`]
/// (traffic-aware optimization, §IV-A), or the ablation constructors
/// [`DeftRouting::distance_based`] / [`DeftRouting::random_selection`].
#[derive(Debug)]
pub struct DeftRouting {
    strategy: VlSelectionStrategy,
    lut_down: Option<SelectionLut>,
    lut_up: Option<SelectionLut>,
    /// Per-boundary-router round-robin counters for the VN reassignment at
    /// the down traversal (Algorithm 1). Atomics because [`route`] takes
    /// `&self` for the parallel tick engine; each counter is touched only
    /// by its own router's shard worker, so `Relaxed` increments are
    /// deterministic (no counter is ever contended within a cycle) and
    /// the snapshot byte layout is unchanged from the plain-`u64` era.
    ///
    /// [`route`]: RoutingAlgorithm::route
    rr_boundary: Vec<AtomicU64>,
    rng: SmallRng,
    /// Mid-run fault transitions observed via
    /// [`RoutingAlgorithm::on_fault_change`].
    fault_transitions: u64,
    /// Precomputed chiplet-local router index per node (`u32::MAX` for
    /// interposer nodes), so the per-injection LUT address is a flat array
    /// read instead of an `addr`/width computation.
    local_index: Vec<u32>,
}

/// Fresh zeroed round-robin counters, one per node.
fn zero_counters(n: usize) -> Vec<AtomicU64> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

/// Deep copy carrying the counters' exact values: required by
/// [`RoutingAlgorithm::fork_box`]'s byte-identity contract (`AtomicU64`
/// itself is deliberately not `Clone`).
impl Clone for DeftRouting {
    fn clone(&self) -> Self {
        Self {
            strategy: self.strategy,
            lut_down: self.lut_down.clone(),
            lut_up: self.lut_up.clone(),
            rr_boundary: self
                .rr_boundary
                .iter()
                .map(|c| AtomicU64::new(c.load(Ordering::Relaxed)))
                .collect(),
            rng: self.rng.clone(),
            fault_transitions: self.fault_transitions,
            local_index: self.local_index.clone(),
        }
    }
}

/// Precomputes [`local_router_index`] for every node of `sys`
/// (`u32::MAX` for interposer nodes).
fn local_indices(sys: &ChipletSystem) -> Vec<u32> {
    sys.nodes()
        .map(|n| match sys.layer(n) {
            Layer::Chiplet(_) => local_router_index(sys, n) as u32,
            Layer::Interposer => u32::MAX,
        })
        .collect()
}

impl DeftRouting {
    /// DeFT with offline VL optimization under uniform traffic — "the most
    /// pessimistic assumption" used for the paper's main experiments.
    pub fn new(sys: &ChipletSystem) -> Self {
        Self::with_traffic(sys, |_| 1.0)
    }

    /// DeFT with traffic-aware offline optimization: `rates(node)` is the
    /// inter-chiplet injection rate of each router (`T_r^inter` of Eq. 1).
    pub fn with_traffic(sys: &ChipletSystem, rates: impl FnMut(NodeId) -> f64 + Clone) -> Self {
        let optimizer = VlOptimizer::new();
        let lut_down = SelectionLut::build(sys, &optimizer, rates.clone());
        let lut_up = SelectionLut::build(sys, &optimizer, rates);
        Self {
            strategy: VlSelectionStrategy::Optimized,
            lut_down: Some(lut_down),
            lut_up: Some(lut_up),
            rr_boundary: zero_counters(sys.node_count()),
            rng: SmallRng::seed_from_u64(0),
            fault_transitions: 0,
            local_index: local_indices(sys),
        }
    }

    /// The *DeFT-Dis* ablation: DeFT's VN scheme with nearest-healthy-VL
    /// selection.
    pub fn distance_based(sys: &ChipletSystem) -> Self {
        Self {
            strategy: VlSelectionStrategy::Distance,
            lut_down: None,
            lut_up: None,
            rr_boundary: zero_counters(sys.node_count()),
            rng: SmallRng::seed_from_u64(0),
            fault_transitions: 0,
            local_index: local_indices(sys),
        }
    }

    /// The *DeFT-Ran* ablation: DeFT's VN scheme with uniform-random VL
    /// selection among healthy VLs (seeded, deterministic).
    pub fn random_selection(sys: &ChipletSystem, seed: u64) -> Self {
        Self {
            strategy: VlSelectionStrategy::Random,
            lut_down: None,
            lut_up: None,
            rr_boundary: zero_counters(sys.node_count()),
            rng: SmallRng::seed_from_u64(seed),
            fault_transitions: 0,
            local_index: local_indices(sys),
        }
    }

    /// The selection strategy in use.
    pub fn strategy(&self) -> VlSelectionStrategy {
        self.strategy
    }

    /// How many mid-run fault transitions this instance has been notified
    /// of through [`RoutingAlgorithm::on_fault_change`]. Used by the
    /// recovery experiments to confirm the hook is driven.
    pub fn fault_transitions(&self) -> u64 {
        self.fault_transitions
    }

    /// The offline down-selection LUT, when the strategy is `Optimized`.
    pub fn down_lut(&self) -> Option<&SelectionLut> {
        self.lut_down.as_ref()
    }

    /// Selects the down VL for a packet injected at `router` (on `chiplet`)
    /// under the current faults. `None` when the chiplet has no healthy
    /// down link.
    fn select_down(
        &mut self,
        sys: &ChipletSystem,
        faults: &FaultState,
        chiplet: ChipletId,
        router: NodeId,
    ) -> Option<u8> {
        let vl_count = sys.chiplet(chiplet).vl_count();
        let healthy = faults.healthy_mask(chiplet, VlDir::Down, vl_count);
        self.select(sys, chiplet, router, healthy, true)
    }

    /// Selects the up VL toward destination `router` on `chiplet`.
    fn select_up(
        &mut self,
        sys: &ChipletSystem,
        faults: &FaultState,
        chiplet: ChipletId,
        router: NodeId,
    ) -> Option<u8> {
        let vl_count = sys.chiplet(chiplet).vl_count();
        let healthy = faults.healthy_mask(chiplet, VlDir::Up, vl_count);
        self.select(sys, chiplet, router, healthy, false)
    }

    fn select(
        &mut self,
        sys: &ChipletSystem,
        chiplet: ChipletId,
        router: NodeId,
        healthy: u8,
        down: bool,
    ) -> Option<u8> {
        if healthy == 0 {
            return None;
        }
        match self.strategy {
            VlSelectionStrategy::Optimized => {
                let lut = if down {
                    self.lut_down.as_ref()
                } else {
                    self.lut_up.as_ref()
                };
                lut.expect("optimized strategy has LUTs").lookup(
                    chiplet,
                    healthy,
                    self.local_index[router.index()] as usize,
                )
            }
            VlSelectionStrategy::Distance => {
                let coord = sys.addr(router).coord;
                let chip = sys.chiplet(chiplet);
                (0..chip.vl_count() as u8)
                    .filter(|&v| healthy & (1 << v) != 0)
                    .min_by_key(|&v| (coord.manhattan(chip.vl_coord(v as usize)), v))
            }
            VlSelectionStrategy::Random => {
                // Draw a rank, then find the rank-th set bit — same RNG
                // call sequence as indexing a collected Vec of options,
                // without the per-injection allocation.
                let k = self.rng.random_range(0..healthy.count_ones() as usize);
                let mut m = healthy;
                for _ in 0..k {
                    m &= m - 1; // clear lowest set bit
                }
                Some(m.trailing_zeros() as u8)
            }
        }
    }
}

impl RoutingAlgorithm for DeftRouting {
    fn name(&self) -> &str {
        match self.strategy {
            VlSelectionStrategy::Optimized => "DeFT",
            VlSelectionStrategy::Distance => "DeFT-Dis",
            VlSelectionStrategy::Random => "DeFT-Ran",
        }
    }

    fn on_inject(
        &mut self,
        sys: &ChipletSystem,
        faults: &FaultState,
        src: NodeId,
        dst: NodeId,
        seq: u64,
    ) -> Result<RouteCtx, RouteError> {
        let src_layer = sys.layer(src);
        let dst_layer = sys.layer(dst);
        let needs_down = matches!(src_layer, Layer::Chiplet(c) if dst_layer != Layer::Chiplet(c));
        let needs_up = matches!(dst_layer, Layer::Chiplet(c) if src_layer != Layer::Chiplet(c));

        let down_vl = if needs_down {
            let c = src_layer
                .chiplet()
                .expect("needs_down implies chiplet source");
            Some(
                self.select_down(sys, faults, c, src)
                    .ok_or(RouteError::Unroutable { src, dst })?,
            )
        } else {
            None
        };
        let up_vl = if needs_up {
            let c = dst_layer
                .chiplet()
                .expect("needs_up implies chiplet destination");
            Some(
                self.select_up(sys, faults, c, dst)
                    .ok_or(RouteError::Unroutable { src, dst })?,
            )
        } else {
            None
        };

        // Algorithm 1, source assignment: round-robin wherever both VNs are
        // permitted (interposer sources, intra-chiplet packets, boundary
        // sources — Theorems III.1–III.3); otherwise VN0, because an
        // inter-chiplet packet still has Horizontal → Down turns ahead of it
        // (Rule 3 bans those in VN1). A boundary source only qualifies when
        // it descends through its *own* VL — the selection LUT may assign it
        // a different VL for load balance, and the horizontal detour to that
        // VL must then start in VN0.
        let own_vl = sys
            .vl_at_node(src)
            .filter(|vl| vl.chiplet_node == src)
            .map(|vl| vl.index);
        let rr_allowed = !needs_down || (down_vl.is_some() && down_vl == own_vl);
        let vn = if rr_allowed {
            Vn::round_robin(seq)
        } else {
            Vn::Vn0
        };

        Ok(RouteCtx { vn, down_vl, up_vl })
    }

    fn route(
        &self,
        sys: &ChipletSystem,
        _faults: &FaultState,
        node: NodeId,
        dst: NodeId,
        ctx: &mut RouteCtx,
    ) -> RouteDecision {
        let dir = next_direction(sys, node, dst, ctx)
            .expect("route called on a packet already at its destination");
        let vn = match dir {
            Direction::Down => {
                // Algorithm 1, boundary going down: round-robin reassignment
                // between VN0 and VN1 — only VN0 packets have the choice
                // (Rule 1 forbids VN1 -> VN0). Relaxed suffices: the
                // counter is per-router and only this router's shard
                // worker touches it (see the field doc).
                if ctx.vn == Vn::Vn0 {
                    let ctr = self.rr_boundary[node.index()].fetch_add(1, Ordering::Relaxed) + 1;
                    Vn::round_robin(ctr)
                } else {
                    Vn::Vn1
                }
            }
            // Coming from the interposer: go to (remain in) VN1, so the
            // Up -> Horizontal turns on the destination chiplet are legal
            // (Rule 2 bans them in VN0).
            Direction::Up => Vn::Vn1,
            _ => ctx.vn,
        };
        ctx.vn = vn;
        RouteDecision { dir, vn }
    }

    /// DeFT's online recovery step. The offline LUT is indexed by the
    /// *healthy mask* (§III-B), so adapting to a new fault state is a
    /// re-address, not a recomputation: this hook verifies the LUT rows
    /// for every still-connected (chiplet, direction) group exist, which
    /// is DeFT's whole reconfiguration cost — zero cycles of table
    /// rebuild, the dynamic-fault analogue of the paper's static claim.
    fn on_fault_change(&mut self, sys: &ChipletSystem, faults: &FaultState) {
        self.fault_transitions += 1;
        if self.strategy != VlSelectionStrategy::Optimized {
            return;
        }
        for c in sys.chiplets() {
            for dir in VlDir::ALL {
                let healthy = faults.healthy_mask(c.id(), dir, c.vl_count());
                if healthy == 0 {
                    continue; // disconnected group: flows drop at injection
                }
                let lut = match dir {
                    VlDir::Down => self.lut_down.as_ref(),
                    VlDir::Up => self.lut_up.as_ref(),
                };
                assert!(
                    lut.expect("optimized strategy has LUTs")
                        .assignment(c.id(), healthy)
                        .is_some(),
                    "LUT row missing for {} {dir} mask {healthy:#b}",
                    c.id()
                );
            }
        }
    }

    /// DeFT's mutable run state: the boundary round-robin counters, the
    /// DeFT-Ran RNG stream, and the fault-transition counter. The LUTs
    /// and the local-index table are pure functions of the system and are
    /// rebuilt by the constructor, not persisted.
    fn save_state(&self, enc: &mut Encoder) {
        // Byte-compatible with the plain-`Vec<u64>` layout this field had
        // before the counters became atomics: length, then each value.
        enc.put_usize(self.rr_boundary.len());
        for c in &self.rr_boundary {
            enc.put_u64(c.load(Ordering::Relaxed));
        }
        let s = self.rng.state();
        for w in s {
            enc.put_u64(w);
        }
        enc.put_u64(self.fault_transitions);
    }

    fn load_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let rr = Vec::<u64>::decode(dec)?;
        if rr.len() != self.rr_boundary.len() {
            return Err(CodecError::Invalid(format!(
                "DeFT rr_boundary holds {} counters, snapshot has {}",
                self.rr_boundary.len(),
                rr.len()
            )));
        }
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = dec.get_u64()?;
        }
        self.rr_boundary = rr.into_iter().map(AtomicU64::new).collect();
        self.rng = SmallRng::from_state(s);
        self.fault_transitions = dec.get_u64()?;
        Ok(())
    }

    fn fork_box(&self) -> Box<dyn RoutingAlgorithm> {
        Box::new(self.clone())
    }

    fn eligibility(&self, sys: &ChipletSystem, src: NodeId, dst: NodeId) -> FlowEligibility {
        // Theorems III.3 / III.4: DeFT may use *any* VL for either
        // traversal, which is exactly what makes it fault-tolerant.
        let src_layer = sys.layer(src);
        let dst_layer = sys.layer(dst);
        let full = |c: ChipletId| ((1u16 << sys.chiplet(c).vl_count()) - 1) as u8;
        let down = match src_layer {
            Layer::Chiplet(c) if dst_layer != Layer::Chiplet(c) => Some((c, full(c))),
            _ => None,
        };
        let up = match dst_layer {
            Layer::Chiplet(c) if src_layer != Layer::Chiplet(c) => Some((c, full(c))),
            _ => None,
        };
        FlowEligibility { down, up }
    }

    fn flow_choices(
        &self,
        sys: &ChipletSystem,
        faults: &FaultState,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<FlowChoice> {
        if src == dst {
            return Vec::new();
        }
        let el = self.eligibility(sys, src, dst);
        let down_opts: Vec<Option<u8>> = match el.down {
            None => vec![None],
            Some((c, mask)) => {
                let healthy = mask & faults.healthy_mask(c, VlDir::Down, sys.chiplet(c).vl_count());
                (0..8)
                    .filter(|&v| healthy & (1 << v) != 0)
                    .map(Some)
                    .collect()
            }
        };
        let up_opts: Vec<Option<u8>> = match el.up {
            None => vec![None],
            Some((c, mask)) => {
                let healthy = mask & faults.healthy_mask(c, VlDir::Up, sys.chiplet(c).vl_count());
                (0..8)
                    .filter(|&v| healthy & (1 << v) != 0)
                    .map(Some)
                    .collect()
            }
        };
        if down_opts.is_empty() || up_opts.is_empty() {
            return Vec::new(); // unroutable flow: no paths, no dependencies
        }
        let needs_down = el.down.is_some();
        let own_vl = sys
            .vl_at_node(src)
            .filter(|vl| vl.chiplet_node == src)
            .map(|vl| vl.index);

        let mut out = Vec::new();
        for &down_vl in &down_opts {
            // VN1 injection is legal only when no Horizontal -> Down turn
            // lies ahead (Rule 3): intra/interposer flows, or a boundary
            // source descending through its own VL.
            let vn_sources: &[Vn] = if needs_down && (own_vl.is_none() || down_vl != own_vl) {
                &[Vn::Vn0]
            } else {
                &Vn::ALL
            };
            for &up_vl in &up_opts {
                for &vn_source in vn_sources {
                    let after_down: &[Vn] = if needs_down {
                        if vn_source == Vn::Vn0 {
                            &Vn::ALL
                        } else {
                            &[Vn::Vn1]
                        }
                    } else {
                        std::slice::from_ref(match vn_source {
                            Vn::Vn0 => &Vn::Vn0,
                            Vn::Vn1 => &Vn::Vn1,
                        })
                    };
                    for &vn_after_down in after_down {
                        out.push(FlowChoice {
                            down_vl,
                            up_vl,
                            vn_source,
                            vn_after_down,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::walk_path;
    use deft_topo::{Coord, NodeAddr};

    fn sys() -> ChipletSystem {
        ChipletSystem::baseline_4()
    }

    fn node(s: &ChipletSystem, layer: Layer, x: u8, y: u8) -> NodeId {
        s.node_id(NodeAddr::new(layer, Coord::new(x, y)))
            .expect("valid addr")
    }

    #[test]
    fn non_boundary_inter_chiplet_sources_start_in_vn0() {
        let s = sys();
        let f = FaultState::none(&s);
        let mut deft = DeftRouting::distance_based(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1); // not a VL tile
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 2, 2);
        for seq in 0..4 {
            let ctx = deft.on_inject(&s, &f, src, dst, seq).unwrap();
            assert_eq!(
                ctx.vn,
                Vn::Vn0,
                "Algorithm 1: inter-chiplet non-boundary source -> VN0"
            );
        }
    }

    #[test]
    fn intra_chiplet_and_interposer_sources_round_robin() {
        let s = sys();
        let f = FaultState::none(&s);
        let mut deft = DeftRouting::distance_based(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(0)), 3, 3);
        let vns: Vec<Vn> = (0..4)
            .map(|seq| deft.on_inject(&s, &f, src, dst, seq).unwrap().vn)
            .collect();
        assert_eq!(vns, vec![Vn::Vn0, Vn::Vn1, Vn::Vn0, Vn::Vn1]);

        let isrc = node(&s, Layer::Interposer, 0, 0);
        let idst = node(&s, Layer::Chiplet(ChipletId(3)), 0, 0);
        let vns: Vec<Vn> = (0..2)
            .map(|seq| deft.on_inject(&s, &f, isrc, idst, seq).unwrap().vn)
            .collect();
        assert_eq!(vns, vec![Vn::Vn0, Vn::Vn1]);
    }

    #[test]
    fn up_traversal_forces_vn1() {
        let s = sys();
        let f = FaultState::none(&s);
        let mut deft = DeftRouting::new(&s);
        let src = node(&s, Layer::Interposer, 0, 0);
        let dst = node(&s, Layer::Chiplet(ChipletId(0)), 3, 3);
        let mut ctx = deft.on_inject(&s, &f, src, dst, 0).unwrap();
        let mut cur = src;
        let mut saw_up = false;
        for _ in 0..64 {
            if cur == dst {
                break;
            }
            let d = deft.route(&s, &f, cur, dst, &mut ctx);
            if d.dir == Direction::Up {
                saw_up = true;
            }
            if saw_up {
                assert_eq!(d.vn, Vn::Vn1);
            }
            cur = s.neighbor(cur, d.dir).unwrap();
        }
        assert!(saw_up && cur == dst);
    }

    #[test]
    fn boundary_down_round_robin_balances_vns() {
        let s = sys();
        let f = FaultState::none(&s);
        let mut deft = DeftRouting::distance_based(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 2, 1); // near VL 2 at (2,0)
        let dst = node(&s, Layer::Interposer, 7, 7);
        let mut vn_counts = [0usize; 2];
        for seq in 0..10 {
            let mut ctx = deft.on_inject(&s, &f, src, dst, seq).unwrap();
            let mut cur = src;
            while cur != dst {
                let d = deft.route(&s, &f, cur, dst, &mut ctx);
                if d.dir == Direction::Down {
                    vn_counts[d.vn.index()] += 1;
                }
                cur = s.neighbor(cur, d.dir).unwrap();
            }
        }
        assert_eq!(vn_counts[0], 5, "down RR must split VN0/VN1 evenly");
        assert_eq!(vn_counts[1], 5);
    }

    #[test]
    fn faulty_down_vl_is_never_selected() {
        let s = sys();
        let mut f = FaultState::none(&s);
        for idx in [0u8, 1, 2] {
            f.inject(deft_topo::VlLinkId {
                chiplet: ChipletId(0),
                index: idx,
                dir: VlDir::Down,
            });
        }
        let mut deft = DeftRouting::new(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 0, 0);
        let dst = node(&s, Layer::Chiplet(ChipletId(2)), 0, 0);
        for seq in 0..8 {
            let ctx = deft.on_inject(&s, &f, src, dst, seq).unwrap();
            assert_eq!(ctx.down_vl, Some(3), "only VL 3 is healthy");
        }
    }

    #[test]
    fn fully_faulty_chiplet_is_unroutable() {
        let s = sys();
        let mut f = FaultState::none(&s);
        for idx in 0..4u8 {
            f.inject(deft_topo::VlLinkId {
                chiplet: ChipletId(1),
                index: idx,
                dir: VlDir::Up,
            });
        }
        let mut deft = DeftRouting::new(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 0, 0);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 0, 0);
        assert!(matches!(
            deft.on_inject(&s, &f, src, dst, 0),
            Err(RouteError::Unroutable { .. })
        ));
    }

    #[test]
    fn random_strategy_only_picks_healthy() {
        let s = sys();
        let mut f = FaultState::none(&s);
        f.inject(deft_topo::VlLinkId {
            chiplet: ChipletId(0),
            index: 1,
            dir: VlDir::Down,
        });
        f.inject(deft_topo::VlLinkId {
            chiplet: ChipletId(0),
            index: 2,
            dir: VlDir::Down,
        });
        let mut deft = DeftRouting::random_selection(&s, 99);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Interposer, 6, 6);
        let mut seen = std::collections::BTreeSet::new();
        for seq in 0..64 {
            let ctx = deft.on_inject(&s, &f, src, dst, seq).unwrap();
            seen.insert(ctx.down_vl.unwrap());
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn route_paths_are_minimal_through_selected_vls() {
        let s = sys();
        let f = FaultState::none(&s);
        let mut deft = DeftRouting::new(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 0, 2);
        let dst = node(&s, Layer::Chiplet(ChipletId(3)), 2, 1);
        let ctx0 = deft.on_inject(&s, &f, src, dst, 0).unwrap();
        let down = &s.chiplet(ChipletId(0)).vertical_links()[ctx0.down_vl.unwrap() as usize];
        let up = &s.chiplet(ChipletId(3)).vertical_links()[ctx0.up_vl.unwrap() as usize];
        let expected = s.inter_chiplet_hops(src, down, up, dst);

        let mut ctx = ctx0;
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let d = deft.route(&s, &f, cur, dst, &mut ctx);
            cur = s.neighbor(cur, d.dir).unwrap();
            hops += 1;
            assert!(hops <= expected, "non-minimal route (livelock risk)");
        }
        assert_eq!(hops, expected);
    }

    #[test]
    fn flow_choices_cover_all_vl_pairs_fault_free() {
        let s = sys();
        let f = FaultState::none(&s);
        let deft = DeftRouting::distance_based(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 2, 2);
        let choices = deft.flow_choices(&s, &f, src, dst);
        // 4 down VLs x 4 up VLs x 1 source VN (VN0) x 2 after-down VNs.
        assert_eq!(choices.len(), 4 * 4 * 2);
        // Every choice walks to the destination.
        for ch in &choices {
            let hops = walk_path(&s, src, dst, ch);
            let mut cur = src;
            for h in &hops {
                cur = s.neighbor(cur, h.dir).unwrap();
            }
            assert_eq!(cur, dst);
        }
    }

    #[test]
    fn flow_choices_empty_for_unroutable_flow() {
        let s = sys();
        let mut f = FaultState::none(&s);
        for idx in 0..4u8 {
            f.inject(deft_topo::VlLinkId {
                chiplet: ChipletId(0),
                index: idx,
                dir: VlDir::Down,
            });
        }
        let deft = DeftRouting::distance_based(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 2, 2);
        assert!(deft.flow_choices(&s, &f, src, dst).is_empty());
    }

    #[test]
    fn on_fault_change_readdresses_the_lut_and_counts_transitions() {
        let s = sys();
        let mut deft = DeftRouting::new(&s);
        assert_eq!(deft.fault_transitions(), 0);
        let mut f = FaultState::none(&s);
        let l = deft_topo::VlLinkId {
            chiplet: ChipletId(1),
            index: 0,
            dir: VlDir::Down,
        };
        // Inject -> notify -> selections must avoid the faulty link.
        f.inject(l);
        deft.on_fault_change(&s, &f);
        assert_eq!(deft.fault_transitions(), 1);
        let src = node(&s, Layer::Chiplet(ChipletId(1)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(2)), 2, 2);
        for seq in 0..8 {
            let ctx = deft.on_inject(&s, &f, src, dst, seq).unwrap();
            assert_ne!(ctx.down_vl, Some(0), "selected the faulty VL");
        }
        // Heal -> notify -> the full mask is addressable again.
        f.heal(l);
        deft.on_fault_change(&s, &f);
        assert_eq!(deft.fault_transitions(), 2);
        assert!(deft.on_inject(&s, &f, src, dst, 0).is_ok());
    }

    #[test]
    fn default_hook_is_a_noop_for_baselines() {
        let s = sys();
        let f = FaultState::none(&s);
        let mut mtr = crate::MtrRouting::new(&s);
        let mut rc = crate::RcRouting::new(&s);
        // MTR and RC derive nothing from the fault state; the default
        // no-op hook must leave them fully functional.
        mtr.on_fault_change(&s, &f);
        rc.on_fault_change(&s, &f);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 1, 1);
        assert!(mtr.on_inject(&s, &f, src, dst, 0).is_ok());
        assert!(rc.on_inject(&s, &f, src, dst, 0).is_ok());
    }

    #[test]
    fn eligibility_is_full_mask_for_deft() {
        let s = sys();
        let deft = DeftRouting::distance_based(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 2, 2);
        let el = deft.eligibility(&s, src, dst);
        assert_eq!(el.down, Some((ChipletId(0), 0b1111)));
        assert_eq!(el.up, Some((ChipletId(1), 0b1111)));

        let intra = deft.eligibility(&s, src, node(&s, Layer::Chiplet(ChipletId(0)), 3, 3));
        assert_eq!(intra.down, None);
        assert_eq!(intra.up, None);
    }
}
