//! Per-router selection look-up tables.
//!
//! The paper stores the offline-optimized VL selections in small LUTs
//! inside each router: for the baseline chiplet with 4 VLs there are
//! `C(4,1) + C(4,2) + C(4,3) = 14` fault combinations, "therefore 14 VL
//! addresses are saved in each router" (§III-B), plus the fault-free
//! selection. We index by the *healthy* mask, which covers exactly those
//! 15 scenarios.

use super::cost::SelectionProblem;
use super::optimizer::VlOptimizer;
use deft_topo::{ChipletId, ChipletSystem, Coord, NodeId};

/// Offline-computed VL selections for every chiplet and every admissible
/// per-chiplet fault scenario.
///
/// One instance covers one traversal direction: a *down* LUT is keyed by
/// the source router and the source chiplet's healthy down-mask, an *up*
/// LUT by the destination router and the destination chiplet's healthy
/// up-mask (the two selections are symmetric — paper §III-B).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionLut {
    /// `entries[chiplet][healthy_mask]` = per-router VL assignment
    /// (indexed by chiplet-local router index), or `None` for mask 0.
    entries: Vec<Vec<Option<Vec<u8>>>>,
}

impl SelectionLut {
    /// Builds the LUT for `sys`, weighting each router by
    /// `rates(node)` — its inter-chiplet traffic rate `T_r^inter`. Pass a
    /// constant for the paper's uniform-traffic offline optimization.
    pub fn build(
        sys: &ChipletSystem,
        optimizer: &VlOptimizer,
        mut rates: impl FnMut(NodeId) -> f64,
    ) -> Self {
        let mut entries = Vec::with_capacity(sys.chiplet_count());
        for chiplet in sys.chiplets() {
            let vl_coords: Vec<Coord> = chiplet
                .vertical_links()
                .iter()
                .map(|vl| vl.chiplet_coord)
                .collect();
            let router_coords: Vec<Coord> = chiplet.coords().collect();
            let router_rates: Vec<f64> = sys.chiplet_nodes(chiplet.id()).map(&mut rates).collect();
            let masks = 1usize << chiplet.vl_count();
            let mut per_mask = Vec::with_capacity(masks);
            per_mask.push(None); // mask 0: chiplet disconnected
            for healthy in 1..masks as u8 {
                let problem = SelectionProblem::new(
                    vl_coords.clone(),
                    router_coords.clone(),
                    router_rates.clone(),
                    healthy,
                    SelectionProblem::DEFAULT_RHO,
                );
                let (assignment, _) = optimizer.solve(&problem);
                per_mask.push(Some(assignment));
            }
            entries.push(per_mask);
        }
        Self { entries }
    }

    /// The VL selected for the router with chiplet-local index
    /// `local_router` on `chiplet`, under the given healthy mask.
    ///
    /// Returns `None` when the mask is 0 (chiplet disconnected).
    ///
    /// # Panics
    /// Panics if `chiplet`, the mask, or the router index is out of range.
    pub fn lookup(&self, chiplet: ChipletId, healthy_mask: u8, local_router: usize) -> Option<u8> {
        self.entries[chiplet.index()][healthy_mask as usize]
            .as_ref()
            .map(|a| a[local_router])
    }

    /// The full assignment for one chiplet and healthy mask.
    pub fn assignment(&self, chiplet: ChipletId, healthy_mask: u8) -> Option<&[u8]> {
        self.entries[chiplet.index()][healthy_mask as usize].as_deref()
    }

    /// Number of stored (chiplet, scenario) entries; `15` per 4-VL chiplet
    /// (the paper's 14 fault combinations plus the fault-free case). The
    /// hardware cost model uses this to size the per-router LUT.
    pub fn scenario_count(&self) -> usize {
        self.entries
            .iter()
            .map(|m| m.iter().filter(|e| e.is_some()).count())
            .sum()
    }
}

/// The chiplet-local router index (row-major) of a chiplet node, used to
/// address per-router LUT entries.
///
/// # Panics
/// Panics if `node` is not on a chiplet.
pub fn local_router_index(sys: &ChipletSystem, node: NodeId) -> usize {
    let addr = sys.addr(node);
    let c = addr.layer.chiplet().expect("node is not on a chiplet");
    let w = sys.chiplet(c).width() as usize;
    addr.coord.y as usize * w + addr.coord.x as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_topo::VlDir;

    #[test]
    fn lut_covers_all_15_scenarios_per_chiplet() {
        let sys = ChipletSystem::baseline_4();
        let lut = SelectionLut::build(&sys, &VlOptimizer::new(), |_| 1.0);
        assert_eq!(lut.scenario_count(), 4 * 15);
        for c in sys.chiplets() {
            assert!(lut.assignment(c.id(), 0).is_none());
            for mask in 1..16u8 {
                let a = lut.assignment(c.id(), mask).expect("entry exists");
                assert_eq!(a.len(), 16);
                for &v in a {
                    assert!(
                        mask & (1 << v) != 0,
                        "mask {mask:#b} assignment uses faulty vl{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_free_uniform_assignment_is_balanced() {
        let sys = ChipletSystem::baseline_4();
        let lut = SelectionLut::build(&sys, &VlOptimizer::new(), |_| 1.0);
        let a = lut.assignment(ChipletId(0), 0b1111).unwrap();
        let mut counts = [0usize; 4];
        for &v in a {
            counts[v as usize] += 1;
        }
        assert_eq!(
            counts,
            [4, 4, 4, 4],
            "16 uniform routers split evenly over 4 VLs"
        );
    }

    #[test]
    fn one_fault_rebalances_to_6_5_5_or_better() {
        // Fig. 3(b): with one faulty VL, the paper's optimizer spreads the
        // 16 routers over the 3 survivors instead of 8/4/4.
        let sys = ChipletSystem::baseline_4();
        let lut = SelectionLut::build(&sys, &VlOptimizer::new(), |_| 1.0);
        for faulty in 0..4u8 {
            let mask = 0b1111 & !(1 << faulty);
            let a = lut.assignment(ChipletId(0), mask).unwrap();
            let mut counts = [0usize; 4];
            for &v in a {
                counts[v as usize] += 1;
            }
            assert_eq!(counts[faulty as usize], 0);
            let max = counts.iter().max().unwrap();
            assert!(
                *max <= 6,
                "one-fault selection left {max} routers on one VL"
            );
        }
    }

    #[test]
    fn lookup_matches_assignment() {
        let sys = ChipletSystem::baseline_4();
        let lut = SelectionLut::build(&sys, &VlOptimizer::new(), |_| 1.0);
        let a = lut.assignment(ChipletId(2), 0b0111).unwrap().to_vec();
        for (i, &v) in a.iter().enumerate() {
            assert_eq!(lut.lookup(ChipletId(2), 0b0111, i), Some(v));
        }
    }

    #[test]
    fn local_router_index_is_row_major() {
        let sys = ChipletSystem::baseline_4();
        let nodes: Vec<NodeId> = sys.chiplet_nodes(ChipletId(1)).collect();
        for (i, &n) in nodes.iter().enumerate() {
            assert_eq!(local_router_index(&sys, n), i);
        }
    }

    #[test]
    fn traffic_weighted_lut_shifts_selection() {
        // Fig. 3(c): under non-uniform traffic the optimizer must not put
        // half the load on one VL. Give the west column all the traffic.
        let sys = ChipletSystem::baseline_4();
        let hot: Vec<NodeId> = sys
            .chiplet_nodes(ChipletId(0))
            .filter(|&n| sys.addr(n).coord.x == 0)
            .collect();
        let lut = SelectionLut::build(&sys, &VlOptimizer::new(), |n| {
            if hot.contains(&n) {
                1.0
            } else {
                0.01
            }
        });
        let a = lut.assignment(ChipletId(0), 0b1111).unwrap();
        // The four hot routers (x = 0) must not all pick the same VL.
        let hot_vls: Vec<u8> = hot
            .iter()
            .map(|&n| a[local_router_index(&sys, n)])
            .collect();
        let first = hot_vls[0];
        assert!(
            hot_vls.iter().any(|&v| v != first),
            "hot column all mapped to vl{first}: load ignored"
        );
        let _ = VlDir::Down;
    }
}
