//! The offline VL-selection search of the paper's Algorithm 2.
//!
//! The paper uses exhaustive search "because the search space is small" and
//! notes that large networks need efficient search algorithms. The raw
//! space for a 4x4 chiplet with 4 VLs is `4^16 ≈ 4.3e9` assignments, so we
//! provide both: exhaustive search for small instances (used as ground
//! truth in tests) and a deterministic multi-start steepest-descent local
//! search that matches the exhaustive optimum on every instance small
//! enough to cross-check.

use super::cost::SelectionProblem;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Searches for the minimum-cost VL assignment `s*` of Eq. (7).
#[derive(Debug, Clone)]
pub struct VlOptimizer {
    /// Maximum `healthy_vls ^ routers` size for exhaustive enumeration.
    exhaustive_limit: u64,
    /// Number of random restarts for the local search.
    restarts: u32,
    /// RNG seed for restart perturbations (search is fully deterministic).
    seed: u64,
}

impl Default for VlOptimizer {
    fn default() -> Self {
        Self {
            exhaustive_limit: 1 << 20,
            restarts: 8,
            seed: 0xDEF7,
        }
    }
}

impl VlOptimizer {
    /// An optimizer with default limits (exhaustive up to ~1M assignments,
    /// 8 local-search restarts).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forces exhaustive search regardless of instance size. Only sensible
    /// for small chiplets; used by tests as ground truth.
    pub fn exhaustive_only() -> Self {
        Self {
            exhaustive_limit: u64::MAX,
            restarts: 0,
            seed: 0,
        }
    }

    /// Forces the local search, never enumerating exhaustively.
    pub fn local_search_only(restarts: u32, seed: u64) -> Self {
        Self {
            exhaustive_limit: 0,
            restarts,
            seed,
        }
    }

    /// Finds an optimal (or near-optimal) assignment and its cost.
    pub fn solve(&self, problem: &SelectionProblem) -> (Vec<u8>, f64) {
        let healthy = problem.healthy_vls();
        if healthy.len() == 1 {
            // Single healthy VL: the assignment is forced.
            let a = vec![healthy[0]; problem.router_count()];
            let c = problem.cost(&a);
            return (a, c);
        }
        let space = (healthy.len() as u64)
            .checked_pow(problem.router_count() as u32)
            .unwrap_or(u64::MAX);
        if space <= self.exhaustive_limit {
            self.solve_exhaustive(problem, &healthy)
        } else {
            self.solve_local_search(problem, &healthy)
        }
    }

    fn solve_exhaustive(&self, problem: &SelectionProblem, healthy: &[u8]) -> (Vec<u8>, f64) {
        let r = problem.router_count();
        let h = healthy.len();
        let mut choice = vec![0usize; r];
        let mut assignment: Vec<u8> = vec![healthy[0]; r];
        let mut best = assignment.clone();
        let mut best_cost = problem.cost(&assignment);
        loop {
            // Advance the mixed-radix counter.
            let mut i = 0;
            loop {
                if i == r {
                    return (best, best_cost);
                }
                choice[i] += 1;
                if choice[i] < h {
                    assignment[i] = healthy[choice[i]];
                    break;
                }
                choice[i] = 0;
                assignment[i] = healthy[0];
                i += 1;
            }
            let c = problem.cost(&assignment);
            if c < best_cost {
                best_cost = c;
                best = assignment.clone();
            }
        }
    }

    fn solve_local_search(&self, problem: &SelectionProblem, healthy: &[u8]) -> (Vec<u8>, f64) {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut best = problem.distance_assignment();
        self.descend(problem, healthy, &mut best);
        let mut best_cost = problem.cost(&best);

        for _ in 0..self.restarts {
            let mut cand: Vec<u8> = (0..problem.router_count())
                .map(|_| healthy[rng.random_range(0..healthy.len())])
                .collect();
            self.descend(problem, healthy, &mut cand);
            let c = problem.cost(&cand);
            if c < best_cost {
                best_cost = c;
                best = cand;
            }
        }
        (best, best_cost)
    }

    /// Steepest-descent: repeatedly apply the single-router reassignment
    /// with the largest cost improvement until a local optimum is reached.
    fn descend(&self, problem: &SelectionProblem, healthy: &[u8], assignment: &mut [u8]) {
        let mut cur = problem.cost(assignment);
        loop {
            let mut best_move: Option<(usize, u8, f64)> = None;
            for r in 0..assignment.len() {
                let orig = assignment[r];
                for &v in healthy {
                    if v == orig {
                        continue;
                    }
                    assignment[r] = v;
                    let c = problem.cost(assignment);
                    if c + 1e-12 < best_move.map_or(cur, |(_, _, bc)| bc) {
                        best_move = Some((r, v, c));
                    }
                }
                assignment[r] = orig;
            }
            match best_move {
                Some((r, v, c)) => {
                    assignment[r] = v;
                    cur = c;
                }
                None => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_topo::Coord;

    fn pinwheel() -> Vec<Coord> {
        vec![
            Coord::new(1, 3),
            Coord::new(3, 2),
            Coord::new(2, 0),
            Coord::new(0, 1),
        ]
    }

    fn small_problem(routers: usize, healthy: u8) -> SelectionProblem {
        // A 3x3 chiplet subset: small enough for exhaustive ground truth.
        let coords: Vec<Coord> = (0..3)
            .flat_map(|y| (0..3).map(move |x| Coord::new(x, y)))
            .take(routers)
            .collect();
        SelectionProblem::new(
            pinwheel(),
            coords,
            vec![1.0; routers],
            healthy,
            SelectionProblem::DEFAULT_RHO,
        )
    }

    #[test]
    fn local_search_matches_exhaustive_on_small_instances() {
        for healthy in [0b1111u8, 0b0111, 0b1010, 0b1001, 0b0011] {
            for routers in [4, 6, 8, 9] {
                let p = small_problem(routers, healthy);
                let (_, exact) = VlOptimizer::exhaustive_only().solve(&p);
                let (_, approx) = VlOptimizer::local_search_only(8, 1).solve(&p);
                assert!(
                    approx <= exact + 1e-9,
                    "local search worse than exhaustive: {approx} vs {exact} \
                     (healthy={healthy:#b}, routers={routers})"
                );
            }
        }
    }

    #[test]
    fn optimum_beats_distance_based_under_uniform_traffic() {
        // Fig. 3(b)'s point: with a faulty VL, distance-based selection
        // overloads the nearest survivor; the optimizer must do at least as
        // well (strictly better here).
        let coords: Vec<Coord> = (0..4)
            .flat_map(|y| (0..4).map(move |x| Coord::new(x, y)))
            .collect();
        let p = SelectionProblem::new(
            pinwheel(),
            coords,
            vec![1.0; 16],
            0b1110, // VL 0 faulty
            SelectionProblem::DEFAULT_RHO,
        );
        let (opt, opt_cost) = VlOptimizer::new().solve(&p);
        let dist_cost = p.cost(&p.distance_assignment());
        assert!(opt_cost <= dist_cost);
        // The optimal split over 3 healthy VLs of 16 uniform routers cannot
        // be worse than 6/5/5.
        let loads = p.vl_loads(&opt);
        let max = loads.iter().cloned().fold(0.0f64, f64::max);
        assert!(max <= 6.0 + 1e-9, "optimizer left load {max} on one VL");
    }

    #[test]
    fn single_healthy_vl_forces_assignment() {
        let p = small_problem(9, 0b0100);
        let (a, _) = VlOptimizer::new().solve(&p);
        assert!(a.iter().all(|&v| v == 2));
    }

    #[test]
    fn optimizer_is_deterministic() {
        let p = small_problem(9, 0b1011);
        let o = VlOptimizer::local_search_only(4, 42);
        let (a1, c1) = o.solve(&p);
        let (a2, c2) = o.solve(&p);
        assert_eq!(a1, a2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn full_chiplet_solution_balances_loads() {
        let coords: Vec<Coord> = (0..4)
            .flat_map(|y| (0..4).map(move |x| Coord::new(x, y)))
            .collect();
        let p = SelectionProblem::new(
            pinwheel(),
            coords,
            vec![1.0; 16],
            0b1111,
            SelectionProblem::DEFAULT_RHO,
        );
        let (a, _) = VlOptimizer::new().solve(&p);
        let loads = p.vl_loads(&a);
        for l in loads {
            assert!(
                (l - 4.0).abs() < 1e-9,
                "uniform 16 routers over 4 VLs must split 4/4/4/4"
            );
        }
    }
}
