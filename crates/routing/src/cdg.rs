//! Channel-dependency-graph (CDG) construction and cycle detection.
//!
//! The paper *argues* deadlock freedom from Rules 1–3 (§III-A); this module
//! *verifies* it mechanically, following Dally & Seitz: a routing function
//! is deadlock-free iff its channel dependency graph — whose vertices are
//! (link, VC) channels and whose edges connect consecutively-held channels —
//! is acyclic.
//!
//! The builder enumerates every flow of the system and every
//! non-deterministic choice the algorithm can make for it
//! ([`RoutingAlgorithm::flow_choices`]), walks the resulting paths, and
//! records all adjacent channel pairs. [`ChannelDependencyGraph::find_cycle`]
//! then runs an iterative DFS.
//!
//! It also exposes [`ChannelDependencyGraph::build_single_vn`], the same construction with every
//! packet forced onto one VC: this reproduces the cyclic dependency of the
//! paper's Fig. 1 and demonstrates that 2.5D integration deadlocks without
//! DeFT's VN separation even though each layer's XY routing is locally
//! deadlock-free.

use crate::algorithm::{walk_path, Hop, RoutingAlgorithm};
use crate::state::Vn;
use deft_topo::{ChipletSystem, Direction, FaultState, NodeId};
use std::collections::HashMap;

/// One virtual channel of one physical link: the buffer a flit occupies
/// after leaving `from` in direction `dir` on VC `vn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel {
    /// Upstream router of the link.
    pub from: NodeId,
    /// Link direction.
    pub dir: Direction,
    /// Virtual channel (VN index).
    pub vn: Vn,
}

impl From<Hop> for Channel {
    fn from(h: Hop) -> Self {
        Channel {
            from: h.from,
            dir: h.dir,
            vn: h.vn,
        }
    }
}

/// The channel dependency graph of a routing algorithm on a system.
#[derive(Debug, Clone)]
pub struct ChannelDependencyGraph {
    channels: Vec<Channel>,
    adj: Vec<Vec<u32>>,
    edge_count: usize,
}

impl ChannelDependencyGraph {
    /// Builds the CDG of `alg` over every flow of `sys` under `faults`,
    /// covering every VL-selection and VN choice the algorithm can make.
    pub fn build(sys: &ChipletSystem, alg: &dyn RoutingAlgorithm, faults: &FaultState) -> Self {
        Self::build_inner(sys, alg, faults, false)
    }

    /// Builds the CDG of the *unprotected* single-VC network: same paths as
    /// `alg` but with every hop forced onto VC0, i.e. no VN separation.
    /// Used to demonstrate the Fig. 1 deadlock cycle.
    pub fn build_single_vn(
        sys: &ChipletSystem,
        alg: &dyn RoutingAlgorithm,
        faults: &FaultState,
    ) -> Self {
        Self::build_inner(sys, alg, faults, true)
    }

    fn build_inner(
        sys: &ChipletSystem,
        alg: &dyn RoutingAlgorithm,
        faults: &FaultState,
        collapse_vn: bool,
    ) -> Self {
        let mut ids: HashMap<Channel, u32> = HashMap::new();
        let mut channels: Vec<Channel> = Vec::new();
        let mut adj: Vec<Vec<u32>> = Vec::new();
        let mut edge_count = 0usize;
        let mut intern = |ch: Channel, channels: &mut Vec<Channel>, adj: &mut Vec<Vec<u32>>| {
            *ids.entry(ch).or_insert_with(|| {
                channels.push(ch);
                adj.push(Vec::new());
                (channels.len() - 1) as u32
            })
        };

        for src in sys.nodes() {
            for dst in sys.nodes() {
                if src == dst {
                    continue;
                }
                for choice in alg.flow_choices(sys, faults, src, dst) {
                    let hops = walk_path(sys, src, dst, &choice);
                    let mut prev: Option<u32> = None;
                    for h in hops {
                        let mut ch = Channel::from(h);
                        if collapse_vn {
                            ch.vn = Vn::Vn0;
                        }
                        let id = intern(ch, &mut channels, &mut adj);
                        if let Some(p) = prev {
                            if !adj[p as usize].contains(&id) {
                                adj[p as usize].push(id);
                                edge_count += 1;
                            }
                        }
                        prev = Some(id);
                    }
                }
            }
        }
        Self {
            channels,
            adj,
            edge_count,
        }
    }

    /// Number of distinct channels used by the algorithm.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of distinct dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the dependency graph contains a cycle (⇒ deadlock possible).
    pub fn has_cycle(&self) -> bool {
        self.find_cycle().is_some()
    }

    /// A witness cycle of channels, if one exists.
    pub fn find_cycle(&self) -> Option<Vec<Channel>> {
        // Iterative coloring DFS: 0 = white, 1 = gray (on stack), 2 = black.
        let n = self.channels.len();
        let mut color = vec![0u8; n];
        let mut parent = vec![u32::MAX; n];
        for root in 0..n as u32 {
            if color[root as usize] != 0 {
                continue;
            }
            // Stack holds (node, next-edge-index).
            let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
            color[root as usize] = 1;
            while let Some(&mut (u, ref mut ei)) = stack.last_mut() {
                if *ei < self.adj[u as usize].len() {
                    let v = self.adj[u as usize][*ei];
                    *ei += 1;
                    match color[v as usize] {
                        0 => {
                            color[v as usize] = 1;
                            parent[v as usize] = u;
                            stack.push((v, 0));
                        }
                        1 => {
                            // Found a back edge u -> v: reconstruct v .. u.
                            let mut cycle = vec![self.channels[u as usize]];
                            let mut cur = u;
                            while cur != v {
                                cur = parent[cur as usize];
                                cycle.push(self.channels[cur as usize]);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color[u as usize] = 2;
                    stack.pop();
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeftRouting, MtrRouting, RcRouting};

    fn small_sys() -> ChipletSystem {
        // A 2-chiplet system keeps CDG tests fast while still containing
        // the Fig. 1 cross-chiplet cycle structure.
        deft_topo::SystemBuilder::new(8, 4)
            .chiplet(
                deft_topo::Coord::new(0, 0),
                4,
                4,
                &deft_topo::ChipletSystem::baseline_4()
                    .chiplet(deft_topo::ChipletId(0))
                    .vertical_links()
                    .iter()
                    .map(|vl| vl.chiplet_coord)
                    .collect::<Vec<_>>(),
            )
            .chiplet(
                deft_topo::Coord::new(4, 0),
                4,
                4,
                &deft_topo::ChipletSystem::baseline_4()
                    .chiplet(deft_topo::ChipletId(0))
                    .vertical_links()
                    .iter()
                    .map(|vl| vl.chiplet_coord)
                    .collect::<Vec<_>>(),
            )
            .build()
            .expect("valid 2-chiplet system")
    }

    #[test]
    fn deft_cdg_is_acyclic_on_two_chiplets() {
        let sys = small_sys();
        let faults = FaultState::none(&sys);
        let deft = DeftRouting::distance_based(&sys);
        let cdg = ChannelDependencyGraph::build(&sys, &deft, &faults);
        assert!(cdg.channel_count() > 0);
        assert!(
            !cdg.has_cycle(),
            "DeFT CDG must be acyclic: {:?}",
            cdg.find_cycle()
        );
    }

    #[test]
    fn single_vc_network_has_the_fig1_cycle() {
        let sys = small_sys();
        let faults = FaultState::none(&sys);
        let deft = DeftRouting::distance_based(&sys);
        let cdg = ChannelDependencyGraph::build_single_vn(&sys, &deft, &faults);
        let cycle = cdg.find_cycle();
        assert!(
            cycle.is_some(),
            "without VN separation the 2.5D network must be cyclic"
        );
        // The witness cycle must cross layers (it is an *inter-chiplet*
        // deadlock, not an intra-mesh one).
        let cycle = cycle.unwrap();
        assert!(
            cycle.iter().any(|c| c.dir.is_vertical()),
            "cycle should involve vertical links: {cycle:?}"
        );
    }

    #[test]
    fn mtr_and_rc_cdgs_are_acyclic_under_phase_vcs() {
        let sys = small_sys();
        let faults = FaultState::none(&sys);
        for alg in [
            Box::new(MtrRouting::new(&sys)) as Box<dyn RoutingAlgorithm>,
            Box::new(RcRouting::new(&sys)),
        ] {
            let cdg = ChannelDependencyGraph::build(&sys, alg.as_ref(), &faults);
            assert!(!cdg.has_cycle(), "{} CDG must be acyclic", alg.name());
        }
    }

    #[test]
    fn faulty_networks_remain_acyclic_for_deft() {
        let sys = small_sys();
        let mut faults = FaultState::none(&sys);
        faults.inject(deft_topo::VlLinkId {
            chiplet: deft_topo::ChipletId(0),
            index: 0,
            dir: deft_topo::VlDir::Down,
        });
        faults.inject(deft_topo::VlLinkId {
            chiplet: deft_topo::ChipletId(1),
            index: 2,
            dir: deft_topo::VlDir::Up,
        });
        let deft = DeftRouting::distance_based(&sys);
        let cdg = ChannelDependencyGraph::build(&sys, &deft, &faults);
        assert!(!cdg.has_cycle());
    }
}
