//! Dimension-order (XY) routing within one mesh layer.
//!
//! Every algorithm in this crate routes minimally inside a layer with XY:
//! first resolve the x offset, then the y offset. XY's turn set is acyclic
//! ([Glass & Ni, 1992]), which the [`cdg`](crate::cdg) verifier relies on
//! when checking the full 2.5D channel-dependency graph.

use deft_topo::{Coord, Direction};

/// The next XY hop from `from` toward `to`, or `None` if already there.
///
/// ```
/// use deft_topo::{Coord, Direction};
/// use deft_routing::xy::next_dir;
///
/// assert_eq!(next_dir(Coord::new(0, 0), Coord::new(2, 1)), Some(Direction::East));
/// assert_eq!(next_dir(Coord::new(2, 0), Coord::new(2, 1)), Some(Direction::North));
/// assert_eq!(next_dir(Coord::new(2, 1), Coord::new(2, 1)), None);
/// ```
pub fn next_dir(from: Coord, to: Coord) -> Option<Direction> {
    if from.x < to.x {
        Some(Direction::East)
    } else if from.x > to.x {
        Some(Direction::West)
    } else if from.y < to.y {
        Some(Direction::North)
    } else if from.y > to.y {
        Some(Direction::South)
    } else {
        None
    }
}

/// The full XY hop sequence from `from` to `to` as directions.
pub fn path_dirs(from: Coord, to: Coord) -> Vec<Direction> {
    let mut cur = from;
    let mut out = Vec::with_capacity(from.manhattan(to) as usize);
    while let Some(d) = next_dir(cur, to) {
        out.push(d);
        cur = match d {
            Direction::East => Coord::new(cur.x + 1, cur.y),
            Direction::West => Coord::new(cur.x - 1, cur.y),
            Direction::North => Coord::new(cur.x, cur.y + 1),
            Direction::South => Coord::new(cur.x, cur.y - 1),
            _ => unreachable!("XY produces only horizontal directions"),
        };
    }
    out
}

/// Whether the ordered turn `a` then `b` is permitted by XY routing:
/// continuing straight is always permitted, X → Y turns are permitted, and
/// Y → X turns are forbidden.
pub fn turn_allowed(a: Direction, b: Direction) -> bool {
    debug_assert!(a.is_horizontal() && b.is_horizontal());
    let is_x = |d: Direction| matches!(d, Direction::East | Direction::West);
    if a == b.opposite() {
        return false; // u-turns never occur in minimal routing
    }
    if is_x(a) {
        true
    } else {
        !is_x(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_is_resolved_before_y() {
        let dirs = path_dirs(Coord::new(0, 3), Coord::new(2, 0));
        assert_eq!(
            dirs,
            vec![
                Direction::East,
                Direction::East,
                Direction::South,
                Direction::South,
                Direction::South
            ]
        );
    }

    #[test]
    fn path_length_equals_manhattan() {
        for (a, b) in [
            (Coord::new(0, 0), Coord::new(3, 3)),
            (Coord::new(5, 1), Coord::new(0, 7)),
            (Coord::new(2, 2), Coord::new(2, 2)),
        ] {
            assert_eq!(path_dirs(a, b).len() as u32, a.manhattan(b));
        }
    }

    #[test]
    fn xy_turns_never_turn_y_to_x() {
        use Direction::*;
        assert!(turn_allowed(East, North));
        assert!(turn_allowed(West, South));
        assert!(turn_allowed(East, East));
        assert!(turn_allowed(North, North));
        assert!(!turn_allowed(North, East));
        assert!(!turn_allowed(South, West));
        assert!(!turn_allowed(East, West));
    }

    #[test]
    fn generated_paths_use_only_allowed_turns() {
        let dirs = path_dirs(Coord::new(0, 0), Coord::new(4, 5));
        for w in dirs.windows(2) {
            assert!(turn_allowed(w[0], w[1]), "turn {:?} -> {:?}", w[0], w[1]);
        }
    }
}
