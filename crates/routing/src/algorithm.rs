//! The [`RoutingAlgorithm`] interface shared by DeFT and the baselines.

use crate::state::{RouteCtx, Vn};
use crate::xy;
use deft_codec::{CodecError, Decoder, Encoder};
use deft_topo::{ChipletId, ChipletSystem, Direction, FaultState, Layer, NodeId};
use std::error::Error;
use std::fmt;

/// A routing failure surfaced to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// No eligible, healthy vertical link exists for this flow under the
    /// current fault state; the packet cannot be delivered. The simulator
    /// counts these against reachability (paper §IV-C).
    Unroutable {
        /// Source node of the flow.
        src: NodeId,
        /// Destination node of the flow.
        dst: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unroutable { src, dst } => {
                write!(
                    f,
                    "no healthy eligible vertical link for flow {src} -> {dst}"
                )
            }
        }
    }
}

impl Error for RouteError {}

/// One routing decision: the output direction and the virtual network (= VC
/// index) of the *next* buffer the head flit will occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// Output direction at the current router.
    pub dir: Direction,
    /// VN/VC class at the downstream input buffer.
    pub vn: Vn,
}

/// Which vertical links an algorithm could *ever* use for a flow,
/// independent of the current fault state.
///
/// A flow is routable under fault set `F` iff each required leg retains at
/// least one healthy eligible link. This is the input to the exact
/// reachability engine ([`reachability`](crate::reachability)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEligibility {
    /// `(source chiplet, eligible-VL bitmask)` when the flow needs a down
    /// traversal (source on a chiplet, destination elsewhere).
    pub down: Option<(ChipletId, u8)>,
    /// `(destination chiplet, eligible-VL bitmask)` when the flow needs an
    /// up traversal (destination on a chiplet, source elsewhere).
    pub up: Option<(ChipletId, u8)>,
}

impl FlowEligibility {
    /// Whether the flow survives the given fault state.
    pub fn routable(&self, faults: &FaultState, sys: &ChipletSystem) -> bool {
        let ok_down = match self.down {
            None => true,
            Some((c, mask)) => {
                let healthy =
                    faults.healthy_mask(c, deft_topo::VlDir::Down, sys.chiplet(c).vl_count());
                mask & healthy != 0
            }
        };
        let ok_up = match self.up {
            None => true,
            Some((c, mask)) => {
                let healthy =
                    faults.healthy_mask(c, deft_topo::VlDir::Up, sys.chiplet(c).vl_count());
                mask & healthy != 0
            }
        };
        ok_down && ok_up
    }
}

/// One complete non-deterministic choice an algorithm can make for a flow:
/// the selected VLs and the VN schedule. Used to enumerate every possible
/// path when building the channel dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowChoice {
    /// Down VL (source-chiplet local index), if the flow descends.
    pub down_vl: Option<u8>,
    /// Up VL (destination-chiplet local index), if the flow ascends.
    pub up_vl: Option<u8>,
    /// VN assigned at the source router.
    pub vn_source: Vn,
    /// VN after the down traversal (must respect Rule 1).
    pub vn_after_down: Vn,
}

/// A routing algorithm for 2.5D chiplet systems.
///
/// The simulator drives [`on_inject`](Self::on_inject) once per packet —
/// it may mutate internal RNG or selection state, which is why it takes
/// `&mut self` — and [`route`](Self::route) once per hop of the packet's
/// head flit. `route` takes `&self`: the parallel tick engine calls it
/// from several worker threads against one shared instance, so any
/// per-hop state an algorithm keeps (DeFT's boundary round-robin
/// counters) must use interior mutability that stays deterministic under
/// sharding — safe here because the engine partitions routers across
/// workers and the counters are per-router. The analysis methods
/// ([`eligibility`](Self::eligibility),
/// [`flow_choices`](Self::flow_choices)) are pure.
///
/// Algorithms must be `Send + Sync`: experiment campaigns run one
/// simulator — and therefore one algorithm instance, with its per-run
/// mutable state — per worker thread (`Send`), and the parallel tick
/// shares that instance across its shard workers for the `route` calls
/// of one cycle (`Sync`). All algorithms in this crate are plain data
/// plus seeded RNGs and per-router atomics, so the bounds are free.
pub trait RoutingAlgorithm: Send + Sync {
    /// Short human-readable name used in reports ("DeFT", "MTR", ...).
    fn name(&self) -> &str;

    /// Computes the initial routing state for a packet injected at `src`
    /// toward `dst`. `seq` is the per-source injection sequence number used
    /// for deterministic round-robin decisions.
    ///
    /// # Errors
    /// [`RouteError::Unroutable`] when no eligible healthy VL exists for a
    /// required vertical traversal.
    fn on_inject(
        &mut self,
        sys: &ChipletSystem,
        faults: &FaultState,
        src: NodeId,
        dst: NodeId,
        seq: u64,
    ) -> Result<RouteCtx, RouteError>;

    /// Decides the output direction and next-buffer VN for the packet's head
    /// flit at `node`. Must not be called when `node == dst` (the simulator
    /// ejects instead).
    ///
    /// Takes `&self` (see the trait docs): the parallel tick engine issues
    /// concurrent `route` calls for routers of *different* shards. Calls
    /// for the same router are never concurrent, and per-router interior
    /// state therefore needs no ordering beyond `Relaxed` atomics.
    fn route(
        &self,
        sys: &ChipletSystem,
        faults: &FaultState,
        node: NodeId,
        dst: NodeId,
        ctx: &mut RouteCtx,
    ) -> RouteDecision;

    /// The VLs this algorithm could ever use for the flow `src -> dst`,
    /// independent of faults.
    fn eligibility(&self, sys: &ChipletSystem, src: NodeId, dst: NodeId) -> FlowEligibility;

    /// Every (VL-selection, VN-schedule) combination the algorithm may
    /// produce for this flow under the given fault state. Paths derived from
    /// these choices with [`walk_path`] cover everything the algorithm can
    /// do, which is what the CDG deadlock verifier needs.
    fn flow_choices(
        &self,
        sys: &ChipletSystem,
        faults: &FaultState,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<FlowChoice>;

    /// Whether packets ascending into a chiplet are fully store-and-forward
    /// buffered at the boundary router (RC's RC-buffer). Defaults to `false`.
    fn store_and_forward_up(&self) -> bool {
        false
    }

    /// Notifies the algorithm that the fault state changed *mid-run*.
    ///
    /// The simulator calls this at every
    /// [`FaultTimeline`](deft_topo::FaultTimeline) transition, after
    /// applying the cycle's inject/heal events and removing stranded
    /// in-flight packets, and before any packet of that cycle is routed
    /// *or re-routed* (still-queued packets re-select only after the
    /// hook returns), so implementations can refresh state *derived
    /// from* the fault set (tables, caches, reconfiguration
    /// bookkeeping) and have every subsequent selection consult the
    /// fresh version. It is **not** called for the static fault state a
    /// run starts with.
    ///
    /// [`on_inject`](Self::on_inject) and [`route`](Self::route) always
    /// receive the authoritative `faults`, so an algorithm that derives
    /// nothing — MTR and RC re-select per injection within their
    /// design-time restricted sets, which is exactly their graceful
    /// degradation — can keep the default no-op. DeFT overrides it to
    /// re-address its offline selection LUT (see
    /// [`DeftRouting`](crate::DeftRouting)).
    fn on_fault_change(&mut self, _sys: &ChipletSystem, _faults: &FaultState) {}

    /// Writes the algorithm's *mutable* run state (round-robin counters,
    /// RNG streams, transition counters — nothing derivable from the
    /// system or fault state) into `enc`, for simulator snapshots.
    ///
    /// Stateless algorithms (MTR, RC: per-injection selection from fixed
    /// restricted sets) keep the default no-op; DeFT overrides it.
    fn save_state(&self, _enc: &mut Encoder) {}

    /// Restores the state written by [`save_state`](Self::save_state).
    /// The decoder must be fully consumed (the simulator calls
    /// [`Decoder::finish`] afterwards), so the default no-op pairs with
    /// the default empty `save_state`.
    ///
    /// # Errors
    /// A [`CodecError`] when the payload is truncated, malformed, or was
    /// written by a structurally different algorithm instance.
    fn load_state(&mut self, _dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        Ok(())
    }

    /// An owned deep copy for `Simulator::fork` what-if branching: the
    /// clone must carry the exact mutable state (counters, RNG position)
    /// so fork and original stay byte-identical until their inputs
    /// diverge.
    ///
    /// The default panics: every shipped algorithm overrides it with
    /// `Box::new(self.clone())`, and the default only exists so minimal
    /// test doubles that never get forked don't have to implement it.
    fn fork_box(&self) -> Box<dyn RoutingAlgorithm> {
        panic!(
            "RoutingAlgorithm::fork_box not implemented for {}; override it with Box::new(self.clone()) to make this algorithm forkable",
            self.name()
        );
    }
}

/// The next output direction for a packet at `node` with destination `dst`,
/// given the VLs already selected in `ctx`. Shared by every algorithm: XY
/// within a layer, descend at the selected down VL, ascend at the selected
/// up VL (minimal routing via the paper's two intermediate destinations).
///
/// Returns `None` when `node == dst`.
///
/// # Panics
/// Panics if a required VL selection is missing from `ctx`, which indicates
/// the algorithm's `on_inject` contract was violated.
pub fn next_direction(
    sys: &ChipletSystem,
    node: NodeId,
    dst: NodeId,
    ctx: &RouteCtx,
) -> Option<Direction> {
    if node == dst {
        return None;
    }
    let na = sys.addr(node);
    let da = sys.addr(dst);
    match (na.layer, da.layer) {
        (Layer::Chiplet(c), Layer::Chiplet(d)) if c == d => xy::next_dir(na.coord, da.coord),
        (Layer::Interposer, Layer::Interposer) => xy::next_dir(na.coord, da.coord),
        (Layer::Chiplet(c), _) => {
            // Must descend through the selected down VL of chiplet `c`.
            let vl_idx = ctx
                .down_vl
                .expect("down VL not selected for descending packet");
            let target = sys.chiplet(c).vl_coord(vl_idx as usize);
            match xy::next_dir(na.coord, target) {
                Some(d) => Some(d),
                None => Some(Direction::Down),
            }
        }
        (Layer::Interposer, Layer::Chiplet(d)) => {
            let vl_idx = ctx.up_vl.expect("up VL not selected for ascending packet");
            let vl = &sys.chiplet(d).vertical_links()[vl_idx as usize];
            let target = sys.addr(vl.interposer_node).coord;
            match xy::next_dir(na.coord, target) {
                Some(dir) => Some(dir),
                None => Some(Direction::Up),
            }
        }
    }
}

/// One hop of a walked path: the node left, the direction taken, and the
/// VN of the channel entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hop {
    /// Node the flit departs from.
    pub from: NodeId,
    /// Direction of the traversed link.
    pub dir: Direction,
    /// VN/VC of the downstream buffer.
    pub vn: Vn,
}

/// Walks the complete path of a flow under one [`FlowChoice`], hop by hop.
///
/// The VN schedule follows the paper: `vn_source` until the down traversal,
/// `vn_after_down` until the up traversal, and VN1 after ascending (Rule 2
/// makes VN0 unusable past an Up port).
///
/// # Panics
/// Panics if the choice omits a VL required by the flow's shape.
pub fn walk_path(sys: &ChipletSystem, src: NodeId, dst: NodeId, choice: &FlowChoice) -> Vec<Hop> {
    let ctx = RouteCtx {
        vn: choice.vn_source,
        down_vl: choice.down_vl,
        up_vl: choice.up_vl,
    };
    let mut hops = Vec::new();
    let mut node = src;
    let mut vn = choice.vn_source;
    while let Some(dir) = next_direction(sys, node, dst, &ctx) {
        vn = match dir {
            Direction::Down => choice.vn_after_down,
            Direction::Up => Vn::Vn1,
            _ => vn,
        };
        hops.push(Hop {
            from: node,
            dir,
            vn,
        });
        node = sys
            .neighbor(node, dir)
            .expect("next_direction produced a dangling link");
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_topo::Coord;

    fn sys() -> ChipletSystem {
        ChipletSystem::baseline_4()
    }

    fn node(sys: &ChipletSystem, layer: Layer, x: u8, y: u8) -> NodeId {
        sys.node_id(deft_topo::NodeAddr::new(layer, Coord::new(x, y)))
            .expect("valid addr")
    }

    #[test]
    fn next_direction_is_none_at_destination() {
        let s = sys();
        let n = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let ctx = RouteCtx::local(Vn::Vn0);
        assert_eq!(next_direction(&s, n, n, &ctx), None);
    }

    #[test]
    fn intra_chiplet_packets_route_xy() {
        let s = sys();
        let a = node(&s, Layer::Chiplet(ChipletId(0)), 0, 0);
        let b = node(&s, Layer::Chiplet(ChipletId(0)), 2, 3);
        let ctx = RouteCtx::local(Vn::Vn0);
        assert_eq!(next_direction(&s, a, b, &ctx), Some(Direction::East));
    }

    #[test]
    fn descending_packets_head_to_the_selected_vl() {
        let s = sys();
        let a = node(&s, Layer::Chiplet(ChipletId(0)), 0, 0);
        let b = node(&s, Layer::Chiplet(ChipletId(1)), 0, 0);
        // VL 2 of a 4x4 pinwheel chiplet is at (2, 0).
        let ctx = RouteCtx {
            vn: Vn::Vn0,
            down_vl: Some(2),
            up_vl: Some(0),
        };
        assert_eq!(next_direction(&s, a, b, &ctx), Some(Direction::East));
        let at_vl = node(&s, Layer::Chiplet(ChipletId(0)), 2, 0);
        assert_eq!(next_direction(&s, at_vl, b, &ctx), Some(Direction::Down));
    }

    #[test]
    fn walked_path_ends_at_destination_with_minimal_hops() {
        let s = sys();
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 0, 0);
        let dst = node(&s, Layer::Chiplet(ChipletId(3)), 3, 3);
        let choice = FlowChoice {
            down_vl: Some(1),
            up_vl: Some(3),
            vn_source: Vn::Vn0,
            vn_after_down: Vn::Vn1,
        };
        let hops = walk_path(&s, src, dst, &choice);
        // End node must be dst.
        let mut cur = src;
        for h in &hops {
            assert_eq!(h.from, cur);
            cur = s.neighbor(cur, h.dir).unwrap();
        }
        assert_eq!(cur, dst);
        // Hop count matches the topological minimum through those VLs.
        let down = &s.chiplet(ChipletId(0)).vertical_links()[1];
        let up = &s.chiplet(ChipletId(3)).vertical_links()[3];
        assert_eq!(hops.len() as u32, s.inter_chiplet_hops(src, down, up, dst));
    }

    #[test]
    fn walked_path_vn_schedule_respects_rules() {
        let s = sys();
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 0, 0);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 2, 2);
        let choice = FlowChoice {
            down_vl: Some(0),
            up_vl: Some(2),
            vn_source: Vn::Vn0,
            vn_after_down: Vn::Vn0,
        };
        let hops = walk_path(&s, src, dst, &choice);
        let up_pos = hops
            .iter()
            .position(|h| h.dir == Direction::Up)
            .expect("must ascend");
        for h in &hops[up_pos..] {
            assert_eq!(h.vn, Vn::Vn1, "post-up hops must be in VN1 (Rule 2)");
        }
        for h in &hops[..up_pos] {
            assert_eq!(h.vn, Vn::Vn0);
        }
    }

    #[test]
    fn eligibility_routable_logic() {
        let s = sys();
        let mut faults = FaultState::none(&s);
        let el = FlowEligibility {
            down: Some((ChipletId(0), 0b0011)),
            up: Some((ChipletId(1), 0b1111)),
        };
        assert!(el.routable(&faults, &s));
        faults.inject(deft_topo::VlLinkId {
            chiplet: ChipletId(0),
            index: 0,
            dir: deft_topo::VlDir::Down,
        });
        assert!(el.routable(&faults, &s));
        faults.inject(deft_topo::VlLinkId {
            chiplet: ChipletId(0),
            index: 1,
            dir: deft_topo::VlDir::Down,
        });
        assert!(!el.routable(&faults, &s), "both eligible down VLs faulty");
    }
}
