//! Per-packet routing state: virtual networks and the inter-chiplet phase.

use deft_codec::{CodecError, Decoder, Encoder, Persist};
use std::fmt;

/// One of DeFT's two virtual networks.
///
/// Each VN owns (at least) one virtual channel per port; this crate and
/// `deft-sim` use the paper's minimal configuration of one VC per VN, so
/// `Vn` doubles as the VC index. The paper's deadlock rules (Fig. 2):
///
/// * **Rule 1** — switching VN1 → VN0 is forbidden (VN0 → VN1 is allowed);
/// * **Rule 2** — in VN0, Up → Horizontal turns are forbidden;
/// * **Rule 3** — in VN1, Horizontal → Down turns are forbidden.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Vn {
    /// Virtual network 0 (used before the first vertical traversal).
    Vn0 = 0,
    /// Virtual network 1 (mandatory after the up traversal).
    Vn1 = 1,
}

impl Vn {
    /// Both VNs, `Vn0` first.
    pub const ALL: [Vn; 2] = [Vn::Vn0, Vn::Vn1];

    /// The VN as a VC index (`0` or `1`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The other VN.
    pub fn other(self) -> Vn {
        match self {
            Vn::Vn0 => Vn::Vn1,
            Vn::Vn1 => Vn::Vn0,
        }
    }

    /// `Vn0` for even `seq`, `Vn1` for odd — the round-robin assignment the
    /// paper uses wherever both VNs are permitted.
    pub fn round_robin(seq: u64) -> Vn {
        if seq.is_multiple_of(2) {
            Vn::Vn0
        } else {
            Vn::Vn1
        }
    }

    /// Whether a packet may switch from `self` to `to` (Rule 1).
    pub fn may_switch_to(self, to: Vn) -> bool {
        !(self == Vn::Vn1 && to == Vn::Vn0)
    }
}

impl fmt::Display for Vn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vn::Vn0 => f.write_str("VN0"),
            Vn::Vn1 => f.write_str("VN1"),
        }
    }
}

/// Routing state carried by one packet.
///
/// Created by [`RoutingAlgorithm::on_inject`](crate::RoutingAlgorithm::on_inject)
/// and updated by [`RoutingAlgorithm::route`](crate::RoutingAlgorithm::route)
/// at every hop. The two VL selections are the paper's two *intermediate
/// destinations* (§II-A): `down_vl` on the source chiplet and `up_vl` on the
/// interposer, both fixed at injection time (faults are static per run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteCtx {
    /// The packet's current virtual network (also its VC index).
    pub vn: Vn,
    /// Chiplet-local index of the VL selected to leave the source chiplet,
    /// if the packet needs a down traversal.
    pub down_vl: Option<u8>,
    /// Chiplet-local index of the VL selected to enter the destination
    /// chiplet, if the packet needs an up traversal.
    pub up_vl: Option<u8>,
}

impl RouteCtx {
    /// State for a packet that never leaves its layer.
    pub fn local(vn: Vn) -> Self {
        Self {
            vn,
            down_vl: None,
            up_vl: None,
        }
    }
}

impl Persist for Vn {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(*self as u8);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(Vn::Vn0),
            1 => Ok(Vn::Vn1),
            d => Err(CodecError::Invalid(format!("bad Vn discriminant {d}"))),
        }
    }
}

impl Persist for RouteCtx {
    fn encode(&self, enc: &mut Encoder) {
        self.vn.encode(enc);
        self.down_vl.encode(enc);
        self.up_vl.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(RouteCtx {
            vn: Vn::decode(dec)?,
            down_vl: Option::<u8>::decode(dec)?,
            up_vl: Option::<u8>::decode(dec)?,
        })
    }
}

impl fmt::Display for RouteCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.vn)?;
        if let Some(d) = self.down_vl {
            write!(f, " down:vl{d}")?;
        }
        if let Some(u) = self.up_vl {
            write!(f, " up:vl{u}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_alternates() {
        assert_eq!(Vn::round_robin(0), Vn::Vn0);
        assert_eq!(Vn::round_robin(1), Vn::Vn1);
        assert_eq!(Vn::round_robin(2), Vn::Vn0);
    }

    #[test]
    fn rule_1_forbids_vn1_to_vn0() {
        assert!(Vn::Vn0.may_switch_to(Vn::Vn1));
        assert!(Vn::Vn0.may_switch_to(Vn::Vn0));
        assert!(Vn::Vn1.may_switch_to(Vn::Vn1));
        assert!(!Vn::Vn1.may_switch_to(Vn::Vn0));
    }

    #[test]
    fn vn_index_matches_vc() {
        assert_eq!(Vn::Vn0.index(), 0);
        assert_eq!(Vn::Vn1.index(), 1);
        assert_eq!(Vn::Vn0.other(), Vn::Vn1);
    }

    #[test]
    fn ctx_display_mentions_selections() {
        let ctx = RouteCtx {
            vn: Vn::Vn0,
            down_vl: Some(2),
            up_vl: Some(1),
        };
        let s = ctx.to_string();
        assert!(s.contains("VN0") && s.contains("down:vl2") && s.contains("up:vl1"));
    }
}
