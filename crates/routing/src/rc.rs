//! The RC baseline: remote control (Majumder et al., IEEE TC 2020).
//!
//! RC breaks inter-chiplet cyclic dependencies with an *RC-buffer* on each
//! boundary router that stores a whole packet, plus a permission network
//! arbitrating the shared buffer. Each flow uses one *designated* boundary
//! router per traversal, so RC has no VL re-selection freedom at all: a
//! fault on a designated VL kills every flow designated to it ("RC cannot
//! tolerate any faults" in the paper's 6-chiplet worst case, Fig. 7(b)).
//!
//! In the simulator, RC's `store_and_forward_up` contract makes ascending
//! packets fully buffer at the boundary router before re-entering the
//! chiplet, reproducing RC's serialization latency at load (Fig. 4).

use crate::algorithm::{
    next_direction, FlowChoice, FlowEligibility, RouteDecision, RouteError, RoutingAlgorithm,
};
use crate::state::{RouteCtx, Vn};
use deft_topo::{ChipletId, ChipletSystem, Direction, FaultState, Layer, NodeId, VlDir};

/// The remote-control routing baseline.
#[derive(Debug, Clone, Default)]
pub struct RcRouting {
    _private: (),
}

impl RcRouting {
    /// Creates the RC baseline for `sys`.
    pub fn new(_sys: &ChipletSystem) -> Self {
        Self { _private: () }
    }

    /// The interposer-plane reference point of a node (x2 to keep chiplet
    /// centers integral).
    fn ref_point_x2(sys: &ChipletSystem, node: NodeId) -> (i32, i32) {
        match sys.layer(node) {
            Layer::Chiplet(c) => {
                let ch = sys.chiplet(c);
                let o = ch.origin();
                (
                    2 * o.x as i32 + ch.width() as i32 - 1,
                    2 * o.y as i32 + ch.height() as i32 - 1,
                )
            }
            Layer::Interposer => {
                let co = sys.addr(node).coord;
                (2 * co.x as i32, 2 * co.y as i32)
            }
        }
    }

    /// The designated VL of `chiplet` for traffic toward/from the reference
    /// point: the VL whose interposer endpoint is closest to it, ties by
    /// index. This designation is fixed at design time (fault-oblivious).
    fn designated(sys: &ChipletSystem, chiplet: ChipletId, point_x2: (i32, i32)) -> u8 {
        sys.chiplet(chiplet)
            .vertical_links()
            .iter()
            .min_by_key(|vl| {
                let ic = sys.addr(vl.interposer_node).coord;
                let d = (2 * ic.x as i32 - point_x2.0).abs() + (2 * ic.y as i32 - point_x2.1).abs();
                (d, vl.index)
            })
            .expect("chiplets have at least one VL")
            .index
    }
}

impl RoutingAlgorithm for RcRouting {
    fn name(&self) -> &str {
        "RC"
    }

    // RC is stateless between injections, so the default no-op save/load
    // is exact; forking only needs the clone.
    fn fork_box(&self) -> Box<dyn RoutingAlgorithm> {
        Box::new(self.clone())
    }

    fn on_inject(
        &mut self,
        sys: &ChipletSystem,
        faults: &FaultState,
        src: NodeId,
        dst: NodeId,
        _seq: u64,
    ) -> Result<RouteCtx, RouteError> {
        let el = self.eligibility(sys, src, dst);
        let down_vl = match el.down {
            None => None,
            Some((c, mask)) => {
                let healthy = mask & faults.healthy_mask(c, VlDir::Down, sys.chiplet(c).vl_count());
                if healthy == 0 {
                    return Err(RouteError::Unroutable { src, dst });
                }
                Some(healthy.trailing_zeros() as u8)
            }
        };
        let up_vl = match el.up {
            None => None,
            Some((c, mask)) => {
                let healthy = mask & faults.healthy_mask(c, VlDir::Up, sys.chiplet(c).vl_count());
                if healthy == 0 {
                    return Err(RouteError::Unroutable { src, dst });
                }
                Some(healthy.trailing_zeros() as u8)
            }
        };
        Ok(RouteCtx {
            vn: Vn::Vn0,
            down_vl,
            up_vl,
        })
    }

    fn route(
        &self,
        sys: &ChipletSystem,
        _faults: &FaultState,
        node: NodeId,
        dst: NodeId,
        ctx: &mut RouteCtx,
    ) -> RouteDecision {
        let dir = next_direction(sys, node, dst, ctx)
            .expect("route called on a packet already at its destination");
        let vn = match dir {
            Direction::Up => Vn::Vn1,
            _ => ctx.vn,
        };
        ctx.vn = vn;
        RouteDecision { dir, vn }
    }

    fn eligibility(&self, sys: &ChipletSystem, src: NodeId, dst: NodeId) -> FlowEligibility {
        let src_layer = sys.layer(src);
        let dst_layer = sys.layer(dst);
        let down = match src_layer {
            Layer::Chiplet(c) if dst_layer != Layer::Chiplet(c) => {
                let v = Self::designated(sys, c, Self::ref_point_x2(sys, dst));
                Some((c, 1u8 << v))
            }
            _ => None,
        };
        let up = match dst_layer {
            Layer::Chiplet(c) if src_layer != Layer::Chiplet(c) => {
                let v = Self::designated(sys, c, Self::ref_point_x2(sys, src));
                Some((c, 1u8 << v))
            }
            _ => None,
        };
        FlowEligibility { down, up }
    }

    fn flow_choices(
        &self,
        sys: &ChipletSystem,
        faults: &FaultState,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<FlowChoice> {
        if src == dst {
            return Vec::new();
        }
        match self.clone().on_inject(sys, faults, src, dst, 0) {
            Ok(ctx) => vec![FlowChoice {
                down_vl: ctx.down_vl,
                up_vl: ctx.up_vl,
                vn_source: Vn::Vn0,
                vn_after_down: Vn::Vn0,
            }],
            Err(_) => Vec::new(),
        }
    }

    fn store_and_forward_up(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_topo::{Coord, NodeAddr};

    fn sys() -> ChipletSystem {
        ChipletSystem::baseline_4()
    }

    fn node(s: &ChipletSystem, layer: Layer, x: u8, y: u8) -> NodeId {
        s.node_id(NodeAddr::new(layer, Coord::new(x, y)))
            .expect("valid addr")
    }

    #[test]
    fn designation_is_a_singleton() {
        let s = sys();
        let rc = RcRouting::new(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 1, 1);
        let el = rc.eligibility(&s, src, dst);
        assert_eq!(el.down.unwrap().1.count_ones(), 1);
        assert_eq!(el.up.unwrap().1.count_ones(), 1);
    }

    #[test]
    fn designation_is_shared_by_all_router_pairs_of_a_chiplet_pair() {
        let s = sys();
        let rc = RcRouting::new(&s);
        let dst0 = node(&s, Layer::Chiplet(ChipletId(3)), 0, 0);
        let dst1 = node(&s, Layer::Chiplet(ChipletId(3)), 3, 3);
        let masks: Vec<u8> = s
            .chiplet_nodes(ChipletId(0))
            .map(|src| rc.eligibility(&s, src, dst0).down.unwrap().1)
            .collect();
        assert!(
            masks.windows(2).all(|w| w[0] == w[1]),
            "designation is per chiplet pair"
        );
        // Destination router inside the same chiplet does not change it.
        assert_eq!(
            rc.eligibility(&s, node(&s, Layer::Chiplet(ChipletId(0)), 0, 0), dst0)
                .down,
            rc.eligibility(&s, node(&s, Layer::Chiplet(ChipletId(0)), 0, 0), dst1)
                .down,
        );
    }

    #[test]
    fn any_fault_on_the_designated_vl_kills_the_flow() {
        let s = sys();
        let mut rc = RcRouting::new(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 1, 1);
        let el = rc.eligibility(&s, src, dst);
        let (c, mask) = el.down.unwrap();
        let idx = mask.trailing_zeros() as u8;
        let mut f = FaultState::none(&s);
        f.inject(deft_topo::VlLinkId {
            chiplet: c,
            index: idx,
            dir: VlDir::Down,
        });
        assert!(matches!(
            rc.on_inject(&s, &f, src, dst, 0),
            Err(RouteError::Unroutable { .. })
        ));
    }

    #[test]
    fn rc_reports_store_and_forward() {
        let s = sys();
        assert!(RcRouting::new(&s).store_and_forward_up());
        assert!(!crate::MtrRouting::new(&s).store_and_forward_up());
    }

    #[test]
    fn rc_routes_reach_destination() {
        let s = sys();
        let f = FaultState::none(&s);
        let mut rc = RcRouting::new(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(2)), 0, 3);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 3, 0);
        let mut ctx = rc.on_inject(&s, &f, src, dst, 0).unwrap();
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let d = rc.route(&s, &f, cur, dst, &mut ctx);
            cur = s.neighbor(cur, d.dir).unwrap();
            hops += 1;
            assert!(hops < 64, "runaway route");
        }
        assert!(hops >= 1);
    }

    #[test]
    fn flow_choices_single_or_empty() {
        let s = sys();
        let rc = RcRouting::new(&s);
        let f = FaultState::none(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 1, 1);
        assert_eq!(rc.flow_choices(&s, &f, src, dst).len(), 1);
        let el = rc.eligibility(&s, src, dst);
        let (c, mask) = el.down.unwrap();
        let mut f2 = FaultState::none(&s);
        f2.inject(deft_topo::VlLinkId {
            chiplet: c,
            index: mask.trailing_zeros() as u8,
            dir: VlDir::Down,
        });
        assert!(rc.flow_choices(&s, &f2, src, dst).is_empty());
    }
}
