//! # deft-routing — routing algorithms for 2.5D chiplet networks
//!
//! This crate implements the DeFT routing algorithm (Taheri et al., DATE
//! 2022) together with the two state-of-the-art baselines it is evaluated
//! against, the ablation variants from the paper's Fig. 8, and the analysis
//! machinery used by the evaluation:
//!
//! * [`DeftRouting`] — the paper's contribution: two-virtual-network (VN)
//!   deadlock freedom (Fig. 2 rules, Algorithm 1) plus fault-tolerant,
//!   load-balanced vertical-link selection (Eq. 1–7, Algorithm 2).
//! * [`MtrRouting`] — the modular-turn-restriction baseline (Yin et al.,
//!   ISCA 2018), modeled as facing-half VL eligibility (see `DESIGN.md`).
//! * [`RcRouting`] — the remote-control baseline (Majumder et al., IEEE TC
//!   2020) with designated boundary routers and store-and-forward
//!   RC-buffers.
//! * DeFT-Dis and DeFT-Ran VL-selection ablations via
//!   [`DeftRouting::distance_based`] and [`DeftRouting::random_selection`].
//! * [`cdg`] — channel-dependency-graph construction and cycle detection,
//!   used to *verify* (not just argue) deadlock freedom.
//! * [`reachability`] — the exact reachability engine behind the paper's
//!   Fig. 7 (average and worst case over all admissible fault scenarios).
//!
//! All algorithms implement [`RoutingAlgorithm`], the interface consumed by
//! the `deft-sim` cycle-accurate simulator.
//!
//! ## Data flow
//!
//! Topology and fault state come in from `deft-topo`; per-packet
//! decisions ([`RouteDecision`], [`RouteCtx`]) go out to `deft-sim`, and
//! per-flow analyses ([`FlowEligibility`], [`FlowChoice`]) feed the CDG
//! verifier and the reachability engine. [`RoutingAlgorithm`] is `Send`:
//! the `deft` crate's campaign runner builds one instance per run and
//! moves it onto a worker thread together with its simulator.
//!
//! ```
//! use deft_routing::{DeftRouting, RoutingAlgorithm};
//! use deft_topo::{ChipletSystem, FaultState, NodeId};
//!
//! # fn main() -> Result<(), deft_routing::RouteError> {
//! let sys = ChipletSystem::baseline_4();
//! let faults = FaultState::none(&sys);
//! let mut deft = DeftRouting::new(&sys);
//! // Inject a packet from core 0 (chiplet 0) to core 20 (chiplet 1).
//! let ctx = deft.on_inject(&sys, &faults, NodeId(0), NodeId(20), 0)?;
//! assert!(ctx.down_vl.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod cdg;
pub mod deft;
pub mod mtr;
pub mod rc;
pub mod reachability;
pub mod state;
pub mod xy;

pub use algorithm::{FlowChoice, FlowEligibility, RouteDecision, RouteError, RoutingAlgorithm};
pub use deft::{DeftRouting, SelectionLut, VlOptimizer, VlSelectionStrategy};
pub use mtr::MtrRouting;
pub use rc::RcRouting;
pub use state::{RouteCtx, Vn};
