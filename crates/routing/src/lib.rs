//! # deft-routing — routing algorithms for 2.5D chiplet networks
//!
//! This crate implements the DeFT routing algorithm (Taheri et al., DATE
//! 2022) together with the two state-of-the-art baselines it is evaluated
//! against, the ablation variants from the paper's Fig. 8, and the analysis
//! machinery used by the evaluation:
//!
//! * [`DeftRouting`] — the paper's contribution: two-virtual-network (VN)
//!   deadlock freedom (Fig. 2 rules, Algorithm 1) plus fault-tolerant,
//!   load-balanced vertical-link selection (Eq. 1–7, Algorithm 2).
//! * [`MtrRouting`] — the modular-turn-restriction baseline (Yin et al.,
//!   ISCA 2018), modeled as facing-half VL eligibility (see `DESIGN.md`).
//! * [`RcRouting`] — the remote-control baseline (Majumder et al., IEEE TC
//!   2020) with designated boundary routers and store-and-forward
//!   RC-buffers.
//! * DeFT-Dis and DeFT-Ran VL-selection ablations via
//!   [`DeftRouting::distance_based`] and [`DeftRouting::random_selection`].
//! * [`cdg`] — channel-dependency-graph construction and cycle detection,
//!   used to *verify* (not just argue) deadlock freedom.
//! * [`reachability`] — the exact reachability engine behind the paper's
//!   Fig. 7 (average and worst case over all admissible fault scenarios).
//!
//! All algorithms implement [`RoutingAlgorithm`], the interface consumed by
//! the `deft-sim` cycle-accurate simulator.
//!
//! ## Data flow
//!
//! Topology and fault state come in from `deft-topo`; per-packet
//! decisions ([`RouteDecision`], [`RouteCtx`]) go out to `deft-sim`, and
//! per-flow analyses ([`FlowEligibility`], [`FlowChoice`]) feed the CDG
//! verifier and the reachability engine. [`RoutingAlgorithm`] is `Send`:
//! the `deft` crate's campaign runner builds one instance per run and
//! moves it onto a worker thread together with its simulator.
//!
//! ## Hot-path allocation audit
//!
//! [`RoutingAlgorithm::on_inject`] and [`RoutingAlgorithm::route`] run
//! once per packet and once per head-flit hop respectively, inside the
//! simulator's innermost loop, and are **allocation-free** for every
//! algorithm in this crate:
//!
//! * shared per-hop machinery ([`algorithm::next_direction`], `xy`) works
//!   on `Copy` coordinates and the topology's flat adjacency/address
//!   tables;
//! * DeFT's optimized selection is a LUT read addressed by precomputed
//!   chiplet-local router indices; DeFT-Ran selects the *k*-th healthy
//!   bit directly from the mask instead of collecting candidates;
//! * MTR/RC designation works on bitmasks and `min_by_key` over the
//!   chiplet's VL slice.
//!
//! Fault-state probes on these paths are O(1)
//! [`deft_topo::FaultState::healthy_mask`] bitmask tests. For
//! link-granular consumers — e.g. the simulator's stranded-worm check at
//! fault transitions — `deft-topo` additionally maintains a dense
//! per-link view ([`deft_topo::FaultState::is_faulty_id`] keyed by
//! [`deft_topo::LinkId`]), one bit probe per query. The analysis-side
//! methods ([`RoutingAlgorithm::flow_choices`],
//! [`RoutingAlgorithm::eligibility`]) may allocate — they run per flow,
//! not per flit.
//!
//! ```
//! use deft_routing::{DeftRouting, RoutingAlgorithm};
//! use deft_topo::{ChipletSystem, FaultState, NodeId};
//!
//! # fn main() -> Result<(), deft_routing::RouteError> {
//! let sys = ChipletSystem::baseline_4();
//! let faults = FaultState::none(&sys);
//! let mut deft = DeftRouting::new(&sys);
//! // Inject a packet from core 0 (chiplet 0) to core 20 (chiplet 1).
//! let ctx = deft.on_inject(&sys, &faults, NodeId(0), NodeId(20), 0)?;
//! assert!(ctx.down_vl.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod cdg;
pub mod deft;
pub mod mtr;
pub mod rc;
pub mod reachability;
pub mod state;
pub mod xy;

pub use algorithm::{FlowChoice, FlowEligibility, RouteDecision, RouteError, RoutingAlgorithm};
pub use deft::{DeftRouting, SelectionLut, VlOptimizer, VlSelectionStrategy};
pub use mtr::MtrRouting;
pub use rc::RcRouting;
pub use state::{RouteCtx, Vn};
