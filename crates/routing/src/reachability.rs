//! Exact reachability analysis under vertical-link faults (paper Fig. 7).
//!
//! Reachability is "the ratio of packets that can be successfully routed to
//! the total number of injected packets" (§IV-C). Under uniform traffic
//! this equals the fraction of (source, destination) pairs that remain
//! routable, so instead of simulating every fault pattern we compute it
//! exactly:
//!
//! * a flow is routable iff each of its vertical traversals retains at
//!   least one healthy *eligible* VL ([`RoutingAlgorithm::eligibility`]);
//! * flows collapse into a few hundred *classes* keyed by their eligible
//!   sets;
//! * **average** reachability over all admissible `k`-fault scenarios is
//!   obtained by counting, per class, the scenarios that kill it
//!   (inclusion–exclusion over the down and up legs, with a
//!   per-(chiplet, direction)-group convolution DP);
//! * **worst-case** reachability is an exact branch-and-bound search over
//!   per-group fault masks, restricted to the dominance-closed "useful"
//!   masks (unions of eligible sets);
//! * scenarios that disconnect a chiplet (a group fully faulty) are
//!   excluded throughout, exactly as in the paper.
//!
//! A seeded Monte-Carlo estimator cross-checks the exact results.

use crate::algorithm::RoutingAlgorithm;
use deft_topo::{ChipletId, ChipletSystem, FaultState, ScenarioSampler, VlDir};
use std::collections::HashMap;

/// `n choose r` as `u128`.
fn binomial(n: u64, r: u64) -> u128 {
    if r > n {
        return 0;
    }
    let r = r.min(n - r);
    let mut acc: u128 = 1;
    for i in 0..r {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc
}

/// One equivalence class of flows: all (src, dst) pairs with identical
/// eligible-VL requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FlowClass {
    /// `(group index, eligible mask)` for the down leg.
    down: Option<(usize, u8)>,
    /// `(group index, eligible mask)` for the up leg.
    up: Option<(usize, u8)>,
}

/// Exact reachability engine for one (system, routing algorithm) pair.
///
/// Group indexing: chiplet `c`'s down links form group `2c`, its up links
/// group `2c + 1`.
#[derive(Debug, Clone)]
pub struct ReachabilityEngine {
    group_sizes: Vec<usize>,
    classes: Vec<(FlowClass, u64)>,
    total_flows: u64,
}

impl ReachabilityEngine {
    /// Collapses every ordered (src, dst) pair of `sys` into flow classes
    /// according to `alg`'s eligibility.
    pub fn new(sys: &ChipletSystem, alg: &dyn RoutingAlgorithm) -> Self {
        let mut group_sizes = Vec::with_capacity(sys.chiplet_count() * 2);
        for c in sys.chiplets() {
            group_sizes.push(c.vl_count()); // down group 2c
            group_sizes.push(c.vl_count()); // up group 2c + 1
        }
        let mut counts: HashMap<FlowClass, u64> = HashMap::new();
        let mut total = 0u64;
        for src in sys.nodes() {
            for dst in sys.nodes() {
                if src == dst {
                    continue;
                }
                total += 1;
                let el = alg.eligibility(sys, src, dst);
                let class = FlowClass {
                    down: el.down.map(|(c, m)| (2 * c.index(), m)),
                    up: el.up.map(|(c, m)| (2 * c.index() + 1, m)),
                };
                *counts.entry(class).or_insert(0) += 1;
            }
        }
        let mut classes: Vec<(FlowClass, u64)> = counts.into_iter().collect();
        classes.sort_by_key(|(c, _)| (c.down, c.up));
        Self {
            group_sizes,
            classes,
            total_flows: total,
        }
    }

    /// Number of distinct flow classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total ordered flows.
    pub fn total_flows(&self) -> u64 {
        self.total_flows
    }

    /// Counts admissible `k`-fault scenarios that contain all links of the
    /// `forced` per-group masks. `forced` holds `(group, popcount)` pairs
    /// for distinct groups. "Admissible" = no group fully faulty.
    fn count_scenarios(&self, forced: &[(usize, u32)], k: usize) -> u128 {
        let mut ways = vec![0u128; k + 1];
        ways[0] = 1;
        for (g, &size) in self.group_sizes.iter().enumerate() {
            let f = forced
                .iter()
                .find(|&&(fg, _)| fg == g)
                .map(|&(_, n)| n as usize)
                .unwrap_or(0);
            if f >= size && size > 0 && f == size {
                // Forcing a full group contradicts admissibility.
                return 0;
            }
            let mut next = vec![0u128; k + 1];
            for (j, &w) in ways.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                for t in f..size {
                    if j + t > k {
                        break;
                    }
                    next[j + t] += w * binomial((size - f) as u64, (t - f) as u64);
                }
            }
            ways = next;
        }
        ways[k]
    }

    /// The number of admissible scenarios with exactly `k` faults.
    pub fn admissible_scenarios(&self, k: usize) -> u128 {
        self.count_scenarios(&[], k)
    }

    /// Exact **average** reachability over all admissible `k`-fault
    /// scenarios (the `-Avg.` curves of Fig. 7).
    pub fn average(&self, k: usize) -> f64 {
        let n_total = self.count_scenarios(&[], k);
        if n_total == 0 {
            return 1.0;
        }
        let mut fail_weight: f64 = 0.0;
        for &(class, count) in &self.classes {
            let a = match class.down {
                Some((g, m)) => self.count_scenarios(&[(g, m.count_ones())], k),
                None => 0,
            };
            let b = match class.up {
                Some((g, m)) => self.count_scenarios(&[(g, m.count_ones())], k),
                None => 0,
            };
            let c = match (class.down, class.up) {
                (Some((gd, md)), Some((gu, mu))) => {
                    self.count_scenarios(&[(gd, md.count_ones()), (gu, mu.count_ones())], k)
                }
                _ => 0,
            };
            let killed = a + b - c;
            fail_weight += count as f64 * (killed as f64 / n_total as f64);
        }
        1.0 - fail_weight / self.total_flows as f64
    }

    /// The fraction of flows routable under one concrete fault state.
    pub fn reachability_under(&self, _sys: &ChipletSystem, faults: &FaultState) -> f64 {
        let healthy = |g: usize| -> u8 {
            let chiplet = ChipletId((g / 2) as u8);
            let dir = if g.is_multiple_of(2) {
                VlDir::Down
            } else {
                VlDir::Up
            };
            faults.healthy_mask(chiplet, dir, self.group_sizes[g])
        };
        let mut ok = 0u64;
        for &(class, count) in &self.classes {
            let down_ok = class.down.is_none_or(|(g, m)| m & healthy(g) != 0);
            let up_ok = class.up.is_none_or(|(g, m)| m & healthy(g) != 0);
            if down_ok && up_ok {
                ok += count;
            }
        }
        ok as f64 / self.total_flows as f64
    }

    /// Seeded Monte-Carlo estimate of average reachability; used to
    /// cross-check [`ReachabilityEngine::average`].
    pub fn monte_carlo(&self, sys: &ChipletSystem, k: usize, samples: usize, seed: u64) -> f64 {
        let mut sampler = ScenarioSampler::new(sys, k, seed);
        let mut acc = 0.0;
        for _ in 0..samples {
            let state = sampler.sample(sys);
            acc += self.reachability_under(sys, &state);
        }
        acc / samples as f64
    }

    /// Exact **worst-case** reachability over all admissible `k`-fault
    /// scenarios (the `-Wrst.` curves of Fig. 7): a branch-and-bound search
    /// for the adversarial fault placement.
    pub fn worst_case(&self, k: usize) -> f64 {
        let groups = self.group_sizes.len();
        // Candidate masks per group: dominance-closed unions of the
        // eligible sets appearing in that group, capped at size-1 bits
        // (admissibility), plus the empty mask.
        let mut eligible_sets: Vec<Vec<u8>> = vec![Vec::new(); groups];
        for &(class, _) in &self.classes {
            if let Some((g, m)) = class.down {
                if !eligible_sets[g].contains(&m) {
                    eligible_sets[g].push(m);
                }
            }
            if let Some((g, m)) = class.up {
                if !eligible_sets[g].contains(&m) {
                    eligible_sets[g].push(m);
                }
            }
        }
        let mut candidates: Vec<Vec<u8>> = Vec::with_capacity(groups);
        for (g, sets) in eligible_sets.iter().enumerate() {
            let limit = self.group_sizes[g] as u32 - 1;
            let mut masks: Vec<u8> = vec![0];
            for subset in 1u32..(1 << sets.len()) {
                let mut m = 0u8;
                for (i, &s) in sets.iter().enumerate() {
                    if subset & (1 << i) != 0 {
                        m |= s;
                    }
                }
                if m.count_ones() <= limit && !masks.contains(&m) {
                    masks.push(m);
                }
            }
            candidates.push(masks);
        }

        // Per-group failure weight tables: fail_d[g][mask] = flows whose
        // down leg is killed by `mask` on group g (analogously fail_u).
        let table = |leg_of: &dyn Fn(&FlowClass) -> Option<(usize, u8)>| -> Vec<HashMap<u8, u64>> {
            let mut t: Vec<HashMap<u8, u64>> = vec![HashMap::new(); groups];
            for g in 0..groups {
                for &mask in &candidates[g] {
                    let mut w = 0u64;
                    for &(class, count) in &self.classes {
                        if let Some((cg, m)) = leg_of(&class) {
                            if cg == g && m & !mask == 0 {
                                w += count;
                            }
                        }
                    }
                    t[g].insert(mask, w);
                }
            }
            t
        };
        let fail_d = table(&|c: &FlowClass| c.down);
        let fail_u = table(&|c: &FlowClass| c.up);

        // Coupled classes (both legs) grouped by their up group, for the
        // overlap correction when assigning up-group masks.
        let mut coupled_by_up: Vec<Vec<(usize, u8, u8, u64)>> = vec![Vec::new(); groups];
        for &(class, count) in &self.classes {
            if let (Some((gd, md)), Some((gu, mu))) = (class.down, class.up) {
                coupled_by_up[gu].push((gd, md, mu, count));
            }
        }

        // DFS order: all down groups first, then all up groups, so that the
        // down mask of every coupled pair is already assigned when its up
        // group computes the overlap correction.
        let order: Vec<usize> = (0..groups)
            .filter(|g| g % 2 == 0)
            .chain((0..groups).filter(|g| g % 2 == 1))
            .collect();

        struct Dfs<'a> {
            order: &'a [usize],
            candidates: &'a [Vec<u8>],
            fail_d: &'a [HashMap<u8, u64>],
            fail_u: &'a [HashMap<u8, u64>],
            coupled_by_up: &'a [Vec<(usize, u8, u8, u64)>],
            assigned: Vec<u8>,
            best: u64,
        }
        impl Dfs<'_> {
            fn ub_rest(&self, pos: usize, budget: usize) -> u64 {
                self.order[pos..]
                    .iter()
                    .map(|&g| {
                        let t = if g.is_multiple_of(2) {
                            &self.fail_d[g]
                        } else {
                            &self.fail_u[g]
                        };
                        t.iter()
                            .filter(|(m, _)| m.count_ones() as usize <= budget)
                            .map(|(_, &w)| w)
                            .max()
                            .unwrap_or(0)
                    })
                    .sum()
            }

            fn run(&mut self, pos: usize, budget: usize, cur: u64) {
                if cur > self.best {
                    self.best = cur;
                }
                if pos == self.order.len() || budget == 0 {
                    return;
                }
                if cur + self.ub_rest(pos, budget) <= self.best {
                    return;
                }
                let g = self.order[pos];
                // Sort candidates by contribution, descending, to find good
                // incumbents early.
                let mut opts: Vec<u8> = self.candidates[g]
                    .iter()
                    .copied()
                    .filter(|m| (m.count_ones() as usize) <= budget)
                    .collect();
                let weight = |m: u8| -> u64 {
                    if g.is_multiple_of(2) {
                        *self.fail_d[g].get(&m).unwrap_or(&0)
                    } else {
                        *self.fail_u[g].get(&m).unwrap_or(&0)
                    }
                };
                opts.sort_by_key(|&m| std::cmp::Reverse(weight(m)));
                for m in opts {
                    let gain = if g.is_multiple_of(2) {
                        weight(m)
                    } else {
                        // Up group: add its failures, subtract the overlap
                        // with already-counted down failures.
                        let mut overlap = 0u64;
                        for &(gd, md, mu, count) in &self.coupled_by_up[g] {
                            if mu & !m == 0 && md & !self.assigned[gd] == 0 {
                                overlap += count;
                            }
                        }
                        weight(m) - overlap
                    };
                    self.assigned[g] = m;
                    self.run(pos + 1, budget - m.count_ones() as usize, cur + gain);
                    self.assigned[g] = 0;
                }
            }
        }

        let mut dfs = Dfs {
            order: &order,
            candidates: &candidates,
            fail_d: &fail_d,
            fail_u: &fail_u,
            coupled_by_up: &coupled_by_up,
            assigned: vec![0; groups],
            best: 0,
        };
        dfs.run(0, k, 0);
        1.0 - dfs.best as f64 / self.total_flows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeftRouting, MtrRouting, RcRouting};
    use deft_topo::FaultScenarios;

    fn sys() -> ChipletSystem {
        ChipletSystem::baseline_4()
    }

    #[test]
    fn deft_reaches_everything_under_any_admissible_faults() {
        let s = sys();
        let deft = DeftRouting::distance_based(&s);
        let eng = ReachabilityEngine::new(&s, &deft);
        for k in 1..=8 {
            assert_eq!(eng.average(k), 1.0, "DeFT average at k = {k}");
            assert_eq!(eng.worst_case(k), 1.0, "DeFT worst case at k = {k}");
        }
    }

    #[test]
    fn average_matches_brute_force_enumeration_small_k() {
        let s = sys();
        for alg in [
            Box::new(MtrRouting::new(&s)) as Box<dyn RoutingAlgorithm>,
            Box::new(RcRouting::new(&s)),
        ] {
            let eng = ReachabilityEngine::new(&s, alg.as_ref());
            for k in 1..=2 {
                let mut sum = 0.0;
                let mut n = 0u64;
                FaultScenarios::new(&s, k).for_each(&s, |state| {
                    sum += eng.reachability_under(&s, state);
                    n += 1;
                    true
                });
                let brute = sum / n as f64;
                let exact = eng.average(k);
                assert!(
                    (brute - exact).abs() < 1e-9,
                    "{}: k={k} brute={brute} exact={exact}",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn worst_case_matches_brute_force_small_k() {
        let s = sys();
        for alg in [
            Box::new(MtrRouting::new(&s)) as Box<dyn RoutingAlgorithm>,
            Box::new(RcRouting::new(&s)),
        ] {
            let eng = ReachabilityEngine::new(&s, alg.as_ref());
            for k in 1..=2 {
                let mut worst = 1.0f64;
                FaultScenarios::new(&s, k).for_each(&s, |state| {
                    worst = worst.min(eng.reachability_under(&s, state));
                    true
                });
                let exact = eng.worst_case(k);
                assert!(
                    (worst - exact).abs() < 1e-9,
                    "{}: k={k} brute={worst} exact={exact}",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn monte_carlo_agrees_with_exact_average() {
        let s = sys();
        let mtr = MtrRouting::new(&s);
        let eng = ReachabilityEngine::new(&s, &mtr);
        let exact = eng.average(4);
        let mc = eng.monte_carlo(&s, 4, 2000, 11);
        assert!((exact - mc).abs() < 0.01, "exact={exact} mc={mc}");
    }

    #[test]
    fn ordering_matches_the_paper() {
        // Fig. 7(a): DeFT >= MTR-Avg >= RC-Avg, and worst cases degrade
        // faster than averages.
        let s = sys();
        let deft = ReachabilityEngine::new(&s, &DeftRouting::distance_based(&s));
        let mtr = ReachabilityEngine::new(&s, &MtrRouting::new(&s));
        let rc = ReachabilityEngine::new(&s, &RcRouting::new(&s));
        for k in [2usize, 4, 6, 8] {
            let d = deft.average(k);
            let m = mtr.average(k);
            let r = rc.average(k);
            assert!(d >= m && m >= r, "k={k}: DeFT {d} >= MTR {m} >= RC {r}");
            assert!(mtr.worst_case(k) <= m);
            assert!(rc.worst_case(k) <= r);
        }
    }

    #[test]
    fn mtr_worst_case_tolerates_exactly_one_fault() {
        // With two VLs per facing half, one fault can always be dodged; two
        // adversarial faults kill a half.
        let s = sys();
        let eng = ReachabilityEngine::new(&s, &MtrRouting::new(&s));
        assert_eq!(eng.worst_case(1), 1.0);
        assert!(eng.worst_case(2) < 1.0);
    }

    #[test]
    fn rc_worst_case_tolerates_nothing() {
        let s = sys();
        let eng = ReachabilityEngine::new(&s, &RcRouting::new(&s));
        assert!(eng.worst_case(1) < 1.0);
    }

    #[test]
    fn fault_free_reachability_is_complete() {
        let s = sys();
        for alg in [
            Box::new(DeftRouting::distance_based(&s)) as Box<dyn RoutingAlgorithm>,
            Box::new(MtrRouting::new(&s)),
            Box::new(RcRouting::new(&s)),
        ] {
            let eng = ReachabilityEngine::new(&s, alg.as_ref());
            assert_eq!(eng.reachability_under(&s, &FaultState::none(&s)), 1.0);
        }
    }

    #[test]
    fn class_counts_cover_all_flows() {
        let s = sys();
        let eng = ReachabilityEngine::new(&s, &MtrRouting::new(&s));
        let n = s.node_count() as u64;
        assert_eq!(eng.total_flows(), n * (n - 1));
        assert!(eng.class_count() < 200, "classes stay compact");
    }
}
