//! The MTR baseline: modular turn restrictions (Yin et al., ISCA 2018).
//!
//! MTR breaks inter-chiplet cyclic dependencies by restricting some
//! inter-chiplet turns on the boundary routers. The *effect* the DeFT paper
//! measures is that each flow may only use a restricted subset of VLs and
//! cannot freely re-select under faults. Following `DESIGN.md` §3, we model
//! the restriction as **facing-half eligibility**: a flow may only descend
//! through the VLs in the half of the source chiplet facing the
//! (chiplet-level XY) direction of its destination, and may only ascend
//! through the VLs in the half of the destination chiplet facing its
//! source. With the pinwheel VL placement every half contains exactly two
//! VLs, so MTR tolerates at most one worst-case fault — matching the
//! paper's Fig. 7.

use crate::algorithm::{
    next_direction, FlowChoice, FlowEligibility, RouteDecision, RouteError, RoutingAlgorithm,
};
use crate::state::{RouteCtx, Vn};
use deft_topo::{ChipletId, ChipletSystem, Coord, Direction, FaultState, Layer, NodeId, VlDir};

/// The modular-turn-restriction routing baseline.
///
/// Inside the simulator MTR uses the same two VCs as DeFT (the paper's
/// fairness rule) but without DeFT's balanced VN assignment: packets stay in
/// VC0 until they ascend and use VC1 only on the destination chiplet, so VC
/// utilization is skewed — one of the two effects (besides VL selection)
/// behind DeFT's latency advantage in Fig. 4.
#[derive(Debug, Clone, Default)]
pub struct MtrRouting {
    _private: (),
}

impl MtrRouting {
    /// Creates the MTR baseline for `sys`.
    pub fn new(_sys: &ChipletSystem) -> Self {
        Self { _private: () }
    }

    /// Center of a chiplet's footprint in interposer coordinates (x2 to
    /// stay in integers).
    fn center_x2(sys: &ChipletSystem, c: ChipletId) -> (i32, i32) {
        let ch = sys.chiplet(c);
        let o = ch.origin();
        (
            2 * o.x as i32 + ch.width() as i32 - 1,
            2 * o.y as i32 + ch.height() as i32 - 1,
        )
    }

    /// The interposer-plane reference point of a node (x2): a chiplet
    /// node's chiplet center, or an interposer node's own coordinate.
    fn ref_point_x2(sys: &ChipletSystem, node: NodeId) -> (i32, i32) {
        match sys.layer(node) {
            Layer::Chiplet(c) => Self::center_x2(sys, c),
            Layer::Interposer => {
                let co = sys.addr(node).coord;
                (2 * co.x as i32, 2 * co.y as i32)
            }
        }
    }

    /// The VLs of `chiplet` lying in the half facing from the chiplet's
    /// center toward `target` (x priority, matching chiplet-level XY).
    /// Returns the full mask when the target sits directly under the
    /// chiplet center.
    fn facing_half_mask(sys: &ChipletSystem, chiplet: ChipletId, target_x2: (i32, i32)) -> u8 {
        let (cx, cy) = Self::center_x2(sys, chiplet);
        let dx = target_x2.0 - cx;
        let dy = target_x2.1 - cy;
        let ch = sys.chiplet(chiplet);
        let half = |pred: &dyn Fn(Coord) -> bool| -> u8 {
            let mut m = 0u8;
            for (i, vl) in ch.vertical_links().iter().enumerate() {
                if pred(vl.chiplet_coord) {
                    m |= 1 << i;
                }
            }
            m
        };
        let w = ch.width() as i32;
        let h = ch.height() as i32;
        if dx > 0 {
            half(&|c| 2 * c.x as i32 >= w - 1)
        } else if dx < 0 {
            half(&|c| 2 * (c.x as i32) < w - 1)
        } else if dy > 0 {
            half(&|c| 2 * c.y as i32 >= h - 1)
        } else if dy < 0 {
            half(&|c| 2 * (c.y as i32) < h - 1)
        } else {
            ((1u16 << ch.vl_count()) - 1) as u8
        }
    }

    /// The designated VL among the eligible healthy set: the lowest index.
    ///
    /// MTR's turn restrictions are computed at design time for the chiplet
    /// as a whole, so every router of a chiplet shares the same primary
    /// boundary router per direction rather than individually picking its
    /// nearest VL — routers far from the designated VL pay a small detour,
    /// which is part of MTR's latency gap to DeFT in the paper's Fig. 4/6.
    /// Under a fault the next eligible VL takes over (re-selection *within*
    /// the restricted set only).
    fn pick(
        _sys: &ChipletSystem,
        _chiplet: ChipletId,
        _router: NodeId,
        eligible_healthy: u8,
    ) -> Option<u8> {
        if eligible_healthy == 0 {
            None
        } else {
            Some(eligible_healthy.trailing_zeros() as u8)
        }
    }
}

impl RoutingAlgorithm for MtrRouting {
    fn name(&self) -> &str {
        "MTR"
    }

    // MTR carries no mutable run state (per-injection selection from a
    // fixed restricted set), so the default no-op save/load is exact; the
    // clone for a fork is likewise state-free but must still exist.
    fn fork_box(&self) -> Box<dyn RoutingAlgorithm> {
        Box::new(self.clone())
    }

    fn on_inject(
        &mut self,
        sys: &ChipletSystem,
        faults: &FaultState,
        src: NodeId,
        dst: NodeId,
        _seq: u64,
    ) -> Result<RouteCtx, RouteError> {
        let el = self.eligibility(sys, src, dst);
        let down_vl = match el.down {
            None => None,
            Some((c, mask)) => {
                let healthy = mask & faults.healthy_mask(c, VlDir::Down, sys.chiplet(c).vl_count());
                Some(Self::pick(sys, c, src, healthy).ok_or(RouteError::Unroutable { src, dst })?)
            }
        };
        let up_vl = match el.up {
            None => None,
            Some((c, mask)) => {
                let healthy = mask & faults.healthy_mask(c, VlDir::Up, sys.chiplet(c).vl_count());
                Some(Self::pick(sys, c, dst, healthy).ok_or(RouteError::Unroutable { src, dst })?)
            }
        };
        Ok(RouteCtx {
            vn: Vn::Vn0,
            down_vl,
            up_vl,
        })
    }

    fn route(
        &self,
        sys: &ChipletSystem,
        _faults: &FaultState,
        node: NodeId,
        dst: NodeId,
        ctx: &mut RouteCtx,
    ) -> RouteDecision {
        let dir = next_direction(sys, node, dst, ctx)
            .expect("route called on a packet already at its destination");
        let vn = match dir {
            Direction::Up => Vn::Vn1,
            _ => ctx.vn,
        };
        ctx.vn = vn;
        RouteDecision { dir, vn }
    }

    fn eligibility(&self, sys: &ChipletSystem, src: NodeId, dst: NodeId) -> FlowEligibility {
        let src_layer = sys.layer(src);
        let dst_layer = sys.layer(dst);
        let down = match src_layer {
            Layer::Chiplet(c) if dst_layer != Layer::Chiplet(c) => Some((
                c,
                Self::facing_half_mask(sys, c, Self::ref_point_x2(sys, dst)),
            )),
            _ => None,
        };
        let up = match dst_layer {
            Layer::Chiplet(c) if src_layer != Layer::Chiplet(c) => Some((
                c,
                Self::facing_half_mask(sys, c, Self::ref_point_x2(sys, src)),
            )),
            _ => None,
        };
        FlowEligibility { down, up }
    }

    fn flow_choices(
        &self,
        sys: &ChipletSystem,
        faults: &FaultState,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<FlowChoice> {
        if src == dst {
            return Vec::new();
        }
        let el = self.eligibility(sys, src, dst);
        let down_opts: Vec<Option<u8>> = match el.down {
            None => vec![None],
            Some((c, mask)) => {
                let healthy = mask & faults.healthy_mask(c, VlDir::Down, sys.chiplet(c).vl_count());
                (0..8)
                    .filter(|&v| healthy & (1 << v) != 0)
                    .map(Some)
                    .collect()
            }
        };
        let up_opts: Vec<Option<u8>> = match el.up {
            None => vec![None],
            Some((c, mask)) => {
                let healthy = mask & faults.healthy_mask(c, VlDir::Up, sys.chiplet(c).vl_count());
                (0..8)
                    .filter(|&v| healthy & (1 << v) != 0)
                    .map(Some)
                    .collect()
            }
        };
        if down_opts.is_empty() || up_opts.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for &down_vl in &down_opts {
            for &up_vl in &up_opts {
                out.push(FlowChoice {
                    down_vl,
                    up_vl,
                    vn_source: Vn::Vn0,
                    vn_after_down: Vn::Vn0,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_topo::NodeAddr;

    fn sys() -> ChipletSystem {
        ChipletSystem::baseline_4()
    }

    fn node(s: &ChipletSystem, layer: Layer, x: u8, y: u8) -> NodeId {
        s.node_id(NodeAddr::new(layer, Coord::new(x, y)))
            .expect("valid addr")
    }

    #[test]
    fn facing_half_has_two_vls_on_pinwheel_chiplets() {
        let s = sys();
        let mtr = MtrRouting::new(&s);
        // Chiplet 0 (southwest) to chiplet 1 (southeast): x direction.
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 1, 1);
        let el = mtr.eligibility(&s, src, dst);
        let (c, mask) = el.down.unwrap();
        assert_eq!(c, ChipletId(0));
        assert_eq!(
            mask.count_ones(),
            2,
            "facing half must contain exactly 2 VLs"
        );
        // The eligible VLs are the east-half ones: pinwheel VLs 1 (3,2) and 2 (2,0).
        assert_eq!(mask, 0b0110);
    }

    #[test]
    fn up_eligibility_faces_the_source() {
        let s = sys();
        let mtr = MtrRouting::new(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(2)), 1, 1); // chiplet 2 is north of 0
        let el = mtr.eligibility(&s, src, dst);
        let (c, mask) = el.up.unwrap();
        assert_eq!(c, ChipletId(2));
        // South half of chiplet 2 faces chiplet 0: pinwheel VLs 2 (2,0) and 3 (0,1).
        assert_eq!(mask, 0b1100);
    }

    #[test]
    fn mtr_tolerates_one_fault_in_the_facing_half() {
        let s = sys();
        let mut mtr = MtrRouting::new(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 1, 1);
        let mut f = FaultState::none(&s);
        f.inject(deft_topo::VlLinkId {
            chiplet: ChipletId(0),
            index: 1,
            dir: VlDir::Down,
        });
        let ctx = mtr.on_inject(&s, &f, src, dst, 0).unwrap();
        assert_eq!(ctx.down_vl, Some(2), "re-selects the other facing-half VL");
        // Kill the second one: flow dies even though the west half is healthy.
        f.inject(deft_topo::VlLinkId {
            chiplet: ChipletId(0),
            index: 2,
            dir: VlDir::Down,
        });
        assert!(matches!(
            mtr.on_inject(&s, &f, src, dst, 0),
            Err(RouteError::Unroutable { .. })
        ));
    }

    #[test]
    fn mtr_stays_in_vn0_until_ascending() {
        let s = sys();
        let f = FaultState::none(&s);
        let mut mtr = MtrRouting::new(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 0, 0);
        let dst = node(&s, Layer::Chiplet(ChipletId(3)), 3, 3);
        let mut ctx = mtr.on_inject(&s, &f, src, dst, 0).unwrap();
        assert_eq!(ctx.vn, Vn::Vn0);
        let mut cur = src;
        let mut ascended = false;
        while cur != dst {
            let d = mtr.route(&s, &f, cur, dst, &mut ctx);
            if d.dir == Direction::Up {
                ascended = true;
            }
            assert_eq!(d.vn, if ascended { Vn::Vn1 } else { Vn::Vn0 });
            cur = s.neighbor(cur, d.dir).unwrap();
        }
        assert!(ascended);
    }

    #[test]
    fn intra_chiplet_flows_have_no_vl_constraint() {
        let s = sys();
        let mtr = MtrRouting::new(&s);
        let a = node(&s, Layer::Chiplet(ChipletId(0)), 0, 0);
        let b = node(&s, Layer::Chiplet(ChipletId(0)), 3, 3);
        let el = mtr.eligibility(&s, a, b);
        assert_eq!(el.down, None);
        assert_eq!(el.up, None);
    }

    #[test]
    fn interposer_destinations_use_dominant_axis() {
        let s = sys();
        let mtr = MtrRouting::new(&s);
        let src = node(&s, Layer::Chiplet(ChipletId(0)), 1, 1);
        // Interposer node far east of chiplet 0's center.
        let dst = node(&s, Layer::Interposer, 7, 1);
        let el = mtr.eligibility(&s, src, dst);
        let (_, mask) = el.down.unwrap();
        assert_eq!(mask, 0b0110, "east half");
        assert_eq!(el.up, None);
    }

    #[test]
    fn selection_is_the_designated_lowest_index_vl() {
        let s = sys();
        let mut mtr = MtrRouting::new(&s);
        let f = FaultState::none(&s);
        // Chiplet 0 going east: eligible VLs 1 (3,2) and 2 (2,0); the
        // design-time designation is the lowest index, VL 1, for *every*
        // router of the chiplet.
        let dst = node(&s, Layer::Chiplet(ChipletId(1)), 0, 0);
        for src_coord in [(3u8, 3u8), (0, 0), (2, 1)] {
            let src = node(&s, Layer::Chiplet(ChipletId(0)), src_coord.0, src_coord.1);
            let ctx = mtr.on_inject(&s, &f, src, dst, 0).unwrap();
            assert_eq!(ctx.down_vl, Some(1), "src {src_coord:?}");
        }
    }
}
