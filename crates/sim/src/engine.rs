//! The cycle loop: a two-phase update so results are independent of router
//! iteration order.
//!
//! Each cycle:
//! 1. **Generation** — Bernoulli packet generation per node; unroutable
//!    flows are counted and dropped at the source (reachability accounting,
//!    paper §IV-C).
//! 2. **Route computation + VC allocation** — head flits at buffer fronts
//!    get their output (port, VC) from the routing algorithm exactly once
//!    per router, then claim the downstream VC (one worm per VC).
//! 3. **Switch allocation** — round-robin, one flit per input port and per
//!    output port per cycle, gated by credits.
//! 4. **Commit** — winners move one hop (1 cycle/hop), credits flow back,
//!    tails release their VC, ejected tails record latency.
//! 5. **Injection** — one flit per cycle trickles from each source queue
//!    into the local input buffer of the packet's VN.
//!
//! A watchdog flags deadlock when flits are buffered but nothing has moved
//! for [`SimConfig::deadlock_threshold`] cycles — with DeFT this never
//! fires (the CDG is acyclic); it exists to catch routing bugs and to
//! demonstrate what happens without VN separation.
//!
//! ## Flat SoA state, lane-batched scans, idle-cycle skipping
//!
//! The data plane is allocation- and copy-free per flit: packets live as
//! descriptors in a slab arena ([`crate::PacketArena`]) and buffers are
//! segment rings in which body/tail flits are implicit — a flit-hop is a
//! counter decrement upstream plus at most one segment write downstream.
//! Every hot per-router field lives in one flat structure-of-arrays
//! [`NetState`] (packed occupancy words, dense slot tables, one segment
//! arena — see `state`), so the per-cycle phases sweep contiguous memory.
//!
//! Phases 2–3 are *lane-batched*: the per-router occupancy masks are
//! packed four routers per `u64` word, and both phases walk set bits with
//! `trailing_zeros` — whole words first (four routers skipped per branch
//! when idle), then slots within a router's 16-bit lane. Bit-ascending is
//! router-ascending and, within a router, port-major VC-minor — exactly
//! the legacy dense scan order, which together with the two-phase update
//! makes the schedule byte-identical to a dense scan. When the network is
//! provably idle the clock jumps straight to the next scheduled event
//! (next possible arrival, fault transition, or window boundary) instead
//! of ticking — see [`TrafficPattern::next_arrival_at_or_after`];
//! stochastic patterns disable this so their RNG streams stay
//! cycle-exact. A reference dense implementation that ticks every cycle
//! remains available as [`Simulator::run_dense_reference`] and
//! differential tests pin the equivalence. See `ARCHITECTURE.md` ("Hot
//! path & data layout") for the invariants.

use crate::config::SimConfig;
use crate::flit::{PacketArena, PacketId, PacketInfo};
use crate::router::{
    arrival_port, port_of, slot_of, PORT_COUNT, PORT_LOCAL, PORT_VERTICAL, SLOT_COUNT, VC_COUNT,
};
use crate::state::{NetState, OCC_LANES, OCC_LANE_BITS};
use crate::stats::{EpochStats, LatencyHistogram, Region, SimReport, VcUsage};
use deft_codec::{CodecError, Decoder, Encoder, Persist, SnapshotReader, SnapshotWriter};
use deft_routing::RoutingAlgorithm;
use deft_topo::{
    ChipletSystem, Direction, FaultState, FaultTimeline, Layer, NodeId, TickPartition,
    TimelineCursor, VlDir, VlLinkId,
};
use deft_traffic::TrafficPattern;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::ops::Range;
use std::sync::Barrier;
use std::time::Instant;

/// One switch-allocation winner, applied in the commit phase.
///
/// `packet`/`fidx` identify the flit that will pop: each ring pops at
/// most once per cycle (one grant per input port) and pushes only append,
/// so the ring front observed at allocation time *is* the committed flit.
/// The parallel commit relies on this — a worker applying the push side
/// of a move it does not pop reads the flit from the move itself, never
/// from another shard's ring.
#[derive(Debug, Clone, Copy)]
struct Move {
    router: usize,
    in_port: u8,
    in_vc: u8,
    out_port: u8,
    out_vc: u8,
    packet: PacketId,
    fidx: u32,
}

/// Per-node source queue: packets wait here (unbounded, as in Noxim) and
/// trickle into the local input port one flit per cycle.
#[derive(Debug, Default, Clone)]
struct Source {
    queue: VecDeque<PacketId>,
    flits_sent: usize,
}

/// Running accumulators of the current fault epoch (the window since the
/// last timeline transition). Converted into an [`EpochStats`] when the
/// epoch closes.
#[derive(Debug, Default, Clone)]
struct EpochAccum {
    start: u64,
    faulty_links: usize,
    generated: u64,
    delivered: u64,
    dropped_unroutable: u64,
    lost_in_flight: u64,
    latency_sum: u64,
    last_drop: Option<u64>,
}

impl EpochAccum {
    /// Opens a fresh epoch at `cycle` under `faulty_links` faults.
    fn open(cycle: u64, faulty_links: usize) -> Self {
        Self {
            start: cycle,
            faulty_links,
            ..Self::default()
        }
    }

    /// Closes the epoch at `end` (exclusive).
    fn close(&self, end: u64) -> EpochStats {
        EpochStats {
            start_cycle: self.start,
            end_cycle: end,
            faulty_links: self.faulty_links,
            generated: self.generated,
            delivered: self.delivered,
            dropped_unroutable: self.dropped_unroutable,
            lost_in_flight: self.lost_in_flight,
            latency_sum: self.latency_sum,
            last_drop_cycle: self.last_drop,
        }
    }
}

impl Persist for EpochAccum {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.start);
        enc.put_usize(self.faulty_links);
        enc.put_u64(self.generated);
        enc.put_u64(self.delivered);
        enc.put_u64(self.dropped_unroutable);
        enc.put_u64(self.lost_in_flight);
        enc.put_u64(self.latency_sum);
        self.last_drop.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            start: dec.get_u64()?,
            faulty_links: dec.get_usize()?,
            generated: dec.get_u64()?,
            delivered: dec.get_u64()?,
            dropped_unroutable: dec.get_u64()?,
            lost_in_flight: dec.get_u64()?,
            latency_sum: dec.get_u64()?,
            last_drop: Option::<u64>::decode(dec)?,
        })
    }
}

/// One cross-shard aspect of a [`Move`], bucketed by its producer for the
/// consuming shard: the credit return (upstream router foreign to the
/// producer) and/or the downstream push (downstream router foreign). Both
/// aspects of one move share an entry when they land on the same foreign
/// shard.
#[derive(Debug, Clone, Copy)]
struct BucketEntry {
    m: Move,
    credit: bool,
    push: bool,
}

/// Scratch and control state of the partitioned parallel tick. Built
/// lazily on the first parallel `step_until`, never snapshotted or
/// forked: it is host-execution machinery with no simulated state.
///
/// ## Ownership model (the safety contract of the parallel phases)
///
/// Worker `s` owns the routers of `partition.shards()[s]` — a contiguous
/// index range. During a phase, every *write* a worker performs lands in
/// state owned by its shard:
///
/// * **Phase A** (route + VC alloc + switch alloc) writes only slot-table
///   entries of the shard's own routers, plus `packets[pid].ctx` for
///   heads buffered in the shard — a packet's head flit sits at the front
///   of exactly one ring, so those writes are disjoint across workers.
///   The packed occupancy words are only *read* during phase A.
///   Routing-algorithm interior state is per-node atomics (see
///   `RoutingAlgorithm`).
/// * **Phase B** applies each move's aspects on the worker owning the
///   affected router: worker `s` sweeps its own move list (pop side —
///   `m.router` is always shard-local, asserted in phase A) plus the
///   buckets other shards addressed to it (credit returns whose upstream
///   router it owns, pushes whose downstream router it owns), in
///   producer-shard-major, move-ascending order — exactly the serial
///   commit's per-location operation order. Every location is written by
///   exactly one worker; cross-shard wiring *reads* go through the
///   immutable flat link tables. Ring pushes/pops use the raw (occupancy
///   -blind) ops: a `u64` occupancy word packs four routers and may
///   straddle a shard boundary, so the touched occupancy bits are
///   re-derived serially in the postlude instead.
///
/// Everything order-sensitive or RNG-consuming — generation, injection,
/// ejection statistics, packet release (the arena free list is LIFO),
/// occupancy repair — stays on the main thread between phases.
struct ParTick {
    /// The chiplet-aligned shard map: disjoint, covering, contiguous
    /// (re-asserted when the engine adopts it).
    partition: TickPartition,
    /// Dense node → owning-shard table (avoids per-move binary searches
    /// when bucketing cross-shard aspects).
    node_shard: Vec<u16>,
    /// Per-shard switch-allocation winners; concatenated in shard order
    /// they form the cycle's canonical move list. Shard `s`'s list holds
    /// only moves of its own routers.
    moves: Vec<Vec<Move>>,
    /// Cross-shard aspect buckets, indexed `[producer * k + consumer]`:
    /// written by the producing worker during phase A (its own row),
    /// swept by the consuming worker during phase B.
    buckets: Vec<Vec<BucketEntry>>,
    /// Per-worker local-delivery records `(global move key, packet, flit
    /// index)`, applied serially in key order after the commit barrier.
    eject: Vec<Vec<(u64, PacketId, u32)>>,
    /// Merge scratch for the ejection records.
    eject_all: Vec<(u64, PacketId, u32)>,
    /// Per-worker per-region VC-usage accumulators (region 0, the
    /// interposer, spans shards — sums are merged serially).
    usage: Vec<Vec<VcUsage>>,
    /// Tells parked workers to exit the pool; written by the main thread
    /// before the phase-A barrier, read by workers right after it.
    exit: bool,
}

/// Raw simulator handle shared with the worker pool.
///
/// The pool's synchronization is three [`Barrier`]s per cycle; between a
/// worker's barrier waits it accesses the simulator only through this
/// pointer and only per the [`ParTick`] ownership model, and while
/// workers are parked at a barrier the main thread is the sole accessor.
/// Barrier waits establish happens-before in both directions, so no
/// location is ever accessed concurrently by two threads.
#[derive(Clone, Copy)]
struct SimShare<'a>(*mut Simulator<'a>);
// SAFETY: see the type-level docs — the barrier protocol plus the shard
// ownership model make every access exclusive per memory location.
unsafe impl Send for SimShare<'_> {}
unsafe impl Sync for SimShare<'_> {}

/// A cycle-accurate simulation of one (system, faults, algorithm, pattern)
/// configuration. Create with [`Simulator::new`], run with
/// [`Simulator::run`].
pub struct Simulator<'a> {
    sys: &'a ChipletSystem,
    faults: FaultState,
    alg: Box<dyn RoutingAlgorithm + 'a>,
    pattern: &'a dyn TrafficPattern,
    cfg: SimConfig,
    /// The flat structure-of-arrays network state (see `state`).
    net: NetState,
    packets: PacketArena,
    sources: Vec<Source>,
    inject_seq: Vec<u64>,
    rng: SmallRng,
    /// Pending fault-timeline events, when the run is timeline-driven.
    timeline: Option<TimelineCursor<'a>>,
    // Flat per-node tables, precomputed at setup so the commit path indexes
    // arrays instead of mapping node → layer/VL on every flit.
    /// node → statistics-region index (0 = interposer, `1 + c` = chiplet
    /// `c` — the sort order of [`Region`]).
    region_of: Vec<u16>,
    /// node → flat slot in `vl_flits` of the unidirectional VL crossed by
    /// a flit leaving the node vertically (`u32::MAX` for non-VL nodes).
    vl_stat_slot: Vec<u32>,
    /// Downstream wiring: `links_out[node][port]` = (downstream router
    /// index, downstream input port), immutable after setup. `None` for
    /// Local and absent links. The parallel commit reads wiring of
    /// *foreign* routers through this table so it never touches another
    /// shard's state.
    links_out: Vec<[Option<(u32, u8)>; PORT_COUNT]>,
    /// Upstream wiring used to return credits (see `links_out`).
    links_in: Vec<[Option<(u32, u8)>; PORT_COUNT]>,
    /// Reusable switch-allocation move buffer (no per-cycle allocation).
    move_scratch: Vec<Move>,
    /// Total buffered flits across the network.
    total_flits: u64,
    /// Packets waiting in source queues (a partially-injected front packet
    /// counts until its tail leaves).
    packets_queued: u64,
    // Statistics.
    generated_total: u64,
    dropped_unroutable: u64,
    lost_in_flight: u64,
    injected_measured: u64,
    delivered_measured: u64,
    latency_sum: u64,
    latency_max: u64,
    lat_hist: LatencyHistogram,
    /// Earliest cycle each router's vertical output may send again
    /// (vertical-link serialization).
    vl_next_free: Vec<u64>,
    /// Per-region VC write counters, indexed by `region_of`.
    vc_usage: Vec<VcUsage>,
    /// Per-unidirectional-VL flit counters: slot `2·s` = up half, `2·s+1`
    /// = down half of `sys.vertical_links()[s]`.
    vl_flits: Vec<u64>,
    epoch: EpochAccum,
    epochs: Vec<EpochStats>,
    // Stepping state: the cycle loop's former locals, hoisted into fields
    // so a run can pause at any top-of-cycle boundary — the *pause point*
    // — and continue later ([`advance_to`](Self::advance_to)), serialize
    // itself ([`snapshot`](Self::snapshot)), or branch
    // ([`fork`](Self::fork)).
    /// The next cycle to simulate.
    cycle: u64,
    /// Last cycle on which anything moved (deadlock-watchdog reference).
    last_progress: u64,
    /// Whether the watchdog has fired.
    deadlocked: bool,
    /// Whether the run has begun ([`run`](Self::run) or
    /// [`start`](Self::start)).
    started: bool,
    /// Idle-cycle skipping enabled (true) vs the dense tick-every-cycle
    /// reference. The word-scan phases are identical in both modes — an
    /// empty router is a no-op either way — so the modes differ only in
    /// whether provably-idle stretches are skipped.
    active_mode: bool,
    /// Whether the run has reached one of its end conditions.
    done: bool,
    /// Parallel-tick shards and scratch (`None` until a parallel
    /// `step_until` first needs it; never snapshotted).
    par: Option<Box<ParTick>>,
    /// Per-phase wall-time accumulator (`None` — and zero overhead — by
    /// default; see [`Simulator::enable_phase_profile`]).
    profile: Option<Box<PhaseProfile>>,
}

/// Cumulative serial-loop wall time per engine phase, in nanoseconds.
/// Collected only after [`Simulator::enable_phase_profile`]; the
/// unprofiled loop takes no timestamps. Host measurement state: never
/// snapshotted, forked, or compared.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseProfile {
    /// Phase 2: route computation + VC allocation.
    pub route_ns: u64,
    /// Phase 3: switch allocation.
    pub switch_ns: u64,
    /// Phase 4: commit (flit movement, credits, ejection stats).
    pub commit_ns: u64,
    /// Everything else in the cycle body: generation and injection.
    pub postlude_ns: u64,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator. The routing algorithm is boxed because it carries
    /// per-run mutable state (round-robin counters, RNGs).
    ///
    /// # Panics
    /// Panics if `cfg` is invalid (see [`SimConfig::validate`]).
    pub fn new(
        sys: &'a ChipletSystem,
        faults: FaultState,
        alg: Box<dyn RoutingAlgorithm + 'a>,
        pattern: &'a dyn TrafficPattern,
        cfg: SimConfig,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            cfg.vc_count, VC_COUNT,
            "router layout is compiled for {VC_COUNT} VCs"
        );
        let n = sys.node_count();
        // Per-slot buffer capacities, fixed before the flat state is
        // built: RC's store-and-forward needs the boundary router's
        // vertical input buffer (the RC-buffer) to hold a whole packet.
        let mut caps = vec![cfg.buffer_depth; n * SLOT_COUNT];
        if alg.store_and_forward_up() {
            for vl in sys.vertical_links() {
                for vc in 0..VC_COUNT as u8 {
                    let k = vl.chiplet_node.index() * SLOT_COUNT + slot_of(PORT_VERTICAL, vc);
                    caps[k] = caps[k].max(cfg.packet_size);
                }
            }
        }
        let mut net = NetState::new(&caps);

        // Wire links and credits.
        let mut links_out = vec![[None; PORT_COUNT]; n];
        let mut links_in = vec![[None; PORT_COUNT]; n];
        for node in sys.nodes() {
            for dir in Direction::ALL {
                let Some(nbr) = sys.neighbor(node, dir) else {
                    continue;
                };
                let out = port_of(dir) as usize;
                let inp = arrival_port(dir);
                links_out[node.index()][out] = Some((nbr.0, inp));
                links_in[nbr.index()][inp as usize] = Some((node.0, out as u8));
            }
        }
        for (i, row) in links_out.iter().enumerate() {
            for (out, link) in row.iter().enumerate() {
                if let Some((d, dp)) = link {
                    for vc in 0..VC_COUNT as u8 {
                        net.credits[i * SLOT_COUNT + out * VC_COUNT + vc as usize] =
                            caps[*d as usize * SLOT_COUNT + slot_of(*dp, vc)] as u32;
                    }
                }
            }
        }

        let initial_faults = faults.faulty_count();
        let region_of: Vec<u16> = sys
            .nodes()
            .map(|node| match sys.layer(node) {
                Layer::Interposer => 0u16,
                Layer::Chiplet(c) => 1 + c.0 as u16,
            })
            .collect();
        let mut vl_stat_slot = vec![u32::MAX; n];
        for (s, vl) in sys.vertical_links().iter().enumerate() {
            vl_stat_slot[vl.interposer_node.index()] = 2 * s as u32;
            vl_stat_slot[vl.chiplet_node.index()] = 2 * s as u32 + 1;
        }
        Self {
            sys,
            faults,
            alg,
            pattern,
            cfg,
            net,
            packets: PacketArena::new(),
            sources: (0..n).map(|_| Source::default()).collect(),
            inject_seq: vec![0; n],
            rng: SmallRng::seed_from_u64(cfg.seed),
            timeline: None,
            region_of,
            vl_stat_slot,
            links_out,
            links_in,
            move_scratch: Vec::new(),
            total_flits: 0,
            packets_queued: 0,
            generated_total: 0,
            dropped_unroutable: 0,
            lost_in_flight: 0,
            injected_measured: 0,
            delivered_measured: 0,
            latency_sum: 0,
            latency_max: 0,
            lat_hist: LatencyHistogram::new(),
            vl_next_free: vec![0; n],
            vc_usage: vec![VcUsage::default(); 1 + sys.chiplet_count()],
            vl_flits: vec![0; sys.vertical_link_count() * 2],
            epoch: EpochAccum::open(0, initial_faults),
            epochs: Vec::new(),
            cycle: 0,
            last_progress: 0,
            deadlocked: false,
            started: false,
            active_mode: true,
            done: false,
            par: None,
            profile: None,
        }
    }

    /// Attaches a fault timeline: its inject/heal events are applied at
    /// their scheduled cycles during [`run`](Self::run), on top of the
    /// (usually fault-free) state the simulator was built with.
    ///
    /// At every transition the simulator (1) applies the cycle's events,
    /// (2) closes the current statistics epoch ([`SimReport::epochs`]),
    /// (3) removes in-flight packets stranded by newly-faulty links (see
    /// [`SimReport::lost_in_flight`]), (4) notifies the routing algorithm
    /// via [`RoutingAlgorithm::on_fault_change`], and (5) re-routes
    /// still-queued packets against the refreshed state. Timelines from the
    /// `deft_topo` generators never disconnect a chiplet, so a
    /// fault-tolerant algorithm can keep 100 % reachability throughout.
    #[must_use]
    pub fn with_timeline(mut self, timeline: &'a FaultTimeline) -> Self {
        self.timeline = Some(timeline.cursor());
        self
    }

    /// Runs to completion and produces the report, scanning only the
    /// active router set each cycle.
    pub fn run(mut self) -> SimReport {
        self.begin(true);
        self.step_until(None);
        self.finalize()
    }

    /// Reference implementation that dense-scans **every** router each
    /// cycle, exactly like the pre-active-set engine. It exists to pin the
    /// active-set scheduler: differential tests assert
    /// `run() == run_dense_reference()` on arbitrary systems and
    /// workloads. Not intended for measurement — it is strictly slower.
    #[doc(hidden)]
    pub fn run_dense_reference(mut self) -> SimReport {
        self.begin(false);
        self.step_until(None);
        self.finalize()
    }

    /// Begins a *resumable* run (active-set mode) without simulating any
    /// cycle yet. Drive it with [`advance_to`](Self::advance_to), pause to
    /// [`snapshot`](Self::snapshot) or [`fork`](Self::fork), and close
    /// with [`finish`](Self::finish). `run` is exactly
    /// `start` + `advance_to(∞)` + `finish`.
    ///
    /// # Panics
    /// Panics if the run has already started.
    pub fn start(&mut self) {
        self.begin(true);
    }

    /// Simulates until the current cycle is at least `cycle`, or until the
    /// run ends, whichever comes first. Returns `true` when the run has
    /// completed (drained, deadlocked, or hit the hard cycle limit) and
    /// `false` when it paused.
    ///
    /// The pause lands on a *top-of-cycle boundary*: no phase of the pause
    /// cycle has executed yet. Idle-cycle skipping may carry the clock
    /// past `cycle`, so the pause point is the first boundary at or after
    /// it — check [`cycle`](Self::cycle) for the exact position.
    ///
    /// # Panics
    /// Panics if called before [`start`](Self::start).
    pub fn advance_to(&mut self, cycle: u64) -> bool {
        assert!(self.started, "advance_to before start()");
        self.step_until(Some(cycle))
    }

    /// Runs any remaining cycles and produces the report.
    ///
    /// # Panics
    /// Panics if called before [`start`](Self::start).
    pub fn finish(mut self) -> SimReport {
        assert!(self.started, "finish before start()");
        self.step_until(None);
        self.finalize()
    }

    /// The next cycle to simulate (the run's current position).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Turns on per-phase wall-time accounting for the serial loop.
    /// Zero-overhead when off: the profiled cycle body is a separate
    /// branch, so the normal hot path takes no timestamps. The parallel
    /// tick is not profiled (phase boundaries are barriers there — wall
    /// time per phase is a different measurement).
    pub fn enable_phase_profile(&mut self) {
        self.profile = Some(Box::default());
    }

    /// The accumulated per-phase wall times, if profiling was enabled.
    pub fn phase_profile(&self) -> Option<PhaseProfile> {
        self.profile.as_deref().copied()
    }

    fn begin(&mut self, active_mode: bool) {
        assert!(!self.started, "this run has already started");
        self.started = true;
        self.active_mode = active_mode;
    }

    /// The cycle loop, pausable at every top-of-cycle boundary. With
    /// `stop = Some(c)` the loop pauses before simulating the first cycle
    /// `>= c`; with `None` it runs to the end. Returns whether the run is
    /// finished.
    ///
    /// Dispatches between the serial engine (`tick_threads == 1`, and
    /// always for the dense reference — the oracles stay single-threaded)
    /// and the partitioned parallel tick. Both produce byte-identical
    /// simulated state; see [`ParTick`] for why.
    fn step_until(&mut self, stop: Option<u64>) -> bool {
        if self.active_mode && self.cfg.tick_threads > 1 && self.ensure_par() {
            return self.step_until_parallel(stop);
        }
        self.step_until_serial(stop)
    }

    /// The serial cycle loop — the permanent single-threaded engine, and
    /// the degenerate `tick_threads == 1` case of the parallel tick.
    fn step_until_serial(&mut self, stop: Option<u64>) -> bool {
        let gen_end = self.cfg.warmup + self.cfg.measure;
        let hard_end = gen_end + self.cfg.drain;
        while !self.done {
            if self.cycle >= hard_end {
                self.done = true;
                break;
            }
            if stop.is_some_and(|s| self.cycle >= s) {
                return false;
            }
            // Fault-timeline transitions take effect before any routing or
            // generation of the cycle.
            let changed = match self.timeline.as_mut() {
                Some(cursor) => cursor.advance(self.cycle, &mut self.faults),
                None => false,
            };
            if changed {
                // A transition at the very first cycle would close a
                // zero-width epoch; replace the just-opened one instead.
                if self.cycle > self.epoch.start {
                    self.epochs.push(self.epoch.close(self.cycle));
                }
                self.epoch = EpochAccum::open(self.cycle, self.faults.faulty_count());
                if self.handle_fault_transition(self.cycle) {
                    // Packet removal freed buffers: that is progress as far
                    // as the deadlock watchdog is concerned.
                    self.last_progress = self.cycle;
                }
            }
            let progressed = if self.profile.is_some() {
                self.tick_phases_profiled(gen_end)
            } else {
                self.tick_phases(gen_end)
            };

            if progressed {
                self.last_progress = self.cycle;
            }
            self.cycle += 1;

            if self.total_flits + self.packets_queued > 0
                && self.cycle - self.last_progress >= self.cfg.deadlock_threshold
            {
                self.deadlocked = true;
                self.done = true;
                break;
            }
            if self.cycle >= gen_end && self.total_flits == 0 && self.packets_queued == 0 {
                self.done = true;
                break;
            }
            // Idle-cycle skipping (active mode only — the dense reference
            // stays a tick-every-cycle oracle): with nothing buffered,
            // nothing queued, and no partially-injected front packet
            // (`packets_queued` counts those until their tail leaves),
            // no per-cycle state can change until the next scheduled
            // event, so jump the clock straight to it. Counters and epoch
            // windows need no adjustment: an idle tick touches neither.
            if self.active_mode
                && self.total_flits == 0
                && self.packets_queued == 0
                && self.cycle < gen_end
            {
                self.cycle = self.idle_skip_target(self.cycle, gen_end);
                if self.cycle >= gen_end {
                    // Reaching the end of generation empty is the ticking
                    // loop's drain-break condition; land on the same final
                    // cycle count it would have.
                    self.done = true;
                    break;
                }
            }
        }
        true
    }

    /// One serial cycle's phases 1–5: generation, the word-scan sweep of
    /// phases 2–3 over the whole network, commit, injection. Returns
    /// whether anything moved or injected. The word scans skip idle
    /// routers four at a time, so no per-cycle worklist is kept — dense
    /// and active mode run the identical sweep.
    #[inline]
    fn tick_phases(&mut self, gen_end: u64) -> bool {
        if self.cycle < gen_end {
            self.generate(self.cycle);
        }
        let n = self.net.node_count();
        self.route_and_allocate(0..n);
        let mut moves = std::mem::take(&mut self.move_scratch);
        moves.clear();
        self.switch_allocate_into(self.cycle, 0..n, &mut moves);
        let progressed = self.commit(&moves, self.cycle) | self.inject();
        self.move_scratch = moves;
        progressed
    }

    /// [`tick_phases`](Self::tick_phases) with per-phase timestamps — a
    /// separate body so the unprofiled loop stays timestamp-free.
    fn tick_phases_profiled(&mut self, gen_end: u64) -> bool {
        let ns = |d: std::time::Duration| d.as_nanos() as u64;
        let t0 = Instant::now();
        if self.cycle < gen_end {
            self.generate(self.cycle);
        }
        let n = self.net.node_count();
        let t1 = Instant::now();
        self.route_and_allocate(0..n);
        let t2 = Instant::now();
        let mut moves = std::mem::take(&mut self.move_scratch);
        moves.clear();
        self.switch_allocate_into(self.cycle, 0..n, &mut moves);
        let t3 = Instant::now();
        let committed = self.commit(&moves, self.cycle);
        let t4 = Instant::now();
        let progressed = committed | self.inject();
        let t5 = Instant::now();
        self.move_scratch = moves;
        let p = self.profile.as_mut().expect("profiled tick without state");
        p.postlude_ns += ns(t1 - t0) + ns(t5 - t4);
        p.route_ns += ns(t2 - t1);
        p.switch_ns += ns(t3 - t2);
        p.commit_ns += ns(t4 - t3);
        progressed
    }

    /// Lazily adopts the chiplet-aligned shard map for `tick_threads`
    /// workers. Returns whether more than one shard resulted — a system
    /// too small to split runs serially regardless of the knob.
    fn ensure_par(&mut self) -> bool {
        if self.par.is_none() {
            let partition = self.sys.tick_partition(self.cfg.tick_threads);
            // The engine re-asserts the partition's contract on adoption:
            // phase writes would race if shards overlapped or left gaps.
            partition.assert_disjoint_cover();
            let node_shard = partition.node_shards();
            let k = partition.len();
            let regions = self.vc_usage.len();
            self.par = Some(Box::new(ParTick {
                partition,
                node_shard,
                moves: vec![Vec::new(); k],
                buckets: vec![Vec::new(); k * k],
                eject: vec![Vec::new(); k],
                eject_all: Vec::new(),
                usage: vec![vec![VcUsage::default(); regions]; k],
                exit: false,
            }));
        }
        self.par.as_ref().expect("just built").partition.len() > 1
    }

    /// The parallel cycle loop: spawns the scoped worker pool (one OS
    /// thread per shard beyond the main thread, which doubles as worker
    /// 0), drives [`par_loop`](Self::par_loop), and tears the pool down
    /// at every pause or finish. The pool is persistent across the cycles
    /// of one `step_until` call — per-cycle spawning would cost more than
    /// a cycle's work.
    fn step_until_parallel(&mut self, stop: Option<u64>) -> bool {
        let k = self.par.as_ref().expect("ensure_par ran").partition.len();
        self.par.as_mut().expect("ensure_par ran").exit = false;
        // Three reusable barriers per cycle: phase-A entry (doubling as
        // the exit handshake), the A→B boundary, and commit completion.
        let enter = Barrier::new(k);
        let mid = Barrier::new(k);
        let commit = Barrier::new(k);
        let share = SimShare(self as *mut Self);
        let mut finished = true;
        std::thread::scope(|scope| {
            for s in 1..k {
                let (enter, mid, commit) = (&enter, &mid, &commit);
                scope.spawn(move || loop {
                    // Bind the whole wrapper (closures capture fields by
                    // default, and a bare `*mut` is not `Send`).
                    let share = share;
                    enter.wait();
                    // SAFETY (here and below): the barrier protocol — the
                    // main thread published this cycle's job (or the exit
                    // flag) before arriving at `enter`, and during a phase
                    // every thread writes only shard-owned state (see
                    // [`ParTick`]).
                    if unsafe { (*share.0).par.as_deref().expect("pool without state").exit } {
                        break;
                    }
                    unsafe { (*share.0).par_phase_a(s) };
                    mid.wait();
                    unsafe { (*share.0).par_phase_b(s) };
                    commit.wait();
                });
            }
            finished = self.par_loop(stop, &enter, &mid, &commit);
            // Release the parked workers.
            self.par.as_mut().expect("pool without state").exit = true;
            enter.wait();
        });
        finished
    }

    /// The per-cycle driver of the parallel tick, run on the main thread.
    /// Identical to [`step_until_serial`](Self::step_until_serial) except
    /// phases 2–4 of a non-empty worklist run on the worker pool; the
    /// serial prelude (timeline, generation) and postlude (ejection
    /// bookkeeping, injection, active-set maintenance, idle skipping)
    /// keep every RNG- or order-sensitive step on one thread.
    fn par_loop(
        &mut self,
        stop: Option<u64>,
        enter: &Barrier,
        mid: &Barrier,
        commit: &Barrier,
    ) -> bool {
        let gen_end = self.cfg.warmup + self.cfg.measure;
        let hard_end = gen_end + self.cfg.drain;
        while !self.done {
            if self.cycle >= hard_end {
                self.done = true;
                break;
            }
            if stop.is_some_and(|s| self.cycle >= s) {
                return false;
            }
            let changed = match self.timeline.as_mut() {
                Some(cursor) => cursor.advance(self.cycle, &mut self.faults),
                None => false,
            };
            if changed {
                if self.cycle > self.epoch.start {
                    self.epochs.push(self.epoch.close(self.cycle));
                }
                self.epoch = EpochAccum::open(self.cycle, self.faults.faulty_count());
                if self.handle_fault_transition(self.cycle) {
                    self.last_progress = self.cycle;
                }
            }
            if self.cycle < gen_end {
                self.generate(self.cycle);
            }
            // Phases 2–4 on the pool. An empty network skips the round
            // entirely — the phase scans would all be no-ops, the workers
            // stay parked at `enter` (they only proceed when the main
            // thread arrives), and injection may still make progress below.
            let mut progressed = false;
            if self.total_flits > 0 {
                enter.wait();
                self.par_phase_a(0);
                mid.wait();
                self.par_phase_b(0);
                commit.wait();
                progressed = self.par_postlude(self.cycle);
            }
            let progressed = progressed | self.inject();

            if progressed {
                self.last_progress = self.cycle;
            }
            self.cycle += 1;

            if self.total_flits + self.packets_queued > 0
                && self.cycle - self.last_progress >= self.cfg.deadlock_threshold
            {
                self.deadlocked = true;
                self.done = true;
                break;
            }
            if self.cycle >= gen_end && self.total_flits == 0 && self.packets_queued == 0 {
                self.done = true;
                break;
            }
            if self.total_flits == 0 && self.packets_queued == 0 && self.cycle < gen_end {
                self.cycle = self.idle_skip_target(self.cycle, gen_end);
                if self.cycle >= gen_end {
                    self.done = true;
                    break;
                }
            }
        }
        true
    }

    /// Phase A for shard `s`: route computation, VC allocation, and
    /// switch allocation over the shard's router range — the serial phase
    /// methods, unchanged, on a sub-range — then bucketing of each move's
    /// cross-shard aspects for the consuming workers. Runs concurrently on
    /// every worker; all writes are shard-owned (see [`ParTick`]).
    fn par_phase_a(&mut self, s: usize) {
        let par: *mut ParTick = &mut **self.par.as_mut().expect("phase A without state");
        // SAFETY (here and below): workers read shared job state and write
        // only their own move list and bucket row, per the ParTick
        // ownership model.
        let (nodes, k) = unsafe {
            let p = &*par;
            (p.partition.shards()[s].nodes.clone(), p.partition.len())
        };
        self.route_and_allocate(nodes.start as usize..nodes.end as usize);
        let mut moves = std::mem::take(unsafe { &mut (&mut (*par).moves)[s] });
        moves.clear();
        self.switch_allocate_into(
            self.cycle,
            nodes.start as usize..nodes.end as usize,
            &mut moves,
        );
        // Bucket each move's cross-shard aspects into this producer's row.
        // The consuming worker sweeps producer rows in shard order and each
        // bucket in move order — the serial per-location commit order.
        unsafe {
            for bucket in &mut (&mut (*par).buckets)[s * k..(s + 1) * k] {
                bucket.clear();
            }
        }
        let push_bucket = |t: usize, e: BucketEntry| unsafe {
            (&mut (*par).buckets)[s * k + t].push(e);
        };
        let node_shard: &[u16] = unsafe { &(*par).node_shard };
        for m in &moves {
            debug_assert!(
                nodes.contains(&(m.router as u32)),
                "phase-A move at router {} outside shard {s} (routers {nodes:?})",
                m.router
            );
            let credit_to = self.links_in[m.router][m.in_port as usize]
                .map(|(up, _)| node_shard[up as usize] as usize)
                .filter(|&t| t != s);
            let push_to = (m.out_port != PORT_LOCAL)
                .then(|| {
                    let (d, _) = self.links_out[m.router][m.out_port as usize]
                        .expect("move along a missing link");
                    node_shard[d as usize] as usize
                })
                .filter(|&t| t != s);
            match (credit_to, push_to) {
                (Some(c), Some(p)) if c == p => push_bucket(
                    c,
                    BucketEntry {
                        m: *m,
                        credit: true,
                        push: true,
                    },
                ),
                (credit_to, push_to) => {
                    if let Some(c) = credit_to {
                        push_bucket(
                            c,
                            BucketEntry {
                                m: *m,
                                credit: true,
                                push: false,
                            },
                        );
                    }
                    if let Some(p) = push_to {
                        push_bucket(
                            p,
                            BucketEntry {
                                m: *m,
                                credit: false,
                                push: true,
                            },
                        );
                    }
                }
            }
        }
        unsafe { (&mut (*par).moves)[s] = moves };
    }

    /// Phase B for shard `s`: applies the move aspects this shard owns —
    /// its own move list (the pop side is always shard-local, asserted in
    /// phase A; the credit and push sides are applied inline when local
    /// too), then the buckets the other producers addressed to it —
    /// sweeping producers in shard order and each list in move order:
    /// exactly the serial commit's per-location operation order, without
    /// scanning any foreign shard's full move list. Every location is
    /// written by exactly one worker; operations of one move that land on
    /// different shards touch disjoint locations, so their relative order
    /// is free. Ring pushes and pops are *raw*: a packed `u64` occupancy
    /// word may straddle a shard boundary, so the touched bits are
    /// repaired serially in the postlude instead.
    fn par_phase_b(&mut self, s: usize) {
        let par: *mut ParTick = &mut **self.par.as_mut().expect("phase B without state");
        // SAFETY: every shard's move list and bucket row were fully
        // written before the A→B barrier and are only read now; writes go
        // to worker-owned locations.
        let k = unsafe { (*par).moves.len() };
        let nodes = unsafe { (*par).partition.shards()[s].nodes.clone() };
        let owns = |i: u32| nodes.start <= i && i < nodes.end;
        let tail_idx = (self.cfg.packet_size - 1) as u32;
        let cycle = self.cycle;
        let mut eject = std::mem::take(unsafe { &mut (&mut (*par).eject)[s] });
        let mut usage = std::mem::take(unsafe { &mut (&mut (*par).usage)[s] });
        for t in 0..k {
            if t == s {
                let moves: &[Move] = unsafe { &*(&(&(*par).moves)[s] as *const Vec<Move>) };
                for (i, m) in moves.iter().enumerate() {
                    // Credit return to the upstream router feeding the
                    // input, when local (foreign upstreams were bucketed
                    // to their owner in phase A).
                    if let Some((up, up_out)) = self.links_in[m.router][m.in_port as usize] {
                        if owns(up) {
                            self.net.credits
                                [up as usize * SLOT_COUNT + slot_of(up_out, m.in_vc)] += 1;
                        }
                    }
                    // Pop side: the move's router is always shard-local.
                    let popped = self
                        .net
                        .pop_front_raw(m.router * SLOT_COUNT + slot_of(m.in_port, m.in_vc));
                    debug_assert_eq!(
                        popped,
                        (m.packet, m.fidx),
                        "router {}: committed flit differs from the allocated one",
                        m.router
                    );
                    if m.out_port == PORT_LOCAL {
                        // Ejection bookkeeping (stats, arena release) is
                        // order-sensitive: defer to the serial postlude,
                        // keyed by canonical move order.
                        eject.push((((s as u64) << 32) | i as u64, m.packet, m.fidx));
                    } else {
                        self.net.credits[m.router * SLOT_COUNT + slot_of(m.out_port, m.out_vc)] -=
                            1;
                        if m.out_port == PORT_VERTICAL {
                            let slot = self.vl_stat_slot[m.router];
                            debug_assert_ne!(slot, u32::MAX, "vertical move off a VL");
                            #[cfg(debug_assertions)]
                            self.debug_check_vl_shard(unsafe { &(*par).partition }, m.router, slot);
                            self.vl_flits[slot as usize] += 1;
                            self.vl_next_free[m.router] = cycle + self.cfg.vl_serialization;
                        }
                        let (d_idx, d_port) = self.links_out[m.router][m.out_port as usize]
                            .expect("move along a missing link");
                        if owns(d_idx) {
                            self.push_move_flit(d_idx as usize, d_port, m, &mut usage);
                        }
                    }
                    if m.fidx == tail_idx {
                        let kin = m.router * SLOT_COUNT + slot_of(m.in_port, m.in_vc);
                        self.net.dest[kin] = None;
                        self.net.granted[kin] = false;
                        self.net.owner[kin] = None;
                        if m.out_port != PORT_LOCAL {
                            self.net.out_alloc
                                [m.router * SLOT_COUNT + slot_of(m.out_port, m.out_vc)] = None;
                        }
                    }
                }
            } else {
                let bucket: &[BucketEntry] =
                    unsafe { &*(&(&(*par).buckets)[t * k + s] as *const Vec<BucketEntry>) };
                for e in bucket {
                    let m = &e.m;
                    if e.credit {
                        let (up, up_out) = self.links_in[m.router][m.in_port as usize]
                            .expect("bucketed credit without an upstream link");
                        debug_assert!(owns(up), "credit bucketed to the wrong shard");
                        self.net.credits[up as usize * SLOT_COUNT + slot_of(up_out, m.in_vc)] += 1;
                    }
                    if e.push {
                        let (d_idx, d_port) = self.links_out[m.router][m.out_port as usize]
                            .expect("move along a missing link");
                        debug_assert!(owns(d_idx), "push bucketed to the wrong shard");
                        self.push_move_flit(d_idx as usize, d_port, m, &mut usage);
                    }
                }
            }
        }
        unsafe {
            (&mut (*par).eject)[s] = eject;
            (&mut (*par).usage)[s] = usage;
        }
    }

    /// The push side of one committed move: appends the flit to the
    /// downstream ring **raw** (occupancy is repaired in the postlude) and
    /// counts the buffer write. Shared by phase B's own-move and bucket
    /// sweeps.
    #[inline]
    fn push_move_flit(&mut self, d: usize, d_port: u8, m: &Move, usage: &mut [VcUsage]) {
        self.net
            .push_back_raw(d * SLOT_COUNT + slot_of(d_port, m.out_vc), m.packet, m.fidx);
        let u = &mut usage[self.region_of[d] as usize];
        match m.out_vc {
            0 => u.vc0 += 1,
            _ => u.vc1 += 1,
        }
    }

    /// Debug invariant of the partition's link contract: a vertical move
    /// crosses a link owned by the shard of the link's chiplet-side
    /// endpoint. Panics naming the link and shard on violation.
    #[cfg(debug_assertions)]
    fn debug_check_vl_shard(&self, partition: &TickPartition, router: usize, stat_slot: u32) {
        let vl = &self.sys.vertical_links()[(stat_slot / 2) as usize];
        let dir = if stat_slot % 2 == 1 {
            VlDir::Down
        } else {
            VlDir::Up
        };
        let link = self.sys.link_id(VlLinkId {
            chiplet: vl.chiplet,
            index: vl.index,
            dir,
        });
        let shard = partition.shard_of(vl.chiplet_node);
        assert!(
            partition.shards()[shard].contains_link(link),
            "vertical link {link:?} (chiplet {}, vl {}, {dir:?}) crossed at router {router} \
             lies outside its owning shard {shard}",
            vl.chiplet.0,
            vl.index
        );
    }

    /// Serial end-of-cycle merge after the commit barrier: occupancy
    /// repair for phase B's raw ring operations, ejection statistics and
    /// packet releases in canonical move order (the arena free list is
    /// LIFO — release order determines the IDs of later packets), and the
    /// per-worker VC-usage sums. Returns whether any flit moved.
    fn par_postlude(&mut self, cycle: u64) -> bool {
        let mut par = self.par.take().expect("postlude without state");
        let progressed = par.moves.iter().any(|m| !m.is_empty());
        // Occupancy repair: phase B's raw pushes and pops left the packed
        // words untouched (a `u64` word can straddle a shard boundary).
        // Re-derive the touched bits from the final ring state — which is
        // order-independent, so one pass over the move lists suffices.
        for moves in par.moves.iter() {
            for m in moves {
                self.net.sync_occ(m.router, slot_of(m.in_port, m.in_vc));
                if m.out_port != PORT_LOCAL {
                    let (d, d_port) = self.links_out[m.router][m.out_port as usize]
                        .expect("move along a missing link");
                    self.net.mark_occ(d as usize, slot_of(d_port, m.out_vc));
                }
            }
        }
        let ParTick {
            eject, eject_all, ..
        } = &mut *par;
        eject_all.clear();
        for w in eject.iter_mut() {
            eject_all.append(w);
        }
        eject_all.sort_unstable_by_key(|&(key, _, _)| key);
        let tail_idx = (self.cfg.packet_size - 1) as u32;
        for &(_, packet, fidx) in par.eject_all.iter() {
            self.total_flits -= 1;
            if fidx == tail_idx {
                let info = &self.packets[packet];
                if info.measured {
                    let latency = cycle - info.generated_at + 1;
                    self.delivered_measured += 1;
                    self.latency_sum += latency;
                    self.latency_max = self.latency_max.max(latency);
                    self.lat_hist.record(latency);
                    self.epoch.delivered += 1;
                    self.epoch.latency_sum += latency;
                }
                self.packets.release(packet);
            }
        }
        for acc in par.usage.iter_mut() {
            for (r, u) in acc.iter_mut().enumerate() {
                self.vc_usage[r].vc0 += u.vc0;
                self.vc_usage[r].vc1 += u.vc1;
                *u = VcUsage::default();
            }
        }
        self.par = Some(par);
        progressed
    }

    fn finalize(mut self) -> SimReport {
        debug_assert!(self.done, "finalize on an unfinished run");
        #[cfg(debug_assertions)]
        self.debug_check_quiescent(self.deadlocked);

        let cycle = self.cycle;
        let deadlocked = self.deadlocked;
        let avg_latency = if self.delivered_measured > 0 {
            self.latency_sum as f64 / self.delivered_measured as f64
        } else {
            0.0
        };
        let [p50_latency, p95_latency, p99_latency] = self.lat_hist.percentiles([0.50, 0.95, 0.99]);
        let epochs = if self.timeline.is_some() {
            self.epochs.push(self.epoch.close(cycle));
            std::mem::take(&mut self.epochs)
        } else {
            Vec::new()
        };
        // Re-materialize the report's map shapes from the flat counters:
        // only touched regions/links appear, exactly as with the old
        // insert-on-first-touch maps.
        let mut vc_usage = BTreeMap::new();
        for (i, &usage) in self.vc_usage.iter().enumerate() {
            if usage.vc0 + usage.vc1 > 0 {
                let region = if i == 0 {
                    Region::Interposer
                } else {
                    Region::Chiplet((i - 1) as u8)
                };
                vc_usage.insert(region, usage);
            }
        }
        let mut vl_flits = BTreeMap::new();
        for (s, vl) in self.sys.vertical_links().iter().enumerate() {
            let (up, down) = (self.vl_flits[2 * s], self.vl_flits[2 * s + 1]);
            if up > 0 {
                vl_flits.insert((vl.chiplet.0, vl.index, false), up);
            }
            if down > 0 {
                vl_flits.insert((vl.chiplet.0, vl.index, true), down);
            }
        }
        SimReport {
            algorithm: self.alg.name().to_owned(),
            pattern: self.pattern.name().to_owned(),
            cycles: cycle,
            injected_measured: self.injected_measured,
            delivered: self.delivered_measured,
            dropped_unroutable: self.dropped_unroutable,
            lost_in_flight: self.lost_in_flight,
            generated_total: self.generated_total,
            avg_latency,
            p50_latency,
            p95_latency,
            p99_latency,
            max_latency: self.latency_max,
            throughput: self.delivered_measured as f64 * self.cfg.packet_size as f64
                / (self.cfg.measure as f64 * self.sys.node_count() as f64),
            vc_usage,
            vl_flits,
            deadlocked,
            epochs,
        }
    }

    /// Serializes the run's complete live state into the versioned
    /// `deft-codec` snapshot container. Callable at any pause point of a
    /// started active-mode run (after [`start`](Self::start) /
    /// [`advance_to`](Self::advance_to)).
    ///
    /// The snapshot captures *simulation* state only — router buffers,
    /// credits, allocation, the packet arena, source queues, RNG streams,
    /// fault state, timeline position, routing-algorithm state, and every
    /// statistic — plus an identity section describing the configuration
    /// it ran under. Borrowed setup (the topology, the traffic tables, the
    /// timeline's events) is **not** serialized:
    /// [`resume_from`](Self::resume_from) verifies by fingerprint that the
    /// receiving simulator was built over the same setup.
    ///
    /// # Panics
    /// Panics before `start()`, or on a dense-reference run (the dense
    /// oracle exists for differential tests and is not resumable).
    pub fn snapshot(&self) -> Vec<u8> {
        assert!(self.started, "snapshot before start()");
        assert!(
            self.active_mode,
            "snapshots cover active-mode runs; the dense reference is a test oracle"
        );
        let mut w = SnapshotWriter::new();
        w.section(*b"IDNT", |enc| {
            enc.put_usize(self.sys.node_count());
            enc.put_usize(self.sys.vertical_link_count());
            self.cfg.encode(enc);
            enc.put_bytes(self.alg.name().as_bytes());
            enc.put_bytes(self.pattern.name().as_bytes());
            enc.put_u64(self.pattern.fingerprint());
            self.timeline.as_ref().map(|c| c.fingerprint()).encode(enc);
        });
        w.section(*b"CURS", |enc| {
            enc.put_u64(self.cycle);
            enc.put_u64(self.last_progress);
            enc.put_bool(self.deadlocked);
            enc.put_bool(self.done);
            enc.put_u64(self.total_flits);
            enc.put_u64(self.packets_queued);
            enc.put_u64(self.generated_total);
            enc.put_u64(self.dropped_unroutable);
            enc.put_u64(self.lost_in_flight);
            enc.put_u64(self.injected_measured);
            enc.put_u64(self.delivered_measured);
            enc.put_u64(self.latency_sum);
            enc.put_u64(self.latency_max);
        });
        w.section(*b"RNGS", |enc| {
            for word in self.rng.state() {
                enc.put_u64(word);
            }
        });
        w.section(*b"FLTS", |enc| self.faults.encode(enc));
        w.section(*b"TLCR", |enc| {
            self.timeline
                .as_ref()
                .map(|c| c.position() as u64)
                .encode(enc);
        });
        w.section(*b"ALGO", |enc| self.alg.save_state(enc));
        w.section(*b"RTRS", |enc| {
            for r in 0..self.net.node_count() {
                self.net.save_router(r, enc);
            }
        });
        w.section(*b"ARNA", |enc| self.packets.encode(enc));
        w.section(*b"SRCS", |enc| {
            self.inject_seq.encode(enc);
            for s in &self.sources {
                enc.put_usize(s.queue.len());
                for &pid in &s.queue {
                    enc.put_u64(pid.0);
                }
                enc.put_usize(s.flits_sent);
            }
        });
        w.section(*b"STAT", |enc| {
            self.lat_hist.encode(enc);
            self.vl_next_free.encode(enc);
            self.vc_usage.encode(enc);
            self.vl_flits.encode(enc);
            self.epoch.encode(enc);
            self.epochs.encode(enc);
        });
        w.section(*b"ACTV", |enc| {
            // The engine keeps no worklist anymore; the legacy active list
            // was exactly the ascending occupied-router list at every
            // cycle boundary, so deriving it from the occupancy words
            // reproduces the wire bytes.
            let occupied: Vec<usize> = self.net.occupied().collect();
            enc.put_usize(occupied.len());
            for i in occupied {
                enc.put_usize(i);
            }
        });
        w.finish()
    }

    /// Restores a [`snapshot`](Self::snapshot) into this freshly-built
    /// simulator, after which stepping continues exactly where the
    /// snapshotted run paused: the resumed run's every subsequent cycle —
    /// and its final [`SimReport`] — is byte-identical to the
    /// uninterrupted original.
    ///
    /// The simulator must have been assembled over the *same setup* the
    /// snapshot was taken under: same topology, [`SimConfig`], routing
    /// algorithm, traffic pattern, and fault timeline (attach it with
    /// [`with_timeline`](Self::with_timeline) **before** resuming).
    /// Differences are detected via the snapshot's identity section and
    /// reported as [`CodecError::Mismatch`]; corrupt or truncated input
    /// yields the corresponding [`CodecError`] — never a panic.
    ///
    /// # Errors
    /// Any [`CodecError`]. On error the simulator may hold partially
    /// restored state and must be discarded.
    ///
    /// # Panics
    /// Panics if this simulator has already started running.
    pub fn resume_from(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        assert!(
            !self.started,
            "resume_from applies to a freshly-built simulator"
        );
        let mut r = SnapshotReader::new(bytes)?;

        let mut dec = r.section(*b"IDNT")?;
        let node_count = dec.get_usize()?;
        if node_count != self.sys.node_count() {
            return Err(CodecError::Mismatch(format!(
                "snapshot is of a {node_count}-node system, this one has {} nodes",
                self.sys.node_count()
            )));
        }
        let vl_count = dec.get_usize()?;
        if vl_count != self.sys.vertical_link_count() {
            return Err(CodecError::Mismatch(format!(
                "snapshot is of a system with {vl_count} vertical links, this one has {}",
                self.sys.vertical_link_count()
            )));
        }
        let mut cfg = SimConfig::decode(&mut dec)?;
        // `tick_threads` is a host-execution knob excluded from the wire
        // format: a snapshot taken at one thread count resumes at any
        // other, so the comparison keeps this simulator's own setting.
        cfg.tick_threads = self.cfg.tick_threads;
        if cfg != self.cfg {
            return Err(CodecError::Mismatch(
                "simulation config differs from the snapshot's".into(),
            ));
        }
        let alg_name = String::decode(&mut dec)?;
        if alg_name != self.alg.name() {
            return Err(CodecError::Mismatch(format!(
                "snapshot ran algorithm {alg_name}, this simulator runs {}",
                self.alg.name()
            )));
        }
        let pattern_name = String::decode(&mut dec)?;
        let pattern_fp = dec.get_u64()?;
        if pattern_name != self.pattern.name() || pattern_fp != self.pattern.fingerprint() {
            return Err(CodecError::Mismatch(format!(
                "snapshot ran traffic pattern {pattern_name} (fingerprint {pattern_fp:#018x}), \
                 this simulator has {} ({:#018x})",
                self.pattern.name(),
                self.pattern.fingerprint()
            )));
        }
        let timeline_fp = Option::<u64>::decode(&mut dec)?;
        if timeline_fp != self.timeline.as_ref().map(|c| c.fingerprint()) {
            return Err(CodecError::Mismatch(
                "fault timeline differs from the one the snapshot ran under".into(),
            ));
        }
        dec.finish()?;

        let mut dec = r.section(*b"CURS")?;
        self.cycle = dec.get_u64()?;
        self.last_progress = dec.get_u64()?;
        self.deadlocked = dec.get_bool()?;
        self.done = dec.get_bool()?;
        self.total_flits = dec.get_u64()?;
        self.packets_queued = dec.get_u64()?;
        self.generated_total = dec.get_u64()?;
        self.dropped_unroutable = dec.get_u64()?;
        self.lost_in_flight = dec.get_u64()?;
        self.injected_measured = dec.get_u64()?;
        self.delivered_measured = dec.get_u64()?;
        self.latency_sum = dec.get_u64()?;
        self.latency_max = dec.get_u64()?;
        dec.finish()?;

        let mut dec = r.section(*b"RNGS")?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = dec.get_u64()?;
        }
        self.rng = SmallRng::from_state(state);
        dec.finish()?;

        let mut dec = r.section(*b"FLTS")?;
        self.faults = FaultState::decode(&mut dec)?;
        dec.finish()?;

        let mut dec = r.section(*b"TLCR")?;
        let position = Option::<u64>::decode(&mut dec)?;
        match (position, self.timeline.as_mut()) {
            (Some(p), Some(cursor)) => {
                if p as usize > cursor.event_count() {
                    return Err(CodecError::Invalid(format!(
                        "timeline cursor at {p} past the {}-event timeline",
                        cursor.event_count()
                    )));
                }
                cursor.seek(p as usize);
            }
            (None, None) => {}
            _ => {
                return Err(CodecError::Invalid(
                    "timeline cursor presence contradicts the identity section".into(),
                ))
            }
        }
        dec.finish()?;

        let mut dec = r.section(*b"ALGO")?;
        self.alg.load_state(&mut dec)?;
        dec.finish()?;

        let mut dec = r.section(*b"RTRS")?;
        for idx in 0..self.net.node_count() {
            self.net.load_router(idx, &mut dec)?;
        }
        dec.finish()?;

        let mut dec = r.section(*b"ARNA")?;
        self.packets = PacketArena::decode(&mut dec)?;
        dec.finish()?;

        let mut dec = r.section(*b"SRCS")?;
        let inject_seq = Vec::<u64>::decode(&mut dec)?;
        if inject_seq.len() != self.inject_seq.len() {
            return Err(CodecError::Invalid(format!(
                "{} injection sequences for {} nodes",
                inject_seq.len(),
                self.inject_seq.len()
            )));
        }
        self.inject_seq = inject_seq;
        for source in &mut self.sources {
            let n = dec.get_usize()?;
            let mut queue = VecDeque::with_capacity(n.min(dec.remaining() / 8));
            for _ in 0..n {
                queue.push_back(PacketId(dec.get_u64()?));
            }
            source.queue = queue;
            source.flits_sent = dec.get_usize()?;
        }
        dec.finish()?;

        let mut dec = r.section(*b"STAT")?;
        self.lat_hist = LatencyHistogram::decode(&mut dec)?;
        let vl_next_free = Vec::<u64>::decode(&mut dec)?;
        let vc_usage = Vec::<VcUsage>::decode(&mut dec)?;
        let vl_flits = Vec::<u64>::decode(&mut dec)?;
        if vl_next_free.len() != self.vl_next_free.len()
            || vc_usage.len() != self.vc_usage.len()
            || vl_flits.len() != self.vl_flits.len()
        {
            return Err(CodecError::Invalid(
                "statistics table sizes do not fit this system".into(),
            ));
        }
        self.vl_next_free = vl_next_free;
        self.vc_usage = vc_usage;
        self.vl_flits = vl_flits;
        self.epoch = EpochAccum::decode(&mut dec)?;
        self.epochs = Vec::<EpochStats>::decode(&mut dec)?;
        dec.finish()?;

        let mut dec = r.section(*b"ACTV")?;
        let n = dec.get_usize()?;
        let mut active = Vec::with_capacity(n.min(dec.remaining() / 8));
        for _ in 0..n {
            active.push(dec.get_usize()?);
        }
        dec.finish()?;
        r.finish()?;
        // The active list is derived state now (see `snapshot`): it must
        // equal the ascending occupied-router list, or the section
        // contradicts the router section's occupancy words.
        if !active.iter().copied().eq(self.net.occupied()) {
            return Err(CodecError::Invalid(
                "active worklist disagrees with the occupancy words".into(),
            ));
        }
        self.started = true;
        self.active_mode = true;
        Ok(())
    }

    /// Branches an independent simulator off this run's exact current
    /// state: a cheap in-memory what-if fork. Both simulators continue
    /// from the same pause point and never affect each other; a fork that
    /// simply runs to completion produces the same report the parent
    /// would. The routing algorithm is duplicated through
    /// [`RoutingAlgorithm::fork_box`].
    ///
    /// # Panics
    /// Panics before `start()` or on a dense-reference run.
    pub fn fork(&self) -> Simulator<'a> {
        self.fork_inner(self.timeline.clone())
    }

    /// Forks the run and attaches a *different* fault timeline to the
    /// branch — the primitive under Monte-Carlo fault sweeps: simulate the
    /// shared traffic prefix once, then branch many fault futures off it.
    ///
    /// The branch's epoch bookkeeping restarts at the fork cycle (its
    /// report's first epoch opens here, over the current fault state), and
    /// the new timeline's cursor starts at its first event; events
    /// scheduled at or before the fork cycle are applied on the branch's
    /// next simulated cycle. Use timelines shifted past the fork point
    /// ([`FaultTimeline::shifted`]) for a clean "faults start after the
    /// branch" semantics.
    ///
    /// # Panics
    /// Panics before `start()` or on a dense-reference run.
    pub fn fork_with_timeline(&self, timeline: &'a FaultTimeline) -> Simulator<'a> {
        let mut sim = self.fork_inner(Some(timeline.cursor()));
        sim.epoch = EpochAccum::open(sim.cycle, sim.faults.faulty_count());
        sim.epochs = Vec::new();
        sim
    }

    fn fork_inner(&self, timeline: Option<TimelineCursor<'a>>) -> Simulator<'a> {
        assert!(self.started, "fork before start()");
        assert!(
            self.active_mode,
            "forks cover active-mode runs; the dense reference is a test oracle"
        );
        Simulator {
            sys: self.sys,
            faults: self.faults.clone(),
            alg: self.alg.fork_box(),
            pattern: self.pattern,
            cfg: self.cfg,
            net: self.net.clone(),
            packets: self.packets.clone(),
            sources: self.sources.clone(),
            inject_seq: self.inject_seq.clone(),
            rng: self.rng.clone(),
            timeline,
            region_of: self.region_of.clone(),
            vl_stat_slot: self.vl_stat_slot.clone(),
            links_out: self.links_out.clone(),
            links_in: self.links_in.clone(),
            move_scratch: Vec::new(),
            total_flits: self.total_flits,
            packets_queued: self.packets_queued,
            generated_total: self.generated_total,
            dropped_unroutable: self.dropped_unroutable,
            lost_in_flight: self.lost_in_flight,
            injected_measured: self.injected_measured,
            delivered_measured: self.delivered_measured,
            latency_sum: self.latency_sum,
            latency_max: self.latency_max,
            lat_hist: self.lat_hist.clone(),
            vl_next_free: self.vl_next_free.clone(),
            vc_usage: self.vc_usage.clone(),
            vl_flits: self.vl_flits.clone(),
            epoch: self.epoch.clone(),
            epochs: self.epochs.clone(),
            cycle: self.cycle,
            last_progress: self.last_progress,
            deadlocked: self.deadlocked,
            started: true,
            active_mode: true,
            done: self.done,
            par: None,
            profile: None,
        }
    }

    /// The cycle to resume at when the network is provably idle at
    /// `now`: the earliest of the next possible traffic arrival (exact
    /// for deterministic patterns, `now` itself — no skip — for
    /// stochastic ones, whose per-cycle Bernoulli draws must keep
    /// consuming RNG state), the next fault-timeline transition, the
    /// warmup boundary, and the end of generation. Never skips past an
    /// event, so the resumed cycle observes exactly the state a ticking
    /// run would have.
    fn idle_skip_target(&self, now: u64, gen_end: u64) -> u64 {
        let mut target = gen_end;
        if now < self.cfg.warmup {
            target = target.min(self.cfg.warmup);
        }
        if let Some(cursor) = &self.timeline {
            if let Some(t) = cursor.next_transition() {
                target = target.min(t.max(now));
            }
        }
        if target <= now {
            return now;
        }
        for node in self.sys.nodes() {
            match self.pattern.next_arrival_at_or_after(node, now) {
                Some(a) if a <= now => return now, // may generate right now
                Some(a) => target = target.min(a),
                None => {}
            }
        }
        target
    }

    /// Phase 1: Bernoulli packet generation.
    fn generate(&mut self, cycle: u64) {
        let measured_window = cycle >= self.cfg.warmup;
        for node in self.sys.nodes() {
            let Some(dst) = self.pattern.next_packet(node, cycle, &mut self.rng) else {
                continue;
            };
            self.generated_total += 1;
            self.epoch.generated += 1;
            let seq = self.inject_seq[node.index()];
            self.inject_seq[node.index()] += 1;
            match self.alg.on_inject(self.sys, &self.faults, node, dst, seq) {
                Ok(ctx) => {
                    let id = self.packets.alloc(PacketInfo {
                        src: node,
                        dst,
                        ctx,
                        inject_vn: ctx.vn,
                        generated_at: cycle,
                        measured: measured_window,
                    });
                    if measured_window {
                        self.injected_measured += 1;
                    }
                    self.sources[node.index()].queue.push_back(id);
                    self.packets_queued += 1;
                }
                Err(_) => {
                    self.dropped_unroutable += 1;
                    self.epoch.dropped_unroutable += 1;
                    self.epoch.last_drop = Some(cycle);
                }
            }
        }
    }

    /// Phase 2: route computation and VC allocation for head flits, over
    /// the given router index range. A word-level `trailing_zeros` walk of
    /// the packed occupancy words visits each occupied router in ascending
    /// index order (the legacy worklist order), skipping four idle routers
    /// per branch; within a router, set bits ascending is exactly the
    /// legacy port-major, VC-minor scan, minus the empty buffers (on which
    /// both halves of the phase are no-ops: an empty ring has no head to
    /// route, and a streaming-through worm with `dest` set is already
    /// granted). Phases 2–3 never write the occupancy words, so the word
    /// snapshot taken per iteration is stable.
    fn route_and_allocate(&mut self, nodes: Range<usize>) {
        let sf_up = self.alg.store_and_forward_up();
        if nodes.is_empty() {
            return;
        }
        let (w0, w1) = (nodes.start / OCC_LANES, (nodes.end - 1) / OCC_LANES);
        for w in w0..=w1 {
            let mut bits = self.net.occ_words[w];
            // Mask the boundary words down to the requested range (shard
            // boundaries need not be word-aligned).
            if w == w0 {
                bits &= u64::MAX << ((nodes.start % OCC_LANES) * OCC_LANE_BITS);
            }
            if w == w1 {
                let last = (nodes.end - 1) % OCC_LANES;
                if last < OCC_LANES - 1 {
                    bits &= u64::MAX >> ((OCC_LANES - 1 - last) * OCC_LANE_BITS);
                }
            }
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize / OCC_LANE_BITS;
                let lane_mask = ((bits >> (lane * OCC_LANE_BITS)) & 0xFFFF) as u16;
                bits &= !(0xFFFFu64 << (lane * OCC_LANE_BITS));
                self.route_router(w * OCC_LANES + lane, lane_mask, sf_up);
            }
        }
    }

    /// One router's phase-2 body: route the head (if any) of each occupied
    /// slot, then claim the downstream VC, in slot (port-major) order.
    fn route_router(&mut self, idx: usize, mut mask: u16, sf_up: bool) {
        let node = NodeId(idx as u32);
        let base = idx * SLOT_COUNT;
        while mask != 0 {
            let slot = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let k = base + slot;
            let in_port = (slot / VC_COUNT) as u8;
            let vc = (slot % VC_COUNT) as u8;
            // Route computation: the span starting at flit 0 holds the
            // head.
            let (needs_route, packet_id, buffered) = match self.net.ring_front(k) {
                Some(seg) if seg.first == 0 && self.net.dest[k].is_none() => {
                    (true, seg.packet, seg.count as usize)
                }
                _ => (false, PacketId(0), 0),
            };
            if needs_route {
                let info = &mut self.packets[packet_id];
                if node == info.dst {
                    self.net.dest[k] = Some((PORT_LOCAL, vc));
                    self.net.granted[k] = true;
                    self.net.owner[k] = Some(packet_id);
                } else {
                    // RC store-and-forward: an ascending packet must be
                    // fully buffered in the boundary router's RC-buffer
                    // before it proceeds into the chiplet.
                    let hold = sf_up
                        && in_port == PORT_VERTICAL
                        && self.sys.is_boundary_router(node)
                        && buffered < self.cfg.packet_size;
                    if !hold {
                        let decision =
                            self.alg
                                .route(self.sys, &self.faults, node, info.dst, &mut info.ctx);
                        self.net.dest[k] = Some((port_of(decision.dir), decision.vn.index() as u8));
                        self.net.owner[k] = Some(packet_id);
                    }
                }
            }
            // VC allocation.
            if let Some((out_port, out_vc)) = self.net.dest[k] {
                if !self.net.granted[k] && out_port != PORT_LOCAL {
                    let a = base + slot_of(out_port, out_vc);
                    if self.net.out_alloc[a].is_none() {
                        self.net.out_alloc[a] = Some((in_port, vc));
                        self.net.granted[k] = true;
                    }
                }
            }
        }
    }

    /// Phase 3: switch allocation (round-robin per output port, one flit
    /// per input and output port per cycle) over the given router index
    /// range, appending the winners to the caller's buffer — the shared
    /// core of the serial phase 3 and of the parallel tick's per-shard
    /// phase A (which owns one buffer per shard so the canonical move
    /// list needs no concatenation). Same word-level occupancy walk as
    /// [`route_and_allocate`](Self::route_and_allocate): occupied routers
    /// ascending, four idle routers skipped per branch.
    fn switch_allocate_into(&mut self, cycle: u64, nodes: Range<usize>, moves: &mut Vec<Move>) {
        if nodes.is_empty() {
            return;
        }
        let (w0, w1) = (nodes.start / OCC_LANES, (nodes.end - 1) / OCC_LANES);
        for w in w0..=w1 {
            let mut bits = self.net.occ_words[w];
            if w == w0 {
                bits &= u64::MAX << ((nodes.start % OCC_LANES) * OCC_LANE_BITS);
            }
            if w == w1 {
                let last = (nodes.end - 1) % OCC_LANES;
                if last < OCC_LANES - 1 {
                    bits &= u64::MAX >> ((OCC_LANES - 1 - last) * OCC_LANE_BITS);
                }
            }
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize / OCC_LANE_BITS;
                let lane_mask = ((bits >> (lane * OCC_LANE_BITS)) & 0xFFFF) as u16;
                bits &= !(0xFFFFu64 << (lane * OCC_LANE_BITS));
                self.switch_allocate_router(cycle, w * OCC_LANES + lane, lane_mask, moves);
            }
        }
    }

    /// One router's phase-3 body.
    ///
    /// One pass over the router's occupied buffers builds a 12-bit
    /// candidate mask per output port (buffers with a matching granted
    /// route and at least one flit); the round-robin scan then walks only
    /// candidate bits in rotated slot order instead of probing all 12
    /// `(in_port, vc)` slots per output. Buffer state is not mutated
    /// during this phase, so precomputing the masks observes exactly what
    /// the legacy slot-by-slot probe would have.
    fn switch_allocate_router(&mut self, cycle: u64, idx: usize, occ: u16, moves: &mut Vec<Move>) {
        const SLOTS: u32 = SLOT_COUNT as u32;
        let base = idx * SLOT_COUNT;
        // Candidate slots per output port.
        let mut cand = [0u16; PORT_COUNT];
        let mut m = occ;
        while m != 0 {
            let slot = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some((d_port, _)) = self.net.dest[base + slot] {
                if self.net.granted[base + slot] {
                    cand[d_port as usize] |= 1 << slot;
                }
            }
        }
        // Slots of input ports already holding a grant this cycle
        // (both VC bits of a used port are masked out at once).
        let mut used_slots: u16 = 0;
        for out_port in 0..PORT_COUNT as u8 {
            // Serialized vertical links accept one flit every
            // `vl_serialization` cycles.
            if out_port == PORT_VERTICAL && cycle < self.vl_next_free[idx] {
                continue;
            }
            let avail = cand[out_port as usize] & !used_slots;
            if avail == 0 {
                continue;
            }
            let start = self.net.rr[idx * PORT_COUNT + out_port as usize];
            // Rotated scan: candidate slots >= start ascending, then
            // the wrap-around — the round-robin probe order.
            let hi = avail & (u16::MAX << start);
            let lo = avail & !(u16::MAX << start);
            let mut winner: Option<(u8, u8, u8)> = None;
            for mut part in [hi, lo] {
                while part != 0 {
                    let slot = part.trailing_zeros();
                    part &= part - 1;
                    let in_port = (slot / VC_COUNT as u32) as u8;
                    let vc = (slot % VC_COUNT as u32) as u8;
                    let (d_port, d_vc) =
                        self.net.dest[base + slot as usize].expect("candidate without a route");
                    debug_assert_eq!(d_port, out_port);
                    if d_port != PORT_LOCAL && self.net.credits[base + slot_of(d_port, d_vc)] == 0 {
                        continue;
                    }
                    winner = Some((in_port, vc, d_vc));
                    self.net.rr[idx * PORT_COUNT + out_port as usize] = (slot + 1) % SLOTS;
                    break;
                }
                if winner.is_some() {
                    break;
                }
            }
            if let Some((in_port, in_vc, out_vc)) = winner {
                used_slots |= ((1u16 << VC_COUNT) - 1) << (in_port as usize * VC_COUNT);
                // Annotate the move with the flit that will pop: the
                // ring front is stable until the commit (pops are one
                // per ring per cycle, pushes only append).
                let seg = self
                    .net
                    .ring_front(base + slot_of(in_port, in_vc))
                    .expect("switch winner from an empty ring");
                moves.push(Move {
                    router: idx,
                    in_port,
                    in_vc,
                    out_port,
                    out_vc,
                    packet: seg.packet,
                    fidx: seg.first,
                });
            }
        }
    }

    /// Phase 4: apply the moves. Returns whether anything moved.
    ///
    /// A flit-hop here is a pop (counter decrement on the upstream
    /// segment) plus at most one downstream segment push; head/tail-ness
    /// falls out of the popped in-packet index.
    fn commit(&mut self, moves: &[Move], cycle: u64) -> bool {
        let tail_idx = (self.cfg.packet_size - 1) as u32;
        for m in moves {
            let (packet, fidx) = self.net.pop_flit(m.router, m.in_port, m.in_vc);
            debug_assert_eq!(
                (packet, fidx),
                (m.packet, m.fidx),
                "router {}: committed flit differs from the allocated one",
                m.router
            );
            let is_tail = fidx == tail_idx;

            // Credit return to the upstream router feeding this input.
            if let Some((up, up_out)) = self.links_in[m.router][m.in_port as usize] {
                self.net.credits[up as usize * SLOT_COUNT + slot_of(up_out, m.in_vc)] += 1;
            }

            if m.out_port == PORT_LOCAL {
                self.total_flits -= 1;
                if is_tail {
                    let info = &self.packets[packet];
                    if info.measured {
                        let latency = cycle - info.generated_at + 1;
                        self.delivered_measured += 1;
                        self.latency_sum += latency;
                        self.latency_max = self.latency_max.max(latency);
                        self.lat_hist.record(latency);
                        self.epoch.delivered += 1;
                        self.epoch.latency_sum += latency;
                    }
                    // The tail is the packet's last flit anywhere in the
                    // network: its descriptor slot is recyclable.
                    self.packets.release(packet);
                }
            } else {
                self.net.credits[m.router * SLOT_COUNT + slot_of(m.out_port, m.out_vc)] -= 1;
                let (d_idx, d_port) = self.links_out[m.router][m.out_port as usize]
                    .expect("move along a missing link");
                let d_idx = d_idx as usize;
                self.net.push_flit(d_idx, d_port, m.out_vc, packet, fidx);

                // Statistics: buffer write by region/VC, and VL crossings —
                // all flat indexed, no map lookups on the per-flit path.
                let usage = &mut self.vc_usage[self.region_of[d_idx] as usize];
                match m.out_vc {
                    0 => usage.vc0 += 1,
                    _ => usage.vc1 += 1,
                }
                if m.out_port == PORT_VERTICAL {
                    let slot = self.vl_stat_slot[m.router];
                    debug_assert_ne!(slot, u32::MAX, "vertical move off a VL");
                    self.vl_flits[slot as usize] += 1;
                    self.vl_next_free[m.router] = cycle + self.cfg.vl_serialization;
                }
            }

            if is_tail {
                let kin = m.router * SLOT_COUNT + slot_of(m.in_port, m.in_vc);
                self.net.dest[kin] = None;
                self.net.granted[kin] = false;
                self.net.owner[kin] = None;
                if m.out_port != PORT_LOCAL {
                    self.net.out_alloc[m.router * SLOT_COUNT + slot_of(m.out_port, m.out_vc)] =
                        None;
                }
            }
        }
        !moves.is_empty()
    }

    /// Phase 5: one flit per cycle from each source queue into the local
    /// input buffer of the packet's VN. Returns whether anything injected.
    fn inject(&mut self) -> bool {
        if self.packets_queued == 0 {
            return false;
        }
        let mut any = false;
        for idx in 0..self.sources.len() {
            let Some(&pkt) = self.sources[idx].queue.front() else {
                continue;
            };
            let vn = self.packets[pkt].inject_vn.index() as u8;
            if self
                .net
                .ring_free(idx * SLOT_COUNT + slot_of(PORT_LOCAL, vn))
                == 0
            {
                continue;
            }
            let sent = self.sources[idx].flits_sent;
            self.net.push_flit(idx, PORT_LOCAL, vn, pkt, sent as u32);
            self.total_flits += 1;
            any = true;
            let usage = &mut self.vc_usage[self.region_of[idx] as usize];
            match vn {
                0 => usage.vc0 += 1,
                _ => usage.vc1 += 1,
            }
            if sent == self.cfg.packet_size - 1 {
                self.sources[idx].queue.pop_front();
                self.sources[idx].flits_sent = 0;
                self.packets_queued -= 1;
            } else {
                self.sources[idx].flits_sent += 1;
            }
        }
        any
    }

    /// Whether a packet with the given pending traversals is stranded by
    /// the *current* fault state: a selected VL it still has to cross is
    /// faulty. Probed through the dense [`deft_topo::LinkId`] view
    /// ([`FaultState::is_faulty_id`]).
    fn packet_stranded(&self, info: &PacketInfo, pending_down: bool, pending_up: bool) -> bool {
        let down = match (info.ctx.down_vl, self.sys.layer(info.src)) {
            (Some(v), Layer::Chiplet(c)) => {
                pending_down
                    && self.faults.is_faulty_id(self.sys.link_id(VlLinkId {
                        chiplet: c,
                        index: v,
                        dir: VlDir::Down,
                    }))
            }
            _ => false,
        };
        let up = match (info.ctx.up_vl, self.sys.layer(info.dst)) {
            (Some(v), Layer::Chiplet(c)) => {
                pending_up
                    && self.faults.is_faulty_id(self.sys.link_id(VlLinkId {
                        chiplet: c,
                        index: v,
                        dir: VlDir::Up,
                    }))
            }
            _ => false,
        };
        down || up
    }

    /// Reacts to a fault transition: packets whose selected vertical link
    /// just failed and whose crossing is still pending are *re-routed* if
    /// they are entirely at their source (a fresh VL selection, exactly
    /// like a new injection) and *lost* otherwise — a worm committed to a
    /// link cannot be re-steered mid-network without risking the VN
    /// rules, so its flits are removed with full credit restoration.
    /// Healed links strand nothing. Returns whether anything was removed.
    ///
    /// Ordering honours the [`RoutingAlgorithm::on_fault_change`]
    /// contract: stranded worms are removed first, then the algorithm is
    /// notified, and only then are still-queued packets re-routed through
    /// `on_inject` — so a fault-derived table rebuilt in the hook is
    /// already fresh when the re-selections (and the rest of the cycle's
    /// routing) consult it.
    fn handle_fault_transition(&mut self, cycle: u64) -> bool {
        // Classify every packet with flits in the network by the layer of
        // those flits: a traversal is pending while some flit has not yet
        // cleared it.
        #[derive(Default)]
        struct InNet {
            pending_down: bool,
            pending_up: bool,
        }
        let mut in_net: BTreeMap<PacketId, InNet> = BTreeMap::new();
        for idx in self.net.occupied() {
            let layer = self.sys.layer(NodeId(idx as u32));
            for slot in 0..SLOT_COUNT {
                for seg in self.net.segments(idx * SLOT_COUNT + slot) {
                    let info = &self.packets[seg.packet];
                    let e = in_net.entry(seg.packet).or_default();
                    // Down pending while a flit is still on the source
                    // chiplet; up pending while one is not yet on the
                    // destination chiplet. Segment granular: every flit of
                    // a span sits on the same router, so one probe covers
                    // them all.
                    if info.ctx.down_vl.is_some() && layer == self.sys.layer(info.src) {
                        e.pending_down = true;
                    }
                    if info.ctx.up_vl.is_some() && layer != self.sys.layer(info.dst) {
                        e.pending_up = true;
                    }
                }
            }
        }

        let mut drop_set: BTreeSet<PacketId> = BTreeSet::new();
        for (&pid, e) in &in_net {
            if self.packet_stranded(&self.packets[pid], e.pending_down, e.pending_up) {
                drop_set.insert(pid);
            }
        }
        // A partially-injected front packet has flits the in-network scan
        // cannot see (not yet injected): its tail has not left the source,
        // so *both* traversals are still pending regardless of where the
        // injected flits sit.
        for source in &self.sources {
            if source.flits_sent > 0 {
                if let Some(&pid) = source.queue.front() {
                    if self.packet_stranded(&self.packets[pid], true, true) {
                        drop_set.insert(pid);
                    }
                }
            }
        }

        // Remove stranded worms and let the algorithm refresh any
        // fault-derived state before anything re-selects against the new
        // fault set.
        let removed_flits = self.remove_packet_flits(&drop_set);
        self.alg.on_fault_change(self.sys, &self.faults);

        // Source queues: packets with no flit injected yet are still fresh
        // selections — re-route them; partially-injected fronts follow the
        // in-network verdict.
        let mut queue_losses = 0u64;
        for idx in 0..self.sources.len() {
            let queue = std::mem::take(&mut self.sources[idx].queue);
            let front_partial = self.sources[idx].flits_sent > 0;
            let mut kept = VecDeque::with_capacity(queue.len());
            for (i, pid) in queue.into_iter().enumerate() {
                if i == 0 && front_partial {
                    if drop_set.contains(&pid) {
                        self.sources[idx].flits_sent = 0;
                    } else {
                        kept.push_back(pid);
                    }
                    continue;
                }
                let info = &self.packets[pid];
                // Nothing injected: both traversals are pending.
                if !self.packet_stranded(info, true, true) {
                    kept.push_back(pid);
                    continue;
                }
                let (src, dst) = (info.src, info.dst);
                let seq = self.inject_seq[idx];
                self.inject_seq[idx] += 1;
                match self.alg.on_inject(self.sys, &self.faults, src, dst, seq) {
                    Ok(ctx) => {
                        let info = &mut self.packets[pid];
                        info.ctx = ctx;
                        info.inject_vn = ctx.vn;
                        kept.push_back(pid);
                    }
                    Err(_) => {
                        queue_losses += 1;
                        self.packets.release(pid);
                    }
                }
            }
            self.sources[idx].queue = kept;
        }
        // Queue membership changed out of band; re-derive the counter.
        self.packets_queued = self.sources.iter().map(|s| s.queue.len() as u64).sum();

        // Every dropped worm's flits and queue entries are gone; the
        // descriptor slots can be recycled. (Queue-loss slots were
        // released above — the two sets are disjoint: a queue loss never
        // had a flit in the network.)
        for &pid in &drop_set {
            self.packets.release(pid);
        }

        let lost = drop_set.len() as u64 + queue_losses;
        if lost > 0 {
            self.lost_in_flight += lost;
            self.epoch.lost_in_flight += lost;
            self.epoch.last_drop = Some(cycle);
        }
        removed_flits > 0 || queue_losses > 0
    }

    /// Debug-build invariant, checked after a clean drain: with no flit
    /// buffered and no packet queued, every buffer's routing state
    /// (`dest`/`granted`/`owner`), every output VC allocation, and every
    /// credit counter must be back to its idle value. The normal pipeline
    /// maintains this by construction; fault-transition packet removal is
    /// the one path that manipulates these structures out of band, and a
    /// leak there (a stale route, a lost credit) silently corrupts later
    /// traffic — this turns it into an immediate failure in every test.
    #[cfg(debug_assertions)]
    fn debug_check_quiescent(&self, deadlocked: bool) {
        let n = self.net.node_count();
        let in_flight: usize = (0..n).map(|r| self.net.occupancy(r)).sum();
        let queued: usize = self.sources.iter().map(|s| s.queue.len()).sum();
        if deadlocked || in_flight > 0 || queued > 0 {
            return; // saturated or wedged runs legitimately end non-idle
        }
        for idx in 0..n {
            debug_assert_eq!(
                self.net.occ(idx),
                0,
                "router {idx}: stale occupancy mask after drain"
            );
            let base = idx * SLOT_COUNT;
            for slot in 0..SLOT_COUNT {
                let k = base + slot;
                debug_assert!(
                    self.net.dest[k].is_none()
                        && !self.net.granted[k]
                        && self.net.owner[k].is_none(),
                    "router {idx} slot {slot}: stale routing state after drain \
                     (dest {:?}, granted {}, owner {:?})",
                    self.net.dest[k],
                    self.net.granted[k],
                    self.net.owner[k]
                );
                debug_assert!(
                    self.net.out_alloc[k].is_none(),
                    "router {idx} slot {slot}: stale VC allocation after drain"
                );
            }
            for port in 0..PORT_COUNT {
                if let Some((d, dp)) = self.links_out[idx][port] {
                    for vc in 0..VC_COUNT as u8 {
                        debug_assert_eq!(
                            self.net.credits[base + port * VC_COUNT + vc as usize],
                            self.net.ring_cap(d as usize * SLOT_COUNT + slot_of(dp, vc)) as u32,
                            "router {idx} out port {port} vc {vc}: credit leak after drain"
                        );
                    }
                }
            }
        }
        debug_assert_eq!(
            self.packets.live(),
            0,
            "descriptor leak after drain: {} live packet slots",
            self.packets.live()
        );
    }

    /// Removes every flit of the given packets from every buffer, keeping
    /// the flow-control state consistent: credits consumed by removed
    /// flits are returned upstream, and routing/VC-allocation state owned
    /// by a removed worm is released. Ownership is keyed on the slot's
    /// `owner`, not the front flit: a worm streaming *through* a buffer
    /// can leave it momentarily empty while still owning its route and
    /// grant.
    fn remove_packet_flits(&mut self, drop_set: &BTreeSet<PacketId>) -> usize {
        if drop_set.is_empty() {
            return 0;
        }
        let mut removed_total = 0usize;
        for r_idx in 0..self.net.node_count() {
            for port in 0..PORT_COUNT as u8 {
                for vc in 0..VC_COUNT as u8 {
                    let slot = slot_of(port, vc);
                    let k = r_idx * SLOT_COUNT + slot;
                    if self.net.owner[k].is_some_and(|p| drop_set.contains(&p)) {
                        // The owning worm holds the buffer's route and any
                        // downstream VC grant; both die with it.
                        if self.net.granted[k] {
                            if let Some((op, ovc)) = self.net.dest[k] {
                                let a = r_idx * SLOT_COUNT + slot_of(op, ovc);
                                if op != PORT_LOCAL && self.net.out_alloc[a] == Some((port, vc)) {
                                    self.net.out_alloc[a] = None;
                                }
                            }
                        }
                        self.net.dest[k] = None;
                        self.net.granted[k] = false;
                        self.net.owner[k] = None;
                    }
                    let removed = self.net.remove_packets(k, |p| drop_set.contains(&p));
                    if removed > 0 {
                        removed_total += removed as usize;
                        self.net.sync_occ(r_idx, slot);
                        // Each buffered flit holds one credit of the link
                        // feeding this input; hand them back.
                        if let Some((up, up_out)) = self.links_in[r_idx][port as usize] {
                            self.net.credits[up as usize * SLOT_COUNT + slot_of(up_out, vc)] +=
                                removed;
                        }
                    }
                }
            }
        }
        self.total_flits -= removed_total as u64;
        removed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_routing::{DeftRouting, MtrRouting, RcRouting};
    use deft_topo::{ChipletId, Coord, NodeAddr, VlDir, VlLinkId};
    use deft_traffic::Mixture;
    use deft_traffic::{uniform, TableTraffic};

    fn sys() -> ChipletSystem {
        ChipletSystem::baseline_4()
    }

    fn quick_cfg() -> SimConfig {
        SimConfig {
            warmup: 200,
            measure: 1_000,
            drain: 20_000,
            ..SimConfig::default()
        }
    }

    /// A pattern with a single flow src -> dst at the given rate.
    fn single_flow(s: &ChipletSystem, src: NodeId, dst: NodeId, rate: f64) -> TableTraffic {
        let n = s.node_count();
        let mut rates = vec![0.0; n];
        rates[src.index()] = rate;
        let mut dists: Vec<Mixture> = (0..n).map(|_| Mixture::empty()).collect();
        dists[src.index()] = Mixture::uniform(vec![dst]);
        TableTraffic::new("single", rates, dists)
    }

    /// The thread-safety contract the experiment campaign runner builds
    /// on: a fully-assembled simulator (system, faults, boxed algorithm,
    /// traffic tables, config) can live on a worker thread, and the
    /// config/report types cross thread boundaries freely. Compile-time
    /// only — if a non-`Send` field ever sneaks in, this stops building.
    #[test]
    fn simulator_config_and_report_are_thread_safe() {
        fn assert_send<T: Send>(_: &T) {}
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimConfig>();
        assert_send_sync::<SimReport>();
        let s = sys();
        let pattern = uniform(&s, 0.001);
        let sim = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            quick_cfg(),
        );
        assert_send(&sim);
    }

    #[test]
    fn zero_load_latency_matches_hops_plus_serialization() {
        let s = sys();
        let src = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(0, 0),
            ))
            .unwrap();
        let dst = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(3, 0),
            ))
            .unwrap();
        let pattern = single_flow(&s, src, dst, 0.001);
        let cfg = SimConfig {
            warmup: 0,
            measure: 3_000,
            ..quick_cfg()
        };
        let report = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::distance_based(&s)),
            &pattern,
            cfg,
        )
        .run();
        assert!(report.delivered > 0);
        // 3 hops; pipeline: inject(1) + per-hop 1 cycle + eject + 7 extra
        // tail flits. Zero-load latency = hops + packet_size + small const.
        let expect = 3.0 + 8.0;
        assert!(
            (report.avg_latency - expect).abs() <= 3.0,
            "zero-load latency {} vs expected ~{}",
            report.avg_latency,
            expect
        );
        assert!(!report.deadlocked);
    }

    #[test]
    fn cross_chiplet_zero_load_latency_is_minimal() {
        let s = sys();
        let src = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(1, 1),
            ))
            .unwrap();
        let dst = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(3)),
                Coord::new(2, 2),
            ))
            .unwrap();
        let pattern = single_flow(&s, src, dst, 0.0008);
        let cfg = SimConfig {
            warmup: 0,
            measure: 5_000,
            ..quick_cfg()
        };
        let report = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            cfg,
        )
        .run();
        assert!(report.delivered > 0);
        // Minimal inter-chiplet path here is ~14-18 hops depending on VL
        // choice; plus 8-flit serialization.
        assert!(
            report.avg_latency > 15.0 && report.avg_latency < 40.0,
            "latency {}",
            report.avg_latency
        );
    }

    #[test]
    fn all_algorithms_deliver_under_light_uniform_load() {
        let s = sys();
        let pattern = uniform(&s, 0.002);
        for alg in [
            Box::new(DeftRouting::new(&s)) as Box<dyn RoutingAlgorithm>,
            Box::new(MtrRouting::new(&s)),
            Box::new(RcRouting::new(&s)),
            Box::new(DeftRouting::distance_based(&s)),
            Box::new(DeftRouting::random_selection(&s, 5)),
        ] {
            let name = alg.name().to_owned();
            let report = Simulator::new(&s, FaultState::none(&s), alg, &pattern, quick_cfg()).run();
            assert!(!report.deadlocked, "{name} deadlocked");
            assert!(report.delivered > 0, "{name} delivered nothing");
            assert_eq!(
                report.dropped_unroutable, 0,
                "{name} dropped packets fault-free"
            );
            assert!(
                report.delivery_ratio() > 0.95,
                "{name} delivery ratio {}",
                report.delivery_ratio()
            );
        }
    }

    #[test]
    fn active_set_matches_dense_reference_including_timelines() {
        // The scheduler contract: skipping empty routers must not change a
        // single bit of the report — with and without mid-run fault
        // transitions (packet removal manipulates buffers out of band).
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let mk = || {
            Simulator::new(
                &s,
                FaultState::none(&s),
                Box::new(DeftRouting::distance_based(&s)),
                &pattern,
                quick_cfg(),
            )
        };
        assert_eq!(mk().run(), mk().run_dense_reference());

        let tl = deft_topo::FaultTimeline::burst(
            &s,
            &deft_topo::BurstConfig {
                bursts: 2,
                links_per_burst: 4,
                duration: 400,
                horizon: 1_200,
                seed: 11,
            },
        );
        assert_eq!(
            mk().with_timeline(&tl).run(),
            mk().with_timeline(&tl).run_dense_reference()
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let s = sys();
        let pattern = uniform(&s, 0.003);
        let run = || {
            Simulator::new(
                &s,
                FaultState::none(&s),
                Box::new(DeftRouting::new(&s)),
                &pattern,
                quick_cfg(),
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn faults_drop_packets_for_rc_but_not_deft() {
        let s = sys();
        let pattern = uniform(&s, 0.002);
        let mut faults = FaultState::none(&s);
        faults.inject(VlLinkId {
            chiplet: ChipletId(0),
            index: 0,
            dir: VlDir::Down,
        });
        faults.inject(VlLinkId {
            chiplet: ChipletId(1),
            index: 2,
            dir: VlDir::Up,
        });

        let deft_report = Simulator::new(
            &s,
            faults.clone(),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            quick_cfg(),
        )
        .run();
        assert_eq!(
            deft_report.dropped_unroutable, 0,
            "DeFT tolerates any 2-fault scenario"
        );
        assert_eq!(deft_report.reachability(), 1.0);

        let rc_report = Simulator::new(
            &s,
            faults,
            Box::new(RcRouting::new(&s)),
            &pattern,
            quick_cfg(),
        )
        .run();
        assert!(
            rc_report.dropped_unroutable > 0,
            "RC must drop designated-VL flows"
        );
        assert!(rc_report.reachability() < 1.0);
    }

    #[test]
    fn faulty_vls_carry_no_traffic() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let mut faults = FaultState::none(&s);
        faults.inject(VlLinkId {
            chiplet: ChipletId(2),
            index: 1,
            dir: VlDir::Down,
        });
        let report = Simulator::new(
            &s,
            faults,
            Box::new(DeftRouting::new(&s)),
            &pattern,
            quick_cfg(),
        )
        .run();
        assert_eq!(
            report.vl_flits.get(&(2, 1, true)).copied().unwrap_or(0),
            0,
            "flits crossed a faulty down link"
        );
        // Its up twin stays usable.
        assert!(report.vl_flits.get(&(2, 1, false)).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn deft_vc_usage_is_balanced_under_uniform_traffic() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let report = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            quick_cfg(),
        )
        .run();
        for (region, usage) in &report.vc_usage {
            let p = usage.vc0_percent();
            assert!(
                (40.0..=60.0).contains(&p),
                "{region}: VC0 share {p}% too skewed for DeFT under uniform traffic"
            );
        }
    }

    #[test]
    fn mtr_vc_usage_is_skewed() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let report = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(MtrRouting::new(&s)),
            &pattern,
            quick_cfg(),
        )
        .run();
        let interposer = report.vc_usage.get(&Region::Interposer).unwrap();
        assert!(
            interposer.vc0_percent() > 90.0,
            "MTR keeps interposer traffic in VC0, got {}%",
            interposer.vc0_percent()
        );
    }

    #[test]
    fn rc_store_and_forward_adds_latency() {
        let s = sys();
        let src = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(1, 1),
            ))
            .unwrap();
        let dst = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(1)),
                Coord::new(1, 1),
            ))
            .unwrap();
        let pattern = single_flow(&s, src, dst, 0.0008);
        let cfg = SimConfig {
            warmup: 0,
            measure: 5_000,
            ..quick_cfg()
        };
        let mtr = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(MtrRouting::new(&s)),
            &pattern,
            cfg,
        )
        .run();
        let rc = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(RcRouting::new(&s)),
            &pattern,
            cfg,
        )
        .run();
        assert!(
            rc.avg_latency > mtr.avg_latency + (SimConfig::default().packet_size - 2) as f64 * 0.5,
            "RC ({}) must pay a store-and-forward penalty over MTR ({})",
            rc.avg_latency,
            mtr.avg_latency
        );
    }

    #[test]
    fn vl_serialization_slows_inter_chiplet_flows_only() {
        let s = sys();
        let src = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(1, 1),
            ))
            .unwrap();
        let dst = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(1)),
                Coord::new(1, 1),
            ))
            .unwrap();
        let pattern = single_flow(&s, src, dst, 0.0008);
        let run = |ser: u64| {
            let cfg = SimConfig {
                warmup: 0,
                measure: 5_000,
                vl_serialization: ser,
                ..quick_cfg()
            };
            Simulator::new(
                &s,
                FaultState::none(&s),
                Box::new(DeftRouting::distance_based(&s)),
                &pattern,
                cfg,
            )
            .run()
        };
        let full = run(1);
        let serial4 = run(4);
        // An 8-flit packet crosses two VLs; at 1 flit per 4 cycles each
        // crossing stretches by ~3x7 cycles.
        assert!(
            serial4.avg_latency > full.avg_latency + 20.0,
            "serialized {} vs full-width {}",
            serial4.avg_latency,
            full.avg_latency
        );
        assert!(!serial4.deadlocked);

        // Intra-chiplet flows are untouched by VL serialization.
        let dst_local = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(3, 3),
            ))
            .unwrap();
        let local = single_flow(&s, src, dst_local, 0.0008);
        let cfg = SimConfig {
            warmup: 0,
            measure: 5_000,
            vl_serialization: 8,
            ..quick_cfg()
        };
        let r = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::distance_based(&s)),
            &local,
            cfg,
        )
        .run();
        assert!(
            r.avg_latency < 20.0,
            "intra-chiplet latency {}",
            r.avg_latency
        );
    }

    #[test]
    fn empty_timeline_matches_static_run_with_one_epoch() {
        let s = sys();
        let pattern = uniform(&s, 0.003);
        let mk = || {
            Simulator::new(
                &s,
                FaultState::none(&s),
                Box::new(DeftRouting::new(&s)),
                &pattern,
                quick_cfg(),
            )
        };
        let static_rep = mk().run();
        let tl = deft_topo::FaultTimeline::empty();
        let timeline_rep = mk().with_timeline(&tl).run();
        assert_eq!(static_rep.delivered, timeline_rep.delivered);
        assert_eq!(static_rep.avg_latency, timeline_rep.avg_latency);
        assert_eq!(static_rep.cycles, timeline_rep.cycles);
        assert!(static_rep.epochs.is_empty(), "static runs record no epochs");
        assert_eq!(timeline_rep.epochs.len(), 1);
        let e = &timeline_rep.epochs[0];
        assert_eq!(e.start_cycle, 0);
        assert_eq!(e.end_cycle, timeline_rep.cycles);
        assert_eq!(e.generated, timeline_rep.generated_total);
        assert_eq!(e.delivered, timeline_rep.delivered);
        assert_eq!(timeline_rep.lost_in_flight, 0);
    }

    #[test]
    fn a_cycle_zero_transition_opens_no_degenerate_epoch() {
        use deft_topo::{FaultEvent, FaultEventKind, FaultTimeline};
        let s = sys();
        let link = VlLinkId {
            chiplet: ChipletId(0),
            index: 1,
            dir: VlDir::Down,
        };
        let tl = FaultTimeline::from_events(vec![
            FaultEvent {
                cycle: 0,
                kind: FaultEventKind::Inject,
                link,
            },
            FaultEvent {
                cycle: 300,
                kind: FaultEventKind::Heal,
                link,
            },
        ]);
        let pattern = uniform(&s, 0.002);
        let rep = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            quick_cfg(),
        )
        .with_timeline(&tl)
        .run();
        // Two epochs, not three: the cycle-0 inject replaces the opening
        // epoch instead of closing an empty [0, 0) window.
        assert_eq!(rep.epochs.len(), 2);
        assert_eq!(rep.epochs[0].start_cycle, 0);
        assert_eq!(rep.epochs[0].faulty_links, 1);
        assert_eq!(rep.epochs[0].end_cycle, 300);
        assert_eq!(rep.epochs[1].faulty_links, 0);
        assert!(!rep.deadlocked);
    }

    #[test]
    fn rc_drops_during_a_transient_fault_while_deft_recovers() {
        use deft_topo::{FaultEvent, FaultEventKind, FaultTimeline};
        let s = sys();
        let src = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(1, 1),
            ))
            .unwrap();
        let dst = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(1)),
                Coord::new(1, 1),
            ))
            .unwrap();
        // Fault RC's designated down VL for this flow mid-measurement.
        let el = deft_routing::RoutingAlgorithm::eligibility(&RcRouting::new(&s), &s, src, dst);
        let (c, mask) = el.down.unwrap();
        let link = VlLinkId {
            chiplet: c,
            index: mask.trailing_zeros() as u8,
            dir: VlDir::Down,
        };
        let tl = FaultTimeline::from_events(vec![
            FaultEvent {
                cycle: 400,
                kind: FaultEventKind::Inject,
                link,
            },
            FaultEvent {
                cycle: 1_400,
                kind: FaultEventKind::Heal,
                link,
            },
        ]);
        let pattern = single_flow(&s, src, dst, 0.01);
        let cfg = SimConfig {
            warmup: 0,
            measure: 2_500,
            drain: 20_000,
            ..SimConfig::default()
        };
        let run = |alg: Box<dyn RoutingAlgorithm>| {
            Simulator::new(&s, FaultState::none(&s), alg, &pattern, cfg)
                .with_timeline(&tl)
                .run()
        };
        let rc = run(Box::new(RcRouting::new(&s)));
        assert!(!rc.deadlocked);
        assert_eq!(rc.epochs.len(), 3, "before / during / after the fault");
        assert!(
            rc.epochs[1].dropped_unroutable > 0,
            "RC has no alternative to its designated VL"
        );
        assert_eq!(
            rc.epochs[2].dropped_unroutable, 0,
            "healing restores RC's designated VL"
        );
        assert!(rc.epochs[2].delivered > 0);
        // RC never recovers within the fault epoch: drops persist to its end.
        assert!(rc.epochs[1].recovery_latency() > 900);

        let deft = run(Box::new(DeftRouting::new(&s)));
        assert!(!deft.deadlocked);
        assert_eq!(
            deft.dropped_unroutable, 0,
            "DeFT re-selects among healthy VLs at injection"
        );
        assert!(
            deft.total_losses() < rc.total_losses(),
            "DeFT ({}) must lose strictly fewer packets than RC ({})",
            deft.total_losses(),
            rc.total_losses()
        );
        assert!(deft.delivered > 0);
    }

    #[test]
    fn in_flight_packets_on_a_failing_vl_are_lost_but_network_survives() {
        use deft_topo::{FaultEvent, FaultEventKind, FaultTimeline};
        let s = sys();
        let src = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(0, 0),
            ))
            .unwrap();
        let dst = s
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(2)),
                Coord::new(2, 2),
            ))
            .unwrap();
        // Just under the 1-flit-per-cycle injection bandwidth (8-flit
        // packets): the selected VL carries a near-continuous worm train,
        // so the fault instant is guaranteed to catch worms mid-flight.
        let pattern = single_flow(&s, src, dst, 0.12);
        let cfg = SimConfig {
            warmup: 0,
            measure: 1_500,
            drain: 20_000,
            ..SimConfig::default()
        };
        // Find the down VL this (deterministic) flow actually crosses.
        let probe = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::distance_based(&s)),
            &pattern,
            cfg,
        )
        .run();
        let (&(chiplet, index, _), _) = probe
            .vl_flits
            .iter()
            .filter(|(&(_, _, down), _)| down)
            .max_by_key(|(_, &n)| n)
            .expect("flow crosses a down VL");
        let link = VlLinkId {
            chiplet: ChipletId(chiplet),
            index,
            dir: VlDir::Down,
        };
        // Fail it mid-stream, heal late.
        let tl = FaultTimeline::from_events(vec![
            FaultEvent {
                cycle: 700,
                kind: FaultEventKind::Inject,
                link,
            },
            FaultEvent {
                cycle: 1_300,
                kind: FaultEventKind::Heal,
                link,
            },
        ]);
        let rep = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::distance_based(&s)),
            &pattern,
            cfg,
        )
        .with_timeline(&tl)
        .run();
        assert!(!rep.deadlocked, "packet removal must not wedge the network");
        assert!(
            rep.lost_in_flight > 0,
            "a saturated VL must strand worms when it fails"
        );
        // Distance-based selection falls back to another VL: traffic keeps
        // flowing during the fault and completes after it.
        assert_eq!(rep.dropped_unroutable, 0);
        assert!(rep.delivered > 0);
        assert_eq!(rep.epochs.len(), 3);
        assert!(rep.epochs[1].delivered > 0, "re-selection keeps delivering");
        // Epochs partition the run and their counters sum to the totals.
        assert_eq!(rep.epochs[0].start_cycle, 0);
        for w in rep.epochs.windows(2) {
            assert_eq!(w[0].end_cycle, w[1].start_cycle);
        }
        assert_eq!(rep.epochs.last().unwrap().end_cycle, rep.cycles);
        assert_eq!(
            rep.epochs.iter().map(|e| e.generated).sum::<u64>(),
            rep.generated_total
        );
        assert_eq!(
            rep.epochs.iter().map(|e| e.delivered).sum::<u64>(),
            rep.delivered
        );
        assert_eq!(
            rep.epochs.iter().map(|e| e.lost_in_flight).sum::<u64>(),
            rep.lost_in_flight
        );
    }

    #[test]
    fn timeline_runs_are_deterministic() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let tl = deft_topo::FaultTimeline::burst(
            &s,
            &deft_topo::BurstConfig {
                bursts: 2,
                links_per_burst: 4,
                duration: 400,
                horizon: 1_200,
                seed: 11,
            },
        );
        let run = || {
            Simulator::new(
                &s,
                FaultState::none(&s),
                Box::new(DeftRouting::new(&s)),
                &pattern,
                quick_cfg(),
            )
            .with_timeline(&tl)
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.lost_in_flight, b.lost_in_flight);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(ea.generated, eb.generated);
            assert_eq!(ea.delivered, eb.delivered);
            assert_eq!(ea.losses(), eb.losses());
        }
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let r = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            quick_cfg(),
        )
        .run();
        assert!(r.p50_latency as f64 <= r.avg_latency * 1.5);
        assert!(r.p50_latency <= r.p95_latency);
        assert!(r.p95_latency <= r.p99_latency);
        assert!(r.p99_latency <= r.max_latency);
        assert!(r.p50_latency > 0);
    }

    #[test]
    fn saturation_raises_latency() {
        let s = sys();
        let low = uniform(&s, 0.001);
        let high = uniform(&s, 0.02);
        let mk = |p: &TableTraffic| {
            Simulator::new(
                &s,
                FaultState::none(&s),
                Box::new(DeftRouting::new(&s)),
                p,
                SimConfig {
                    warmup: 200,
                    measure: 800,
                    drain: 5_000,
                    ..SimConfig::default()
                },
            )
            .run()
        };
        let r_low = mk(&low);
        let r_high = mk(&high);
        assert!(
            r_high.avg_latency > 1.5 * r_low.avg_latency,
            "high load {} vs low load {}",
            r_high.avg_latency,
            r_low.avg_latency
        );
        assert!(!r_high.deadlocked, "congestion must not deadlock DeFT");
    }

    /// The tentpole guarantee: pause at cycle N, snapshot, restore into a
    /// freshly-built simulator, and the resumed run's final report is
    /// identical to the uninterrupted run — and to the dense reference.
    #[test]
    fn snapshot_resume_matches_straight_through_run() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let mk = || {
            Simulator::new(
                &s,
                FaultState::none(&s),
                Box::new(DeftRouting::new(&s)),
                &pattern,
                quick_cfg(),
            )
        };
        let straight = mk().run();
        let dense = mk().run_dense_reference();
        assert_eq!(straight, dense);

        let mut first = mk();
        first.start();
        assert!(!first.advance_to(700), "quick run must outlast cycle 700");
        assert_eq!(first.cycle(), 700);
        let snap = first.snapshot();

        let mut resumed = mk();
        resumed.resume_from(&snap).expect("snapshot restores");
        assert_eq!(resumed.cycle(), 700);
        // Restoring is lossless: the resumed state re-encodes to the very
        // same bytes.
        assert_eq!(resumed.snapshot(), snap);
        assert_eq!(resumed.finish(), straight);
    }

    /// Same guarantee under a transient fault timeline: the snapshot
    /// carries fault state, cursor position, and routing-table state
    /// across the pause.
    #[test]
    fn snapshot_resume_is_exact_across_fault_transitions() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let tl = deft_topo::FaultTimeline::burst(
            &s,
            &deft_topo::BurstConfig {
                bursts: 2,
                links_per_burst: 4,
                duration: 400,
                horizon: 1_100,
                seed: 11,
            },
        );
        let mk = || {
            Simulator::new(
                &s,
                FaultState::none(&s),
                Box::new(DeftRouting::new(&s)),
                &pattern,
                quick_cfg(),
            )
            .with_timeline(&tl)
        };
        let straight = mk().run();

        // Pause points straddling the bursts' inject/heal transitions.
        for pause in [400u64, 900, 1_150] {
            let mut first = mk();
            first.start();
            assert!(!first.advance_to(pause));
            let snap = first.snapshot();
            let mut resumed = mk();
            resumed.resume_from(&snap).expect("snapshot restores");
            assert_eq!(resumed.snapshot(), snap);
            assert_eq!(resumed.finish(), straight, "paused at {pause}");
        }
    }

    /// A fork is a faithful branch: running the fork to completion gives
    /// the parent's report, and the parent is unaffected by the fork
    /// running ahead.
    #[test]
    fn fork_matches_parent_continuation() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let mut parent = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            quick_cfg(),
        );
        parent.start();
        assert!(!parent.advance_to(600));
        let fork = parent.fork();
        let fork_report = fork.finish();
        let parent_report = parent.finish();
        assert_eq!(fork_report, parent_report);
    }

    /// `fork_with_timeline` branches a fault future off a shared prefix:
    /// the branch sees the injected faults (loses packets) while the
    /// parent continues fault-free, and the branch's epochs restart at
    /// the fork cycle.
    #[test]
    fn fork_with_timeline_diverges_from_parent() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let mut parent = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            quick_cfg(),
        );
        parent.start();
        assert!(!parent.advance_to(600));
        let tl = deft_topo::FaultTimeline::burst(
            &s,
            &deft_topo::BurstConfig {
                bursts: 1,
                links_per_burst: 6,
                duration: 300,
                horizon: 500,
                seed: 3,
            },
        )
        .shifted(600);
        let branch = parent.fork_with_timeline(&tl);
        let branch_report = branch.finish();
        let parent_report = parent.finish();
        assert_ne!(branch_report, parent_report);
        assert_eq!(
            branch_report.epochs.first().map(|e| e.start_cycle),
            Some(600),
            "branch epochs restart at the fork cycle"
        );
        assert!(
            branch_report.epochs.len() > 1,
            "the branch timeline's transitions open new epochs"
        );
        assert!(
            parent_report.epochs.is_empty(),
            "the timeline-free parent records no epochs"
        );
    }

    /// Resume refuses state from a differently-assembled simulator with a
    /// descriptive `Mismatch` instead of silently misbehaving.
    #[test]
    fn resume_rejects_mismatched_setup() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let mut sim = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            quick_cfg(),
        );
        sim.start();
        sim.advance_to(500);
        let snap = sim.snapshot();

        // Wrong algorithm.
        let mut other = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(MtrRouting::new(&s)),
            &pattern,
            quick_cfg(),
        );
        assert!(matches!(
            other.resume_from(&snap),
            Err(CodecError::Mismatch(_))
        ));

        // Wrong config.
        let mut other = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            SimConfig {
                warmup: 999,
                ..quick_cfg()
            },
        );
        assert!(matches!(
            other.resume_from(&snap),
            Err(CodecError::Mismatch(_))
        ));

        // Wrong traffic pattern.
        let other_pattern = uniform(&s, 0.009);
        let mut other = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &other_pattern,
            quick_cfg(),
        );
        assert!(matches!(
            other.resume_from(&snap),
            Err(CodecError::Mismatch(_))
        ));

        // Missing timeline: snapshot was taken without one, resuming sim
        // has one attached.
        let tl = deft_topo::FaultTimeline::empty();
        let mut other = Simulator::new(
            &s,
            FaultState::none(&s),
            Box::new(DeftRouting::new(&s)),
            &pattern,
            quick_cfg(),
        )
        .with_timeline(&tl);
        assert!(matches!(
            other.resume_from(&snap),
            Err(CodecError::Mismatch(_))
        ));
    }

    /// Corrupt snapshot bytes surface as typed codec errors, never a
    /// panic or a silently-wrong simulator.
    #[test]
    fn resume_rejects_corrupt_bytes() {
        let s = sys();
        let pattern = uniform(&s, 0.004);
        let mk = || {
            Simulator::new(
                &s,
                FaultState::none(&s),
                Box::new(DeftRouting::new(&s)),
                &pattern,
                quick_cfg(),
            )
        };
        let mut sim = mk();
        sim.start();
        sim.advance_to(500);
        let snap = sim.snapshot();

        // Truncated.
        assert!(matches!(
            mk().resume_from(&snap[..snap.len() - 3]),
            Err(CodecError::Truncated { .. })
        ));
        // Bad magic.
        let mut bad = snap.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            mk().resume_from(&bad),
            Err(CodecError::BadMagic { .. })
        ));
        // Wrong format version.
        let mut bad = snap.clone();
        bad[8] = bad[8].wrapping_add(1);
        assert!(matches!(
            mk().resume_from(&bad),
            Err(CodecError::WrongVersion { .. })
        ));
        // Flipped payload byte fails the section checksum.
        let mut bad = snap.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        let err = mk().resume_from(&bad).unwrap_err();
        assert!(
            matches!(
                err,
                CodecError::Checksum { .. }
                    | CodecError::Invalid(_)
                    | CodecError::Mismatch(_)
                    | CodecError::Truncated { .. }
                    | CodecError::UnexpectedSection { .. }
            ),
            "flipped byte must yield a typed error, got {err:?}"
        );
    }
}
