//! Flits, packet descriptors, and the slab arena that owns them.

use deft_codec::{CodecError, Decoder, Encoder, Persist};
use deft_routing::RouteCtx;
use deft_topo::NodeId;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense per-run packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl PacketId {
    /// The ID as an index into the packet table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One flow-control unit. Wormhole switching moves packets as a train of
/// flits; only the head carries routing work, the rest follow the worm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Whether this is the first flit of the packet.
    pub is_head: bool,
    /// Whether this is the last flit of the packet.
    pub is_tail: bool,
}

impl Flit {
    /// Builds the flit train of a packet of `size` flits.
    pub fn train(packet: PacketId, size: usize) -> impl Iterator<Item = Flit> {
        (0..size).map(move |i| Flit {
            packet,
            is_head: i == 0,
            is_tail: i == size - 1,
        })
    }
}

/// Per-packet simulation state.
#[derive(Debug, Clone)]
pub struct PacketInfo {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Mutable routing state (VN, selected VLs).
    pub ctx: RouteCtx,
    /// The VN assigned at injection, latched separately from `ctx.vn`: the
    /// head flit mutates `ctx.vn` as it crosses VN-switch points while the
    /// source is still injecting the packet's remaining flits, and those
    /// flits must keep entering the local buffer of the *original* VN.
    pub inject_vn: deft_routing::Vn,
    /// Cycle the packet was generated (latency is measured from here, so
    /// source-queue time counts, as in Noxim).
    pub generated_at: u64,
    /// Whether the packet was generated inside the measurement window.
    pub measured: bool,
}

impl Persist for PacketInfo {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.src.0);
        enc.put_u32(self.dst.0);
        self.ctx.encode(enc);
        self.inject_vn.encode(enc);
        enc.put_u64(self.generated_at);
        enc.put_bool(self.measured);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            src: NodeId(dec.get_u32()?),
            dst: NodeId(dec.get_u32()?),
            ctx: RouteCtx::decode(dec)?,
            inject_vn: deft_routing::Vn::decode(dec)?,
            generated_at: dec.get_u64()?,
            measured: dec.get_bool()?,
        })
    }
}

/// Slab arena of in-flight packet descriptors.
///
/// Every live packet — source-queued, streaming through the network, or
/// draining — owns one slot; a [`PacketId`] *is* the slot index. Slots are
/// recycled through a free list when the tail ejects (or the packet is
/// lost at a fault transition), so the arena's footprint is bounded by
/// the peak number of simultaneously-live packets instead of growing with
/// every packet ever generated — the difference between O(live) and
/// O(run length) memory on production-scale runs.
///
/// Recycling is deterministic (LIFO over the free list), and nothing in
/// the engine compares `PacketId`s across lifetimes, so reuse cannot
/// change simulated behaviour — the differential and golden tests pin
/// that.
#[derive(Debug, Default, Clone)]
pub struct PacketArena {
    slots: Vec<PacketInfo>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a descriptor and returns its id, reusing a freed slot when
    /// one exists.
    pub fn alloc(&mut self, info: PacketInfo) -> PacketId {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = info;
                PacketId(slot as u64)
            }
            None => {
                let id = PacketId(self.slots.len() as u64);
                self.slots.push(info);
                id
            }
        }
    }

    /// Releases a descriptor for reuse. The caller must guarantee no
    /// segment, queue entry, or ownership field still references `id`.
    pub fn release(&mut self, id: PacketId) {
        debug_assert!(!self.free.contains(&(id.0 as u32)), "double release");
        self.free.push(id.0 as u32);
        self.live -= 1;
    }

    /// Descriptors currently live.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak simultaneously-live descriptors (the arena's footprint).
    pub fn peak(&self) -> usize {
        self.slots.len()
    }
}

/// Arena snapshots are *verbatim*: every slot is encoded, including freed
/// ones still holding their last descriptor. Freed-slot contents are never
/// read back by the engine, but preserving them keeps a resumed arena
/// byte-identical to the original under re-encoding, which is what the
/// snapshot round-trip tests pin.
impl Persist for PacketArena {
    fn encode(&self, enc: &mut Encoder) {
        self.slots.encode(enc);
        self.free.encode(enc);
        enc.put_usize(self.live);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let slots = Vec::<PacketInfo>::decode(dec)?;
        let free = Vec::<u32>::decode(dec)?;
        let live = dec.get_usize()?;
        if live + free.len() != slots.len() {
            return Err(CodecError::Invalid(format!(
                "arena books {live} live + {} free slots against {} stored",
                free.len(),
                slots.len()
            )));
        }
        if free.iter().any(|&s| s as usize >= slots.len()) {
            return Err(CodecError::Invalid(
                "arena free list points past the slot table".into(),
            ));
        }
        Ok(Self { slots, free, live })
    }
}

impl Index<PacketId> for PacketArena {
    type Output = PacketInfo;
    #[inline]
    fn index(&self, id: PacketId) -> &PacketInfo {
        &self.slots[id.index()]
    }
}

impl IndexMut<PacketId> for PacketArena {
    #[inline]
    fn index_mut(&mut self, id: PacketId) -> &mut PacketInfo {
        &mut self.slots[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_routing::Vn;

    #[test]
    fn train_marks_head_and_tail() {
        let flits: Vec<Flit> = Flit::train(PacketId(3), 4).collect();
        assert_eq!(flits.len(), 4);
        assert!(flits[0].is_head && !flits[0].is_tail);
        assert!(!flits[1].is_head && !flits[1].is_tail);
        assert!(flits[3].is_tail && !flits[3].is_head);
        assert!(flits.iter().all(|f| f.packet == PacketId(3)));
    }

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        let flits: Vec<Flit> = Flit::train(PacketId(0), 1).collect();
        assert_eq!(flits.len(), 1);
        assert!(flits[0].is_head && flits[0].is_tail);
    }

    fn info(src: u32) -> PacketInfo {
        PacketInfo {
            src: NodeId(src),
            dst: NodeId(0),
            ctx: RouteCtx::local(Vn::Vn0),
            inject_vn: Vn::Vn0,
            generated_at: 0,
            measured: false,
        }
    }

    #[test]
    fn arena_recycles_slots_lifo() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(info(1));
        let b = arena.alloc(info(2));
        assert_eq!((a, b), (PacketId(0), PacketId(1)));
        assert_eq!(arena.live(), 2);
        arena.release(a);
        assert_eq!(arena.live(), 1);
        // The freed slot is reused before the arena grows.
        let c = arena.alloc(info(3));
        assert_eq!(c, a);
        assert_eq!(arena[c].src, NodeId(3));
        assert_eq!(arena[b].src, NodeId(2));
        assert_eq!(arena.peak(), 2);
        arena[b].measured = true;
        assert!(arena[b].measured);
    }

    #[test]
    fn arena_footprint_is_peak_live_not_total_allocated() {
        let mut arena = PacketArena::new();
        for round in 0..100u32 {
            let id = arena.alloc(info(round));
            arena.release(id);
        }
        assert_eq!(arena.peak(), 1, "one slot serves 100 sequential packets");
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn packet_info_is_constructible() {
        let info = PacketInfo {
            src: NodeId(1),
            dst: NodeId(2),
            ctx: RouteCtx::local(Vn::Vn0),
            inject_vn: Vn::Vn0,
            generated_at: 10,
            measured: true,
        };
        assert_eq!(info.ctx.vn, Vn::Vn0);
        assert_eq!(PacketId(9).index(), 9);
        assert_eq!(PacketId(9).to_string(), "p9");
    }
}
