//! Flits and packet bookkeeping.

use deft_routing::RouteCtx;
use deft_topo::NodeId;
use std::fmt;

/// Dense per-run packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl PacketId {
    /// The ID as an index into the packet table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One flow-control unit. Wormhole switching moves packets as a train of
/// flits; only the head carries routing work, the rest follow the worm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Whether this is the first flit of the packet.
    pub is_head: bool,
    /// Whether this is the last flit of the packet.
    pub is_tail: bool,
}

impl Flit {
    /// Builds the flit train of a packet of `size` flits.
    pub fn train(packet: PacketId, size: usize) -> impl Iterator<Item = Flit> {
        (0..size).map(move |i| Flit {
            packet,
            is_head: i == 0,
            is_tail: i == size - 1,
        })
    }
}

/// Per-packet simulation state.
#[derive(Debug, Clone)]
pub struct PacketInfo {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Mutable routing state (VN, selected VLs).
    pub ctx: RouteCtx,
    /// The VN assigned at injection, latched separately from `ctx.vn`: the
    /// head flit mutates `ctx.vn` as it crosses VN-switch points while the
    /// source is still injecting the packet's remaining flits, and those
    /// flits must keep entering the local buffer of the *original* VN.
    pub inject_vn: deft_routing::Vn,
    /// Cycle the packet was generated (latency is measured from here, so
    /// source-queue time counts, as in Noxim).
    pub generated_at: u64,
    /// Whether the packet was generated inside the measurement window.
    pub measured: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use deft_routing::Vn;

    #[test]
    fn train_marks_head_and_tail() {
        let flits: Vec<Flit> = Flit::train(PacketId(3), 4).collect();
        assert_eq!(flits.len(), 4);
        assert!(flits[0].is_head && !flits[0].is_tail);
        assert!(!flits[1].is_head && !flits[1].is_tail);
        assert!(flits[3].is_tail && !flits[3].is_head);
        assert!(flits.iter().all(|f| f.packet == PacketId(3)));
    }

    #[test]
    fn single_flit_packet_is_head_and_tail() {
        let flits: Vec<Flit> = Flit::train(PacketId(0), 1).collect();
        assert_eq!(flits.len(), 1);
        assert!(flits[0].is_head && flits[0].is_tail);
    }

    #[test]
    fn packet_info_is_constructible() {
        let info = PacketInfo {
            src: NodeId(1),
            dst: NodeId(2),
            ctx: RouteCtx::local(Vn::Vn0),
            inject_vn: Vn::Vn0,
            generated_at: 10,
            measured: true,
        };
        assert_eq!(info.ctx.vn, Vn::Vn0);
        assert_eq!(PacketId(9).index(), 9);
        assert_eq!(PacketId(9).to_string(), "p9");
    }
}
