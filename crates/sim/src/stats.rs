//! Simulation statistics and the end-of-run report.

use deft_codec::{CodecError, Decoder, Encoder, Persist};
use deft_topo::{ChipletId, ChipletSystem, Layer, NodeId};
use std::collections::BTreeMap;

/// A statistics region: one chiplet or the interposer (the paper's Fig. 5
/// x-axis groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Region {
    /// The interposer layer.
    Interposer,
    /// One chiplet.
    Chiplet(u8),
}

impl Region {
    /// The region a node belongs to.
    pub fn of(sys: &ChipletSystem, node: NodeId) -> Region {
        match sys.layer(node) {
            Layer::Interposer => Region::Interposer,
            Layer::Chiplet(ChipletId(c)) => Region::Chiplet(c),
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Interposer => f.write_str("Intrpsr."),
            Region::Chiplet(c) => write!(f, "Chip.-{}", c + 1),
        }
    }
}

/// Per-region VC-utilization counters (buffer writes per VC).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VcUsage {
    /// Flits written into VC0 buffers.
    pub vc0: u64,
    /// Flits written into VC1 buffers.
    pub vc1: u64,
}

impl VcUsage {
    /// VC0's share of the region's traffic, in percent (Fig. 5). Returns
    /// 50.0 for an idle region.
    pub fn vc0_percent(&self) -> f64 {
        let total = self.vc0 + self.vc1;
        if total == 0 {
            50.0
        } else {
            100.0 * self.vc0 as f64 / total as f64
        }
    }
}

/// An exact latency histogram: one counter per latency value (cycles).
///
/// Replaces the full per-packet latency history the simulator used to keep:
/// memory is bounded by the *maximum observed latency* (itself bounded by
/// the run length in cycles) instead of by the delivered-packet count, and
/// recording is a counter increment instead of a Vec push. Percentiles are
/// reproduced **exactly** as the old sort-and-index computation
/// (`sorted[round((n - 1) · p)]`): the histogram walk returns the value at
/// the same rank.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    /// `counts[l]` = delivered measured packets with latency `l` cycles.
    counts: Vec<u64>,
    /// Total recorded samples (the histogram's mass).
    total: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample, growing the value axis if needed.
    pub fn record(&mut self, latency: u64) {
        let idx = latency as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The `p`-quantile (0.0 ≤ `p` ≤ 1.0) under the legacy nearest-rank
    /// convention: the value at sorted index `round((total - 1) · p)`.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total - 1) as f64 * p).round() as u64;
        let mut seen = 0u64;
        for (value, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen > rank {
                return value as u64;
            }
        }
        // Unreachable with a consistent `total`; fall back to the max bin.
        self.counts.len().saturating_sub(1) as u64
    }

    /// All `N` quantiles of one report in a *single* histogram walk,
    /// under the same nearest-rank convention as
    /// [`percentile`](Self::percentile). The report path asks for
    /// p50/p95/p99 together; walking the value axis once instead of three
    /// times matters when the axis is long (its length is the maximum
    /// observed latency, which grows with congested runs).
    pub fn percentiles<const N: usize>(&self, ps: [f64; N]) -> [u64; N] {
        let mut out = [0u64; N];
        if self.total == 0 {
            return out;
        }
        // Ranks are monotone in p for sorted inputs; resolve each requested
        // quantile as the walk's running mass passes its rank. Unsorted
        // inputs just pay one comparison per unresolved quantile per bin.
        let ranks: [u64; N] = ps.map(|p| ((self.total - 1) as f64 * p).round() as u64);
        let mut resolved = [false; N];
        let mut remaining = N;
        let mut seen = 0u64;
        for (value, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            seen += count;
            for i in 0..N {
                if !resolved[i] && seen > ranks[i] {
                    out[i] = value as u64;
                    resolved[i] = true;
                    remaining -= 1;
                }
            }
            if remaining == 0 {
                break;
            }
        }
        let max_bin = self.counts.len().saturating_sub(1) as u64;
        for i in 0..N {
            if !resolved[i] {
                out[i] = max_bin;
            }
        }
        out
    }
}

impl Persist for VcUsage {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.vc0);
        enc.put_u64(self.vc1);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            vc0: dec.get_u64()?,
            vc1: dec.get_u64()?,
        })
    }
}

impl Persist for LatencyHistogram {
    fn encode(&self, enc: &mut Encoder) {
        self.counts.encode(enc);
        enc.put_u64(self.total);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let counts = Vec::<u64>::decode(dec)?;
        let total = dec.get_u64()?;
        if counts.iter().sum::<u64>() != total {
            return Err(CodecError::Invalid(format!(
                "latency histogram mass disagrees with its total {total}"
            )));
        }
        Ok(Self { counts, total })
    }
}

/// Statistics for one *fault epoch*: the window between two consecutive
/// fault-timeline transitions (or between a run boundary and the nearest
/// transition). Recorded only for runs driven by a
/// [`FaultTimeline`](deft_topo::FaultTimeline); see
/// [`Simulator::with_timeline`](crate::Simulator::with_timeline).
///
/// Comparing consecutive epochs gives the latency and loss picture
/// *before, during, and after* each fault transition, which is what the
/// recovery experiments aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// First cycle of the epoch (the transition cycle, or 0).
    pub start_cycle: u64,
    /// One past the last cycle of the epoch (the next transition cycle,
    /// or the run's final cycle).
    pub end_cycle: u64,
    /// Faulty unidirectional links throughout the epoch.
    pub faulty_links: usize,
    /// Packets generated during the epoch.
    pub generated: u64,
    /// Measured packets delivered during the epoch.
    pub delivered: u64,
    /// Packets found unroutable at injection during the epoch.
    pub dropped_unroutable: u64,
    /// Packets lost *in flight* during the epoch: they were already in
    /// the network (or source queue) when a transition made their
    /// selected vertical link faulty, and could not be re-routed.
    pub lost_in_flight: u64,
    /// Sum of delivered measured latencies (cycles) within the epoch.
    pub latency_sum: u64,
    /// Cycle of the last packet loss (either kind) within the epoch, if
    /// any. Drives [`recovery_latency`](Self::recovery_latency).
    pub last_drop_cycle: Option<u64>,
}

impl EpochStats {
    /// Mean latency of measured packets delivered in this epoch (0.0 when
    /// none were).
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }

    /// Total packets lost in this epoch, both at injection and in flight.
    pub fn losses(&self) -> u64 {
        self.dropped_unroutable + self.lost_in_flight
    }

    /// Recovery latency of the transition that opened this epoch: cycles
    /// from the epoch start until losses ceased (0 when the epoch had
    /// none). An algorithm that adapts instantly loses only in-flight
    /// packets at the transition itself (recovery ≈ 1); one that cannot
    /// re-route keeps dropping until the fault heals (recovery ≈ the
    /// epoch length).
    pub fn recovery_latency(&self) -> u64 {
        self.last_drop_cycle
            .map(|c| c - self.start_cycle + 1)
            .unwrap_or(0)
    }
}

impl Persist for EpochStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.start_cycle);
        enc.put_u64(self.end_cycle);
        enc.put_usize(self.faulty_links);
        enc.put_u64(self.generated);
        enc.put_u64(self.delivered);
        enc.put_u64(self.dropped_unroutable);
        enc.put_u64(self.lost_in_flight);
        enc.put_u64(self.latency_sum);
        self.last_drop_cycle.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            start_cycle: dec.get_u64()?,
            end_cycle: dec.get_u64()?,
            faulty_links: dec.get_usize()?,
            generated: dec.get_u64()?,
            delivered: dec.get_u64()?,
            dropped_unroutable: dec.get_u64()?,
            lost_in_flight: dec.get_u64()?,
            latency_sum: dec.get_u64()?,
            last_drop_cycle: Option::<u64>::decode(dec)?,
        })
    }
}

impl Persist for Region {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Region::Interposer => enc.put_u8(0),
            Region::Chiplet(c) => {
                enc.put_u8(1);
                enc.put_u8(*c);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(Region::Interposer),
            1 => Ok(Region::Chiplet(dec.get_u8()?)),
            other => Err(CodecError::Invalid(format!("unknown region tag {other}"))),
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Pattern name.
    pub pattern: String,
    /// Cycles actually simulated (including drain).
    pub cycles: u64,
    /// Packets generated in the measurement window.
    pub injected_measured: u64,
    /// Measured packets delivered before the run ended.
    pub delivered: u64,
    /// Packets (measured or not) dropped as unroutable under the current
    /// fault state; the numerator of simulated unreachability.
    pub dropped_unroutable: u64,
    /// Packets lost at fault-timeline transitions (0 for static runs):
    /// worms stranded in the network when their selected vertical link
    /// failed before they finished crossing it, plus source-queued
    /// packets whose re-selection against the new fault state found no
    /// healthy eligible link. Distinct from [`dropped_unroutable`]
    /// (unroutable at first injection): everything counted here was
    /// routable when generated and lost to a *later* transition.
    ///
    /// [`dropped_unroutable`]: Self::dropped_unroutable
    pub lost_in_flight: u64,
    /// Packets generated over the whole run (denominator of simulated
    /// reachability).
    pub generated_total: u64,
    /// Mean generation-to-ejection latency of delivered measured packets,
    /// in cycles.
    pub avg_latency: f64,
    /// Median measured latency.
    pub p50_latency: u64,
    /// 95th-percentile measured latency.
    pub p95_latency: u64,
    /// 99th-percentile measured latency.
    pub p99_latency: u64,
    /// Maximum measured latency.
    pub max_latency: u64,
    /// Delivered measured flits per cycle per node.
    pub throughput: f64,
    /// Per-region VC utilization counters.
    pub vc_usage: BTreeMap<Region, VcUsage>,
    /// Flits that crossed each unidirectional VL: `(chiplet, vl index,
    /// down?)` → count.
    pub vl_flits: BTreeMap<(u8, u8, bool), u64>,
    /// Whether the deadlock watchdog fired.
    pub deadlocked: bool,
    /// Per-epoch breakdown for timeline-driven runs, in time order; empty
    /// for static-fault runs.
    pub epochs: Vec<EpochStats>,
}

impl SimReport {
    /// Simulated reachability: the fraction of generated packets that were
    /// routable (paper §IV-C definition).
    pub fn reachability(&self) -> f64 {
        if self.generated_total == 0 {
            1.0
        } else {
            1.0 - self.dropped_unroutable as f64 / self.generated_total as f64
        }
    }

    /// Packets lost to faults over the whole run: unroutable at injection
    /// plus lost in flight at timeline transitions. The recovery
    /// experiments compare algorithms on this total.
    pub fn total_losses(&self) -> u64 {
        self.dropped_unroutable + self.lost_in_flight
    }

    /// Fraction of measured packets that were delivered; < 1 indicates the
    /// network saturated (or packets were unroutable).
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected_measured == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected_measured as f64
        }
    }

    /// The coefficient used for Fig. 7-style comparisons: the load on each
    /// VL direction, normalized to the busiest one. Returns `None` when no
    /// VL carried traffic.
    pub fn vl_balance(&self) -> Option<f64> {
        let max = *self.vl_flits.values().max()?;
        if max == 0 {
            return None;
        }
        let sum: u64 = self.vl_flits.values().sum();
        Some(sum as f64 / (max as f64 * self.vl_flits.len() as f64))
    }
}

impl Persist for SimReport {
    fn encode(&self, enc: &mut Encoder) {
        self.algorithm.encode(enc);
        self.pattern.encode(enc);
        enc.put_u64(self.cycles);
        enc.put_u64(self.injected_measured);
        enc.put_u64(self.delivered);
        enc.put_u64(self.dropped_unroutable);
        enc.put_u64(self.lost_in_flight);
        enc.put_u64(self.generated_total);
        enc.put_f64(self.avg_latency);
        enc.put_u64(self.p50_latency);
        enc.put_u64(self.p95_latency);
        enc.put_u64(self.p99_latency);
        enc.put_u64(self.max_latency);
        enc.put_f64(self.throughput);
        self.vc_usage.encode(enc);
        self.vl_flits.encode(enc);
        enc.put_bool(self.deadlocked);
        self.epochs.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            algorithm: String::decode(dec)?,
            pattern: String::decode(dec)?,
            cycles: dec.get_u64()?,
            injected_measured: dec.get_u64()?,
            delivered: dec.get_u64()?,
            dropped_unroutable: dec.get_u64()?,
            lost_in_flight: dec.get_u64()?,
            generated_total: dec.get_u64()?,
            avg_latency: dec.get_f64()?,
            p50_latency: dec.get_u64()?,
            p95_latency: dec.get_u64()?,
            p99_latency: dec.get_u64()?,
            max_latency: dec.get_u64()?,
            throughput: dec.get_f64()?,
            vc_usage: BTreeMap::decode(dec)?,
            vl_flits: BTreeMap::decode(dec)?,
            deadlocked: dec.get_bool()?,
            epochs: Vec::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_display_matches_fig5_labels() {
        assert_eq!(Region::Interposer.to_string(), "Intrpsr.");
        assert_eq!(Region::Chiplet(0).to_string(), "Chip.-1");
    }

    #[test]
    fn sim_report_round_trips_through_persist() {
        let mut vc_usage = BTreeMap::new();
        vc_usage.insert(Region::Interposer, VcUsage { vc0: 10, vc1: 3 });
        vc_usage.insert(Region::Chiplet(1), VcUsage { vc0: 7, vc1: 7 });
        let mut vl_flits = BTreeMap::new();
        vl_flits.insert((0u8, 1u8, true), 42u64);
        vl_flits.insert((1u8, 0u8, false), 9u64);
        let report = SimReport {
            algorithm: "DeFT".into(),
            pattern: "Uniform".into(),
            cycles: 12_000,
            injected_measured: 500,
            delivered: 498,
            dropped_unroutable: 1,
            lost_in_flight: 1,
            generated_total: 620,
            avg_latency: 31.5,
            p50_latency: 28,
            p95_latency: 60,
            p99_latency: 75,
            max_latency: 91,
            throughput: 0.0125,
            vc_usage,
            vl_flits,
            deadlocked: false,
            epochs: vec![EpochStats {
                start_cycle: 0,
                end_cycle: 12_000,
                faulty_links: 2,
                generated: 620,
                delivered: 498,
                dropped_unroutable: 1,
                lost_in_flight: 1,
                latency_sum: 15_700,
                last_drop_cycle: Some(400),
            }],
        };
        let bytes = deft_codec::encode_value(&report);
        let mut dec = Decoder::new(&bytes);
        let back = SimReport::decode(&mut dec).expect("report decodes");
        dec.finish().expect("report consumes exactly");
        assert_eq!(back, report);
        assert_eq!(deft_codec::encode_value(&back), bytes);
    }

    #[test]
    fn vc_usage_percent() {
        let u = VcUsage { vc0: 75, vc1: 25 };
        assert!((u.vc0_percent() - 75.0).abs() < 1e-12);
        assert_eq!(VcUsage::default().vc0_percent(), 50.0);
    }

    #[test]
    fn histogram_percentiles_match_the_sort_and_index_convention() {
        // The contract the report depends on: for any sample multiset the
        // histogram reproduces sorted[round((n-1)·p)] exactly.
        let cases: Vec<Vec<u64>> = vec![
            vec![5],
            vec![3, 3, 3],
            vec![10, 2, 7, 7, 1, 2, 9, 40],
            (0..100).map(|i| (i * 13) % 47).collect(),
            vec![0, 0, 1],
        ];
        for mut samples in cases {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            assert_eq!(h.total(), samples.len() as u64);
            // Sorting in place is fine: the histogram already holds the
            // multiset, and the reference convention only needs order.
            samples.sort_unstable();
            for p in [0.0, 0.25, 0.50, 0.95, 0.99, 1.0] {
                let idx = ((samples.len() - 1) as f64 * p).round() as usize;
                assert_eq!(
                    h.percentile(p),
                    samples[idx],
                    "p={p} over {} samples",
                    samples.len()
                );
            }
        }
        assert_eq!(LatencyHistogram::new().percentile(0.5), 0);
    }

    #[test]
    fn single_walk_percentiles_match_individual_queries() {
        // The report path asks for [p50, p95, p99] in one walk; the batch
        // answer is pinned to the one-at-a-time convention bit for bit.
        let sample_sets: Vec<Vec<u64>> = vec![
            vec![],
            vec![7],
            vec![4, 4, 4, 4],
            (0..500).map(|i| (i * 37) % 211).collect(),
            vec![1, 1000, 1000, 1000, 2, 3],
        ];
        for samples in sample_sets {
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            let ps = [0.0, 0.50, 0.95, 0.99, 1.0];
            let batch = h.percentiles(ps);
            for (i, &p) in ps.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    h.percentile(p),
                    "p={p} over {} samples",
                    samples.len()
                );
            }
        }
    }

    #[test]
    fn region_of_maps_layers() {
        let sys = ChipletSystem::baseline_4();
        assert_eq!(Region::of(&sys, NodeId(0)), Region::Chiplet(0));
        let ip = sys.interposer_nodes().next().unwrap();
        assert_eq!(Region::of(&sys, ip), Region::Interposer);
    }

    #[test]
    fn reachability_from_drop_counts() {
        let mut r = SimReport {
            algorithm: "x".into(),
            pattern: "y".into(),
            cycles: 100,
            injected_measured: 10,
            delivered: 9,
            dropped_unroutable: 5,
            lost_in_flight: 2,
            generated_total: 100,
            avg_latency: 20.0,
            p50_latency: 18,
            p95_latency: 35,
            p99_latency: 39,
            max_latency: 40,
            throughput: 0.1,
            vc_usage: BTreeMap::new(),
            vl_flits: BTreeMap::new(),
            deadlocked: false,
            epochs: Vec::new(),
        };
        assert!((r.reachability() - 0.95).abs() < 1e-12);
        assert!((r.delivery_ratio() - 0.9).abs() < 1e-12);
        assert_eq!(r.total_losses(), 7);
        r.generated_total = 0;
        assert_eq!(r.reachability(), 1.0);
    }

    #[test]
    fn epoch_stats_derived_metrics() {
        let e = EpochStats {
            start_cycle: 1_000,
            end_cycle: 2_000,
            faulty_links: 2,
            generated: 500,
            delivered: 400,
            dropped_unroutable: 30,
            lost_in_flight: 5,
            latency_sum: 10_000,
            last_drop_cycle: Some(1_900),
        };
        assert!((e.avg_latency() - 25.0).abs() < 1e-12);
        assert_eq!(e.losses(), 35);
        assert_eq!(e.recovery_latency(), 901);
        let clean = EpochStats {
            dropped_unroutable: 0,
            lost_in_flight: 0,
            last_drop_cycle: None,
            delivered: 0,
            ..e
        };
        assert_eq!(clean.recovery_latency(), 0);
        assert_eq!(clean.avg_latency(), 0.0);
    }
}
