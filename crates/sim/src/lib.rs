//! # deft-sim — cycle-accurate 2.5D chiplet-network simulator
//!
//! A flit-granular, wormhole-switched network-on-chip simulator in the
//! spirit of Noxim (which the DeFT paper extends): input-buffered routers
//! with per-port virtual channels, credit-based flow control, per-packet VC
//! allocation, round-robin switch allocation, and a two-phase cycle update
//! so results are independent of router iteration order.
//!
//! The simulator is generic over the routing algorithm
//! ([`deft_routing::RoutingAlgorithm`]) and the workload
//! ([`deft_traffic::TrafficPattern`]), and reports the statistics the DeFT
//! evaluation needs: average packet latency (Fig. 4, 6, 8), per-region VC
//! utilization (Fig. 5), per-VL flit loads, simulation-measured
//! reachability under faults (Fig. 7 spot checks), and a deadlock watchdog.
//!
//! Beyond the paper's static fault scenarios, a run can be driven by a
//! [`deft_topo::FaultTimeline`] ([`Simulator::with_timeline`]): link
//! faults inject and heal at scheduled cycles mid-run, stranded in-flight
//! packets are removed with credit-correct bookkeeping
//! ([`SimReport::lost_in_flight`]), the routing algorithm is notified
//! through [`deft_routing::RoutingAlgorithm::on_fault_change`], and the
//! report carries a per-epoch breakdown ([`EpochStats`]) for recovery
//! analysis.
//!
//! ## Data flow
//!
//! A [`Simulator`] is assembled from a `deft-topo` system + fault state,
//! a boxed `deft-routing` algorithm, a `deft-traffic` pattern, and a
//! [`SimConfig`]; it runs to completion and returns a [`SimReport`] that
//! the `deft` crate's experiment runners aggregate into figures. One run
//! = one engine: a fully-assembled `Simulator` is `Send` (compile-time
//! asserted), so the campaign runner executes one engine per worker
//! thread with nothing shared but the immutable system and tables.
//!
//! ```
//! use deft_sim::{SimConfig, Simulator};
//! use deft_routing::DeftRouting;
//! use deft_topo::{ChipletSystem, FaultState};
//! use deft_traffic::uniform;
//!
//! let sys = ChipletSystem::baseline_4();
//! let pattern = uniform(&sys, 0.002);
//! let deft = DeftRouting::new(&sys);
//! let cfg = SimConfig { warmup: 500, measure: 2000, ..SimConfig::default() };
//! let report = Simulator::new(&sys, FaultState::none(&sys), Box::new(deft), &pattern, cfg).run();
//! assert!(report.delivered > 0);
//! assert!(!report.deadlocked);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod config;
// The engine's partitioned parallel tick shares the simulator across a
// scoped worker pool through raw pointers under a barrier protocol; that
// audited machinery (see `ParTick`'s ownership model) is the one place
// unsafe code is permitted in this crate.
#[allow(unsafe_code)]
mod engine;
mod flit;
mod router;
mod stats;

pub use config::SimConfig;
pub use engine::Simulator;
pub use flit::{Flit, PacketArena, PacketId, PacketInfo};
pub use router::{slot_of, Router, VcRing, WormSeg, PORT_COUNT, SLOT_COUNT, VC_COUNT};
pub use stats::{EpochStats, LatencyHistogram, Region, SimReport, VcUsage};
