//! # deft-sim — cycle-accurate 2.5D chiplet-network simulator
//!
//! A flit-granular, wormhole-switched network-on-chip simulator in the
//! spirit of Noxim (which the DeFT paper extends): input-buffered routers
//! with per-port virtual channels, credit-based flow control, per-packet VC
//! allocation, round-robin switch allocation, and a two-phase cycle update
//! so results are independent of router iteration order.
//!
//! The simulator is generic over the routing algorithm
//! ([`deft_routing::RoutingAlgorithm`]) and the workload
//! ([`deft_traffic::TrafficPattern`]), and reports the statistics the DeFT
//! evaluation needs: average packet latency (Fig. 4, 6, 8), per-region VC
//! utilization (Fig. 5), per-VL flit loads, simulation-measured
//! reachability under faults (Fig. 7 spot checks), and a deadlock watchdog.
//!
//! Beyond the paper's static fault scenarios, a run can be driven by a
//! [`deft_topo::FaultTimeline`] ([`Simulator::with_timeline`]): link
//! faults inject and heal at scheduled cycles mid-run, stranded in-flight
//! packets are removed with credit-correct bookkeeping
//! ([`SimReport::lost_in_flight`]), the routing algorithm is notified
//! through [`deft_routing::RoutingAlgorithm::on_fault_change`], and the
//! report carries a per-epoch breakdown ([`EpochStats`]) for recovery
//! analysis.
//!
//! ## Data flow
//!
//! A [`Simulator`] is assembled from a `deft-topo` system + fault state,
//! a boxed `deft-routing` algorithm, a `deft-traffic` pattern, and a
//! [`SimConfig`]; it runs to completion and returns a [`SimReport`] that
//! the `deft` crate's experiment runners aggregate into figures. One run
//! = one engine: a fully-assembled `Simulator` is `Send` (compile-time
//! asserted), so the campaign runner executes one engine per worker
//! thread with nothing shared but the immutable system and tables.
//!
//! ## Hot-path allocation audit
//!
//! Like `deft-routing`'s route step, the per-cycle engine phases perform
//! **no heap allocation** in steady state: the flat network state (packed
//! occupancy words, dense slot tables, one fixed-size segment arena — see
//! the `state` module) is sized at construction, the switch-allocation
//! move buffer and the parallel tick's per-shard move lists and bucket
//! rows are reused across cycles (`clear()`, never reallocate once warm),
//! and flits are implicit in worm segments so no per-flit object ever
//! exists. The only steady-state allocations are at the simulation edge:
//! packet descriptors come from a recycling slab arena and source queues
//! grow to the workload's high-water mark. Per-phase wall-time accounting
//! is available via [`Simulator::enable_phase_profile`] /
//! [`PhaseProfile`] to keep it honest.
//!
//! ```
//! use deft_sim::{SimConfig, Simulator};
//! use deft_routing::DeftRouting;
//! use deft_topo::{ChipletSystem, FaultState};
//! use deft_traffic::uniform;
//!
//! let sys = ChipletSystem::baseline_4();
//! let pattern = uniform(&sys, 0.002);
//! let deft = DeftRouting::new(&sys);
//! let cfg = SimConfig { warmup: 500, measure: 2000, ..SimConfig::default() };
//! let report = Simulator::new(&sys, FaultState::none(&sys), Box::new(deft), &pattern, cfg).run();
//! assert!(report.delivered > 0);
//! assert!(!report.deadlocked);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod config;
// The engine's partitioned parallel tick shares the simulator across a
// scoped worker pool through raw pointers under a barrier protocol; that
// audited machinery (see `ParTick`'s ownership model) is the one place
// unsafe code is permitted in this crate.
#[allow(unsafe_code)]
mod engine;
mod flit;
mod router;
mod state;
mod stats;

pub use config::SimConfig;
pub use engine::{PhaseProfile, Simulator};
pub use flit::{Flit, PacketArena, PacketId, PacketInfo};
pub use router::{slot_of, WormSeg, PORT_COUNT, SLOT_COUNT, VC_COUNT};
pub use stats::{EpochStats, LatencyHistogram, Region, SimReport, VcUsage};
