//! Simulation configuration.

use deft_codec::{CodecError, Decoder, Encoder, Persist};

/// Parameters of one simulation run.
///
/// Defaults match the paper's setup (§IV-A): "a packet size of eight flits
/// and a buffer size of four flits are considered, where a flit width is
/// 32 bits", two VCs for every algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Flits per packet.
    pub packet_size: usize,
    /// Input-buffer depth in flits, per (port, VC).
    pub buffer_depth: usize,
    /// Flit width in bits (used by the power model, not by timing).
    pub flit_width_bits: u32,
    /// Virtual channels per port (one per VN).
    pub vc_count: usize,
    /// Warm-up cycles before measurement starts.
    pub warmup: u64,
    /// Measurement-window length in cycles; packets *generated* inside the
    /// window are the measured population.
    pub measure: u64,
    /// Maximum drain cycles after the measurement window (generation stops,
    /// in-flight packets finish).
    pub drain: u64,
    /// RNG seed for traffic generation.
    pub seed: u64,
    /// Cycles without any flit movement (while flits are in flight) before
    /// the watchdog declares deadlock.
    pub deadlock_threshold: u64,
    /// Vertical-link serialization factor: a VL accepts one flit every
    /// `vl_serialization` cycles. `1` models full-width micro-bump links
    /// (the paper's baseline); larger values model serialized vertical
    /// interconnects, which trade latency/bandwidth for fewer micro-bumps
    /// (paper §IV-A, citing Pasricha DAC'09).
    pub vl_serialization: u64,
    /// Worker threads for the partitioned parallel tick. `1` (the
    /// default) runs the serial engine unchanged; larger values shard
    /// routers by chiplet across a scoped worker pool and step every
    /// cycle in two phases (compute, then commit in canonical router
    /// order). The simulated outcome is **byte-identical for every
    /// value** — only wall-clock time changes — and the knob is a
    /// host-execution detail: it is excluded from the snapshot wire
    /// format, so a run snapshotted at one thread count resumes at any
    /// other.
    pub tick_threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            packet_size: 8,
            buffer_depth: 4,
            flit_width_bits: 32,
            vc_count: 2,
            warmup: 1_000,
            measure: 5_000,
            drain: 50_000,
            seed: 0x5EED,
            deadlock_threshold: 10_000,
            vl_serialization: 1,
            tick_threads: 1,
        }
    }
}

/// Snapshots embed the full configuration so a resume can verify it is
/// reattaching state to an identically-configured simulator.
///
/// `tick_threads` is deliberately **not** part of the wire format: it is a
/// host-execution knob with no influence on simulated behaviour, and the
/// snapshot contract requires that a run paused at one thread count resume
/// byte-identically at any other. `decode` returns it at the default (`1`);
/// [`Simulator::resume_from`](crate::Simulator::resume_from) keeps the
/// resuming simulator's own setting.
impl Persist for SimConfig {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.packet_size);
        enc.put_usize(self.buffer_depth);
        enc.put_u32(self.flit_width_bits);
        enc.put_usize(self.vc_count);
        enc.put_u64(self.warmup);
        enc.put_u64(self.measure);
        enc.put_u64(self.drain);
        enc.put_u64(self.seed);
        enc.put_u64(self.deadlock_threshold);
        enc.put_u64(self.vl_serialization);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            packet_size: dec.get_usize()?,
            buffer_depth: dec.get_usize()?,
            flit_width_bits: dec.get_u32()?,
            vc_count: dec.get_usize()?,
            warmup: dec.get_u64()?,
            measure: dec.get_u64()?,
            drain: dec.get_u64()?,
            seed: dec.get_u64()?,
            deadlock_threshold: dec.get_u64()?,
            vl_serialization: dec.get_u64()?,
            // Host-execution knob, not wire state: see the impl-level doc.
            tick_threads: 1,
        })
    }
}

impl SimConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if any size parameter is zero or `vc_count != 2` (the DeFT VN
    /// scheme maps VN index to VC index and needs exactly two).
    pub fn validate(&self) {
        assert!(self.packet_size > 0, "packet_size must be positive");
        assert!(self.buffer_depth > 0, "buffer_depth must be positive");
        assert_eq!(
            self.vc_count, 2,
            "this simulator models the paper's two-VC routers"
        );
        assert!(
            self.deadlock_threshold > 0,
            "deadlock_threshold must be positive"
        );
        assert!(
            self.vl_serialization > 0,
            "vl_serialization must be positive"
        );
        assert!(self.tick_threads > 0, "tick_threads must be positive");
    }

    /// Returns `self` with the given parallel-tick worker count (builder
    /// style, mirroring how experiments thread `--jobs` through).
    #[must_use]
    pub fn with_tick_threads(mut self, tick_threads: usize) -> Self {
        self.tick_threads = tick_threads.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SimConfig::default();
        assert_eq!(c.packet_size, 8);
        assert_eq!(c.buffer_depth, 4);
        assert_eq!(c.flit_width_bits, 32);
        assert_eq!(c.vc_count, 2);
        c.validate();
    }

    #[test]
    fn tick_threads_roundtrips_to_default_and_builder_clamps() {
        use deft_codec::{Decoder, Encoder};
        let cfg = SimConfig::default().with_tick_threads(8);
        assert_eq!(cfg.tick_threads, 8);
        cfg.validate();
        // The wire format carries no thread count: decode restores 1.
        let mut enc = Encoder::new();
        cfg.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut serial = cfg;
        serial.tick_threads = 1;
        let mut enc2 = Encoder::new();
        serial.encode(&mut enc2);
        assert_eq!(bytes, enc2.into_bytes(), "tick_threads leaked into bytes");
        let mut dec = Decoder::new(&bytes);
        let back = SimConfig::decode(&mut dec).unwrap();
        assert_eq!(back.tick_threads, 1);
        assert_eq!(SimConfig::default().with_tick_threads(0).tick_threads, 1);
    }

    #[test]
    #[should_panic(expected = "two-VC")]
    fn wrong_vc_count_is_rejected() {
        SimConfig {
            vc_count: 3,
            ..SimConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "packet_size")]
    fn zero_packet_size_is_rejected() {
        SimConfig {
            packet_size: 0,
            ..SimConfig::default()
        }
        .validate();
    }
}
