//! Router microarchitecture: worm-segment VC rings, credits, and port
//! mapping.
//!
//! ## Worm descriptors and implicit flits
//!
//! Body and tail flits carry no routing information — only the head does.
//! The engine therefore never materializes per-flit queue entries: a VC
//! buffer is a fixed-capacity ring of [`WormSeg`] *segments*, each
//! describing a contiguous span of one packet's flits (`packet`, first
//! in-packet flit index, count), plus an occupancy counter. A flit-hop is
//! a counter decrement on the upstream segment and (at most) one segment
//! push downstream — never a per-flit struct move — and head/tail-ness is
//! derived from the span indices (`first == 0` is the head; index
//! `packet_size - 1` is the tail).
//!
//! The invariant that makes the representation exact: **a packet occupies
//! at most one segment per ring**. Wormhole VC allocation admits a new
//! worm into a downstream VC only after the previous worm's tail has left
//! the upstream buffer, so a packet's flits always arrive at (and leave)
//! a given buffer consecutively; a partially-drained span merges with its
//! own arrivals, never interleaving with another packet's.

use crate::flit::PacketId;
use deft_codec::{CodecError, Decoder, Encoder, Persist};
use deft_topo::Direction;

/// Port indices: 0 = Local, 1..=4 = East/West/North/South, 5 = Vertical
/// (Down on chiplet boundary routers, Up on interposer routers under a VL).
pub const PORT_LOCAL: u8 = 0;
/// East port index.
pub const PORT_EAST: u8 = 1;
/// West port index.
pub const PORT_WEST: u8 = 2;
/// North port index.
pub const PORT_NORTH: u8 = 3;
/// South port index.
pub const PORT_SOUTH: u8 = 4;
/// Vertical port index (the paper's Up/Down port).
pub const PORT_VERTICAL: u8 = 5;
/// Number of ports per router (the paper's six-port router, Table I).
pub const PORT_COUNT: usize = 6;
/// Virtual channels per port. The paper's routers have exactly two (one
/// per VN) and [`crate::SimConfig::validate`] pins the configuration to
/// that, so the router state is laid out at compile time: port state is
/// fixed arrays, and a router's twelve `(port, vc)` buffers fit one `u16`
/// occupancy bitmask.
pub const VC_COUNT: usize = 2;
/// `(port, vc)` slots per router: the width of the occupancy bitmask and
/// the modulus of the switch-allocation round-robin.
pub const SLOT_COUNT: usize = PORT_COUNT * VC_COUNT;

/// The output-port index for a routing direction.
pub fn port_of(dir: Direction) -> u8 {
    match dir {
        Direction::East => PORT_EAST,
        Direction::West => PORT_WEST,
        Direction::North => PORT_NORTH,
        Direction::South => PORT_SOUTH,
        Direction::Up | Direction::Down => PORT_VERTICAL,
    }
}

/// The input-port index at the downstream router for a flit sent in `dir`:
/// a flit sent east arrives on the west input, a vertical flit arrives on
/// the vertical input.
pub fn arrival_port(dir: Direction) -> u8 {
    port_of(dir.opposite())
}

/// The `(port, vc)` slot index: bit position in [`Router::occ_mask`] and
/// round-robin position in switch allocation. Ascending slot order is
/// port-major, VC-minor — the legacy dense scan order, which the
/// bitmask-driven phases must preserve for byte-identical schedules.
#[inline]
pub fn slot_of(port: u8, vc: u8) -> usize {
    port as usize * VC_COUNT + vc as usize
}

/// One worm segment: a contiguous span of `count` flits of `packet`,
/// starting at in-packet flit index `first`. The flits themselves are
/// implicit — `first == 0` means the span begins with the head flit, and
/// a span ending at `packet_size - 1` contains the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WormSeg {
    /// Owning packet.
    pub packet: PacketId,
    /// In-packet index of the span's front flit.
    pub first: u32,
    /// Flits in the span (≥ 1).
    pub count: u32,
}

impl Persist for WormSeg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.packet.0);
        enc.put_u32(self.first);
        enc.put_u32(self.count);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let packet = PacketId(dec.get_u64()?);
        let first = dec.get_u32()?;
        let count = dec.get_u32()?;
        if count == 0 {
            return Err(CodecError::Invalid("zero-flit worm segment".into()));
        }
        Ok(Self {
            packet,
            first,
            count,
        })
    }
}

/// One input virtual-channel buffer: a fixed-capacity ring of worm
/// segments plus the worm's routing/flow-control state.
///
/// Capacity is in *flits*; since every segment holds at least one flit,
/// `cap` ring entries always suffice.
#[derive(Debug, Clone)]
pub struct VcRing {
    /// Segment storage, `cap` entries.
    segs: Box<[WormSeg]>,
    /// Ring index of the front segment.
    head: u16,
    /// Live segments.
    seg_len: u16,
    /// Buffered flits (the occupancy counter).
    flits: u16,
    /// Buffer capacity in flits.
    cap: u16,
    /// Routing decision for the packet currently at the head of the worm:
    /// `(out_port, out_vc)`. Set when the head flit is routed, cleared when
    /// the tail departs.
    pub dest: Option<(u8, u8)>,
    /// Whether the downstream VC has been allocated to this worm.
    pub granted: bool,
    /// The packet owning `dest`/`granted`. Carried separately from the
    /// ring because a worm can *stream through*: every buffered flit may
    /// have left (ring empty) while the tail is still upstream, and the
    /// routing state keeps belonging to that worm until its tail departs.
    /// Fault-transition packet removal keys on this, not on the front
    /// segment.
    pub owner: Option<PacketId>,
}

const EMPTY_SEG: WormSeg = WormSeg {
    packet: PacketId(0),
    first: 0,
    count: 0,
};

impl VcRing {
    /// An empty buffer of the given flit capacity.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0 && cap <= u16::MAX as usize, "flit capacity {cap}");
        Self {
            segs: vec![EMPTY_SEG; cap].into_boxed_slice(),
            head: 0,
            seg_len: 0,
            flits: 0,
            cap: cap as u16,
            dest: None,
            granted: false,
            owner: None,
        }
    }

    /// Buffer capacity in flits.
    pub fn cap(&self) -> usize {
        self.cap as usize
    }

    /// Grows the flit capacity (used at setup for RC's store-and-forward
    /// buffers, which must hold a whole packet).
    ///
    /// # Panics
    /// Panics if the buffer is not empty.
    pub fn grow_cap(&mut self, cap: usize) {
        assert_eq!(self.flits, 0, "capacity changes only on empty buffers");
        if cap > self.cap as usize {
            *self = Self::new(cap);
        }
    }

    /// Buffered flits.
    pub fn len(&self) -> usize {
        self.flits as usize
    }

    /// Whether no flit is buffered.
    pub fn is_empty(&self) -> bool {
        self.flits == 0
    }

    /// Free flit slots.
    pub fn free(&self) -> usize {
        (self.cap - self.flits) as usize
    }

    /// The front segment, if any.
    pub fn front(&self) -> Option<&WormSeg> {
        (self.seg_len > 0).then(|| &self.segs[self.head as usize])
    }

    /// Number of buffered flits that belong to the packet at the front.
    /// One ring lookup — a packet occupies at most one segment per ring.
    /// Used by RC's store-and-forward check.
    pub fn front_packet_flits(&self) -> usize {
        self.front().map_or(0, |s| s.count as usize)
    }

    /// Removes the front flit and returns `(packet, in-packet index)`.
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    pub fn pop_front_flit(&mut self) -> (PacketId, u32) {
        assert!(self.seg_len > 0, "pop from an empty VC ring");
        let cap = self.segs.len();
        let seg = &mut self.segs[self.head as usize];
        let out = (seg.packet, seg.first);
        seg.first += 1;
        seg.count -= 1;
        if seg.count == 0 {
            self.head = ((self.head as usize + 1) % cap) as u16;
            self.seg_len -= 1;
        }
        self.flits -= 1;
        out
    }

    /// Appends one flit of `packet` with in-packet index `idx`: a counter
    /// increment when it extends the packet's existing span, one segment
    /// write when a new worm enters.
    ///
    /// # Panics
    /// Panics if the buffer is full.
    pub fn push_back_flit(&mut self, packet: PacketId, idx: u32) {
        assert!(self.flits < self.cap, "push into a full VC ring");
        let cap = self.segs.len();
        if self.seg_len > 0 {
            let tail_i = (self.head as usize + self.seg_len as usize - 1) % cap;
            let tail = &mut self.segs[tail_i];
            if tail.packet == packet {
                debug_assert_eq!(tail.first + tail.count, idx, "non-contiguous span");
                tail.count += 1;
                self.flits += 1;
                return;
            }
        }
        let slot = (self.head as usize + self.seg_len as usize) % cap;
        self.segs[slot] = WormSeg {
            packet,
            first: idx,
            count: 1,
        };
        self.seg_len += 1;
        self.flits += 1;
    }

    /// Iterates the buffered segments front to back.
    pub fn segments(&self) -> impl Iterator<Item = &WormSeg> + '_ {
        let cap = self.segs.len();
        (0..self.seg_len as usize).map(move |i| &self.segs[(self.head as usize + i) % cap])
    }

    /// Removes every flit of the packets selected by `dropped`, compacting
    /// the ring in order. Returns the number of flits removed. Segment
    /// granular: a dropped packet loses its whole span at once.
    pub fn remove_packets(&mut self, mut dropped: impl FnMut(PacketId) -> bool) -> u32 {
        let cap = self.segs.len();
        let mut removed = 0u32;
        let mut kept = 0u16;
        for i in 0..self.seg_len {
            let seg = self.segs[(self.head as usize + i as usize) % cap];
            if dropped(seg.packet) {
                removed += seg.count;
            } else {
                self.segs[(self.head as usize + kept as usize) % cap] = seg;
                kept += 1;
            }
        }
        self.seg_len = kept;
        self.flits -= removed as u16;
        removed
    }

    /// Writes the ring in *canonical* form: capacity, live segments in
    /// logical front-to-back order, flit counter, then the worm's routing
    /// state. The physical head index is deliberately not encoded —
    /// [`load`](Self::load) rebuilds the same logical contents at head 0,
    /// so re-encoding a just-loaded ring reproduces the bytes exactly
    /// (snapshots of a resumed run stay byte-identical to the original).
    pub(crate) fn save(&self, enc: &mut Encoder) {
        enc.put_u16(self.cap);
        enc.put_u16(self.seg_len);
        for seg in self.segments() {
            seg.encode(enc);
        }
        enc.put_u16(self.flits);
        self.dest.encode(enc);
        enc.put_bool(self.granted);
        self.owner.map(|p| p.0).encode(enc);
    }

    /// Restores the state written by [`save`](Self::save) into this ring.
    /// The ring's capacity (fixed at construction, including RC's grown
    /// store-and-forward buffers) must match the snapshot's.
    pub(crate) fn load(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let cap = dec.get_u16()?;
        if cap != self.cap {
            return Err(CodecError::Mismatch(format!(
                "VC ring capacity is {} flits, snapshot has {cap}",
                self.cap
            )));
        }
        let seg_len = dec.get_u16()?;
        if seg_len > cap {
            return Err(CodecError::Invalid(format!(
                "ring claims {seg_len} segments with capacity {cap}"
            )));
        }
        let mut seg_flits = 0u32;
        for i in 0..seg_len as usize {
            let seg = WormSeg::decode(dec)?;
            seg_flits += seg.count;
            self.segs[i] = seg;
        }
        for i in seg_len as usize..self.segs.len() {
            self.segs[i] = EMPTY_SEG;
        }
        let flits = dec.get_u16()?;
        if flits > cap || u32::from(flits) != seg_flits {
            return Err(CodecError::Invalid(format!(
                "ring holds {flits} flits but its segments sum to {seg_flits} (cap {cap})"
            )));
        }
        self.head = 0;
        self.seg_len = seg_len;
        self.flits = flits;
        self.dest = Option::<(u8, u8)>::decode(dec)?;
        self.granted = dec.get_bool()?;
        self.owner = Option::<u64>::decode(dec)?.map(PacketId);
        Ok(())
    }
}

/// One router: 6 input ports × [`VC_COUNT`] VC rings (flat, slot-indexed),
/// per-output VC allocation state, credit counters toward each downstream
/// buffer, round-robin arbitration pointers, and an occupancy bitmask that
/// lets the per-cycle phases visit only non-empty buffers.
#[derive(Debug, Clone)]
pub struct Router {
    /// Input buffers, indexed by [`slot_of`]`(port, vc)`.
    pub vcs: Box<[VcRing]>,
    /// Bit `slot_of(port, vc)` set iff that ring holds at least one flit.
    /// Route computation, VC allocation, and switch allocation iterate set
    /// bits in ascending order — exactly the legacy port-major scan.
    pub occ_mask: u16,
    /// Output VC allocation: `out_alloc[port][vc]` = the (in_port, in_vc)
    /// worm currently owning the downstream VC.
    pub out_alloc: [[Option<(u8, u8)>; VC_COUNT]; PORT_COUNT],
    /// Credits: free downstream slots per `(out_port, vc)`. Unused for the
    /// Local port (ejection is never back-pressured).
    pub credits: [[u32; VC_COUNT]; PORT_COUNT],
    /// Downstream wiring: `out_links[port]` = (downstream router index,
    /// downstream input port). `None` for Local and absent links.
    pub out_links: [Option<(u32, u8)>; PORT_COUNT],
    /// Upstream wiring: `in_links[port]` = (upstream router index, upstream
    /// output port) used to return credits. `None` for Local.
    pub in_links: [Option<(u32, u8)>; PORT_COUNT],
    /// Round-robin arbitration pointer per output port.
    pub rr: [u32; PORT_COUNT],
}

impl Router {
    /// A disconnected router with all buffers sized `buffer_depth`.
    pub fn new(buffer_depth: usize) -> Self {
        Self {
            vcs: (0..SLOT_COUNT)
                .map(|_| VcRing::new(buffer_depth))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            occ_mask: 0,
            out_alloc: [[None; VC_COUNT]; PORT_COUNT],
            credits: [[0; VC_COUNT]; PORT_COUNT],
            out_links: [None; PORT_COUNT],
            in_links: [None; PORT_COUNT],
            rr: [0; PORT_COUNT],
        }
    }

    /// The VC ring at `(port, vc)`.
    #[inline]
    pub fn vc(&self, port: u8, vc: u8) -> &VcRing {
        &self.vcs[slot_of(port, vc)]
    }

    /// Mutable access to the VC ring at `(port, vc)`. Callers that change
    /// occupancy through this must fix [`Self::occ_mask`] themselves;
    /// prefer [`Self::push_flit`]/[`Self::pop_flit`].
    #[inline]
    pub fn vc_mut(&mut self, port: u8, vc: u8) -> &mut VcRing {
        &mut self.vcs[slot_of(port, vc)]
    }

    /// Appends a flit to `(port, vc)`, maintaining the occupancy mask.
    #[inline]
    pub fn push_flit(&mut self, port: u8, vc: u8, packet: PacketId, idx: u32) {
        let slot = slot_of(port, vc);
        self.vcs[slot].push_back_flit(packet, idx);
        self.occ_mask |= 1 << slot;
    }

    /// Pops the front flit of `(port, vc)`, maintaining the occupancy mask.
    #[inline]
    pub fn pop_flit(&mut self, port: u8, vc: u8) -> (PacketId, u32) {
        let slot = slot_of(port, vc);
        let out = self.vcs[slot].pop_front_flit();
        if self.vcs[slot].is_empty() {
            self.occ_mask &= !(1 << slot);
        }
        out
    }

    /// Total flits buffered in this router.
    pub fn occupancy(&self) -> usize {
        self.vcs.iter().map(VcRing::len).sum()
    }

    /// Writes the router's dynamic state: occupancy mask, round-robin
    /// pointers, credits, output VC allocations, and every VC ring.
    /// Wiring (`out_links`/`in_links`) is setup state rebuilt from the
    /// topology and is not encoded.
    pub(crate) fn save(&self, enc: &mut Encoder) {
        enc.put_u16(self.occ_mask);
        for rr in self.rr {
            enc.put_u32(rr);
        }
        for port in &self.credits {
            for &c in port {
                enc.put_u32(c);
            }
        }
        for port in &self.out_alloc {
            for a in port {
                a.encode(enc);
            }
        }
        for ring in self.vcs.iter() {
            ring.save(enc);
        }
    }

    /// Restores the state written by [`save`](Self::save).
    pub(crate) fn load(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let occ_mask = dec.get_u16()?;
        for rr in &mut self.rr {
            let v = dec.get_u32()?;
            if v >= SLOT_COUNT as u32 {
                return Err(CodecError::Invalid(format!(
                    "round-robin pointer {v} out of range (< {SLOT_COUNT})"
                )));
            }
            *rr = v;
        }
        for port in &mut self.credits {
            for c in port.iter_mut() {
                *c = dec.get_u32()?;
            }
        }
        for port in &mut self.out_alloc {
            for a in port.iter_mut() {
                *a = Option::<(u8, u8)>::decode(dec)?;
            }
        }
        for ring in self.vcs.iter_mut() {
            ring.load(dec)?;
        }
        for (slot, ring) in self.vcs.iter().enumerate() {
            if (occ_mask >> slot) & 1 != u16::from(!ring.is_empty()) {
                return Err(CodecError::Invalid(format!(
                    "occupancy mask {occ_mask:#06x} disagrees with ring {slot}'s contents"
                )));
            }
        }
        self.occ_mask = occ_mask;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_mapping_round_trips() {
        assert_eq!(port_of(Direction::East), PORT_EAST);
        assert_eq!(arrival_port(Direction::East), PORT_WEST);
        assert_eq!(arrival_port(Direction::North), PORT_SOUTH);
        assert_eq!(port_of(Direction::Down), PORT_VERTICAL);
        assert_eq!(arrival_port(Direction::Down), PORT_VERTICAL);
        assert_eq!(arrival_port(Direction::Up), PORT_VERTICAL);
    }

    #[test]
    fn ring_tracks_capacity_and_spans() {
        let mut b = VcRing::new(4);
        assert_eq!(b.free(), 4);
        b.push_back_flit(PacketId(0), 0);
        assert_eq!(b.free(), 3);
        assert_eq!(b.len(), 1);
        // Extending the same worm merges into one segment.
        b.push_back_flit(PacketId(0), 1);
        assert_eq!(b.segments().count(), 1);
        assert_eq!(b.front_packet_flits(), 2);
        // Pops walk the span in flit order.
        assert_eq!(b.pop_front_flit(), (PacketId(0), 0));
        assert_eq!(b.pop_front_flit(), (PacketId(0), 1));
        assert!(b.is_empty());
    }

    #[test]
    fn front_packet_flits_stops_at_next_worm() {
        let mut b = VcRing::new(8);
        for i in 0..3 {
            b.push_back_flit(PacketId(0), i);
        }
        b.push_back_flit(PacketId(1), 0);
        assert_eq!(b.front_packet_flits(), 3);
        assert_eq!(b.segments().count(), 2);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn ring_wraps_across_pop_push_cycles() {
        // Exercise head wrap-around: interleave pops and pushes past the
        // physical capacity several times over.
        let mut b = VcRing::new(3);
        let mut next_push = 0u32;
        for (next_pop, round) in (0..10u64).enumerate() {
            while b.free() > 0 {
                b.push_back_flit(PacketId(round / 4), next_push);
                next_push += 1;
            }
            let (_, idx) = b.pop_front_flit();
            assert_eq!(idx, next_pop as u32);
        }
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn remove_packets_is_segment_granular() {
        let mut b = VcRing::new(8);
        for i in 5..8 {
            b.push_back_flit(PacketId(7), i); // mid-worm span
        }
        b.push_back_flit(PacketId(9), 0);
        b.push_back_flit(PacketId(9), 1);
        let removed = b.remove_packets(|p| p == PacketId(7));
        assert_eq!(removed, 3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.front().unwrap().packet, PacketId(9));
        assert_eq!(b.front().unwrap().first, 0);
        assert_eq!(b.remove_packets(|_| false), 0);
    }

    #[test]
    fn router_mask_follows_push_and_pop() {
        let mut r = Router::new(4);
        assert_eq!(r.occupancy(), 0);
        assert_eq!(r.occ_mask, 0);
        r.push_flit(PORT_EAST, 1, PacketId(3), 0);
        assert_eq!(r.occ_mask, 1 << slot_of(PORT_EAST, 1));
        assert_eq!(r.occupancy(), 1);
        assert_eq!(r.pop_flit(PORT_EAST, 1), (PacketId(3), 0));
        assert_eq!(r.occ_mask, 0);
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn ring_save_load_is_canonical_across_head_positions() {
        // Build a ring whose head has wrapped, save it, load into a fresh
        // ring, and check the logical contents and the re-encoded bytes:
        // the canonical form must not depend on the physical head index.
        let mut b = VcRing::new(4);
        for i in 0..4 {
            b.push_back_flit(PacketId(1), i);
        }
        b.pop_front_flit();
        b.pop_front_flit();
        b.push_back_flit(PacketId(2), 0); // wraps physically
        b.dest = Some((PORT_EAST, 1));
        b.granted = true;
        b.owner = Some(PacketId(1));
        let mut enc = Encoder::new();
        b.save(&mut enc);
        let mut fresh = VcRing::new(4);
        let mut dec = Decoder::new(enc.as_bytes());
        fresh.load(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(fresh.len(), b.len());
        assert_eq!(
            fresh.segments().copied().collect::<Vec<_>>(),
            b.segments().copied().collect::<Vec<_>>()
        );
        assert_eq!(fresh.dest, b.dest);
        assert_eq!(fresh.owner, b.owner);
        let mut enc2 = Encoder::new();
        fresh.save(&mut enc2);
        assert_eq!(enc2.as_bytes(), enc.as_bytes(), "canonical re-encode");
    }

    #[test]
    fn ring_load_rejects_mismatched_capacity() {
        let mut b = VcRing::new(4);
        b.push_back_flit(PacketId(3), 0);
        let mut enc = Encoder::new();
        b.save(&mut enc);
        let mut wrong_cap = VcRing::new(8);
        assert!(matches!(
            wrong_cap.load(&mut Decoder::new(enc.as_bytes())),
            Err(CodecError::Mismatch(_))
        ));
    }

    #[test]
    fn router_save_load_round_trips() {
        let mut r = Router::new(4);
        r.push_flit(PORT_EAST, 1, PacketId(3), 0);
        r.push_flit(PORT_EAST, 1, PacketId(3), 1);
        r.rr[2] = 7;
        r.credits[1][0] = 3;
        r.out_alloc[5][1] = Some((PORT_EAST, 1));
        let mut enc = Encoder::new();
        r.save(&mut enc);
        let mut fresh = Router::new(4);
        let mut dec = Decoder::new(enc.as_bytes());
        fresh.load(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(fresh.occ_mask, r.occ_mask);
        assert_eq!(fresh.rr, r.rr);
        assert_eq!(fresh.credits, r.credits);
        assert_eq!(fresh.out_alloc, r.out_alloc);
        assert_eq!(fresh.occupancy(), 2);
    }

    #[test]
    fn slot_order_is_port_major() {
        // The bitmask scan order must equal the legacy nested loops
        // (ports outer, VCs inner) or schedules would drift.
        let mut slots = Vec::new();
        for port in 0..PORT_COUNT as u8 {
            for vc in 0..VC_COUNT as u8 {
                slots.push(slot_of(port, vc));
            }
        }
        assert_eq!(slots, (0..SLOT_COUNT).collect::<Vec<_>>());
    }
}
