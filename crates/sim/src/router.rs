//! Router microarchitecture: VC buffers, credits, and port mapping.

use crate::flit::{Flit, PacketId};
use deft_topo::Direction;
use std::collections::VecDeque;

/// Port indices: 0 = Local, 1..=4 = East/West/North/South, 5 = Vertical
/// (Down on chiplet boundary routers, Up on interposer routers under a VL).
pub const PORT_LOCAL: u8 = 0;
/// East port index.
pub const PORT_EAST: u8 = 1;
/// West port index.
pub const PORT_WEST: u8 = 2;
/// North port index.
pub const PORT_NORTH: u8 = 3;
/// South port index.
pub const PORT_SOUTH: u8 = 4;
/// Vertical port index (the paper's Up/Down port).
pub const PORT_VERTICAL: u8 = 5;
/// Number of ports per router (the paper's six-port router, Table I).
pub const PORT_COUNT: usize = 6;

/// The output-port index for a routing direction.
pub fn port_of(dir: Direction) -> u8 {
    match dir {
        Direction::East => PORT_EAST,
        Direction::West => PORT_WEST,
        Direction::North => PORT_NORTH,
        Direction::South => PORT_SOUTH,
        Direction::Up | Direction::Down => PORT_VERTICAL,
    }
}

/// The input-port index at the downstream router for a flit sent in `dir`:
/// a flit sent east arrives on the west input, a vertical flit arrives on
/// the vertical input.
pub fn arrival_port(dir: Direction) -> u8 {
    port_of(dir.opposite())
}

/// One input virtual-channel buffer with its wormhole state.
#[derive(Debug, Clone)]
pub struct VcBuf {
    /// The flit FIFO.
    pub fifo: VecDeque<Flit>,
    /// Buffer capacity in flits.
    pub cap: usize,
    /// Routing decision for the packet currently at the head of the worm:
    /// `(out_port, out_vc)`. Set when the head flit is routed, cleared when
    /// the tail departs.
    pub dest: Option<(u8, u8)>,
    /// Whether the downstream VC has been allocated to this worm.
    pub granted: bool,
    /// The packet owning `dest`/`granted`. Carried separately from the
    /// FIFO because a worm can *stream through*: every buffered flit may
    /// have left (fifo empty) while the tail is still upstream, and the
    /// routing state keeps belonging to that worm until its tail departs.
    /// Fault-transition packet removal keys on this, not on the front
    /// flit.
    pub owner: Option<PacketId>,
}

impl VcBuf {
    /// An empty buffer of the given capacity.
    pub fn new(cap: usize) -> Self {
        Self {
            fifo: VecDeque::with_capacity(cap),
            cap,
            dest: None,
            granted: false,
            owner: None,
        }
    }

    /// Free slots.
    pub fn free(&self) -> usize {
        self.cap - self.fifo.len()
    }

    /// Number of leading flits that belong to the packet at the front
    /// (stops at the following packet's head). Used by RC's
    /// store-and-forward check.
    pub fn front_packet_flits(&self) -> usize {
        let Some(front) = self.fifo.front() else {
            return 0;
        };
        self.fifo
            .iter()
            .take_while(|f| f.packet == front.packet)
            .count()
    }
}

/// One router: 6 input ports x `vc_count` VC buffers, per-output VC
/// allocation state, credit counters toward each downstream buffer, and
/// round-robin arbitration pointers.
#[derive(Debug, Clone)]
pub struct Router {
    /// Input buffers: `inputs[port][vc]`.
    pub inputs: Vec<Vec<VcBuf>>,
    /// Output VC allocation: `out_alloc[port][vc]` = the (in_port, in_vc)
    /// worm currently owning the downstream VC.
    pub out_alloc: Vec<Vec<Option<(u8, u8)>>>,
    /// Credits: free downstream slots per `(out_port, vc)`. Unused for the
    /// Local port (ejection is never back-pressured).
    pub credits: Vec<Vec<usize>>,
    /// Downstream wiring: `out_links[port]` = (downstream router index,
    /// downstream input port). `None` for Local and absent links.
    pub out_links: Vec<Option<(usize, u8)>>,
    /// Upstream wiring: `in_links[port]` = (upstream router index, upstream
    /// output port) used to return credits. `None` for Local.
    pub in_links: Vec<Option<(usize, u8)>>,
    /// Round-robin arbitration pointer per output port.
    pub rr: Vec<u32>,
}

impl Router {
    /// A disconnected router with all buffers sized `buffer_depth`.
    pub fn new(vc_count: usize, buffer_depth: usize) -> Self {
        Self {
            inputs: (0..PORT_COUNT)
                .map(|_| (0..vc_count).map(|_| VcBuf::new(buffer_depth)).collect())
                .collect(),
            out_alloc: vec![vec![None; vc_count]; PORT_COUNT],
            credits: vec![vec![0; vc_count]; PORT_COUNT],
            out_links: vec![None; PORT_COUNT],
            in_links: vec![None; PORT_COUNT],
            rr: vec![0; PORT_COUNT],
        }
    }

    /// Total flits buffered in this router.
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().flatten().map(|b| b.fifo.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, PacketId};

    #[test]
    fn port_mapping_round_trips() {
        assert_eq!(port_of(Direction::East), PORT_EAST);
        assert_eq!(arrival_port(Direction::East), PORT_WEST);
        assert_eq!(arrival_port(Direction::North), PORT_SOUTH);
        assert_eq!(port_of(Direction::Down), PORT_VERTICAL);
        assert_eq!(arrival_port(Direction::Down), PORT_VERTICAL);
        assert_eq!(arrival_port(Direction::Up), PORT_VERTICAL);
    }

    #[test]
    fn vcbuf_tracks_capacity() {
        let mut b = VcBuf::new(4);
        assert_eq!(b.free(), 4);
        b.fifo.push_back(Flit {
            packet: PacketId(0),
            is_head: true,
            is_tail: false,
        });
        assert_eq!(b.free(), 3);
    }

    #[test]
    fn front_packet_flits_stops_at_next_head() {
        let mut b = VcBuf::new(8);
        for f in Flit::train(PacketId(0), 3) {
            b.fifo.push_back(f);
        }
        for f in Flit::train(PacketId(1), 2).take(1) {
            b.fifo.push_back(f);
        }
        assert_eq!(b.front_packet_flits(), 3);
    }

    #[test]
    fn fresh_router_is_empty() {
        let r = Router::new(2, 4);
        assert_eq!(r.occupancy(), 0);
        assert_eq!(r.inputs.len(), PORT_COUNT);
        assert_eq!(r.inputs[0].len(), 2);
    }
}
