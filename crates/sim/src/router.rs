//! Router microarchitecture constants: port mapping, slot layout, and worm
//! descriptors.
//!
//! ## Worm descriptors and implicit flits
//!
//! Body and tail flits carry no routing information — only the head does.
//! The engine therefore never materializes per-flit queue entries: a VC
//! buffer is a fixed-capacity ring of [`WormSeg`] *segments*, each
//! describing a contiguous span of one packet's flits (`packet`, first
//! in-packet flit index, count), plus an occupancy counter. A flit-hop is
//! a counter decrement on the upstream segment and (at most) one segment
//! push downstream — never a per-flit struct move — and head/tail-ness is
//! derived from the span indices (`first == 0` is the head; index
//! `packet_size - 1` is the tail).
//!
//! The invariant that makes the representation exact: **a packet occupies
//! at most one segment per ring**. Wormhole VC allocation admits a new
//! worm into a downstream VC only after the previous worm's tail has left
//! the upstream buffer, so a packet's flits always arrive at (and leave)
//! a given buffer consecutively; a partially-drained span merges with its
//! own arrivals, never interleaving with another packet's.
//!
//! The rings themselves — and every other hot per-router field — live in
//! the engine-owned structure-of-arrays `NetState` (see `state`), indexed
//! by the global slot ids defined here.

use crate::flit::PacketId;
use deft_codec::{CodecError, Decoder, Encoder, Persist};
use deft_topo::Direction;

/// Port indices: 0 = Local, 1..=4 = East/West/North/South, 5 = Vertical
/// (Down on chiplet boundary routers, Up on interposer routers under a VL).
pub const PORT_LOCAL: u8 = 0;
/// East port index.
pub const PORT_EAST: u8 = 1;
/// West port index.
pub const PORT_WEST: u8 = 2;
/// North port index.
pub const PORT_NORTH: u8 = 3;
/// South port index.
pub const PORT_SOUTH: u8 = 4;
/// Vertical port index (the paper's Up/Down port).
pub const PORT_VERTICAL: u8 = 5;
/// Number of ports per router (the paper's six-port router, Table I).
pub const PORT_COUNT: usize = 6;
/// Virtual channels per port. The paper's routers have exactly two (one
/// per VN) and [`crate::SimConfig::validate`] pins the configuration to
/// that, so the router state is laid out at compile time: port state is
/// fixed-width arrays, and a router's twelve `(port, vc)` buffers fit one
/// 16-bit occupancy lane.
pub const VC_COUNT: usize = 2;
/// `(port, vc)` slots per router: the width of the occupancy bitmask and
/// the modulus of the switch-allocation round-robin.
pub const SLOT_COUNT: usize = PORT_COUNT * VC_COUNT;

/// The output-port index for a routing direction.
pub fn port_of(dir: Direction) -> u8 {
    match dir {
        Direction::East => PORT_EAST,
        Direction::West => PORT_WEST,
        Direction::North => PORT_NORTH,
        Direction::South => PORT_SOUTH,
        Direction::Up | Direction::Down => PORT_VERTICAL,
    }
}

/// The input-port index at the downstream router for a flit sent in `dir`:
/// a flit sent east arrives on the west input, a vertical flit arrives on
/// the vertical input.
pub fn arrival_port(dir: Direction) -> u8 {
    port_of(dir.opposite())
}

/// The `(port, vc)` slot index: bit position within a router's occupancy
/// lane and round-robin position in switch allocation. Ascending slot
/// order is port-major, VC-minor — the legacy dense scan order, which the
/// bitmask-driven phases must preserve for byte-identical schedules.
#[inline]
pub fn slot_of(port: u8, vc: u8) -> usize {
    port as usize * VC_COUNT + vc as usize
}

/// One worm segment: a contiguous span of `count` flits of `packet`,
/// starting at in-packet flit index `first`. The flits themselves are
/// implicit — `first == 0` means the span begins with the head flit, and
/// a span ending at `packet_size - 1` contains the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WormSeg {
    /// Owning packet.
    pub packet: PacketId,
    /// In-packet index of the span's front flit.
    pub first: u32,
    /// Flits in the span (≥ 1).
    pub count: u32,
}

impl Persist for WormSeg {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.packet.0);
        enc.put_u32(self.first);
        enc.put_u32(self.count);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let packet = PacketId(dec.get_u64()?);
        let first = dec.get_u32()?;
        let count = dec.get_u32()?;
        if count == 0 {
            return Err(CodecError::Invalid("zero-flit worm segment".into()));
        }
        Ok(Self {
            packet,
            first,
            count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_mapping_round_trips() {
        assert_eq!(port_of(Direction::East), PORT_EAST);
        assert_eq!(arrival_port(Direction::East), PORT_WEST);
        assert_eq!(arrival_port(Direction::North), PORT_SOUTH);
        assert_eq!(port_of(Direction::Down), PORT_VERTICAL);
        assert_eq!(arrival_port(Direction::Down), PORT_VERTICAL);
        assert_eq!(arrival_port(Direction::Up), PORT_VERTICAL);
    }

    #[test]
    fn slot_order_is_port_major() {
        // The bitmask scan order must equal the legacy nested loops
        // (ports outer, VCs inner) or schedules would drift.
        let mut slots = Vec::new();
        for port in 0..PORT_COUNT as u8 {
            for vc in 0..VC_COUNT as u8 {
                slots.push(slot_of(port, vc));
            }
        }
        assert_eq!(slots, (0..SLOT_COUNT).collect::<Vec<_>>());
    }
}
