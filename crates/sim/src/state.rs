//! Flat structure-of-arrays network state: the engine's hot data plane.
//!
//! PR 4/5 flattened the per-router *scheduling* (occupancy bitmasks,
//! active-router worklists); this module flattens the *storage*. Every hot
//! per-router field that the per-cycle phases touch lives in one
//! engine-owned [`NetState`] as a dense array indexed by router or by
//! global `(router, slot)` id, so `route_and_allocate` and
//! `switch_allocate_into` sweep contiguous memory instead of chasing a
//! `Vec<Router>` of boxed rings:
//!
//! * **Occupancy words** — the twelve-bit per-router occupancy masks are
//!   packed four routers per `u64` word (16-bit lanes, bits 12–15 of each
//!   lane always zero). The phase-2/3 scans walk whole words with
//!   `trailing_zeros`, visiting occupied routers in ascending index order —
//!   exactly the order the per-router worklist used to produce — and skip
//!   four idle routers per branch.
//! * **Slot tables** — `credits`, `out_alloc`, `dest`, `granted`, `owner`
//!   are dense `Vec`s indexed by `router * SLOT_COUNT + slot_of(port, vc)`;
//!   `rr` by `router * PORT_COUNT + port`. The slot order is port-major,
//!   VC-minor ([`slot_of`]), the legacy probe order that byte-identical
//!   schedules depend on.
//! * **Ring headers + one segment arena** — each VC buffer is a
//!   [`RingHdr`] (base offset, capacity, head, live segments, flit count)
//!   over one shared [`WormSeg`] arena sized by prefix sum at
//!   construction. Capacities are fixed for the lifetime of the state
//!   (RC's grown store-and-forward buffers are sized before
//!   construction), so the arena never reallocates and the per-cycle
//!   phases never allocate.
//!
//! Ring operations come in two flavors: occupancy-maintaining
//! ([`NetState::push_flit`]/[`NetState::pop_flit`]) for the serial engine,
//! and raw ([`NetState::push_back_raw`]/[`NetState::pop_front_raw`]) for
//! the parallel tick's phase B, where a `u64` occupancy word can span a
//! shard boundary and is instead repaired serially in the postlude (see
//! the engine's parallel-tick notes).
//!
//! The snapshot wire format is unchanged from the `Vec<Router>` layout:
//! [`NetState::save_router`]/[`NetState::load_router`] reproduce the exact
//! per-router `RTRS` byte sequence the previous `Router::save`/`load`
//! emitted, so `FORMAT_VERSION` and the golden snapshot pins survive the
//! refactor.

use crate::flit::PacketId;
use crate::router::{WormSeg, PORT_COUNT, SLOT_COUNT};
use deft_codec::{CodecError, Decoder, Encoder, Persist};

/// Routers packed per occupancy word.
pub(crate) const OCC_LANES: usize = 4;
/// Bits per occupancy lane (one router's mask, top four bits always zero).
pub(crate) const OCC_LANE_BITS: usize = 16;

pub(crate) const EMPTY_SEG: WormSeg = WormSeg {
    packet: PacketId(0),
    first: 0,
    count: 0,
};

/// One VC buffer's header over the shared segment arena: a fixed-capacity
/// ring of worm segments plus the flit occupancy counter. Capacity is in
/// *flits*; since every segment holds at least one flit, `cap` arena
/// entries always suffice.
#[derive(Debug, Clone, Copy)]
struct RingHdr {
    /// First arena index of this ring's `cap` entries.
    base: u32,
    /// Buffer capacity in flits.
    cap: u16,
    /// Ring index (relative to `base`) of the front segment.
    head: u16,
    /// Live segments.
    seg_len: u16,
    /// Buffered flits (the occupancy counter).
    flits: u16,
}

/// The flat network state: every hot per-router field of the simulated
/// network in structure-of-arrays form. See the module docs for layout.
#[derive(Debug, Clone)]
pub(crate) struct NetState {
    /// Router count.
    n: usize,
    /// Packed occupancy: router `r`'s 12-bit mask occupies bits
    /// `(r % 4) * 16 ..` of word `r / 4`; bit `slot_of(port, vc)` within
    /// the lane is set iff that ring holds at least one flit.
    pub(crate) occ_words: Vec<u64>,
    /// Round-robin arbitration pointers, `[router * PORT_COUNT + port]`.
    pub(crate) rr: Vec<u32>,
    /// Credits toward each downstream buffer,
    /// `[router * SLOT_COUNT + slot_of(out_port, vc)]`. Unused for the
    /// Local port (ejection is never back-pressured).
    pub(crate) credits: Vec<u32>,
    /// Output VC allocation: the `(in_port, in_vc)` worm currently owning
    /// the downstream VC, `[router * SLOT_COUNT + slot_of(out_port, vc)]`.
    pub(crate) out_alloc: Vec<Option<(u8, u8)>>,
    /// Routing decision `(out_port, out_vc)` for the worm at the head of
    /// each input slot. Set when the head flit is routed, cleared when the
    /// tail departs.
    pub(crate) dest: Vec<Option<(u8, u8)>>,
    /// Whether the downstream VC has been allocated to each input worm.
    pub(crate) granted: Vec<bool>,
    /// The packet owning `dest`/`granted` per input slot. Carried
    /// separately from the ring because a worm can *stream through*: every
    /// buffered flit may have left (ring empty) while the tail is still
    /// upstream, and the routing state keeps belonging to that worm until
    /// its tail departs. Fault-transition packet removal keys on this.
    pub(crate) owner: Vec<Option<PacketId>>,
    /// Ring headers, `[router * SLOT_COUNT + slot]`.
    rings: Vec<RingHdr>,
    /// Shared segment arena; ring `k` owns `rings[k].base ..+ cap`.
    segs: Vec<WormSeg>,
}

impl NetState {
    /// An empty network of `caps.len() / SLOT_COUNT` routers with the
    /// given per-slot flit capacities (global slot order). Capacities are
    /// fixed for the lifetime of the state.
    pub(crate) fn new(caps: &[usize]) -> Self {
        assert_eq!(caps.len() % SLOT_COUNT, 0, "capacities per whole router");
        let slots = caps.len();
        let n = slots / SLOT_COUNT;
        let mut rings = Vec::with_capacity(slots);
        let mut arena = 0u32;
        for &cap in caps {
            assert!(cap > 0 && cap <= u16::MAX as usize, "flit capacity {cap}");
            rings.push(RingHdr {
                base: arena,
                cap: cap as u16,
                head: 0,
                seg_len: 0,
                flits: 0,
            });
            arena += cap as u32;
        }
        Self {
            n,
            occ_words: vec![0; n.div_ceil(OCC_LANES)],
            rr: vec![0; n * PORT_COUNT],
            credits: vec![0; slots],
            out_alloc: vec![None; slots],
            dest: vec![None; slots],
            granted: vec![false; slots],
            owner: vec![None; slots],
            rings,
            segs: vec![EMPTY_SEG; arena as usize],
        }
    }

    /// Router count.
    pub(crate) fn node_count(&self) -> usize {
        self.n
    }

    /// The 12-bit occupancy mask of router `r`.
    #[inline]
    pub(crate) fn occ(&self, r: usize) -> u16 {
        (self.occ_words[r / OCC_LANES] >> ((r % OCC_LANES) * OCC_LANE_BITS)) as u16
    }

    /// Overwrites router `r`'s occupancy lane (snapshot load path).
    fn set_occ_mask(&mut self, r: usize, mask: u16) {
        let shift = (r % OCC_LANES) * OCC_LANE_BITS;
        let w = &mut self.occ_words[r / OCC_LANES];
        *w = (*w & !(0xFFFFu64 << shift)) | ((mask as u64) << shift);
    }

    /// Sets router `r`'s occupancy bit for `slot` (the ring is known
    /// non-empty, e.g. just pushed into).
    #[inline]
    pub(crate) fn mark_occ(&mut self, r: usize, slot: usize) {
        self.occ_words[r / OCC_LANES] |= 1u64 << ((r % OCC_LANES) * OCC_LANE_BITS + slot);
    }

    /// Re-derives router `r`'s occupancy bit for `slot` from the ring's
    /// flit count. Used by the parallel postlude's occupancy repair and by
    /// fault-transition packet removal.
    #[inline]
    pub(crate) fn sync_occ(&mut self, r: usize, slot: usize) {
        let bit = 1u64 << ((r % OCC_LANES) * OCC_LANE_BITS + slot);
        if self.rings[r * SLOT_COUNT + slot].flits > 0 {
            self.occ_words[r / OCC_LANES] |= bit;
        } else {
            self.occ_words[r / OCC_LANES] &= !bit;
        }
    }

    /// Iterates the routers with at least one buffered flit, in ascending
    /// index order — a word-level `trailing_zeros` walk over the packed
    /// occupancy words.
    pub(crate) fn occupied(&self) -> impl Iterator<Item = usize> + '_ {
        self.occ_words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let lane = bits.trailing_zeros() as usize / OCC_LANE_BITS;
                bits &= !(0xFFFFu64 << (lane * OCC_LANE_BITS));
                Some(w * OCC_LANES + lane)
            })
        })
    }

    /// Total flits buffered in router `r`.
    #[cfg(any(test, debug_assertions))]
    pub(crate) fn occupancy(&self, r: usize) -> usize {
        self.rings[r * SLOT_COUNT..(r + 1) * SLOT_COUNT]
            .iter()
            .map(|h| h.flits as usize)
            .sum()
    }

    /// Ring `k`'s capacity in flits.
    #[cfg(any(test, debug_assertions))]
    pub(crate) fn ring_cap(&self, k: usize) -> usize {
        self.rings[k].cap as usize
    }

    /// Ring `k`'s buffered flits.
    #[cfg(test)]
    pub(crate) fn ring_len(&self, k: usize) -> usize {
        self.rings[k].flits as usize
    }

    /// Whether ring `k` holds no flit.
    #[cfg(test)]
    pub(crate) fn ring_is_empty(&self, k: usize) -> bool {
        self.rings[k].flits == 0
    }

    /// Ring `k`'s free flit slots.
    #[inline]
    pub(crate) fn ring_free(&self, k: usize) -> usize {
        let h = self.rings[k];
        (h.cap - h.flits) as usize
    }

    /// Ring `k`'s front segment, if any (copied out — 16 bytes).
    #[inline]
    pub(crate) fn ring_front(&self, k: usize) -> Option<WormSeg> {
        let h = self.rings[k];
        (h.seg_len > 0).then(|| self.segs[h.base as usize + h.head as usize])
    }

    /// Number of buffered flits belonging to ring `k`'s front packet. One
    /// arena lookup — a packet occupies at most one segment per ring.
    /// (The route phase reads the front segment's `count` directly; this
    /// accessor survives for the state unit tests.)
    #[cfg(test)]
    pub(crate) fn front_packet_flits(&self, k: usize) -> usize {
        self.ring_front(k).map_or(0, |s| s.count as usize)
    }

    /// Removes ring `k`'s front flit and returns `(packet, in-packet
    /// index)` without touching the occupancy words (parallel phase B —
    /// see the module docs).
    ///
    /// # Panics
    /// Panics if the ring is empty.
    #[inline]
    pub(crate) fn pop_front_raw(&mut self, k: usize) -> (PacketId, u32) {
        let RingHdr {
            base,
            cap,
            head,
            seg_len,
            flits,
        } = self.rings[k];
        assert!(seg_len > 0, "pop from an empty VC ring");
        let seg = &mut self.segs[base as usize + head as usize];
        let out = (seg.packet, seg.first);
        seg.first += 1;
        seg.count -= 1;
        let emptied = seg.count == 0;
        let h = &mut self.rings[k];
        if emptied {
            h.head = ((head as usize + 1) % cap as usize) as u16;
            h.seg_len = seg_len - 1;
        }
        h.flits = flits - 1;
        out
    }

    /// Appends one flit of `packet` with in-packet index `idx` to ring `k`
    /// without touching the occupancy words: a counter increment when it
    /// extends the packet's existing span, one segment write when a new
    /// worm enters.
    ///
    /// # Panics
    /// Panics if the ring is full.
    #[inline]
    pub(crate) fn push_back_raw(&mut self, k: usize, packet: PacketId, idx: u32) {
        let RingHdr {
            base,
            cap,
            head,
            seg_len,
            flits,
        } = self.rings[k];
        assert!(flits < cap, "push into a full VC ring");
        let (base, cap) = (base as usize, cap as usize);
        if seg_len > 0 {
            let tail = &mut self.segs[base + (head as usize + seg_len as usize - 1) % cap];
            if tail.packet == packet {
                debug_assert_eq!(tail.first + tail.count, idx, "non-contiguous span");
                tail.count += 1;
                self.rings[k].flits = flits + 1;
                return;
            }
        }
        self.segs[base + (head as usize + seg_len as usize) % cap] = WormSeg {
            packet,
            first: idx,
            count: 1,
        };
        let h = &mut self.rings[k];
        h.seg_len = seg_len + 1;
        h.flits = flits + 1;
    }

    /// Pops the front flit of router `r`'s `(port, vc)` ring, maintaining
    /// the occupancy words (serial engine paths).
    #[inline]
    pub(crate) fn pop_flit(&mut self, r: usize, port: u8, vc: u8) -> (PacketId, u32) {
        let slot = crate::router::slot_of(port, vc);
        let out = self.pop_front_raw(r * SLOT_COUNT + slot);
        if self.rings[r * SLOT_COUNT + slot].flits == 0 {
            self.occ_words[r / OCC_LANES] &= !(1u64 << ((r % OCC_LANES) * OCC_LANE_BITS + slot));
        }
        out
    }

    /// Appends a flit to router `r`'s `(port, vc)` ring, maintaining the
    /// occupancy words (serial engine paths).
    #[inline]
    pub(crate) fn push_flit(&mut self, r: usize, port: u8, vc: u8, packet: PacketId, idx: u32) {
        let slot = crate::router::slot_of(port, vc);
        self.push_back_raw(r * SLOT_COUNT + slot, packet, idx);
        self.mark_occ(r, slot);
    }

    /// Iterates ring `k`'s buffered segments front to back.
    pub(crate) fn segments(&self, k: usize) -> impl Iterator<Item = &WormSeg> + '_ {
        let h = self.rings[k];
        let (base, cap) = (h.base as usize, h.cap as usize);
        (0..h.seg_len as usize).map(move |i| &self.segs[base + (h.head as usize + i) % cap])
    }

    /// Removes every flit of the packets selected by `dropped` from ring
    /// `k`, compacting the ring in order. Returns the number of flits
    /// removed. Segment granular: a dropped packet loses its whole span at
    /// once. Does not touch the occupancy words — callers follow up with
    /// [`Self::sync_occ`].
    pub(crate) fn remove_packets(
        &mut self,
        k: usize,
        mut dropped: impl FnMut(PacketId) -> bool,
    ) -> u32 {
        let h = self.rings[k];
        let (base, cap, head) = (h.base as usize, h.cap as usize, h.head as usize);
        let mut removed = 0u32;
        let mut kept = 0u16;
        for i in 0..h.seg_len {
            let seg = self.segs[base + (head + i as usize) % cap];
            if dropped(seg.packet) {
                removed += seg.count;
            } else {
                self.segs[base + (head + kept as usize) % cap] = seg;
                kept += 1;
            }
        }
        let h = &mut self.rings[k];
        h.seg_len = kept;
        h.flits -= removed as u16;
        removed
    }

    /// Writes router `r`'s dynamic state: occupancy mask, round-robin
    /// pointers, credits, output VC allocations, and every VC ring in
    /// *canonical* form (capacity, live segments in logical front-to-back
    /// order, flit counter, then the worm's routing state — the physical
    /// head index is deliberately not encoded, so re-encoding a just-loaded
    /// ring reproduces the bytes exactly). Byte-identical to the
    /// pre-SoA `Router::save` layout; wiring is setup state rebuilt from
    /// the topology and is not encoded.
    pub(crate) fn save_router(&self, r: usize, enc: &mut Encoder) {
        enc.put_u16(self.occ(r));
        for p in 0..PORT_COUNT {
            enc.put_u32(self.rr[r * PORT_COUNT + p]);
        }
        let base = r * SLOT_COUNT;
        for s in 0..SLOT_COUNT {
            enc.put_u32(self.credits[base + s]);
        }
        for s in 0..SLOT_COUNT {
            self.out_alloc[base + s].encode(enc);
        }
        for s in 0..SLOT_COUNT {
            let k = base + s;
            let h = self.rings[k];
            enc.put_u16(h.cap);
            enc.put_u16(h.seg_len);
            for seg in self.segments(k) {
                seg.encode(enc);
            }
            enc.put_u16(h.flits);
            self.dest[k].encode(enc);
            enc.put_bool(self.granted[k]);
            self.owner[k].map(|p| p.0).encode(enc);
        }
    }

    /// Restores the state written by [`save_router`](Self::save_router).
    /// Ring capacities (fixed at construction, including RC's grown
    /// store-and-forward buffers) must match the snapshot's; rings are
    /// rebuilt at head 0 (canonical form).
    pub(crate) fn load_router(
        &mut self,
        r: usize,
        dec: &mut Decoder<'_>,
    ) -> Result<(), CodecError> {
        let occ_mask = dec.get_u16()?;
        if occ_mask >> SLOT_COUNT != 0 {
            return Err(CodecError::Invalid(format!(
                "occupancy mask {occ_mask:#06x} has bits beyond slot {}",
                SLOT_COUNT - 1
            )));
        }
        for p in 0..PORT_COUNT {
            let v = dec.get_u32()?;
            if v >= SLOT_COUNT as u32 {
                return Err(CodecError::Invalid(format!(
                    "round-robin pointer {v} out of range (< {SLOT_COUNT})"
                )));
            }
            self.rr[r * PORT_COUNT + p] = v;
        }
        let base = r * SLOT_COUNT;
        for s in 0..SLOT_COUNT {
            self.credits[base + s] = dec.get_u32()?;
        }
        for s in 0..SLOT_COUNT {
            self.out_alloc[base + s] = Option::<(u8, u8)>::decode(dec)?;
        }
        for s in 0..SLOT_COUNT {
            let k = base + s;
            let h = self.rings[k];
            let cap = dec.get_u16()?;
            if cap != h.cap {
                return Err(CodecError::Mismatch(format!(
                    "VC ring capacity is {} flits, snapshot has {cap}",
                    h.cap
                )));
            }
            let seg_len = dec.get_u16()?;
            if seg_len > cap {
                return Err(CodecError::Invalid(format!(
                    "ring claims {seg_len} segments with capacity {cap}"
                )));
            }
            let rbase = h.base as usize;
            let mut seg_flits = 0u32;
            for i in 0..seg_len as usize {
                let seg = WormSeg::decode(dec)?;
                seg_flits += seg.count;
                self.segs[rbase + i] = seg;
            }
            for i in seg_len as usize..h.cap as usize {
                self.segs[rbase + i] = EMPTY_SEG;
            }
            let flits = dec.get_u16()?;
            if flits > cap || u32::from(flits) != seg_flits {
                return Err(CodecError::Invalid(format!(
                    "ring holds {flits} flits but its segments sum to {seg_flits} (cap {cap})"
                )));
            }
            {
                let h = &mut self.rings[k];
                h.head = 0;
                h.seg_len = seg_len;
                h.flits = flits;
            }
            self.dest[k] = Option::<(u8, u8)>::decode(dec)?;
            self.granted[k] = dec.get_bool()?;
            self.owner[k] = Option::<u64>::decode(dec)?.map(PacketId);
        }
        for s in 0..SLOT_COUNT {
            if (occ_mask >> s) & 1 != u16::from(self.rings[base + s].flits > 0) {
                return Err(CodecError::Invalid(format!(
                    "occupancy mask {occ_mask:#06x} disagrees with ring {s}'s contents"
                )));
            }
        }
        self.set_occ_mask(r, occ_mask);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{slot_of, PORT_EAST};

    /// A one-router state whose slot-0 ring has the given capacity (the
    /// other slots get capacity 8).
    fn one_router(slot0_cap: usize) -> NetState {
        let mut caps = [8usize; SLOT_COUNT];
        caps[0] = slot0_cap;
        NetState::new(&caps)
    }

    #[test]
    fn ring_tracks_capacity_and_spans() {
        let mut net = one_router(4);
        assert_eq!(net.ring_free(0), 4);
        net.push_back_raw(0, PacketId(0), 0);
        assert_eq!(net.ring_free(0), 3);
        assert_eq!(net.ring_len(0), 1);
        // Extending the same worm merges into one segment.
        net.push_back_raw(0, PacketId(0), 1);
        assert_eq!(net.segments(0).count(), 1);
        assert_eq!(net.front_packet_flits(0), 2);
        // Pops walk the span in flit order.
        assert_eq!(net.pop_front_raw(0), (PacketId(0), 0));
        assert_eq!(net.pop_front_raw(0), (PacketId(0), 1));
        assert!(net.ring_is_empty(0));
    }

    #[test]
    fn front_packet_flits_stops_at_next_worm() {
        let mut net = one_router(8);
        for i in 0..3 {
            net.push_back_raw(0, PacketId(0), i);
        }
        net.push_back_raw(0, PacketId(1), 0);
        assert_eq!(net.front_packet_flits(0), 3);
        assert_eq!(net.segments(0).count(), 2);
        assert_eq!(net.ring_len(0), 4);
    }

    #[test]
    fn ring_wraps_across_pop_push_cycles() {
        // Exercise head wrap-around: interleave pops and pushes past the
        // physical capacity several times over.
        let mut net = one_router(3);
        let mut next_push = 0u32;
        for (next_pop, round) in (0..10u64).enumerate() {
            while net.ring_free(0) > 0 {
                net.push_back_raw(0, PacketId(round / 4), next_push);
                next_push += 1;
            }
            let (_, idx) = net.pop_front_raw(0);
            assert_eq!(idx, next_pop as u32);
        }
        assert_eq!(net.ring_len(0), 2);
    }

    #[test]
    fn remove_packets_is_segment_granular() {
        let mut net = one_router(8);
        for i in 5..8 {
            net.push_back_raw(0, PacketId(7), i); // mid-worm span
        }
        net.push_back_raw(0, PacketId(9), 0);
        net.push_back_raw(0, PacketId(9), 1);
        let removed = net.remove_packets(0, |p| p == PacketId(7));
        assert_eq!(removed, 3);
        assert_eq!(net.ring_len(0), 2);
        assert_eq!(net.ring_front(0).unwrap().packet, PacketId(9));
        assert_eq!(net.ring_front(0).unwrap().first, 0);
        assert_eq!(net.remove_packets(0, |_| false), 0);
    }

    #[test]
    fn occ_lane_follows_push_and_pop() {
        // Router 5 lands in word 1, lane 1 — the packed layout must route
        // its bits there and nowhere else.
        let caps = vec![4usize; 6 * SLOT_COUNT];
        let mut net = NetState::new(&caps);
        assert_eq!(net.occ_words.len(), 2);
        net.push_flit(5, PORT_EAST, 1, PacketId(3), 0);
        let slot = slot_of(PORT_EAST, 1);
        assert_eq!(net.occ(5), 1 << slot);
        assert_eq!(net.occ_words[0], 0);
        assert_eq!(net.occ_words[1], (1u64 << slot) << OCC_LANE_BITS);
        assert_eq!(net.occupancy(5), 1);
        assert_eq!(net.occupied().collect::<Vec<_>>(), vec![5]);
        assert_eq!(net.pop_flit(5, PORT_EAST, 1), (PacketId(3), 0));
        assert_eq!(net.occ(5), 0);
        assert_eq!(net.occ_words[1], 0);
    }

    #[test]
    fn occupied_walks_words_in_router_order() {
        let caps = vec![4usize; 11 * SLOT_COUNT];
        let mut net = NetState::new(&caps);
        for &r in &[9, 0, 3, 4, 10] {
            net.push_flit(r, PORT_EAST, 0, PacketId(r as u64), 0);
        }
        assert_eq!(net.occupied().collect::<Vec<_>>(), vec![0, 3, 4, 9, 10]);
    }

    #[test]
    fn sync_occ_rederives_bits_after_raw_ops() {
        let mut net = one_router(4);
        net.push_back_raw(0, PacketId(1), 0);
        assert_eq!(net.occ(0), 0, "raw push must not touch occupancy");
        net.sync_occ(0, 0);
        assert_eq!(net.occ(0), 1);
        net.pop_front_raw(0);
        net.sync_occ(0, 0);
        assert_eq!(net.occ(0), 0);
    }

    #[test]
    fn router_save_load_is_canonical_across_head_positions() {
        // Build a ring whose head has wrapped, save the router, load into
        // a fresh state, and check the logical contents and the re-encoded
        // bytes: the canonical form must not depend on the physical head.
        let mut net = one_router(4);
        for i in 0..4 {
            net.push_flit(0, 0, 0, PacketId(1), i);
        }
        net.pop_flit(0, 0, 0);
        net.pop_flit(0, 0, 0);
        net.push_flit(0, 0, 0, PacketId(2), 0); // wraps physically
        net.dest[0] = Some((PORT_EAST, 1));
        net.granted[0] = true;
        net.owner[0] = Some(PacketId(1));
        net.rr[2] = 7;
        net.credits[slot_of(1, 0)] = 3;
        net.out_alloc[slot_of(5, 1)] = Some((PORT_EAST, 1));
        let mut enc = Encoder::new();
        net.save_router(0, &mut enc);
        let mut fresh = one_router(4);
        let mut dec = Decoder::new(enc.as_bytes());
        fresh.load_router(0, &mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(fresh.ring_len(0), net.ring_len(0));
        assert_eq!(
            fresh.segments(0).copied().collect::<Vec<_>>(),
            net.segments(0).copied().collect::<Vec<_>>()
        );
        assert_eq!(fresh.occ(0), net.occ(0));
        assert_eq!(fresh.rr, net.rr);
        assert_eq!(fresh.credits, net.credits);
        assert_eq!(fresh.out_alloc, net.out_alloc);
        assert_eq!(fresh.dest[0], net.dest[0]);
        assert_eq!(fresh.owner[0], net.owner[0]);
        let mut enc2 = Encoder::new();
        fresh.save_router(0, &mut enc2);
        assert_eq!(enc2.as_bytes(), enc.as_bytes(), "canonical re-encode");
    }

    #[test]
    fn load_rejects_mismatched_capacity() {
        let mut net = one_router(4);
        net.push_flit(0, 0, 0, PacketId(3), 0);
        let mut enc = Encoder::new();
        net.save_router(0, &mut enc);
        let mut wrong_cap = one_router(8);
        assert!(matches!(
            wrong_cap.load_router(0, &mut Decoder::new(enc.as_bytes())),
            Err(CodecError::Mismatch(_))
        ));
    }
}
