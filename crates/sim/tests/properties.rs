//! Property-based tests of the simulator: liveness, conservation, and
//! determinism on randomized systems and loads.

use deft_routing::{DeftRouting, MtrRouting, RcRouting, RoutingAlgorithm};
use deft_sim::{SimConfig, Simulator};
use deft_topo::{ChipletId, ChipletSystem, FaultState, VlDir, VlLinkId};
use deft_traffic::{uniform, Trace, TraceEvent};
use proptest::prelude::*;

fn quick(seed: u64) -> SimConfig {
    SimConfig {
        warmup: 100,
        measure: 600,
        drain: 15_000,
        deadlock_threshold: 3_000,
        seed,
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn no_deadlock_and_full_drain_on_random_grids(
        cols in 1u8..=3,
        rows in 1u8..=2,
        rate_milli in 1u32..=8,
        alg_pick in 0u8..3,
        seed in 0u64..1000,
    ) {
        let sys = ChipletSystem::chiplet_grid(cols, rows).expect("valid grid");
        let rate = rate_milli as f64 / 1000.0;
        let pattern = uniform(&sys, rate);
        let alg: Box<dyn RoutingAlgorithm> = match alg_pick {
            0 => Box::new(DeftRouting::distance_based(&sys)),
            1 => Box::new(MtrRouting::new(&sys)),
            _ => Box::new(RcRouting::new(&sys)),
        };
        let report = Simulator::new(&sys, FaultState::none(&sys), alg, &pattern, quick(seed)).run();
        prop_assert!(!report.deadlocked, "deadlock on {cols}x{rows} grid at rate {rate}");
        // Conservation: everything measured is eventually delivered when
        // the network drains (light loads drain within the drain budget).
        if rate <= 0.004 {
            prop_assert_eq!(report.delivered, report.injected_measured);
        }
        prop_assert_eq!(report.dropped_unroutable, 0);
    }

    #[test]
    fn latency_is_at_least_serialization(
        rate_milli in 1u32..=4,
        seed in 0u64..100,
    ) {
        let sys = ChipletSystem::baseline_4();
        let pattern = uniform(&sys, rate_milli as f64 / 1000.0);
        let report = Simulator::new(
            &sys,
            FaultState::none(&sys),
            Box::new(DeftRouting::distance_based(&sys)),
            &pattern,
            quick(seed),
        )
        .run();
        if report.delivered > 0 {
            // A packet of 8 flits needs at least 8 + 1 cycles end to end.
            prop_assert!(report.avg_latency >= 9.0, "latency {}", report.avg_latency);
            prop_assert!(report.p50_latency >= 9);
        }
    }

    #[test]
    fn faulty_scenarios_never_deadlock_deft(
        fault_picks in prop::collection::vec((0u8..4, 0u8..4, prop::bool::ANY), 1..6),
        seed in 0u64..100,
    ) {
        let sys = ChipletSystem::baseline_4();
        let mut faults = FaultState::none(&sys);
        for (c, i, down) in fault_picks {
            faults.inject(VlLinkId {
                chiplet: ChipletId(c),
                index: i,
                dir: if down { VlDir::Down } else { VlDir::Up },
            });
        }
        prop_assume!(!faults.disconnects_any_chiplet(&sys));
        let pattern = uniform(&sys, 0.004);
        let report = Simulator::new(
            &sys,
            faults,
            Box::new(DeftRouting::new(&sys)),
            &pattern,
            quick(seed),
        )
        .run();
        prop_assert!(!report.deadlocked);
        prop_assert_eq!(report.dropped_unroutable, 0);
    }

    #[test]
    fn batched_engine_matches_dense_scan_on_random_systems(
        cols in 1u8..=3,
        rows in 1u8..=2,
        rate_milli in 1u32..=8,
        alg_pick in 0u8..3,
        seed in 0u64..1000,
    ) {
        // Differential pin of the hot-path refactor: the word-batched
        // lane-mask run — serial and under every shard count — and the
        // tick-every-cycle dense reference must produce identical
        // SimReports (every counter, percentile, map entry) on arbitrary
        // small systems, loads, and algorithms.
        let sys = ChipletSystem::chiplet_grid(cols, rows).expect("valid grid");
        let pattern = uniform(&sys, rate_milli as f64 / 1000.0);
        let alg = |pick: u8| -> Box<dyn RoutingAlgorithm> {
            match pick {
                0 => Box::new(DeftRouting::distance_based(&sys)),
                1 => Box::new(MtrRouting::new(&sys)),
                _ => Box::new(RcRouting::new(&sys)),
            }
        };
        let mk = |threads: usize| Simulator::new(
            &sys,
            FaultState::none(&sys),
            alg(alg_pick),
            &pattern,
            quick(seed).with_tick_threads(threads),
        );
        let dense = mk(1).run_dense_reference();
        for threads in [1usize, 2, 4, 8] {
            prop_assert_eq!(
                &mk(threads).run(),
                &dense,
                "tick_threads={} diverges from the dense reference",
                threads
            );
        }
    }

    #[test]
    fn batched_engine_matches_dense_under_fault_timelines(
        mean_healthy_frac in 1u32..=4,
        alg_pick in 0u8..4,
        seed in 0u64..200,
    ) {
        // Same differential pin across the packet-removal path: transient
        // timelines strand worms mid-run, the one place buffers and
        // credits are manipulated out of band — for every algorithm
        // family (RC exercises the store-and-forward grown buffers,
        // DeFT-Ran the per-injection RNG sequencing) and every shard
        // count.
        let sys = ChipletSystem::baseline_4();
        let pattern = uniform(&sys, 0.004);
        let tl = deft_topo::FaultTimeline::transient(
            &sys,
            &deft_topo::TransientConfig {
                mean_healthy: 700.0 * mean_healthy_frac as f64,
                mean_faulty: 150.0,
                horizon: 700,
                seed,
            },
        );
        let alg = |pick: u8| -> Box<dyn RoutingAlgorithm> {
            match pick {
                0 => Box::new(DeftRouting::distance_based(&sys)),
                1 => Box::new(DeftRouting::random_selection(&sys, seed)),
                2 => Box::new(MtrRouting::new(&sys)),
                _ => Box::new(RcRouting::new(&sys)),
            }
        };
        let mk = |threads: usize| Simulator::new(
            &sys,
            FaultState::none(&sys),
            alg(alg_pick),
            &pattern,
            quick(seed).with_tick_threads(threads),
        ).with_timeline(&tl);
        let dense = mk(1).run_dense_reference();
        for threads in [1usize, 2, 4, 8] {
            prop_assert_eq!(
                &mk(threads).run(),
                &dense,
                "tick_threads={} diverges from the dense reference",
                threads
            );
        }
    }

    #[test]
    fn idle_skipping_trace_playback_matches_dense_ticking(
        period in 40u64..500,
        packets in 3usize..20,
        src_salt in 0u32..64,
        with_timeline in prop::bool::ANY,
        seed in 0u64..200,
    ) {
        // Trace playback is where idle-cycle skipping actually jumps the
        // clock (stochastic patterns disable it): the skipping active-set
        // run must equal the dense reference, which ticks every cycle,
        // on the full SimReport — cycle counts, epochs, everything. The
        // timeline variant forces skips to stop at fault transitions in
        // the middle of provably-idle windows.
        let sys = ChipletSystem::baseline_4();
        let n = sys.node_count() as u32;
        let events: Vec<TraceEvent> = (0..packets as u64)
            .map(|k| {
                let src = deft_topo::NodeId((src_salt + 7 * k as u32) % n);
                let dst = deft_topo::NodeId((src_salt + 13 + 29 * k as u32) % n);
                TraceEvent { cycle: k * period, src, dst }
            })
            .filter(|e| e.src != e.dst)
            .collect();
        prop_assume!(!events.is_empty());
        let trace = Trace::new("sparse", events, sys.node_count());
        let tl = if with_timeline {
            deft_topo::FaultTimeline::transient(
                &sys,
                &deft_topo::TransientConfig {
                    mean_healthy: 900.0,
                    mean_faulty: 200.0,
                    horizon: 700,
                    seed,
                },
            )
        } else {
            deft_topo::FaultTimeline::empty()
        };
        let mk = || Simulator::new(
            &sys,
            FaultState::none(&sys),
            Box::new(DeftRouting::distance_based(&sys)),
            &trace,
            quick(seed),
        ).with_timeline(&tl);
        prop_assert_eq!(mk().run(), mk().run_dense_reference());
    }

    #[test]
    fn reports_are_reproducible(seed in 0u64..50) {
        let sys = ChipletSystem::baseline_4();
        let pattern = uniform(&sys, 0.005);
        let run = || {
            Simulator::new(
                &sys,
                FaultState::none(&sys),
                Box::new(DeftRouting::distance_based(&sys)),
                &pattern,
                quick(seed),
            )
            .run()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.avg_latency, b.avg_latency);
        prop_assert_eq!(a.p99_latency, b.p99_latency);
        prop_assert_eq!(a.cycles, b.cycles);
    }
}
