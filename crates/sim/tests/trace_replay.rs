//! Trace-driven simulation: replaying a recorded trace must reproduce the
//! live run bit-for-bit.

use deft_routing::DeftRouting;
use deft_sim::{SimConfig, Simulator};
use deft_topo::{ChipletSystem, FaultState};
use deft_traffic::{uniform, Trace};

#[test]
fn trace_replay_reproduces_the_live_run_exactly() {
    let sys = ChipletSystem::baseline_4();
    let pattern = uniform(&sys, 0.005);
    let cfg = SimConfig {
        warmup: 200,
        measure: 1_500,
        drain: 20_000,
        ..SimConfig::default()
    };

    let live = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Box::new(DeftRouting::new(&sys)),
        &pattern,
        cfg,
    )
    .run();

    // Record with the simulator's generation seed and horizon, replay with a
    // *different* seed: injections must be identical, so the whole report
    // must match.
    let trace = Trace::record(&sys, &pattern, cfg.warmup + cfg.measure, cfg.seed);
    let replay_cfg = SimConfig {
        seed: 0xDEAD_BEEF,
        ..cfg
    };
    let replayed = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Box::new(DeftRouting::new(&sys)),
        &trace,
        replay_cfg,
    )
    .run();

    assert_eq!(live.injected_measured, replayed.injected_measured);
    assert_eq!(live.delivered, replayed.delivered);
    assert_eq!(live.avg_latency, replayed.avg_latency);
    assert_eq!(live.max_latency, replayed.max_latency);
    assert_eq!(live.cycles, replayed.cycles);
    assert_eq!(live.vl_flits, replayed.vl_flits);
}

#[test]
fn text_serialized_trace_still_replays_identically() {
    let sys = ChipletSystem::baseline_4();
    let pattern = uniform(&sys, 0.006);
    let cfg = SimConfig {
        warmup: 100,
        measure: 800,
        drain: 10_000,
        ..SimConfig::default()
    };
    let trace = Trace::record(&sys, &pattern, cfg.warmup + cfg.measure, cfg.seed);
    let restored = Trace::from_text(&trace.to_text(), sys.node_count()).expect("round trip");

    let run = |t: &Trace| {
        Simulator::new(
            &sys,
            FaultState::none(&sys),
            Box::new(DeftRouting::new(&sys)),
            t,
            cfg,
        )
        .run()
    };
    let a = run(&trace);
    let b = run(&restored);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.avg_latency, b.avg_latency);
}

#[test]
fn traces_feed_the_traffic_aware_optimizer() {
    // A recorded trace exposes mean per-node rates, so DeFT's traffic-aware
    // offline optimization works on traces exactly as on live patterns.
    use deft_traffic::TrafficPattern;
    let sys = ChipletSystem::baseline_4();
    let pattern = uniform(&sys, 0.008);
    let trace = Trace::record(&sys, &pattern, 2_000, 7);
    let rates: Vec<f64> = sys.nodes().map(|n| trace.injection_rate(n)).collect();
    assert!(rates.iter().sum::<f64>() > 0.0);
    let deft = DeftRouting::with_traffic(&sys, move |n: deft_topo::NodeId| rates[n.index()]);
    let cfg = SimConfig {
        warmup: 100,
        measure: 500,
        ..SimConfig::default()
    };
    let report = Simulator::new(&sys, FaultState::none(&sys), Box::new(deft), &trace, cfg).run();
    assert!(report.delivered > 0);
    assert!(!report.deadlocked);
}
