//! Property-based tests of the topology model.

use deft_topo::{
    ChipletId, ChipletSystem, Coord, Direction, FaultState, NodeAddr, SystemBuilder, VlDir,
    VlLinkId, PINWHEEL_VLS_4X4,
};
use proptest::prelude::*;

/// A random valid grid-of-4x4-chiplets system (1..=3 columns, 1..=2 rows).
fn arb_grid() -> impl Strategy<Value = ChipletSystem> {
    (1u8..=3, 1u8..=2).prop_map(|(cols, rows)| {
        ChipletSystem::chiplet_grid(cols, rows).expect("grid presets are valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn node_id_addr_bijection(sys in arb_grid()) {
        for node in sys.nodes() {
            let addr = sys.addr(node);
            prop_assert_eq!(sys.node_id(addr), Some(node));
        }
    }

    #[test]
    fn neighbor_relation_is_symmetric(sys in arb_grid()) {
        for node in sys.nodes() {
            for dir in Direction::ALL {
                if let Some(nbr) = sys.neighbor(node, dir) {
                    prop_assert_eq!(
                        sys.neighbor(nbr, dir.opposite()),
                        Some(node),
                        "asymmetric link {} -{}-> {}", node, dir, nbr
                    );
                }
            }
        }
    }

    #[test]
    fn every_chiplet_node_is_counted_once(sys in arb_grid()) {
        let mut seen = vec![false; sys.node_count()];
        for c in sys.chiplets() {
            for n in sys.chiplet_nodes(c.id()) {
                prop_assert!(!seen[n.index()], "node {} in two chiplets", n);
                seen[n.index()] = true;
            }
        }
        for n in sys.interposer_nodes() {
            prop_assert!(!seen[n.index()]);
            seen[n.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn vertical_links_pair_boundary_and_interposer(sys in arb_grid()) {
        for vl in sys.vertical_links() {
            prop_assert!(sys.is_boundary_router(vl.chiplet_node));
            prop_assert_eq!(sys.vertical_peer(vl.chiplet_node), Some(vl.interposer_node));
            prop_assert_eq!(sys.vertical_peer(vl.interposer_node), Some(vl.chiplet_node));
            // The interposer endpoint sits exactly under the boundary router.
            let below = sys.addr(vl.interposer_node).coord;
            let chip = sys.chiplet(vl.chiplet);
            prop_assert_eq!(below, chip.to_interposer(vl.chiplet_coord));
        }
    }

    #[test]
    fn fault_inject_heal_is_identity(
        sys in arb_grid(),
        picks in prop::collection::vec((0u8..6, 0u8..4, prop::bool::ANY), 0..12)
    ) {
        let mut f = FaultState::none(&sys);
        let mut valid: Vec<VlLinkId> = Vec::new();
        for (c, i, down) in picks {
            if (c as usize) < sys.chiplet_count() {
                let l = VlLinkId {
                    chiplet: ChipletId(c),
                    index: i,
                    dir: if down { VlDir::Down } else { VlDir::Up },
                };
                f.inject(l);
                valid.push(l);
            }
        }
        for &l in &valid {
            prop_assert!(f.is_faulty(l));
        }
        for &l in &valid {
            f.heal(l);
        }
        prop_assert!(f.is_fault_free());
    }

    #[test]
    fn faulty_count_equals_link_list_length(
        picks in prop::collection::vec((0u8..4, 0u8..4, prop::bool::ANY), 0..16)
    ) {
        let sys = ChipletSystem::baseline_4();
        let mut f = FaultState::none(&sys);
        for (c, i, down) in picks {
            f.inject(VlLinkId {
                chiplet: ChipletId(c),
                index: i,
                dir: if down { VlDir::Down } else { VlDir::Up },
            });
        }
        prop_assert_eq!(f.faulty_count(), f.links().len());
    }

    #[test]
    fn manhattan_satisfies_triangle_inequality(
        ax in 0u8..16, ay in 0u8..16, bx in 0u8..16, by in 0u8..16, cx in 0u8..16, cy in 0u8..16
    ) {
        let (a, b, c) = (Coord::new(ax, ay), Coord::new(bx, by), Coord::new(cx, cy));
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }
}

#[test]
fn overlapping_footprints_never_build() {
    // Shift a second chiplet across every offset; builds must fail exactly
    // when footprints intersect.
    for dx in 0u8..8 {
        for dy in 0u8..8 {
            if dx + 4 > 12 || dy + 4 > 12 {
                continue;
            }
            let result = SystemBuilder::new(12, 12)
                .chiplet(Coord::new(0, 0), 4, 4, &PINWHEEL_VLS_4X4)
                .chiplet(Coord::new(dx, dy), 4, 4, &PINWHEEL_VLS_4X4)
                .build();
            let overlaps = dx < 4 && dy < 4;
            assert_eq!(result.is_err(), overlaps, "dx={dx} dy={dy}");
        }
    }
}

#[test]
fn addr_panics_out_of_range() {
    let sys = ChipletSystem::baseline_4();
    let result = std::panic::catch_unwind(|| sys.addr(deft_topo::NodeId(10_000)));
    assert!(result.is_err());
    let _ = NodeAddr::new(deft_topo::Layer::Interposer, Coord::new(0, 0));
}
