//! Fault timelines: link faults that inject and heal at scheduled cycles
//! *during* a live simulation.
//!
//! The paper evaluates DeFT only against static fault scenarios — every
//! [`FaultState`] is fixed before the simulator starts. A [`FaultTimeline`]
//! lifts that restriction: it is an ordered sequence of [`FaultEvent`]s
//! (inject or heal one unidirectional vertical link at a given cycle) that
//! the simulator consumes at cycle granularity through a
//! [`TimelineCursor`], so resilience can be measured as *recovery
//! behaviour* (drops, in-flight losses, latency around each transition)
//! instead of steady state only.
//!
//! Three seeded, deterministic generators cover the scenario classes of
//! the recovery experiment:
//!
//! * [`FaultTimeline::transient`] — per-link alternating exponential
//!   healthy/faulty periods (random transient faults);
//! * [`FaultTimeline::burst`] — several links fail together at random
//!   instants and heal after a fixed duration (burst failures);
//! * [`FaultTimeline::region`] — all-but-one links of one (chiplet,
//!   direction) group fail together (region / chiplet-adjacent failure).
//!
//! All generators run their candidate events through the *admissibility
//! filter* ([`FaultTimeline::from_candidates`]): an inject that would
//! disconnect a chiplet (fully fault one of its per-direction link
//! groups) is dropped together with its paired heal, so every
//! intermediate [`FaultState`] along a generated timeline keeps every
//! chiplet reachable — the dynamic analogue of the paper's "excluding
//! scenarios that disconnect chiplets completely" rule. Timelines built
//! directly with [`FaultTimeline::from_events`] are *not* filtered; use
//! [`FaultTimeline::is_admissible`] to check them.
//!
//! Determinism: generators draw from [`SmallRng`] streams derived from
//! the caller's seed (per-link streams for [`FaultTimeline::transient`],
//! so the timeline does not depend on link iteration order), and events
//! are kept in a canonical total order. The same `(system, config, seed)`
//! triple always produces byte-identical timelines on every platform.

use crate::fault::all_unidirectional_links;
use crate::{ChipletSystem, FaultState, VlDir, VlLinkId};
use deft_codec::{CodecError, Decoder, Encoder, Persist};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// What a [`FaultEvent`] does to its link.
///
/// `Heal` orders before `Inject`: when both kinds are due at the same
/// cycle, healed capacity becomes available before new faults are
/// applied, which keeps the admissibility filter maximally permissive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultEventKind {
    /// The link becomes healthy again.
    Heal,
    /// The link becomes faulty.
    Inject,
}

impl fmt::Display for FaultEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEventKind::Heal => f.write_str("heal"),
            FaultEventKind::Inject => f.write_str("inject"),
        }
    }
}

/// One scheduled fault transition: at `cycle`, `link` is injected or
/// healed.
///
/// Events take effect *at* their cycle: a simulator applying the timeline
/// sees the new fault state before routing any flit of that cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultEvent {
    /// The cycle at which the transition takes effect.
    pub cycle: u64,
    /// Event kind — heal before inject within a cycle (field order is the
    /// canonical sort order).
    pub kind: FaultEventKind,
    /// The unidirectional vertical link that changes state.
    pub link: VlLinkId,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {} {}", self.cycle, self.kind, self.link)
    }
}

/// Configuration of [`FaultTimeline::transient`]: random transient faults
/// with exponential up/down times, independently per link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Mean healthy period per link, in cycles (exponentially
    /// distributed). The per-link fault rate is `1 / mean_healthy`.
    pub mean_healthy: f64,
    /// Mean faulty period per link, in cycles (exponentially
    /// distributed).
    pub mean_faulty: f64,
    /// Events are generated in `[0, horizon)`; a fault whose sampled heal
    /// time falls past the horizon still emits its heal event (it simply
    /// lands after the horizon).
    pub horizon: u64,
    /// RNG seed. Each link derives an independent stream from it.
    pub seed: u64,
}

/// Configuration of [`FaultTimeline::burst`]: `bursts` failure bursts at
/// seeded-random instants, each failing `links_per_burst` random links for
/// `duration` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstConfig {
    /// Number of bursts.
    pub bursts: usize,
    /// Links failing together per burst (admissibility may drop some).
    pub links_per_burst: usize,
    /// Cycles from a burst's inject to its heal. A zero duration drops
    /// the burst entirely (a zero-length fault has no observable window).
    pub duration: u64,
    /// Burst start cycles are drawn uniformly from `[0, horizon)`.
    pub horizon: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Configuration of [`FaultTimeline::region`]: one chiplet-adjacent
/// failure — all links of a seeded-random (chiplet, direction) group
/// except one seeded-random spare fail together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionConfig {
    /// Cycle at which the region fails.
    pub start: u64,
    /// Cycles until the region heals. A zero duration drops the scenario
    /// entirely (a zero-length fault has no observable window).
    pub duration: u64,
    /// RNG seed (selects the chiplet, the direction, and the spare link).
    pub seed: u64,
}

/// An ordered schedule of link-fault transitions over a simulation run.
///
/// Built by a generator ([`transient`](Self::transient),
/// [`burst`](Self::burst), [`region`](Self::region)) or directly from
/// events ([`from_events`](Self::from_events)); consumed by a simulator
/// through [`cursor`](Self::cursor).
///
/// ```
/// use deft_topo::{ChipletSystem, FaultState, FaultTimeline, TransientConfig};
///
/// let sys = ChipletSystem::baseline_4();
/// let tl = FaultTimeline::transient(
///     &sys,
///     &TransientConfig { mean_healthy: 4_000.0, mean_faulty: 500.0, horizon: 10_000, seed: 7 },
/// );
/// assert!(tl.is_admissible(&sys));
/// // Drive it the way the simulator does:
/// let mut cursor = tl.cursor();
/// let mut faults = FaultState::none(&sys);
/// for cycle in 0..10_000 {
///     if cursor.advance(cycle, &mut faults) {
///         assert!(!faults.disconnects_any_chiplet(&sys));
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// An empty timeline (a static-fault run).
    pub fn empty() -> Self {
        Self { events: Vec::new() }
    }

    /// A timeline holding exactly `events`, sorted into the canonical
    /// order (cycle, then heal-before-inject, then link).
    ///
    /// No admissibility filtering is applied; check with
    /// [`is_admissible`](Self::is_admissible) if the events are not from a
    /// generator.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_unstable();
        Self { events }
    }

    /// The events in canonical order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The distinct cycles at which the fault state changes, in order.
    pub fn transition_cycles(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.events.iter().map(|e| e.cycle).collect();
        out.dedup();
        out
    }

    /// The fault state after applying every event with `event.cycle <=
    /// cycle` to a fault-free start.
    pub fn state_at(&self, sys: &ChipletSystem, cycle: u64) -> FaultState {
        let mut state = FaultState::none(sys);
        for e in self.events.iter().take_while(|e| e.cycle <= cycle) {
            e.apply(&mut state);
        }
        state
    }

    /// Whether every intermediate fault state along the timeline (starting
    /// fault-free) keeps every chiplet connected. Generator-built
    /// timelines always are; hand-built ones may not be.
    pub fn is_admissible(&self, sys: &ChipletSystem) -> bool {
        let mut state = FaultState::none(sys);
        for e in &self.events {
            e.apply(&mut state);
            if state.disconnects_any_chiplet(sys) {
                return false;
            }
        }
        true
    }

    /// A cursor for consuming the timeline cycle by cycle.
    pub fn cursor(&self) -> TimelineCursor<'_> {
        TimelineCursor {
            events: &self.events,
            next: 0,
        }
    }

    /// The same schedule delayed by `offset` cycles: every event's cycle
    /// is shifted by the constant, so relative spacing — and therefore
    /// admissibility, which only depends on event order — is preserved.
    /// Used by the fork-sweep experiment to graft a timeline generated on
    /// a `[0, horizon - fork_cycle)` window onto a run already warmed up
    /// to `fork_cycle`.
    ///
    /// # Panics
    /// Panics if any shifted cycle would overflow `u64`.
    pub fn shifted(&self, offset: u64) -> Self {
        Self {
            events: self
                .events
                .iter()
                .map(|e| FaultEvent {
                    cycle: e
                        .cycle
                        .checked_add(offset)
                        .expect("shifted event cycle overflows u64"),
                    ..*e
                })
                .collect(),
        }
    }

    /// An order-sensitive FNV-1a fingerprint of the event schedule, used
    /// by snapshots to verify that a resume reattaches the same timeline
    /// the snapshot was taken under.
    pub fn fingerprint(&self) -> u64 {
        deft_codec::fingerprint_value(self)
    }

    /// Random transient faults: each link alternates exponentially
    /// distributed healthy and faulty periods, independently of the
    /// others (mismatch, electromigration and thermomigration act on
    /// individual micro-bump groups — paper §III-B — so link lifetimes
    /// are modelled as independent).
    ///
    /// Each link draws from its own RNG stream derived from `cfg.seed`,
    /// so the result is independent of link iteration order. Injects that
    /// would disconnect a chiplet are dropped with their paired heal
    /// (see the module docs).
    ///
    /// # Panics
    /// Panics if `cfg.mean_healthy` or `cfg.mean_faulty` is not finite
    /// and strictly positive.
    pub fn transient(sys: &ChipletSystem, cfg: &TransientConfig) -> Self {
        assert!(
            cfg.mean_healthy.is_finite() && cfg.mean_healthy > 0.0,
            "mean_healthy must be finite and positive, got {}",
            cfg.mean_healthy
        );
        assert!(
            cfg.mean_faulty.is_finite() && cfg.mean_faulty > 0.0,
            "mean_faulty must be finite and positive, got {}",
            cfg.mean_faulty
        );
        let mut cands = Vec::new();
        for (i, link) in all_unidirectional_links(sys).into_iter().enumerate() {
            // Per-link stream: SplitMix64-style increment keeps streams
            // decorrelated for any seed.
            let mut rng = SmallRng::seed_from_u64(
                cfg.seed
                    .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            let mut t = exp_cycles(&mut rng, cfg.mean_healthy);
            while t < cfg.horizon {
                let heal_at = t + exp_cycles(&mut rng, cfg.mean_faulty);
                cands.push(Candidate {
                    inject_at: t,
                    heal_at,
                    link,
                });
                t = heal_at + exp_cycles(&mut rng, cfg.mean_healthy);
            }
        }
        Self::from_candidates(sys, cands)
    }

    /// Burst failures: `cfg.bursts` bursts at seeded-random start cycles,
    /// each failing `cfg.links_per_burst` distinct random links for
    /// `cfg.duration` cycles. Overlapping bursts are allowed; injects
    /// that would disconnect a chiplet are dropped with their heals.
    pub fn burst(sys: &ChipletSystem, cfg: &BurstConfig) -> Self {
        let links = all_unidirectional_links(sys);
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut cands = Vec::new();
        for _ in 0..cfg.bursts {
            let start = rng.random_range(0..cfg.horizon.max(1));
            // Partial Fisher-Yates for a uniform distinct-link subset.
            let mut pool: Vec<usize> = (0..links.len()).collect();
            let take = cfg.links_per_burst.min(pool.len());
            for i in 0..take {
                let j = rng.random_range(i..pool.len());
                pool.swap(i, j);
                cands.push(Candidate {
                    inject_at: start,
                    heal_at: start + cfg.duration,
                    link: links[pool[i]],
                });
            }
        }
        Self::from_candidates(sys, cands)
    }

    /// A region (chiplet-adjacent) failure: every link of one
    /// seeded-random (chiplet, direction) group *except one spare* fails
    /// at `cfg.start` and heals at `cfg.start + cfg.duration`. Keeping
    /// one spare makes the scenario admissible by construction; the
    /// filter still runs for uniformity.
    pub fn region(sys: &ChipletSystem, cfg: &RegionConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let chiplet = sys.chiplets()[rng.random_range(0..sys.chiplet_count())].id();
        let dir = VlDir::ALL[rng.random_range(0..2usize)];
        let vl_count = sys.chiplet(chiplet).vl_count();
        let spare = rng.random_range(0..vl_count) as u8;
        let cands = (0..vl_count as u8)
            .filter(|&i| i != spare)
            .map(|index| Candidate {
                inject_at: cfg.start,
                heal_at: cfg.start + cfg.duration,
                link: VlLinkId {
                    chiplet,
                    index,
                    dir,
                },
            })
            .collect();
        Self::from_candidates(sys, cands)
    }

    /// The admissibility filter shared by all generators: walks the
    /// candidate inject/heal pairs in canonical event order, maintaining
    /// the running fault state; an inject that would fully fault a
    /// (chiplet, direction) group — disconnecting the chiplet — is
    /// dropped together with its paired heal. Degenerate pairs with
    /// `heal_at <= inject_at` (a zero-length fault, e.g. a `duration: 0`
    /// burst) are dropped outright: the canonical heal-before-inject
    /// ordering would otherwise turn them into never-healed faults.
    fn from_candidates(sys: &ChipletSystem, cands: Vec<Candidate>) -> Self {
        let mut tagged: Vec<(FaultEvent, usize)> = Vec::with_capacity(cands.len() * 2);
        for (pair, c) in cands.iter().enumerate() {
            if c.heal_at <= c.inject_at {
                continue;
            }
            tagged.push((
                FaultEvent {
                    cycle: c.inject_at,
                    kind: FaultEventKind::Inject,
                    link: c.link,
                },
                pair,
            ));
            tagged.push((
                FaultEvent {
                    cycle: c.heal_at,
                    kind: FaultEventKind::Heal,
                    link: c.link,
                },
                pair,
            ));
        }
        tagged.sort_unstable();
        let mut dropped = vec![false; cands.len()];
        let mut state = FaultState::none(sys);
        let mut events = Vec::with_capacity(tagged.len());
        for (e, pair) in tagged {
            if dropped[pair] {
                continue;
            }
            match e.kind {
                FaultEventKind::Inject => {
                    // A link can carry overlapping candidate faults (e.g.
                    // two bursts hitting it); re-injecting an
                    // already-faulty link is indistinguishable at the
                    // FaultState level, but its heal would end *both*
                    // faults early, so overlapping pairs on one link are
                    // dropped too.
                    if state.is_faulty(e.link) {
                        dropped[pair] = true;
                        continue;
                    }
                    state.inject(e.link);
                    if state.disconnects_any_chiplet(sys) {
                        state.heal(e.link);
                        dropped[pair] = true;
                    } else {
                        events.push(e);
                    }
                }
                FaultEventKind::Heal => {
                    state.heal(e.link);
                    events.push(e);
                }
            }
        }
        Self { events }
    }
}

impl FaultEvent {
    /// Applies the event to a fault state.
    pub fn apply(&self, state: &mut FaultState) {
        match self.kind {
            FaultEventKind::Inject => state.inject(self.link),
            FaultEventKind::Heal => state.heal(self.link),
        }
    }
}

impl Persist for FaultEventKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            FaultEventKind::Heal => 0,
            FaultEventKind::Inject => 1,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(FaultEventKind::Heal),
            1 => Ok(FaultEventKind::Inject),
            d => Err(CodecError::Invalid(format!(
                "bad FaultEventKind discriminant {d}"
            ))),
        }
    }
}

impl Persist for FaultEvent {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.cycle);
        self.kind.encode(enc);
        self.link.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        Ok(FaultEvent {
            cycle: dec.get_u64()?,
            kind: FaultEventKind::decode(dec)?,
            link: VlLinkId::decode(dec)?,
        })
    }
}

impl Persist for FaultTimeline {
    fn encode(&self, enc: &mut Encoder) {
        self.events.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        // Decoded timelines keep the canonical order invariant: re-sort
        // rather than trusting the payload.
        Ok(FaultTimeline::from_events(Vec::<FaultEvent>::decode(dec)?))
    }
}

/// One inject/heal pair before admissibility filtering.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    inject_at: u64,
    heal_at: u64,
    link: VlLinkId,
}

/// A position in a [`FaultTimeline`], consuming events monotonically.
///
/// The simulator calls [`advance`](Self::advance) once per cycle with its
/// current cycle number; the cursor applies every not-yet-applied event
/// with `event.cycle <= cycle` and reports whether the fault state
/// actually changed (an inject of an already-faulty link, or a heal of a
/// healthy one, is a no-op).
#[derive(Debug, Clone)]
pub struct TimelineCursor<'a> {
    events: &'a [FaultEvent],
    next: usize,
}

impl TimelineCursor<'_> {
    /// Applies all due events to `state`. Returns whether any fault bit
    /// flipped.
    pub fn advance(&mut self, cycle: u64, state: &mut FaultState) -> bool {
        let mut changed = false;
        while let Some(e) = self.events.get(self.next) {
            if e.cycle > cycle {
                break;
            }
            let was = state.is_faulty(e.link);
            e.apply(state);
            changed |= state.is_faulty(e.link) != was;
            self.next += 1;
        }
        changed
    }

    /// Whether every event has been applied.
    pub fn is_done(&self) -> bool {
        self.next == self.events.len()
    }

    /// The cycle of the next pending event, if any.
    pub fn next_transition(&self) -> Option<u64> {
        self.events.get(self.next).map(|e| e.cycle)
    }

    /// The number of events already applied (the cursor's position).
    /// Stored in simulator snapshots so a resumed run re-applies exactly
    /// the not-yet-seen suffix of the timeline.
    pub fn position(&self) -> usize {
        self.next
    }

    /// Total events in the timeline behind this cursor (applied or not).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// A position-independent fingerprint of the *whole* timeline behind
    /// this cursor; equals [`FaultTimeline::fingerprint`] of the timeline
    /// it was created from. Snapshots store it so a resume can verify the
    /// run is reattached to the same event schedule.
    pub fn fingerprint(&self) -> u64 {
        let mut enc = Encoder::new();
        enc.put_usize(self.events.len());
        for e in self.events {
            e.encode(&mut enc);
        }
        deft_codec::fnv1a(enc.as_bytes())
    }

    /// Moves the cursor so that `position` events count as applied
    /// (snapshot resume; the caller restores the matching fault state
    /// separately).
    ///
    /// # Panics
    /// Panics if `position` exceeds the event count.
    pub fn seek(&mut self, position: usize) {
        assert!(
            position <= self.events.len(),
            "cursor position {position} past {} events",
            self.events.len()
        );
        self.next = position;
    }
}

/// An exponential cycle count with the given mean, at least 1.
fn exp_cycles(rng: &mut SmallRng, mean: f64) -> u64 {
    let u: f64 = rng.random();
    // 1 - u is in (0, 1], so ln is finite and non-positive.
    let sample = -mean * (1.0 - u).ln();
    (sample.round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipletId;

    fn sys() -> ChipletSystem {
        ChipletSystem::baseline_4()
    }

    fn link(c: u8, i: u8, dir: VlDir) -> VlLinkId {
        VlLinkId {
            chiplet: ChipletId(c),
            index: i,
            dir,
        }
    }

    #[test]
    fn events_sort_into_canonical_order() {
        let tl = FaultTimeline::from_events(vec![
            FaultEvent {
                cycle: 10,
                kind: FaultEventKind::Inject,
                link: link(0, 0, VlDir::Down),
            },
            FaultEvent {
                cycle: 10,
                kind: FaultEventKind::Heal,
                link: link(1, 1, VlDir::Up),
            },
            FaultEvent {
                cycle: 5,
                kind: FaultEventKind::Inject,
                link: link(1, 1, VlDir::Up),
            },
        ]);
        let cycles: Vec<u64> = tl.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![5, 10, 10]);
        // Heal orders before inject at the shared cycle.
        assert_eq!(tl.events()[1].kind, FaultEventKind::Heal);
        assert_eq!(tl.transition_cycles(), vec![5, 10]);
    }

    #[test]
    fn cursor_applies_events_at_their_cycle() {
        let s = sys();
        let l = link(2, 1, VlDir::Down);
        let tl = FaultTimeline::from_events(vec![
            FaultEvent {
                cycle: 3,
                kind: FaultEventKind::Inject,
                link: l,
            },
            FaultEvent {
                cycle: 9,
                kind: FaultEventKind::Heal,
                link: l,
            },
        ]);
        let mut cursor = tl.cursor();
        let mut f = FaultState::none(&s);
        assert!(!cursor.advance(2, &mut f));
        assert_eq!(cursor.next_transition(), Some(3));
        assert!(cursor.advance(3, &mut f));
        assert!(f.is_faulty(l));
        assert!(!cursor.advance(8, &mut f));
        assert!(cursor.advance(9, &mut f));
        assert!(f.is_fault_free());
        assert!(cursor.is_done());
    }

    #[test]
    fn cursor_reports_no_change_for_redundant_events() {
        let s = sys();
        let l = link(0, 0, VlDir::Up);
        let tl = FaultTimeline::from_events(vec![FaultEvent {
            cycle: 1,
            kind: FaultEventKind::Heal, // already healthy: no-op
            link: l,
        }]);
        let mut f = FaultState::none(&s);
        assert!(!tl.cursor().advance(1, &mut f));
    }

    #[test]
    fn state_at_replays_prefixes() {
        let s = sys();
        let l = link(3, 2, VlDir::Up);
        let tl = FaultTimeline::from_events(vec![
            FaultEvent {
                cycle: 100,
                kind: FaultEventKind::Inject,
                link: l,
            },
            FaultEvent {
                cycle: 200,
                kind: FaultEventKind::Heal,
                link: l,
            },
        ]);
        assert!(tl.state_at(&s, 99).is_fault_free());
        assert!(tl.state_at(&s, 100).is_faulty(l));
        assert!(tl.state_at(&s, 150).is_faulty(l));
        assert!(tl.state_at(&s, 200).is_fault_free());
    }

    #[test]
    fn transient_timelines_are_deterministic_and_admissible() {
        let s = sys();
        let cfg = TransientConfig {
            mean_healthy: 1_500.0,
            mean_faulty: 400.0,
            horizon: 20_000,
            seed: 42,
        };
        let a = FaultTimeline::transient(&s, &cfg);
        let b = FaultTimeline::transient(&s, &cfg);
        assert_eq!(a, b, "same seed must reproduce the timeline exactly");
        assert!(!a.is_empty(), "20k cycles at MTBF 1.5k must produce faults");
        assert!(a.is_admissible(&s));
        // A different seed produces a different schedule.
        let c = FaultTimeline::transient(&s, &TransientConfig { seed: 43, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn transient_pairs_injects_with_heals_per_link() {
        let s = sys();
        let tl = FaultTimeline::transient(
            &s,
            &TransientConfig {
                mean_healthy: 800.0,
                mean_faulty: 300.0,
                horizon: 30_000,
                seed: 9,
            },
        );
        // Per link, events alternate inject/heal starting with inject.
        for l in all_unidirectional_links(&s) {
            let mut faulty = false;
            for e in tl.events().iter().filter(|e| e.link == l) {
                match e.kind {
                    FaultEventKind::Inject => {
                        assert!(!faulty, "double inject on {l}");
                        faulty = true;
                    }
                    FaultEventKind::Heal => {
                        assert!(faulty, "heal of healthy {l}");
                        faulty = false;
                    }
                }
            }
        }
    }

    #[test]
    fn burst_timelines_are_admissible_across_seeds() {
        let s = sys();
        for seed in 0..20 {
            let tl = FaultTimeline::burst(
                &s,
                &BurstConfig {
                    bursts: 3,
                    links_per_burst: 6,
                    duration: 2_000,
                    horizon: 10_000,
                    seed,
                },
            );
            assert!(tl.is_admissible(&s), "seed {seed}");
            assert!(!tl.is_empty());
        }
    }

    #[test]
    fn region_fails_all_but_one_link_of_one_group() {
        let s = sys();
        let tl = FaultTimeline::region(
            &s,
            &RegionConfig {
                start: 500,
                duration: 1_000,
                seed: 3,
            },
        );
        assert!(tl.is_admissible(&s));
        let during = tl.state_at(&s, 600);
        // Exactly vl_count - 1 faults, all in one (chiplet, dir) group.
        assert_eq!(during.faulty_count(), 3);
        let groups: std::collections::BTreeSet<(u8, VlDir)> = during
            .links()
            .iter()
            .map(|l| (l.chiplet.0, l.dir))
            .collect();
        assert_eq!(groups.len(), 1, "faults must share one group");
        assert!(tl.state_at(&s, 1_500).is_fault_free());
    }

    #[test]
    fn admissibility_filter_drops_disconnecting_injects() {
        let s = sys();
        // Hand-build candidates that would kill all 4 down links of
        // chiplet 0 at cycle 10 via the burst path: ask for an absurd
        // burst width so the filter must intervene.
        let tl = FaultTimeline::burst(
            &s,
            &BurstConfig {
                bursts: 1,
                links_per_burst: 32, // every unidirectional link
                duration: 100,
                horizon: 1,
                seed: 0,
            },
        );
        assert!(tl.is_admissible(&s));
        let peak = tl.state_at(&s, 0);
        // 3 of 4 links per group survive the filter: 8 groups x 3.
        assert_eq!(peak.faulty_count(), 24);
        assert!(!peak.disconnects_any_chiplet(&s));
    }

    #[test]
    fn zero_duration_faults_are_dropped_not_left_unhealed() {
        let s = sys();
        let tl = FaultTimeline::burst(
            &s,
            &BurstConfig {
                bursts: 1,
                links_per_burst: 3,
                duration: 0,
                horizon: 10,
                seed: 0,
            },
        );
        assert!(
            tl.is_empty(),
            "a zero-length fault must vanish, not persist: {:?}",
            tl.events()
        );
        let tl = FaultTimeline::region(
            &s,
            &RegionConfig {
                start: 5,
                duration: 0,
                seed: 0,
            },
        );
        assert!(tl.is_empty());
    }

    #[test]
    fn inadmissible_hand_built_timelines_are_detected() {
        let s = sys();
        let events = (0..4)
            .map(|i| FaultEvent {
                cycle: 1,
                kind: FaultEventKind::Inject,
                link: link(0, i, VlDir::Down),
            })
            .collect();
        let tl = FaultTimeline::from_events(events);
        assert!(!tl.is_admissible(&s));
    }

    #[test]
    fn empty_timeline_is_trivially_admissible() {
        let s = sys();
        let tl = FaultTimeline::empty();
        assert!(tl.is_admissible(&s));
        assert!(tl.is_empty());
        assert_eq!(tl.len(), 0);
        assert!(tl.cursor().is_done());
        assert_eq!(tl.cursor().next_transition(), None);
    }

    #[test]
    fn shifted_preserves_spacing_and_admissibility() {
        let s = sys();
        let tl = FaultTimeline::transient(
            &s,
            &TransientConfig {
                mean_healthy: 1_000.0,
                mean_faulty: 300.0,
                horizon: 8_000,
                seed: 11,
            },
        );
        let moved = tl.shifted(5_000);
        assert_eq!(moved.len(), tl.len());
        for (a, b) in tl.events().iter().zip(moved.events()) {
            assert_eq!(b.cycle, a.cycle + 5_000);
            assert_eq!(b.kind, a.kind);
            assert_eq!(b.link, a.link);
        }
        assert!(moved.is_admissible(&s));
        assert_eq!(tl.shifted(0), tl);
    }

    #[test]
    fn fingerprint_separates_timelines() {
        let s = sys();
        let cfg = TransientConfig {
            mean_healthy: 1_000.0,
            mean_faulty: 300.0,
            horizon: 8_000,
            seed: 1,
        };
        let a = FaultTimeline::transient(&s, &cfg);
        let b = FaultTimeline::transient(&s, &TransientConfig { seed: 2, ..cfg });
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), a.shifted(1).fingerprint());
        assert_ne!(a.fingerprint(), FaultTimeline::empty().fingerprint());
    }

    #[test]
    fn timeline_round_trips_through_the_codec() {
        let s = sys();
        let tl = FaultTimeline::transient(
            &s,
            &TransientConfig {
                mean_healthy: 900.0,
                mean_faulty: 250.0,
                horizon: 6_000,
                seed: 5,
            },
        );
        let bytes = deft_codec::encode_value(&tl);
        let mut dec = Decoder::new(&bytes);
        let back = FaultTimeline::decode(&mut dec).expect("decode");
        dec.finish().expect("no trailing bytes");
        assert_eq!(back, tl);
    }

    #[test]
    fn exp_cycles_has_roughly_the_requested_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 4_000;
        let mean = 500.0;
        let sum: u64 = (0..n).map(|_| exp_cycles(&mut rng, mean)).sum();
        let got = sum as f64 / n as f64;
        assert!(
            (got - mean).abs() < mean * 0.1,
            "sample mean {got} too far from {mean}"
        );
    }
}
