//! Topology construction errors.

use crate::{ChipletId, Coord};
use std::error::Error;
use std::fmt;

/// Error returned when a [`SystemBuilder`](crate::SystemBuilder) describes an
/// inconsistent 2.5D system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A mesh dimension was zero.
    EmptyMesh {
        /// What was empty ("interposer" or "chiplet N").
        what: String,
    },
    /// A chiplet (its footprint on the interposer) extends past the
    /// interposer boundary.
    ChipletOutOfBounds {
        /// Offending chiplet.
        chiplet: ChipletId,
    },
    /// Two chiplet footprints overlap on the interposer.
    ChipletOverlap {
        /// First chiplet of the overlapping pair.
        a: ChipletId,
        /// Second chiplet of the overlapping pair.
        b: ChipletId,
    },
    /// A vertical-link coordinate is outside its chiplet mesh.
    VlOutOfBounds {
        /// Chiplet the VL was declared on.
        chiplet: ChipletId,
        /// The offending chiplet-local coordinate.
        coord: Coord,
    },
    /// The same chiplet router was given two vertical links.
    DuplicateVl {
        /// Chiplet the VL was declared on.
        chiplet: ChipletId,
        /// The duplicated chiplet-local coordinate.
        coord: Coord,
    },
    /// A chiplet has no vertical links and would be unreachable.
    NoVls {
        /// Offending chiplet.
        chiplet: ChipletId,
    },
    /// No chiplet was added.
    NoChiplets,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyMesh { what } => write!(f, "{what} mesh has a zero dimension"),
            TopologyError::ChipletOutOfBounds { chiplet } => {
                write!(f, "{chiplet} extends past the interposer boundary")
            }
            TopologyError::ChipletOverlap { a, b } => {
                write!(f, "{a} and {b} overlap on the interposer")
            }
            TopologyError::VlOutOfBounds { chiplet, coord } => {
                write!(f, "vertical link at {coord} is outside {chiplet}")
            }
            TopologyError::DuplicateVl { chiplet, coord } => {
                write!(f, "duplicate vertical link at {coord} on {chiplet}")
            }
            TopologyError::NoVls { chiplet } => {
                write!(
                    f,
                    "{chiplet} has no vertical links and would be disconnected"
                )
            }
            TopologyError::NoChiplets => f.write_str("system has no chiplets"),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_unpunctuated() {
        let errs: Vec<TopologyError> = vec![
            TopologyError::EmptyMesh {
                what: "interposer".into(),
            },
            TopologyError::ChipletOutOfBounds {
                chiplet: ChipletId(1),
            },
            TopologyError::ChipletOverlap {
                a: ChipletId(0),
                b: ChipletId(1),
            },
            TopologyError::VlOutOfBounds {
                chiplet: ChipletId(0),
                coord: Coord::new(9, 9),
            },
            TopologyError::DuplicateVl {
                chiplet: ChipletId(0),
                coord: Coord::new(1, 1),
            },
            TopologyError::NoVls {
                chiplet: ChipletId(2),
            },
            TopologyError::NoChiplets,
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                !msg.ends_with('.'),
                "message {msg:?} should not end with a period"
            );
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(TopologyError::NoChiplets);
    }
}
