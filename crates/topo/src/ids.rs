//! Strongly-typed identifiers for nodes, chiplets, and layers.

use crate::Coord;
use std::fmt;

/// Global identifier of a router/processing-element node.
///
/// IDs are dense: chiplet nodes come first (chiplet 0 row-major, then
/// chiplet 1, ...), followed by the interposer nodes row-major. Use
/// [`ChipletSystem::addr`](crate::ChipletSystem::addr) to translate to a
/// layer + coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The ID as a `usize` index into per-node tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a chiplet (die) on the interposer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChipletId(pub u8);

impl ChipletId {
    /// The ID as a `usize` index into per-chiplet tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ChipletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chiplet{}", self.0)
    }
}

/// Which mesh layer a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// One of the stacked dies.
    Chiplet(ChipletId),
    /// The active interposer the chiplets sit on.
    Interposer,
}

impl Layer {
    /// The chiplet ID, if this is a chiplet layer.
    pub fn chiplet(self) -> Option<ChipletId> {
        match self {
            Layer::Chiplet(c) => Some(c),
            Layer::Interposer => None,
        }
    }

    /// Whether this is the interposer layer.
    pub fn is_interposer(self) -> bool {
        matches!(self, Layer::Interposer)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Chiplet(c) => write!(f, "{c}"),
            Layer::Interposer => f.write_str("interposer"),
        }
    }
}

/// A node's position: layer plus layer-local coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeAddr {
    /// The layer the node lives on.
    pub layer: Layer,
    /// Coordinate local to that layer's mesh.
    pub coord: Coord,
}

impl NodeAddr {
    /// Creates an address.
    pub const fn new(layer: Layer, coord: Coord) -> Self {
        Self { layer, coord }
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.layer, self.coord)
    }
}

/// Direction of one unidirectional half of a bidirectional vertical link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VlDir {
    /// Chiplet → interposer micro-bump link.
    Down,
    /// Interposer → chiplet micro-bump link.
    Up,
}

impl VlDir {
    /// Both directions, `Down` first.
    pub const ALL: [VlDir; 2] = [VlDir::Down, VlDir::Up];
}

impl fmt::Display for VlDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VlDir::Down => f.write_str("down"),
            VlDir::Up => f.write_str("up"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_accessors() {
        assert_eq!(Layer::Chiplet(ChipletId(3)).chiplet(), Some(ChipletId(3)));
        assert_eq!(Layer::Interposer.chiplet(), None);
        assert!(Layer::Interposer.is_interposer());
        assert!(!Layer::Chiplet(ChipletId(0)).is_interposer());
    }

    #[test]
    fn display_round_trip_is_informative() {
        let addr = NodeAddr::new(Layer::Chiplet(ChipletId(1)), Coord::new(2, 3));
        assert_eq!(addr.to_string(), "chiplet1@(2, 3)");
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(VlDir::Up.to_string(), "up");
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5).index(), 5);
        assert_eq!(ChipletId(2).index(), 2);
    }
}
