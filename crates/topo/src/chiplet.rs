//! A single chiplet die and its vertical links.

use crate::system::VerticalLink;
use crate::{ChipletId, Coord};

/// One chiplet: a `width` x `height` mesh of router+core tiles placed at
/// `origin` on the interposer grid, with a few vertical links to the
/// interposer.
///
/// Constructed by [`SystemBuilder`](crate::SystemBuilder); immutable
/// afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chiplet {
    id: ChipletId,
    origin: Coord,
    width: u8,
    height: u8,
    vls: Vec<VerticalLink>,
}

impl Chiplet {
    pub(crate) fn new(
        id: ChipletId,
        origin: Coord,
        width: u8,
        height: u8,
        vls: Vec<VerticalLink>,
    ) -> Self {
        Self {
            id,
            origin,
            width,
            height,
            vls,
        }
    }

    /// This chiplet's identifier.
    pub fn id(&self) -> ChipletId {
        self.id
    }

    /// Position of the chiplet's (0, 0) tile on the interposer grid.
    pub fn origin(&self) -> Coord {
        self.origin
    }

    /// Mesh width in tiles.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Mesh height in tiles.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Number of router+core tiles on this chiplet.
    pub fn node_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The chiplet's vertical links, in declaration order. The position in
    /// this slice is the VL's chiplet-local index used by
    /// [`FaultState`](crate::FaultState) masks and the DeFT selection LUTs.
    pub fn vertical_links(&self) -> &[VerticalLink] {
        &self.vls
    }

    /// Number of (bidirectional) vertical links.
    pub fn vl_count(&self) -> usize {
        self.vls.len()
    }

    /// Chiplet-local coordinate of vertical link `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= self.vl_count()`.
    pub fn vl_coord(&self, idx: usize) -> Coord {
        self.vls[idx].chiplet_coord
    }

    /// Whether the chiplet-local `coord` hosts a vertical link, and if so,
    /// its VL index.
    pub fn vl_at(&self, coord: Coord) -> Option<usize> {
        self.vls.iter().position(|vl| vl.chiplet_coord == coord)
    }

    /// Iterates over all chiplet-local coordinates row-major.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }

    /// Converts a chiplet-local coordinate to the interposer coordinate
    /// directly beneath it.
    pub fn to_interposer(&self, local: Coord) -> Coord {
        local.offset(self.origin)
    }

    /// Whether `local` is inside this chiplet's mesh.
    pub fn contains(&self, local: Coord) -> bool {
        local.x < self.width && local.y < self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn sample() -> Chiplet {
        let vls = vec![
            VerticalLink {
                chiplet: ChipletId(0),
                index: 0,
                chiplet_coord: Coord::new(1, 3),
                chiplet_node: NodeId(13),
                interposer_node: NodeId(100),
            },
            VerticalLink {
                chiplet: ChipletId(0),
                index: 1,
                chiplet_coord: Coord::new(3, 2),
                chiplet_node: NodeId(11),
                interposer_node: NodeId(101),
            },
        ];
        Chiplet::new(ChipletId(0), Coord::new(4, 0), 4, 4, vls)
    }

    #[test]
    fn geometry_queries() {
        let c = sample();
        assert_eq!(c.node_count(), 16);
        assert!(c.contains(Coord::new(3, 3)));
        assert!(!c.contains(Coord::new(4, 0)));
        assert_eq!(c.to_interposer(Coord::new(1, 1)), Coord::new(5, 1));
        assert_eq!(c.coords().count(), 16);
        assert_eq!(c.coords().next(), Some(Coord::new(0, 0)));
    }

    #[test]
    fn vl_lookup() {
        let c = sample();
        assert_eq!(c.vl_count(), 2);
        assert_eq!(c.vl_at(Coord::new(3, 2)), Some(1));
        assert_eq!(c.vl_at(Coord::new(0, 0)), None);
        assert_eq!(c.vl_coord(0), Coord::new(1, 3));
    }
}
