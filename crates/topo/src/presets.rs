//! The paper's baseline systems and a generic grid preset.

use crate::{ChipletSystem, Coord, SystemBuilder};

/// Vertical-link placement for a 4x4 chiplet: one VL per border in a
/// pinwheel pattern, so that every half-plane of the chiplet contains
/// exactly two VLs.
///
/// The paper places the four VLs "on the borders of the chiplet" citing
/// Yin et al. (ISCA 2018) for optimality, and notes DeFT is independent of VL
/// placement and density. The pinwheel arrangement keeps the four VLs
/// rotationally symmetric, matching the qualitative layout of the paper's
/// Fig. 3.
pub const PINWHEEL_VLS_4X4: [Coord; 4] = [
    Coord::new(1, 3), // north border
    Coord::new(3, 2), // east border
    Coord::new(2, 0), // south border
    Coord::new(0, 1), // west border
];

impl ChipletSystem {
    /// The paper's baseline 4-chiplet system (Fig. 1): four 4x4 CPU chiplets
    /// in a 2x2 arrangement on an 8x8 active interposer, four VLs per
    /// chiplet (32 unidirectional vertical links).
    ///
    /// ```
    /// let sys = deft_topo::ChipletSystem::baseline_4();
    /// assert_eq!(sys.chiplet_count(), 4);
    /// assert_eq!(sys.node_count(), 128);
    /// assert_eq!(sys.unidirectional_vl_count(), 32);
    /// ```
    pub fn baseline_4() -> ChipletSystem {
        Self::chiplet_grid(2, 2).expect("baseline 4-chiplet preset is valid")
    }

    /// The paper's 6-chiplet scaling study: six 4x4 chiplets in a 3x2
    /// arrangement on a 12x8 interposer (48 unidirectional vertical links,
    /// as in Fig. 7(b)).
    ///
    /// ```
    /// let sys = deft_topo::ChipletSystem::baseline_6();
    /// assert_eq!(sys.chiplet_count(), 6);
    /// assert_eq!(sys.unidirectional_vl_count(), 48);
    /// ```
    pub fn baseline_6() -> ChipletSystem {
        Self::chiplet_grid(3, 2).expect("baseline 6-chiplet preset is valid")
    }

    /// A `cols` x `rows` grid of 4x4 chiplets with pinwheel VLs on a
    /// matching interposer.
    ///
    /// # Errors
    /// Returns a [`TopologyError`](crate::TopologyError) if the grid does
    /// not fit `u8` coordinates (more than 63 columns or rows).
    pub fn chiplet_grid(cols: u8, rows: u8) -> Result<ChipletSystem, crate::TopologyError> {
        let mut b = SystemBuilder::new(cols * 4, rows * 4);
        for cy in 0..rows {
            for cx in 0..cols {
                b = b.chiplet(Coord::new(cx * 4, cy * 4), 4, 4, &PINWHEEL_VLS_4X4);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChipletId, Layer, VlDir};

    #[test]
    fn baseline_4_matches_paper_dimensions() {
        let sys = ChipletSystem::baseline_4();
        assert_eq!(sys.chiplet_count(), 4);
        assert_eq!(sys.interposer_width(), 8);
        assert_eq!(sys.interposer_height(), 8);
        assert_eq!(sys.node_count(), 4 * 16 + 64);
        assert_eq!(sys.vertical_link_count(), 16);
        assert_eq!(sys.unidirectional_vl_count(), 32);
        for c in sys.chiplets() {
            assert_eq!(c.vl_count(), 4);
            assert_eq!(c.width(), 4);
            assert_eq!(c.height(), 4);
        }
    }

    #[test]
    fn baseline_6_matches_paper_dimensions() {
        let sys = ChipletSystem::baseline_6();
        assert_eq!(sys.chiplet_count(), 6);
        assert_eq!(sys.interposer_width(), 12);
        assert_eq!(sys.interposer_height(), 8);
        assert_eq!(sys.node_count(), 6 * 16 + 96);
        assert_eq!(sys.unidirectional_vl_count(), 48);
    }

    #[test]
    fn pinwheel_halves_have_two_vls_each() {
        // Every half-plane (east/west/north/south half) of a 4x4 chiplet
        // must contain exactly two of the four VLs; the MTR baseline's
        // facing-half eligibility relies on this.
        let vls = PINWHEEL_VLS_4X4;
        let east = vls.iter().filter(|c| c.x >= 2).count();
        let west = vls.iter().filter(|c| c.x < 2).count();
        let north = vls.iter().filter(|c| c.y >= 2).count();
        let south = vls.iter().filter(|c| c.y < 2).count();
        assert_eq!((east, west, north, south), (2, 2, 2, 2));
    }

    #[test]
    fn all_vls_are_on_borders() {
        let sys = ChipletSystem::baseline_4();
        for vl in sys.vertical_links() {
            let c = vl.chiplet_coord;
            assert!(
                c.x == 0 || c.x == 3 || c.y == 0 || c.y == 3,
                "VL at {c} is not on a border"
            );
        }
    }

    #[test]
    fn boundary_routers_are_chiplet_side() {
        let sys = ChipletSystem::baseline_6();
        for vl in sys.vertical_links() {
            assert_eq!(sys.layer(vl.chiplet_node), Layer::Chiplet(vl.chiplet));
            assert!(sys.layer(vl.interposer_node).is_interposer());
        }
    }

    #[test]
    fn fault_masks_cover_all_vls() {
        let sys = ChipletSystem::baseline_4();
        let f = crate::FaultState::none(&sys);
        for c in sys.chiplets() {
            assert_eq!(f.healthy_mask(c.id(), VlDir::Down, c.vl_count()), 0b1111);
        }
        let _ = ChipletId(0);
    }
}
