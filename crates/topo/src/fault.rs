//! Vertical-link fault state and fault-scenario enumeration.
//!
//! Faults live on *unidirectional* vertical links: the down half
//! (chiplet → interposer) and the up half (interposer → chiplet) of a
//! micro-bump pair fail independently (mismatch, electromigration, and
//! thermomigration affect individual bump groups — paper §III-B). The
//! paper's fault axes count unidirectional links: the 4-chiplet system has
//! 32 of them, the 6-chiplet system 48.

use crate::{ChipletId, ChipletSystem, LinkId, VlDir};
use deft_codec::{CodecError, Decoder, Encoder, Persist};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Identifies one unidirectional vertical link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VlLinkId {
    /// The chiplet the VL belongs to.
    pub chiplet: ChipletId,
    /// VL index within the chiplet (see
    /// [`Chiplet::vertical_links`](crate::Chiplet::vertical_links)).
    pub index: u8,
    /// Which half of the bidirectional pair.
    pub dir: VlDir,
}

impl fmt::Display for VlLinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.vl{}.{}", self.chiplet, self.index, self.dir)
    }
}

/// The set of currently-faulty unidirectional vertical links.
///
/// Stored as one bitmask per (chiplet, direction) group, so queries used on
/// the routing fast path (healthy-mask lookup for LUT indexing) are O(1).
///
/// ```
/// use deft_topo::{ChipletSystem, FaultState, VlLinkId, ChipletId, VlDir};
///
/// let sys = ChipletSystem::baseline_4();
/// let mut faults = FaultState::none(&sys);
/// faults.inject(VlLinkId { chiplet: ChipletId(0), index: 2, dir: VlDir::Down });
/// assert_eq!(faults.faulty_count(), 1);
/// assert_eq!(faults.down_mask(ChipletId(0)), 0b0100);
/// assert!(!faults.disconnects_any_chiplet(&sys));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FaultState {
    down: Vec<u8>,
    up: Vec<u8>,
    /// Redundant dense view of the same fault set, one bit per
    /// [`LinkId`] in canonical order. Kept in sync by
    /// [`inject`](Self::inject)/[`heal`](Self::heal)/[`clear`](Self::clear)
    /// so hot-path callers holding a dense link id can test faultiness with
    /// one bit probe ([`is_faulty_id`](Self::is_faulty_id)).
    flat: Vec<u64>,
    /// Per-chiplet base bit of the Down block in `flat`, copied from the
    /// system's [`ChipletSystem::link_id`] at construction — the canonical
    /// order is defined in exactly one place — so `flat` can be updated
    /// without a `ChipletSystem` handle.
    down_base: Vec<u32>,
    /// Per-chiplet base bit of the Up block (`down_base[c] + vl_count`).
    up_base: Vec<u32>,
    /// Total dense links (the exclusive [`LinkId`] bound of the system).
    links: u32,
}

impl FaultState {
    /// A fault-free state for `sys`.
    pub fn none(sys: &ChipletSystem) -> Self {
        // Copy the dense layout straight from the system's LinkId space
        // rather than re-deriving the canonical order here.
        let down_base: Vec<u32> = sys
            .chiplets()
            .iter()
            .map(|c| {
                sys.link_id(VlLinkId {
                    chiplet: c.id(),
                    index: 0,
                    dir: VlDir::Down,
                })
                .0
            })
            .collect();
        let up_base: Vec<u32> = sys
            .chiplets()
            .iter()
            .map(|c| {
                sys.link_id(VlLinkId {
                    chiplet: c.id(),
                    index: 0,
                    dir: VlDir::Up,
                })
                .0
            })
            .collect();
        let links = sys.link_count() as u32;
        Self {
            down: vec![0; sys.chiplet_count()],
            up: vec![0; sys.chiplet_count()],
            flat: vec![0; (links as usize).div_ceil(64)],
            down_base,
            up_base,
            links,
        }
    }

    /// The dense bit position of `link` in `flat`, or `None` for a phantom
    /// link (VL index at or past the chiplet's VL count — representable in
    /// the masks but not part of the system's dense link space).
    fn flat_bit(&self, link: VlLinkId) -> Option<u32> {
        let c = link.chiplet.index();
        let vl_count = self.up_base[c] - self.down_base[c];
        if link.index as u32 >= vl_count {
            return None;
        }
        let base = match link.dir {
            VlDir::Down => self.down_base[c],
            VlDir::Up => self.up_base[c],
        };
        Some(base + link.index as u32)
    }

    /// A state with exactly the given links faulty.
    pub fn from_links(sys: &ChipletSystem, links: &[VlLinkId]) -> Self {
        let mut s = Self::none(sys);
        for &l in links {
            s.inject(l);
        }
        s
    }

    /// Marks a link faulty. Injecting an already-faulty link is a no-op.
    ///
    /// # Panics
    /// Panics if the chiplet index is out of range or the VL index is ≥ 8
    /// (masks are `u8`; the paper's systems have 4 VLs per chiplet).
    pub fn inject(&mut self, link: VlLinkId) {
        assert!(link.index < 8, "VL index {} exceeds mask width", link.index);
        let m = self.mask_mut(link.chiplet, link.dir);
        *m |= 1 << link.index;
        if let Some(bit) = self.flat_bit(link) {
            self.flat[bit as usize / 64] |= 1 << (bit % 64);
        }
    }

    /// Marks a link healthy again.
    pub fn heal(&mut self, link: VlLinkId) {
        let m = self.mask_mut(link.chiplet, link.dir);
        *m &= !(1 << link.index);
        if let Some(bit) = self.flat_bit(link) {
            self.flat[bit as usize / 64] &= !(1 << (bit % 64));
        }
    }

    /// Clears all faults.
    pub fn clear(&mut self) {
        self.down.fill(0);
        self.up.fill(0);
        self.flat.fill(0);
    }

    fn mask_mut(&mut self, chiplet: ChipletId, dir: VlDir) -> &mut u8 {
        match dir {
            VlDir::Down => &mut self.down[chiplet.index()],
            VlDir::Up => &mut self.up[chiplet.index()],
        }
    }

    /// Whether the given link is faulty.
    pub fn is_faulty(&self, link: VlLinkId) -> bool {
        self.mask(link.chiplet, link.dir) & (1 << link.index) != 0
    }

    /// Whether the link with the given dense id is faulty: a single bit
    /// probe, no chiplet/direction decoding. The id must come from the
    /// same system this state was created for
    /// ([`ChipletSystem::link_id`] / [`ChipletSystem::out_vertical_link`])
    /// — an id minted by a *different* system indexes the wrong bit.
    ///
    /// # Panics
    /// Panics if `id` is at or past the system's
    /// [`link_count`](ChipletSystem::link_count).
    pub fn is_faulty_id(&self, id: LinkId) -> bool {
        assert!(
            id.0 < self.links,
            "link id {} out of range (system has {} links)",
            id.0,
            self.links
        );
        let bit = id.0;
        self.flat[bit as usize / 64] & (1 << (bit % 64)) != 0
    }

    /// Bitmask of faulty links for a (chiplet, direction) group; bit `i`
    /// corresponds to VL index `i`.
    pub fn mask(&self, chiplet: ChipletId, dir: VlDir) -> u8 {
        match dir {
            VlDir::Down => self.down[chiplet.index()],
            VlDir::Up => self.up[chiplet.index()],
        }
    }

    /// Bitmask of faulty down links of `chiplet`.
    pub fn down_mask(&self, chiplet: ChipletId) -> u8 {
        self.down[chiplet.index()]
    }

    /// Bitmask of faulty up links of `chiplet`.
    pub fn up_mask(&self, chiplet: ChipletId) -> u8 {
        self.up[chiplet.index()]
    }

    /// Bitmask of *healthy* links of a group, given the chiplet's VL count.
    pub fn healthy_mask(&self, chiplet: ChipletId, dir: VlDir, vl_count: usize) -> u8 {
        debug_assert!(vl_count <= 8);
        !self.mask(chiplet, dir) & ((1u16 << vl_count) - 1) as u8
    }

    /// Total number of faulty unidirectional links.
    pub fn faulty_count(&self) -> usize {
        self.down
            .iter()
            .chain(self.up.iter())
            .map(|m| m.count_ones() as usize)
            .sum()
    }

    /// Whether this state is fault-free.
    pub fn is_fault_free(&self) -> bool {
        self.down.iter().chain(self.up.iter()).all(|&m| m == 0)
    }

    /// Whether any chiplet is disconnected: all its down links faulty (no
    /// packet can leave) or all its up links faulty (no packet can enter).
    /// The paper excludes such scenarios from the fault-injection campaign.
    pub fn disconnects_any_chiplet(&self, sys: &ChipletSystem) -> bool {
        sys.chiplets().iter().any(|c| {
            let full = ((1u16 << c.vl_count()) - 1) as u8;
            self.down[c.id().index()] == full || self.up[c.id().index()] == full
        })
    }

    /// All faulty links, chiplet-major, down before up.
    pub fn links(&self) -> Vec<VlLinkId> {
        let mut out = Vec::with_capacity(self.faulty_count());
        for (ci, (&d, &u)) in self.down.iter().zip(&self.up).enumerate() {
            let chiplet = ChipletId(ci as u8);
            for i in 0..8 {
                if d & (1 << i) != 0 {
                    out.push(VlLinkId {
                        chiplet,
                        index: i,
                        dir: VlDir::Down,
                    });
                }
            }
            for i in 0..8 {
                if u & (1 << i) != 0 {
                    out.push(VlLinkId {
                        chiplet,
                        index: i,
                        dir: VlDir::Up,
                    });
                }
            }
        }
        out
    }
}

impl Persist for VlLinkId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.chiplet.0);
        enc.put_u8(self.index);
        enc.put_u8(match self.dir {
            VlDir::Down => 0,
            VlDir::Up => 1,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let chiplet = ChipletId(dec.get_u8()?);
        let index = dec.get_u8()?;
        let dir = match dec.get_u8()? {
            0 => VlDir::Down,
            1 => VlDir::Up,
            d => return Err(CodecError::Invalid(format!("bad VlDir discriminant {d}"))),
        };
        Ok(VlLinkId {
            chiplet,
            index,
            dir,
        })
    }
}

impl Persist for FaultState {
    fn encode(&self, enc: &mut Encoder) {
        self.down.encode(enc);
        self.up.encode(enc);
        self.flat.encode(enc);
        self.down_base.encode(enc);
        self.up_base.encode(enc);
        enc.put_u32(self.links);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let down = Vec::<u8>::decode(dec)?;
        let up = Vec::<u8>::decode(dec)?;
        let flat = Vec::<u64>::decode(dec)?;
        let down_base = Vec::<u32>::decode(dec)?;
        let up_base = Vec::<u32>::decode(dec)?;
        let links = dec.get_u32()?;
        if down.len() != up.len() || down.len() != down_base.len() || down.len() != up_base.len() {
            return Err(CodecError::Invalid(format!(
                "FaultState per-chiplet vectors disagree: down {}, up {}, down_base {}, up_base {}",
                down.len(),
                up.len(),
                down_base.len(),
                up_base.len()
            )));
        }
        if flat.len() != (links as usize).div_ceil(64) {
            return Err(CodecError::Invalid(format!(
                "FaultState flat bitset holds {} words for {} links",
                flat.len(),
                links
            )));
        }
        Ok(FaultState {
            down,
            up,
            flat,
            down_base,
            up_base,
            links,
        })
    }
}

/// Every unidirectional vertical link of `sys`, chiplet-major, down
/// before up within a chiplet — the canonical link order shared by
/// scenario enumeration, sampling, and timeline generation.
pub(crate) fn all_unidirectional_links(sys: &ChipletSystem) -> Vec<VlLinkId> {
    let mut links = Vec::with_capacity(sys.unidirectional_vl_count());
    for c in sys.chiplets() {
        for dir in VlDir::ALL {
            for i in 0..c.vl_count() {
                links.push(VlLinkId {
                    chiplet: c.id(),
                    index: i as u8,
                    dir,
                });
            }
        }
    }
    links
}

/// `n choose r` as `u128`; saturates are not needed for the paper's sizes
/// (≤ 48 choose 8).
pub(crate) fn binomial(n: u64, r: u64) -> u128 {
    if r > n {
        return 0;
    }
    let r = r.min(n - r);
    let mut acc: u128 = 1;
    for i in 0..r {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc
}

/// Exhaustive enumeration of all `k`-fault scenarios of a system, excluding
/// scenarios that disconnect a chiplet.
///
/// This is the scenario universe of the paper's Fig. 7 ("we injected all
/// combinations of fault patterns excluding those that disconnected chiplets
/// completely").
#[derive(Debug, Clone)]
pub struct FaultScenarios {
    links: Vec<VlLinkId>,
    vl_counts: Vec<usize>,
    k: usize,
}

impl FaultScenarios {
    /// Prepares enumeration of all scenarios with exactly `k` faulty
    /// unidirectional links.
    pub fn new(sys: &ChipletSystem, k: usize) -> Self {
        let links = all_unidirectional_links(sys);
        let vl_counts = sys.chiplets().iter().map(|c| c.vl_count()).collect();
        Self {
            links,
            vl_counts,
            k,
        }
    }

    /// Number of faulty links per scenario.
    pub fn fault_count(&self) -> usize {
        self.k
    }

    /// Total unidirectional links in the system.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The number of admissible (non-disconnecting) scenarios, computed by a
    /// polynomial-convolution DP over the (chiplet, direction) groups rather
    /// than enumeration.
    pub fn count_admissible(&self) -> u128 {
        // ways[j] = #ways to place j faults in the groups seen so far,
        // never filling a group completely.
        let mut ways: Vec<u128> = vec![0; self.k + 1];
        ways[0] = 1;
        for &v in &self.vl_counts {
            for _dir in VlDir::ALL {
                let mut next = vec![0u128; self.k + 1];
                for (j, &w) in ways.iter().enumerate() {
                    if w == 0 {
                        continue;
                    }
                    for t in 0..v.min(self.k - j + 1) {
                        // t < v: the group is never fully faulty.
                        next[j + t] += w * binomial(v as u64, t as u64);
                    }
                }
                ways = next;
            }
        }
        ways[self.k]
    }

    /// Visits every admissible scenario, reusing one scratch
    /// [`FaultState`]. Stops early if `f` returns `false`.
    ///
    /// Enumeration order is the lexicographic combination order over the
    /// link list (chiplet-major, down before up).
    pub fn for_each(&self, sys: &ChipletSystem, mut f: impl FnMut(&FaultState) -> bool) {
        let n = self.links.len();
        let k = self.k;
        if k > n {
            return;
        }
        let mut idx: Vec<usize> = (0..k).collect();
        let mut state = FaultState::none(sys);
        loop {
            state.clear();
            for &i in &idx {
                state.inject(self.links[i]);
            }
            if !state.disconnects_any_chiplet(sys) && !f(&state) {
                return;
            }
            // Advance to the next k-combination.
            let mut i = k;
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                if idx[i] != i + n - k {
                    break;
                }
                if i == 0 {
                    return;
                }
            }
            idx[i] += 1;
            for j in i + 1..k {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }

    /// Collects all admissible scenarios. Prefer [`FaultScenarios::for_each`]
    /// for large `k`; this allocates one `FaultState` per scenario.
    pub fn collect(&self, sys: &ChipletSystem) -> Vec<FaultState> {
        let mut v = Vec::new();
        self.for_each(sys, |s| {
            v.push(s.clone());
            true
        });
        v
    }
}

/// Seeded random sampler of admissible `k`-fault scenarios, used for
/// Monte-Carlo cross-checks of the exact reachability engine.
///
/// Every returned state is *admissible*: it never disconnects a chiplet
/// (checked with [`FaultState::disconnects_any_chiplet`] before
/// returning; `tests` pins this contract). Draws are uniform over the
/// admissible `k`-subsets because inadmissible draws are rejected and
/// redrawn, up to [`ScenarioSampler::MAX_REJECTIONS`] attempts.
#[derive(Debug)]
pub struct ScenarioSampler {
    links: Vec<VlLinkId>,
    k: usize,
    rng: SmallRng,
}

impl ScenarioSampler {
    /// Upper bound on rejection-sampling attempts per
    /// [`sample`](Self::sample) call.
    ///
    /// For the paper's systems this bound is unreachable in practice: the
    /// admissible fraction at the worst evaluated point (`k = 8` of 32
    /// links, 4 chiplets) is above 99 %, so the probability of 100 000
    /// consecutive rejections is astronomically small. The bound exists
    /// to turn a misconfigured sampler (`k` at or past the link count, or
    /// a system where *every* `k`-subset disconnects some chiplet) into a
    /// loud panic instead of an infinite loop.
    pub const MAX_REJECTIONS: usize = 100_000;

    /// Creates a sampler for scenarios with `k` faults.
    pub fn new(sys: &ChipletSystem, k: usize, seed: u64) -> Self {
        let scen = FaultScenarios::new(sys, k);
        Self {
            links: scen.links,
            k,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws one admissible scenario by rejection sampling: a uniform
    /// `k`-subset of links (partial Fisher–Yates), redrawn while it would
    /// disconnect a chiplet. The returned state always has exactly `k`
    /// faults and disconnects no chiplet.
    ///
    /// # Panics
    /// Panics after [`Self::MAX_REJECTIONS`] consecutive inadmissible
    /// draws — which, for any configuration with a non-negligible
    /// admissible fraction, indicates a misconfiguration rather than bad
    /// luck (see [`Self::MAX_REJECTIONS`]).
    pub fn sample(&mut self, sys: &ChipletSystem) -> FaultState {
        for _ in 0..Self::MAX_REJECTIONS {
            // Partial Fisher-Yates for a uniform k-subset.
            let mut pool: Vec<usize> = (0..self.links.len()).collect();
            for i in 0..self.k {
                let j = self.rng.random_range(i..pool.len());
                pool.swap(i, j);
            }
            let links: Vec<VlLinkId> = pool[..self.k].iter().map(|&i| self.links[i]).collect();
            let state = FaultState::from_links(sys, &links);
            if !state.disconnects_any_chiplet(sys) {
                return state;
            }
        }
        panic!(
            "no admissible {}-fault scenario found after {} samples",
            self.k,
            Self::MAX_REJECTIONS
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipletSystem;

    #[test]
    fn inject_heal_round_trip() {
        let sys = ChipletSystem::baseline_4();
        let mut f = FaultState::none(&sys);
        let l = VlLinkId {
            chiplet: ChipletId(2),
            index: 3,
            dir: VlDir::Up,
        };
        assert!(!f.is_faulty(l));
        f.inject(l);
        assert!(f.is_faulty(l));
        assert_eq!(f.up_mask(ChipletId(2)), 0b1000);
        assert_eq!(f.down_mask(ChipletId(2)), 0);
        f.heal(l);
        assert!(!f.is_faulty(l));
        assert!(f.is_fault_free());
    }

    #[test]
    fn dense_id_lookup_tracks_inject_heal_and_clear() {
        // The flat LinkId-indexed view must agree with the mask view after
        // every mutation, across both paper systems.
        for sys in [ChipletSystem::baseline_4(), ChipletSystem::baseline_6()] {
            let mut f = FaultState::none(&sys);
            let links = super::all_unidirectional_links(&sys);
            for (i, &l) in links.iter().enumerate() {
                if i % 3 == 0 {
                    f.inject(l);
                }
            }
            for &l in &links {
                assert_eq!(
                    f.is_faulty_id(sys.link_id(l)),
                    f.is_faulty(l),
                    "dense/mask mismatch at {l}"
                );
            }
            let healed = links[0];
            f.heal(healed);
            assert!(!f.is_faulty_id(sys.link_id(healed)));
            f.clear();
            for &l in &links {
                assert!(!f.is_faulty_id(sys.link_id(l)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dense_id_lookup_rejects_foreign_ids() {
        // LinkId(40) exists on the 6-chiplet system (48 links) but not on
        // the 4-chiplet one (32): a cross-system mix-up must crash, not
        // silently read a padding bit.
        let sys4 = ChipletSystem::baseline_4();
        let f = FaultState::none(&sys4);
        f.is_faulty_id(LinkId(40));
    }

    #[test]
    fn healthy_mask_complements_fault_mask() {
        let sys = ChipletSystem::baseline_4();
        let mut f = FaultState::none(&sys);
        f.inject(VlLinkId {
            chiplet: ChipletId(0),
            index: 0,
            dir: VlDir::Down,
        });
        f.inject(VlLinkId {
            chiplet: ChipletId(0),
            index: 2,
            dir: VlDir::Down,
        });
        assert_eq!(f.healthy_mask(ChipletId(0), VlDir::Down, 4), 0b1010);
        assert_eq!(f.healthy_mask(ChipletId(0), VlDir::Up, 4), 0b1111);
    }

    #[test]
    fn disconnection_is_detected_per_direction() {
        let sys = ChipletSystem::baseline_4();
        let mut f = FaultState::none(&sys);
        for i in 0..4 {
            f.inject(VlLinkId {
                chiplet: ChipletId(1),
                index: i,
                dir: VlDir::Down,
            });
        }
        assert!(f.disconnects_any_chiplet(&sys));
        f.heal(VlLinkId {
            chiplet: ChipletId(1),
            index: 0,
            dir: VlDir::Down,
        });
        assert!(!f.disconnects_any_chiplet(&sys));
    }

    #[test]
    fn links_round_trips_through_from_links() {
        let sys = ChipletSystem::baseline_4();
        let links = vec![
            VlLinkId {
                chiplet: ChipletId(0),
                index: 1,
                dir: VlDir::Down,
            },
            VlLinkId {
                chiplet: ChipletId(3),
                index: 0,
                dir: VlDir::Up,
            },
        ];
        let f = FaultState::from_links(&sys, &links);
        let mut got = f.links();
        got.sort();
        let mut want = links;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn binomial_matches_known_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(32, 8), 10_518_300);
        assert_eq!(binomial(48, 8), 377_348_994);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn scenario_count_matches_enumeration_small_k() {
        let sys = ChipletSystem::baseline_4();
        for k in 1..=3 {
            let scen = FaultScenarios::new(&sys, k);
            let mut n = 0u128;
            scen.for_each(&sys, |_| {
                n += 1;
                true
            });
            assert_eq!(n, scen.count_admissible(), "k = {k}");
        }
    }

    #[test]
    fn no_disconnect_below_vl_count_faults() {
        // With 4 VLs per chiplet, up to 3 faults can never disconnect:
        // admissible count must equal the raw binomial.
        let sys = ChipletSystem::baseline_4();
        for k in 0..=3u64 {
            let scen = FaultScenarios::new(&sys, k as usize);
            assert_eq!(scen.count_admissible(), binomial(32, k));
        }
        // At k = 4 exactly the 8 fully-faulty groups are excluded.
        let scen = FaultScenarios::new(&sys, 4);
        assert_eq!(scen.count_admissible(), binomial(32, 4) - 8);
    }

    #[test]
    fn paper_scale_counts_are_consistent() {
        let sys6 = ChipletSystem::baseline_6();
        let scen = FaultScenarios::new(&sys6, 1);
        assert_eq!(scen.link_count(), 48);
        assert_eq!(scen.count_admissible(), 48);
    }

    #[test]
    fn sampler_yields_admissible_scenarios_of_right_size() {
        let sys = ChipletSystem::baseline_4();
        let mut sampler = ScenarioSampler::new(&sys, 8, 7);
        for _ in 0..50 {
            let s = sampler.sample(&sys);
            assert_eq!(s.faulty_count(), 8);
            assert!(!s.disconnects_any_chiplet(&sys));
        }
    }

    #[test]
    fn sampler_never_disconnects_even_at_high_fault_counts() {
        // The documented contract: sample() NEVER returns a state that
        // disconnects a chiplet, even where rejections are frequent. At
        // k = 24 of 32 links most raw draws fully fault some group
        // (the only admissible shape is 3-of-4 faulty in every group),
        // so this exercises the rejection path hard.
        let sys = ChipletSystem::baseline_4();
        for seed in 0..4 {
            let mut sampler = ScenarioSampler::new(&sys, 24, seed);
            for _ in 0..25 {
                let s = sampler.sample(&sys);
                assert_eq!(s.faulty_count(), 24);
                assert!(
                    !s.disconnects_any_chiplet(&sys),
                    "sampler returned a disconnecting state (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn enumeration_skips_disconnecting_scenarios() {
        let sys = ChipletSystem::baseline_4();
        let scen = FaultScenarios::new(&sys, 4);
        scen.for_each(&sys, |s| {
            assert!(!s.disconnects_any_chiplet(&sys));
            true
        });
    }

    #[test]
    fn for_each_early_stop() {
        let sys = ChipletSystem::baseline_4();
        let scen = FaultScenarios::new(&sys, 2);
        let mut seen = 0;
        scen.for_each(&sys, |_| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10);
    }
}
