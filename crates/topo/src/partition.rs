//! Chiplet-aligned router partitions for the parallel tick engine.
//!
//! The simulator's partitioned parallel tick (see `deft-sim`) shards
//! routers across worker threads. The shards produced here are the
//! load-balancing *and* safety contract of that engine:
//!
//! * **Chiplet-aligned.** A shard never splits a chiplet: the unit of
//!   assignment is a whole chiplet or one interposer row. Node IDs number
//!   chiplet nodes first (contiguously per chiplet) and then the
//!   interposer row-major, so every unit — and therefore every shard — is
//!   a *contiguous* [`NodeId`] range. The engine exploits this to split a
//!   sorted worklist at shard boundaries with two binary searches and to
//!   answer "which shard owns router r" with a range check.
//! * **Link-aligned.** [`LinkId`] space is chiplet-major (each chiplet's
//!   Down block, then its Up block), so a shard's chiplets also own a
//!   contiguous [`LinkId`] range, reported per shard. Interposer rows own
//!   no vertical links.
//! * **Disjoint and covering.** Every router belongs to exactly one
//!   shard; the constructor asserts it (the parallel engine's first
//!   debug invariant rather than a comment).
//! * **Deterministic.** The split depends only on the topology and the
//!   requested shard count — never on thread scheduling — so identical
//!   inputs partition identically on every host.
//!
//! Balancing is a single in-order sweep: unit `u` is cut off to shard
//! `s+1` when the nodes accumulated so far reach the ideal cumulative
//! boundary `(s+1)·total/shards`. With equal-size units (the common
//! grids) this is an even split; skewed custom systems degrade gracefully
//! toward "heaviest shard = one unit".

use crate::ids::{ChipletId, NodeId};
use crate::system::{ChipletSystem, LinkId};
use std::ops::Range;

/// One worker's slice of the system: a contiguous router range plus the
/// contiguous vertical-link range those routers own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickShard {
    /// Routers of this shard, as a contiguous `NodeId.0` range.
    pub nodes: Range<u32>,
    /// Vertical links whose *chiplet-side endpoint* lies in this shard, as
    /// a contiguous `LinkId.0` range (empty for interposer-only shards).
    pub links: Range<u32>,
}

impl TickShard {
    /// Whether the shard owns the given node.
    pub fn contains_node(&self, node: NodeId) -> bool {
        self.nodes.contains(&node.0)
    }

    /// Whether the shard owns the given vertical link.
    pub fn contains_link(&self, link: LinkId) -> bool {
        self.links.contains(&link.0)
    }

    /// Number of routers in the shard.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// A disjoint, covering, chiplet-aligned split of a system's routers into
/// worker shards, produced by [`ChipletSystem::tick_partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickPartition {
    shards: Vec<TickShard>,
    node_count: u32,
}

impl TickPartition {
    /// The shards, in ascending node order.
    pub fn shards(&self) -> &[TickShard] {
        &self.shards
    }

    /// Number of shards (≥ 1, ≤ the requested count).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the partition is empty (never, for a valid system).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard owning the given node (a binary search over shard
    /// boundaries).
    ///
    /// # Panics
    /// Panics if `node` is out of range for the partitioned system.
    pub fn shard_of(&self, node: NodeId) -> usize {
        assert!(
            node.0 < self.node_count,
            "node {node} outside the partitioned system"
        );
        self.shards
            .partition_point(|s| s.nodes.end <= node.0)
            .min(self.shards.len() - 1)
    }

    /// A dense node → owning-shard lookup table, one entry per router.
    /// The per-move answer to "which shard owns router r" in O(1) — the
    /// engine's phase-A bucketing asks it for every committed move, where
    /// the [`shard_of`](Self::shard_of) binary search would dominate.
    pub fn node_shards(&self) -> Vec<u16> {
        assert!(
            self.shards.len() <= u16::MAX as usize,
            "{} shards overflow the dense u16 table",
            self.shards.len()
        );
        let mut table = vec![0u16; self.node_count as usize];
        for (s, shard) in self.shards.iter().enumerate() {
            for node in shard.nodes.clone() {
                table[node as usize] = s as u16;
            }
        }
        table
    }

    /// Asserts the partition's safety contract: shards are sorted,
    /// non-empty, disjoint, and cover `0..node_count` without gaps.
    /// Called by the constructor; cheap enough to re-run when the
    /// parallel engine adopts a partition.
    ///
    /// # Panics
    /// Panics (naming the offending shard and router IDs) on violation.
    pub fn assert_disjoint_cover(&self) {
        let mut next = 0u32;
        for (i, s) in self.shards.iter().enumerate() {
            assert!(
                s.nodes.start < s.nodes.end,
                "tick shard {i} is empty ({:?})",
                s.nodes
            );
            assert!(
                s.nodes.start == next,
                "tick shard {i} starts at router {} but router {next} is unassigned",
                s.nodes.start
            );
            next = s.nodes.end;
        }
        assert!(
            next == self.node_count,
            "tick shards cover routers 0..{next} of 0..{}",
            self.node_count
        );
    }
}

impl ChipletSystem {
    /// Splits the system's routers into up to `shards` chiplet-aligned,
    /// contiguous, load-balanced shards for the parallel tick engine (see
    /// [`TickPartition`] for the contract). Requesting more shards
    /// than there are chiplets + interposer rows yields fewer, never an
    /// empty shard; `shards == 0` is treated as 1.
    pub fn tick_partition(&self, shards: usize) -> TickPartition {
        // Assignment units in node order: whole chiplets, then interposer
        // rows. Each unit is (contiguous node range, owned link count).
        let mut units: Vec<(Range<u32>, u32)> = Vec::new();
        for c in 0..self.chiplet_count() {
            let id = ChipletId(c as u8);
            let mut nodes = self.chiplet_nodes(id);
            let first = nodes.next().expect("chiplets have at least one node");
            let last = nodes.last().unwrap_or(first);
            units.push((first.0..last.0 + 1, 2 * self.chiplet(id).vl_count() as u32));
        }
        let mut interposer = self.interposer_nodes();
        if let Some(first) = interposer.next() {
            let last = interposer.last().unwrap_or(first);
            let width = u32::from(self.interposer_width()).max(1);
            let mut row = first.0;
            while row <= last.0 {
                let end = (row + width).min(last.0 + 1);
                units.push((row..end, 0));
                row = end;
            }
        }

        let total: u64 = units.iter().map(|(r, _)| r.len() as u64).sum();
        let workers = shards.clamp(1, units.len()) as u64;
        let mut out: Vec<TickShard> = Vec::new();
        let mut node_start = 0u32;
        let mut link_start = 0u32;
        let mut node_end = 0u32;
        let mut link_end = 0u32;
        let mut seen = 0u64;
        for (nodes, links) in units {
            seen += nodes.len() as u64;
            node_end = nodes.end;
            link_end += links;
            // Cut when the sweep reaches the next ideal cumulative
            // boundary; the final shard is pushed after the loop so it
            // always absorbs the tail.
            let cut = out.len() as u64 + 1;
            if cut < workers && seen * workers >= cut * total {
                out.push(TickShard {
                    nodes: node_start..node_end,
                    links: link_start..link_end,
                });
                node_start = node_end;
                link_start = link_end;
            }
        }
        if node_start < node_end {
            out.push(TickShard {
                nodes: node_start..node_end,
                links: link_start..link_end,
            });
        }
        let partition = TickPartition {
            shards: out,
            node_count: self.node_count() as u32,
        };
        partition.assert_disjoint_cover();
        debug_assert_eq!(
            partition.shards.last().map(|s| s.links.end),
            Some(self.link_count() as u32),
            "shard link ranges must cover the chiplet-major LinkId space"
        );
        partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::VlLinkId;
    use crate::ids::VlDir;

    fn systems() -> Vec<ChipletSystem> {
        vec![
            ChipletSystem::baseline_4(),
            ChipletSystem::baseline_6(),
            ChipletSystem::chiplet_grid(3, 2).expect("3x2 grid"),
            ChipletSystem::chiplet_grid(8, 8).expect("8x8 grid"),
        ]
    }

    #[test]
    fn partitions_are_disjoint_covering_and_deterministic() {
        for sys in systems() {
            for shards in [1, 2, 3, 4, 8, 64, 10_000] {
                let p = sys.tick_partition(shards);
                p.assert_disjoint_cover();
                assert!(!p.is_empty() && p.len() <= shards.max(1));
                assert_eq!(p, sys.tick_partition(shards), "non-deterministic");
                for node in sys.nodes() {
                    let s = p.shard_of(node);
                    assert!(p.shards()[s].contains_node(node));
                }
            }
        }
    }

    #[test]
    fn shards_never_split_a_chiplet() {
        for sys in systems() {
            let p = sys.tick_partition(4);
            for c in 0..sys.chiplet_count() {
                let owners: Vec<usize> = sys
                    .chiplet_nodes(ChipletId(c as u8))
                    .map(|n| p.shard_of(n))
                    .collect();
                assert!(
                    owners.windows(2).all(|w| w[0] == w[1]),
                    "chiplet {c} split across shards {owners:?}"
                );
            }
        }
    }

    #[test]
    fn link_ranges_follow_chiplet_ownership() {
        for sys in systems() {
            let p = sys.tick_partition(4);
            for c in 0..sys.chiplet_count() {
                let id = ChipletId(c as u8);
                let shard = p.shard_of(sys.chiplet_nodes(id).next().unwrap());
                for i in 0..sys.chiplet(id).vl_count() {
                    for dir in [VlDir::Down, VlDir::Up] {
                        let lid = sys.link_id(VlLinkId {
                            chiplet: id,
                            index: i as u8,
                            dir,
                        });
                        assert!(
                            p.shards()[shard].contains_link(lid),
                            "link {lid:?} of chiplet {c} not in its shard {shard}"
                        );
                    }
                }
            }
            // Links are covered exactly once across shards.
            let total: usize = p.shards().iter().map(|s| s.links.len()).sum();
            assert_eq!(total, sys.link_count());
        }
    }

    #[test]
    fn single_shard_is_the_whole_system() {
        let sys = ChipletSystem::baseline_4();
        let p = sys.tick_partition(1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.shards()[0].nodes, 0..sys.node_count() as u32);
        assert_eq!(p.shards()[0].links, 0..sys.link_count() as u32);
        // Zero is clamped to one.
        assert_eq!(sys.tick_partition(0), p);
    }

    #[test]
    fn balanced_split_on_the_8x8_grid() {
        let sys = ChipletSystem::chiplet_grid(8, 8).expect("8x8 grid");
        let p = sys.tick_partition(8);
        assert_eq!(p.len(), 8);
        let sizes: Vec<usize> = p.shards().iter().map(TickShard::node_count).collect();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        // 2048 chiplet routers + interposer rows split 8 ways: no shard
        // may exceed its ideal share by more than one unit.
        assert!(
            max - min <= 64,
            "8-way split of the 8x8 grid is lopsided: {sizes:?}"
        );
    }

    #[test]
    fn node_shards_matches_shard_of() {
        for sys in systems() {
            for shards in [1, 2, 4, 7] {
                let p = sys.tick_partition(shards);
                let table = p.node_shards();
                assert_eq!(table.len(), sys.node_count());
                for node in sys.nodes() {
                    assert_eq!(
                        table[node.index()] as usize,
                        p.shard_of(node),
                        "dense table disagrees with shard_of at {node}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the partitioned system")]
    fn shard_of_rejects_out_of_range_nodes() {
        let sys = ChipletSystem::baseline_4();
        let p = sys.tick_partition(2);
        p.shard_of(NodeId(sys.node_count() as u32));
    }
}
