//! # deft-topo — 2.5D chiplet-system topology
//!
//! This crate models the physical structure of a 2.5D integrated chiplet
//! system as used by the DeFT paper (Taheri et al., DATE 2022): several mesh
//! chiplets placed on an active-interposer mesh, connected by a small number
//! of *vertical links* (VLs) through micro-bumps.
//!
//! The central type is [`ChipletSystem`], built with [`SystemBuilder`] or one
//! of the paper presets ([`ChipletSystem::baseline_4`],
//! [`ChipletSystem::baseline_6`]). It provides coordinate/ID translation,
//! neighbour queries for both mesh layers, and vertical-link lookup.
//!
//! Vertical links are *bidirectional* pairs of *unidirectional* micro-bump
//! links; faults are tracked per direction in [`FaultState`] because a down
//! link (chiplet → interposer) can fail independently of its up twin
//! (interposer → chiplet). The paper's fault-rate axis (e.g. "8 faulty VLs of
//! 32" for the 4-chiplet system) counts unidirectional links, which is what
//! [`FaultState`] and [`FaultScenarios`] enumerate. Beyond the paper's
//! static scenarios, [`FaultTimeline`] schedules faults that inject *and
//! heal* at given cycles during a live simulation (transient, burst, and
//! region generators), which is what the recovery experiments consume.
//!
//! ## Data flow
//!
//! This crate is the root of the workspace: `deft-routing` consumes
//! [`ChipletSystem`] + [`FaultState`] to make routing decisions,
//! `deft-traffic` uses the node map to build workload tables, and
//! `deft-sim` wires its routers from the neighbour queries. A system is
//! immutable once built (`Sync`), so the `deft` crate's campaign runner
//! shares one instance across all worker threads of an experiment grid.
//!
//! ```
//! use deft_topo::ChipletSystem;
//!
//! let sys = ChipletSystem::baseline_4();
//! assert_eq!(sys.node_count(), 128);            // 4 x 16 cores + 8x8 interposer
//! assert_eq!(sys.vertical_link_count(), 16);    // 4 VLs per chiplet
//! assert_eq!(sys.unidirectional_vl_count(), 32);
//! let boundary = sys.chiplet(deft_topo::ChipletId(0)).vertical_links()[0].chiplet_node;
//! assert!(sys.is_boundary_router(boundary));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chiplet;
mod coord;
mod error;
mod fault;
mod ids;
mod partition;
mod presets;
mod system;
mod timeline;

pub use chiplet::Chiplet;
pub use coord::{Coord, Direction};
pub use error::TopologyError;
pub use fault::{FaultScenarios, FaultState, ScenarioSampler, VlLinkId};
pub use ids::{ChipletId, Layer, NodeAddr, NodeId, VlDir};
pub use partition::{TickPartition, TickShard};
pub use presets::PINWHEEL_VLS_4X4;
pub use system::{ChipletSystem, LinkId, SystemBuilder, VerticalLink};
pub use timeline::{
    BurstConfig, FaultEvent, FaultEventKind, FaultTimeline, RegionConfig, TimelineCursor,
    TransientConfig,
};
