//! Mesh coordinates and link directions.

use std::fmt;

/// A position in a 2D mesh, `x` growing east and `y` growing north.
///
/// Coordinates are local to one layer (a chiplet mesh or the interposer
/// mesh); translation between the two is done by
/// [`ChipletSystem`](crate::ChipletSystem).
///
/// ```
/// use deft_topo::Coord;
/// let a = Coord::new(1, 2);
/// let b = Coord::new(3, 0);
/// assert_eq!(a.manhattan(b), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    /// Horizontal position (east is positive).
    pub x: u8,
    /// Vertical position (north is positive).
    pub y: u8,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(x: u8, y: u8) -> Self {
        Self { x, y }
    }

    /// Manhattan (hop-count) distance to `other` within the same mesh.
    ///
    /// This is the `D_r^v` term of the paper's Eq. (4).
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// The neighbouring coordinate in `dir`, if it stays inside a
    /// `width` x `height` mesh. Vertical directions return `None`;
    /// inter-layer neighbours are topology-level, not coordinate-level.
    pub fn step(self, dir: Direction, width: u8, height: u8) -> Option<Coord> {
        match dir {
            Direction::East if self.x + 1 < width => Some(Coord::new(self.x + 1, self.y)),
            Direction::West if self.x > 0 => Some(Coord::new(self.x - 1, self.y)),
            Direction::North if self.y + 1 < height => Some(Coord::new(self.x, self.y + 1)),
            Direction::South if self.y > 0 => Some(Coord::new(self.x, self.y - 1)),
            _ => None,
        }
    }

    /// Offsets this coordinate by another (used to map chiplet-local
    /// coordinates onto the interposer grid).
    ///
    /// # Panics
    /// Panics on `u8` overflow, which indicates an invalid topology and is
    /// rejected earlier by [`SystemBuilder`](crate::SystemBuilder).
    pub fn offset(self, origin: Coord) -> Coord {
        Coord::new(self.x + origin.x, self.y + origin.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A link direction out of a router.
///
/// The paper's port terminology: *Horizontal* ports are `East`, `West`,
/// `North`, `South` (intra-chiplet and intra-interposer); the *Down* port
/// goes from a chiplet to the interposer and the *Up* port from the
/// interposer to a chiplet (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// +x within a layer.
    East,
    /// -x within a layer.
    West,
    /// +y within a layer.
    North,
    /// -y within a layer.
    South,
    /// Interposer → chiplet (only out of interposer routers under a VL).
    Up,
    /// Chiplet → interposer (only out of boundary routers).
    Down,
}

impl Direction {
    /// All six directions.
    pub const ALL: [Direction; 6] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
        Direction::Up,
        Direction::Down,
    ];

    /// The four horizontal (intra-layer) directions.
    pub const HORIZONTAL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ];

    /// Position of this direction in [`Direction::ALL`]. Dense per-node ×
    /// per-direction tables (the flat adjacency table in
    /// [`ChipletSystem`](crate::ChipletSystem)) are indexed by this.
    pub const fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::Up => 4,
            Direction::Down => 5,
        }
    }

    /// Whether this is one of the four intra-layer directions.
    pub fn is_horizontal(self) -> bool {
        !matches!(self, Direction::Up | Direction::Down)
    }

    /// Whether this crosses between a chiplet and the interposer.
    pub fn is_vertical(self) -> bool {
        matches!(self, Direction::Up | Direction::Down)
    }

    /// The direction a flit *arrives from* when it was sent in `self`:
    /// east-sent flits arrive on the west side, up-sent flits arrive from
    /// below, and so on.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::Up => Direction::Down,
            Direction::Down => Direction::Up,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "east",
            Direction::West => "west",
            Direction::North => "north",
            Direction::South => "south",
            Direction::Up => "up",
            Direction::Down => "down",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Coord::new(2, 5);
        let b = Coord::new(7, 1);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(a), 0);
        assert_eq!(a.manhattan(b), 5 + 4);
    }

    #[test]
    fn step_respects_mesh_bounds() {
        let c = Coord::new(0, 0);
        assert_eq!(c.step(Direction::West, 4, 4), None);
        assert_eq!(c.step(Direction::South, 4, 4), None);
        assert_eq!(c.step(Direction::East, 4, 4), Some(Coord::new(1, 0)));
        assert_eq!(c.step(Direction::North, 4, 4), Some(Coord::new(0, 1)));
        let edge = Coord::new(3, 3);
        assert_eq!(edge.step(Direction::East, 4, 4), None);
        assert_eq!(edge.step(Direction::North, 4, 4), None);
    }

    #[test]
    fn vertical_steps_are_not_coordinate_steps() {
        let c = Coord::new(1, 1);
        assert_eq!(c.step(Direction::Up, 4, 4), None);
        assert_eq!(c.step(Direction::Down, 4, 4), None);
    }

    #[test]
    fn opposite_is_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn horizontal_classification() {
        assert!(Direction::East.is_horizontal());
        assert!(!Direction::Up.is_horizontal());
        assert!(Direction::Down.is_vertical());
        assert_eq!(Direction::HORIZONTAL.len(), 4);
        for d in Direction::HORIZONTAL {
            assert!(d.is_horizontal());
        }
    }

    #[test]
    fn offset_translates() {
        assert_eq!(Coord::new(1, 2).offset(Coord::new(4, 4)), Coord::new(5, 6));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Coord::new(3, 4).to_string(), "(3, 4)");
        assert_eq!(Direction::Up.to_string(), "up");
    }
}
