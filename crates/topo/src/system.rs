//! The assembled 2.5D chiplet system and its builder.

use crate::{
    Chiplet, ChipletId, Coord, Direction, Layer, NodeAddr, NodeId, TopologyError, VlDir, VlLinkId,
};

/// Dense identifier of one *unidirectional* vertical link, assigned at
/// [`SystemBuilder::build`] time in the canonical link order (chiplet-major,
/// the chiplet's Down links before its Up links, VL-index order within a
/// block). `LinkId`s index flat per-link arrays on the simulation hot path;
/// translate to/from the structured [`VlLinkId`](crate::VlLinkId) form with
/// [`ChipletSystem::link_id`] / [`ChipletSystem::link_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// The ID as a `usize` index into per-link tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One bidirectional vertical link (a micro-bump pair) between a chiplet
/// boundary router and the interposer router directly beneath it.
///
/// The *down* half carries flits chiplet → interposer and the *up* half
/// interposer → chiplet; the two halves fail independently
/// (see [`FaultState`](crate::FaultState)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerticalLink {
    /// Chiplet this VL belongs to.
    pub chiplet: ChipletId,
    /// Index of this VL within its chiplet (dense, `0..vl_count`).
    pub index: u8,
    /// Chiplet-local coordinate of the boundary router.
    pub chiplet_coord: Coord,
    /// Global node ID of the boundary router on the chiplet.
    pub chiplet_node: NodeId,
    /// Global node ID of the interposer router beneath it.
    pub interposer_node: NodeId,
}

/// Builder for a [`ChipletSystem`].
///
/// ```
/// use deft_topo::{SystemBuilder, Coord};
///
/// # fn main() -> Result<(), deft_topo::TopologyError> {
/// let sys = SystemBuilder::new(8, 4)
///     .chiplet(Coord::new(0, 0), 4, 4, &[Coord::new(1, 3), Coord::new(3, 2)])
///     .chiplet(Coord::new(4, 0), 4, 4, &[Coord::new(0, 1), Coord::new(2, 0)])
///     .build()?;
/// assert_eq!(sys.chiplet_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SystemBuilder {
    interposer_width: u8,
    interposer_height: u8,
    chiplets: Vec<(Coord, u8, u8, Vec<Coord>)>,
}

impl SystemBuilder {
    /// Starts a system with an `width` x `height` interposer mesh.
    pub fn new(width: u8, height: u8) -> Self {
        Self {
            interposer_width: width,
            interposer_height: height,
            chiplets: Vec::new(),
        }
    }

    /// Adds a `width` x `height` chiplet whose (0, 0) tile sits above
    /// interposer coordinate `origin`, with vertical links at the given
    /// chiplet-local coordinates.
    #[must_use]
    pub fn chiplet(mut self, origin: Coord, width: u8, height: u8, vls: &[Coord]) -> Self {
        self.chiplets.push((origin, width, height, vls.to_vec()));
        self
    }

    /// Validates the description and assembles the system.
    ///
    /// # Errors
    /// Returns a [`TopologyError`] if any mesh is empty, a chiplet footprint
    /// leaves the interposer or overlaps another, a VL coordinate is out of
    /// bounds or duplicated, or a chiplet has no VLs.
    pub fn build(self) -> Result<ChipletSystem, TopologyError> {
        if self.interposer_width == 0 || self.interposer_height == 0 {
            return Err(TopologyError::EmptyMesh {
                what: "interposer".into(),
            });
        }
        if self.chiplets.is_empty() {
            return Err(TopologyError::NoChiplets);
        }

        // Footprint validation.
        for (i, (origin, w, h, vls)) in self.chiplets.iter().enumerate() {
            let id = ChipletId(i as u8);
            if *w == 0 || *h == 0 {
                return Err(TopologyError::EmptyMesh {
                    what: format!("{id}"),
                });
            }
            if origin.x as u32 + *w as u32 > self.interposer_width as u32
                || origin.y as u32 + *h as u32 > self.interposer_height as u32
            {
                return Err(TopologyError::ChipletOutOfBounds { chiplet: id });
            }
            if vls.is_empty() {
                return Err(TopologyError::NoVls { chiplet: id });
            }
            for (k, &c) in vls.iter().enumerate() {
                if c.x >= *w || c.y >= *h {
                    return Err(TopologyError::VlOutOfBounds {
                        chiplet: id,
                        coord: c,
                    });
                }
                if vls[..k].contains(&c) {
                    return Err(TopologyError::DuplicateVl {
                        chiplet: id,
                        coord: c,
                    });
                }
            }
        }
        for i in 0..self.chiplets.len() {
            for j in (i + 1)..self.chiplets.len() {
                let (ao, aw, ah, _) = &self.chiplets[i];
                let (bo, bw, bh, _) = &self.chiplets[j];
                let x_overlap = ao.x < bo.x + bw && bo.x < ao.x + aw;
                let y_overlap = ao.y < bo.y + bh && bo.y < ao.y + ah;
                if x_overlap && y_overlap {
                    return Err(TopologyError::ChipletOverlap {
                        a: ChipletId(i as u8),
                        b: ChipletId(j as u8),
                    });
                }
            }
        }

        // Node numbering: chiplet nodes first (row-major per chiplet), then
        // interposer row-major.
        let mut chiplet_node_base = Vec::with_capacity(self.chiplets.len());
        let mut next = 0u32;
        for (_, w, h, _) in &self.chiplets {
            chiplet_node_base.push(next);
            next += *w as u32 * *h as u32;
        }
        let interposer_base = next;
        let node_count =
            next as usize + self.interposer_width as usize * self.interposer_height as usize;

        let iw = self.interposer_width;
        let interposer_node =
            |c: Coord| NodeId(interposer_base + c.y as u32 * iw as u32 + c.x as u32);

        let mut chiplets = Vec::with_capacity(self.chiplets.len());
        let mut vlinks = Vec::new();
        for (i, (origin, w, h, vl_coords)) in self.chiplets.iter().enumerate() {
            let id = ChipletId(i as u8);
            let base = chiplet_node_base[i];
            let mut vls = Vec::with_capacity(vl_coords.len());
            for (k, &local) in vl_coords.iter().enumerate() {
                let vl = VerticalLink {
                    chiplet: id,
                    index: k as u8,
                    chiplet_coord: local,
                    chiplet_node: NodeId(base + local.y as u32 * *w as u32 + local.x as u32),
                    interposer_node: interposer_node(local.offset(*origin)),
                };
                vls.push(vl);
                vlinks.push(vl);
            }
            chiplets.push(Chiplet::new(id, *origin, *w, *h, vls));
        }

        // Per-node VL lookup: node index -> VL slot in `vlinks`.
        let mut vl_of_node = vec![None; node_count];
        for (slot, vl) in vlinks.iter().enumerate() {
            vl_of_node[vl.chiplet_node.index()] = Some(slot as u32);
            vl_of_node[vl.interposer_node.index()] = Some(slot as u32);
        }

        let mut sys = ChipletSystem {
            interposer_width: self.interposer_width,
            interposer_height: self.interposer_height,
            chiplets,
            chiplet_node_base,
            interposer_base,
            node_count,
            vlinks,
            vl_of_node,
            addrs: Vec::new(),
            adj: Vec::new(),
            links_flat: Vec::new(),
            link_base: Vec::new(),
            out_link_of_node: Vec::new(),
        };
        sys.build_flat_tables();
        Ok(sys)
    }
}

/// A validated 2.5D chiplet system: chiplet meshes, the interposer mesh, and
/// the vertical links between them.
///
/// All queries are O(1) except where documented. The system is immutable;
/// faults are tracked separately in [`FaultState`](crate::FaultState) so one
/// topology can be shared across many fault scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChipletSystem {
    interposer_width: u8,
    interposer_height: u8,
    chiplets: Vec<Chiplet>,
    chiplet_node_base: Vec<u32>,
    interposer_base: u32,
    node_count: usize,
    vlinks: Vec<VerticalLink>,
    /// node index -> index into `vlinks` if the node is a VL endpoint.
    vl_of_node: Vec<Option<u32>>,
    /// Precomputed node → address table; makes [`addr`](Self::addr) a flat
    /// lookup instead of a binary search over chiplet bases.
    addrs: Vec<NodeAddr>,
    /// Flat adjacency: `adj[node][Direction::index()]` = neighbour, if the
    /// link exists. The simulation hot path reads only this table.
    adj: Vec<[Option<NodeId>; 6]>,
    /// All unidirectional VLs in canonical [`LinkId`] order (chiplet-major,
    /// Down block before Up block, VL-index order within a block).
    links_flat: Vec<VlLinkId>,
    /// Per-chiplet base of its Down block in `links_flat`; the Up block
    /// starts `vl_count` entries later.
    link_base: Vec<u32>,
    /// node → the unidirectional VL a flit crosses when *leaving* the node
    /// vertically (the Down link of a boundary router, the Up link of an
    /// interposer router under a VL).
    out_link_of_node: Vec<Option<LinkId>>,
}

impl ChipletSystem {
    /// Total number of router+core/DRAM nodes (both layers).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of chiplets.
    pub fn chiplet_count(&self) -> usize {
        self.chiplets.len()
    }

    /// Interposer mesh width.
    pub fn interposer_width(&self) -> u8 {
        self.interposer_width
    }

    /// Interposer mesh height.
    pub fn interposer_height(&self) -> u8 {
        self.interposer_height
    }

    /// The chiplet with the given ID.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn chiplet(&self, id: ChipletId) -> &Chiplet {
        &self.chiplets[id.index()]
    }

    /// All chiplets in ID order.
    pub fn chiplets(&self) -> &[Chiplet] {
        &self.chiplets
    }

    /// All bidirectional vertical links, grouped by chiplet in index order.
    pub fn vertical_links(&self) -> &[VerticalLink] {
        &self.vlinks
    }

    /// Number of bidirectional vertical links in the whole system.
    pub fn vertical_link_count(&self) -> usize {
        self.vlinks.len()
    }

    /// Number of unidirectional vertical links (twice the bidirectional
    /// count); this is the denominator of the paper's fault rates.
    pub fn unidirectional_vl_count(&self) -> usize {
        self.vlinks.len() * 2
    }

    /// Content fingerprint of the assembled topology: interposer
    /// dimensions plus every chiplet's placement, size, and VL
    /// coordinates. Two systems share a fingerprint iff
    /// [`SystemBuilder`] would produce them from the same spec, so it
    /// is a stable cache-key component for memoized campaign cells.
    pub fn fingerprint(&self) -> u64 {
        let mut enc = deft_codec::Encoder::new();
        enc.put_u8(self.interposer_width);
        enc.put_u8(self.interposer_height);
        enc.put_usize(self.chiplets.len());
        for c in &self.chiplets {
            enc.put_u8(c.origin().x);
            enc.put_u8(c.origin().y);
            enc.put_u8(c.width());
            enc.put_u8(c.height());
            enc.put_usize(c.vl_count());
            for vl in c.vertical_links() {
                enc.put_u8(vl.chiplet_coord.x);
                enc.put_u8(vl.chiplet_coord.y);
            }
        }
        deft_codec::fnv1a(enc.as_bytes())
    }

    /// Iterates over all node IDs.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count as u32).map(NodeId)
    }

    /// Iterates over interposer node IDs.
    pub fn interposer_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.interposer_base..self.node_count as u32).map(NodeId)
    }

    /// Iterates over the node IDs of one chiplet.
    pub fn chiplet_nodes(&self, id: ChipletId) -> impl Iterator<Item = NodeId> {
        let base = self.chiplet_node_base[id.index()];
        let n = self.chiplets[id.index()].node_count() as u32;
        (base..base + n).map(NodeId)
    }

    /// Translates a node ID to its layer + coordinate (a flat table lookup).
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn addr(&self, node: NodeId) -> NodeAddr {
        assert!(node.index() < self.node_count, "node {node} out of range");
        self.addrs[node.index()]
    }

    /// Computes a node's address from the mesh layout, without the
    /// precomputed table. Only used while building the table itself.
    fn addr_computed(&self, node: NodeId) -> NodeAddr {
        if node.0 >= self.interposer_base {
            let off = node.0 - self.interposer_base;
            let y = (off / self.interposer_width as u32) as u8;
            let x = (off % self.interposer_width as u32) as u8;
            return NodeAddr::new(Layer::Interposer, Coord::new(x, y));
        }
        // Chiplet bases are sorted; find the owning chiplet.
        let idx = match self.chiplet_node_base.binary_search(&node.0) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let off = node.0 - self.chiplet_node_base[idx];
        let w = self.chiplets[idx].width() as u32;
        NodeAddr::new(
            Layer::Chiplet(ChipletId(idx as u8)),
            Coord::new((off % w) as u8, (off / w) as u8),
        )
    }

    /// Populates the flat hot-path tables (`addrs`, `adj`, `links_flat`,
    /// `link_base`, `out_link_of_node`) from the structural fields. Called
    /// once at the end of [`SystemBuilder::build`].
    fn build_flat_tables(&mut self) {
        self.addrs = (0..self.node_count as u32)
            .map(|n| self.addr_computed(NodeId(n)))
            .collect();
        self.adj = (0..self.node_count as u32)
            .map(|n| {
                let mut row = [None; 6];
                for dir in Direction::ALL {
                    row[dir.index()] = self.neighbor_computed(NodeId(n), dir);
                }
                row
            })
            .collect();
        self.links_flat = Vec::with_capacity(self.vlinks.len() * 2);
        self.link_base = Vec::with_capacity(self.chiplets.len());
        for c in &self.chiplets {
            self.link_base.push(self.links_flat.len() as u32);
            for dir in VlDir::ALL {
                for i in 0..c.vl_count() {
                    self.links_flat.push(VlLinkId {
                        chiplet: c.id(),
                        index: i as u8,
                        dir,
                    });
                }
            }
        }
        self.out_link_of_node = vec![None; self.node_count];
        for vl in &self.vlinks {
            let down = self.link_id(VlLinkId {
                chiplet: vl.chiplet,
                index: vl.index,
                dir: VlDir::Down,
            });
            let up = self.link_id(VlLinkId {
                chiplet: vl.chiplet,
                index: vl.index,
                dir: VlDir::Up,
            });
            self.out_link_of_node[vl.chiplet_node.index()] = Some(down);
            self.out_link_of_node[vl.interposer_node.index()] = Some(up);
        }
    }

    /// Translates a layer + coordinate to a node ID. Returns `None` if the
    /// coordinate is outside that layer's mesh.
    pub fn node_id(&self, addr: NodeAddr) -> Option<NodeId> {
        match addr.layer {
            Layer::Interposer => {
                if addr.coord.x < self.interposer_width && addr.coord.y < self.interposer_height {
                    Some(NodeId(
                        self.interposer_base
                            + addr.coord.y as u32 * self.interposer_width as u32
                            + addr.coord.x as u32,
                    ))
                } else {
                    None
                }
            }
            Layer::Chiplet(c) => {
                let ch = self.chiplets.get(c.index())?;
                if ch.contains(addr.coord) {
                    Some(NodeId(
                        self.chiplet_node_base[c.index()]
                            + addr.coord.y as u32 * ch.width() as u32
                            + addr.coord.x as u32,
                    ))
                } else {
                    None
                }
            }
        }
    }

    /// The layer a node lives on.
    pub fn layer(&self, node: NodeId) -> Layer {
        self.addr(node).layer
    }

    /// The chiplet a node lives on, or `None` for interposer nodes.
    pub fn chiplet_of(&self, node: NodeId) -> Option<ChipletId> {
        self.layer(node).chiplet()
    }

    /// The neighbour of `node` in `dir`, if that link exists (a flat table
    /// lookup).
    ///
    /// Horizontal directions stay within the node's mesh; `Down` exists only
    /// out of chiplet boundary routers and `Up` only out of interposer
    /// routers beneath a VL.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.adj[node.index()][dir.index()]
    }

    /// Computes a neighbour from the mesh layout, without the precomputed
    /// adjacency table. Only used while building the table itself.
    fn neighbor_computed(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let addr = self.addr_computed(node);
        match dir {
            Direction::Down => match addr.layer {
                Layer::Chiplet(_) => self.vertical_peer(node),
                Layer::Interposer => None,
            },
            Direction::Up => match addr.layer {
                Layer::Interposer => self.vertical_peer(node),
                Layer::Chiplet(_) => None,
            },
            d => {
                let (w, h) = match addr.layer {
                    Layer::Interposer => (self.interposer_width, self.interposer_height),
                    Layer::Chiplet(c) => {
                        let ch = &self.chiplets[c.index()];
                        (ch.width(), ch.height())
                    }
                };
                let next = addr.coord.step(d, w, h)?;
                self.node_id(NodeAddr::new(addr.layer, next))
            }
        }
    }

    /// Iterates over the outgoing links of `node` as `(direction, neighbor)`
    /// pairs, in [`Direction::ALL`] order, without allocating.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn neighbors_iter(&self, node: NodeId) -> impl Iterator<Item = (Direction, NodeId)> + '_ {
        let row = &self.adj[node.index()];
        Direction::ALL
            .into_iter()
            .filter_map(move |d| row[d.index()].map(|n| (d, n)))
    }

    /// Number of unidirectional vertical links, i.e. the exclusive upper
    /// bound of the dense [`LinkId`] space. Equal to
    /// [`unidirectional_vl_count`](Self::unidirectional_vl_count).
    pub fn link_count(&self) -> usize {
        self.links_flat.len()
    }

    /// The dense [`LinkId`] of a structured [`VlLinkId`].
    ///
    /// # Panics
    /// Panics if the chiplet or VL index is out of range.
    pub fn link_id(&self, link: VlLinkId) -> LinkId {
        let c = &self.chiplets[link.chiplet.index()];
        assert!(
            (link.index as usize) < c.vl_count(),
            "VL index {} out of range for {}",
            link.index,
            link.chiplet
        );
        let dir_off = match link.dir {
            VlDir::Down => 0,
            VlDir::Up => c.vl_count() as u32,
        };
        LinkId(self.link_base[link.chiplet.index()] + dir_off + link.index as u32)
    }

    /// The structured [`VlLinkId`] behind a dense [`LinkId`].
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn link_of(&self, id: LinkId) -> VlLinkId {
        self.links_flat[id.index()]
    }

    /// All unidirectional vertical links in dense [`LinkId`] order.
    pub fn links_flat(&self) -> &[VlLinkId] {
        &self.links_flat
    }

    /// The unidirectional VL a flit crosses when leaving `node` through its
    /// vertical port: the Down link of a chiplet boundary router, the Up
    /// link of an interposer router under a VL, `None` elsewhere.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn out_vertical_link(&self, node: NodeId) -> Option<LinkId> {
        self.out_link_of_node[node.index()]
    }

    /// The node on the other end of `node`'s vertical link, if `node` is a
    /// VL endpoint (a chiplet boundary router or an interposer router under
    /// a VL).
    pub fn vertical_peer(&self, node: NodeId) -> Option<NodeId> {
        let slot = self.vl_of_node.get(node.index()).copied().flatten()?;
        let vl = &self.vlinks[slot as usize];
        if vl.chiplet_node == node {
            Some(vl.interposer_node)
        } else {
            Some(vl.chiplet_node)
        }
    }

    /// The vertical link a node terminates, if any.
    pub fn vl_at_node(&self, node: NodeId) -> Option<&VerticalLink> {
        let slot = self.vl_of_node.get(node.index()).copied().flatten()?;
        Some(&self.vlinks[slot as usize])
    }

    /// Whether `node` is a chiplet boundary router (a chiplet router attached
    /// to a vertical link).
    pub fn is_boundary_router(&self, node: NodeId) -> bool {
        match self.vl_at_node(node) {
            Some(vl) => vl.chiplet_node == node,
            None => false,
        }
    }

    /// Manhattan distance between two nodes **on the same layer**.
    ///
    /// Returns `None` when the nodes are on different layers; inter-layer
    /// distance depends on the VL chosen by the routing algorithm.
    pub fn same_layer_distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let (aa, ba) = (self.addr(a), self.addr(b));
        (aa.layer == ba.layer).then(|| aa.coord.manhattan(ba.coord))
    }

    /// Minimal hop count from `a` to `b` through given VL choices:
    /// `a → down_vl (down) → interposer → up_vl (up) → b`.
    ///
    /// Used by tests to verify livelock freedom (paper §III-A): DeFT routes
    /// every packet in exactly this many hops.
    ///
    /// # Panics
    /// Panics if `a` is not on `down_vl`'s chiplet or `b` not on `up_vl`'s
    /// chiplet.
    pub fn inter_chiplet_hops(
        &self,
        a: NodeId,
        down_vl: &VerticalLink,
        up_vl: &VerticalLink,
        b: NodeId,
    ) -> u32 {
        let aa = self.addr(a);
        let ba = self.addr(b);
        assert_eq!(
            aa.layer,
            Layer::Chiplet(down_vl.chiplet),
            "source not on down VL chiplet"
        );
        assert_eq!(
            ba.layer,
            Layer::Chiplet(up_vl.chiplet),
            "dest not on up VL chiplet"
        );
        let d1 = aa.coord.manhattan(down_vl.chiplet_coord);
        let d2 = self
            .addr(down_vl.interposer_node)
            .coord
            .manhattan(self.addr(up_vl.interposer_node).coord);
        let d3 = up_vl.chiplet_coord.manhattan(ba.coord);
        d1 + 1 + d2 + 1 + d3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_chiplets() -> ChipletSystem {
        SystemBuilder::new(8, 4)
            .chiplet(
                Coord::new(0, 0),
                4,
                4,
                &[Coord::new(1, 3), Coord::new(3, 2)],
            )
            .chiplet(
                Coord::new(4, 0),
                4,
                4,
                &[Coord::new(0, 1), Coord::new(2, 0)],
            )
            .build()
            .expect("valid system")
    }

    #[test]
    fn fingerprint_separates_topologies() {
        let sys = two_chiplets();
        assert_eq!(sys.fingerprint(), two_chiplets().fingerprint());
        let moved_vl = SystemBuilder::new(8, 4)
            .chiplet(
                Coord::new(0, 0),
                4,
                4,
                &[Coord::new(1, 3), Coord::new(3, 1)],
            )
            .chiplet(
                Coord::new(4, 0),
                4,
                4,
                &[Coord::new(0, 1), Coord::new(2, 0)],
            )
            .build()
            .expect("valid system");
        assert_ne!(sys.fingerprint(), moved_vl.fingerprint());
    }

    #[test]
    fn node_numbering_is_dense_and_invertible() {
        let sys = two_chiplets();
        assert_eq!(sys.node_count(), 16 + 16 + 32);
        for node in sys.nodes() {
            let addr = sys.addr(node);
            assert_eq!(
                sys.node_id(addr),
                Some(node),
                "round trip failed for {node} ({addr})"
            );
        }
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        assert!(matches!(
            SystemBuilder::new(0, 4)
                .chiplet(Coord::new(0, 0), 2, 2, &[Coord::new(0, 0)])
                .build(),
            Err(TopologyError::EmptyMesh { .. })
        ));
        assert!(matches!(
            SystemBuilder::new(8, 8).build(),
            Err(TopologyError::NoChiplets)
        ));
        assert!(matches!(
            SystemBuilder::new(4, 4)
                .chiplet(Coord::new(2, 2), 4, 4, &[Coord::new(0, 0)])
                .build(),
            Err(TopologyError::ChipletOutOfBounds { .. })
        ));
        assert!(matches!(
            SystemBuilder::new(8, 8)
                .chiplet(Coord::new(0, 0), 4, 4, &[Coord::new(0, 0)])
                .chiplet(Coord::new(3, 3), 4, 4, &[Coord::new(0, 0)])
                .build(),
            Err(TopologyError::ChipletOverlap { .. })
        ));
        assert!(matches!(
            SystemBuilder::new(8, 8)
                .chiplet(Coord::new(0, 0), 4, 4, &[Coord::new(4, 0)])
                .build(),
            Err(TopologyError::VlOutOfBounds { .. })
        ));
        assert!(matches!(
            SystemBuilder::new(8, 8)
                .chiplet(
                    Coord::new(0, 0),
                    4,
                    4,
                    &[Coord::new(1, 1), Coord::new(1, 1)]
                )
                .build(),
            Err(TopologyError::DuplicateVl { .. })
        ));
        assert!(matches!(
            SystemBuilder::new(8, 8)
                .chiplet(Coord::new(0, 0), 4, 4, &[])
                .build(),
            Err(TopologyError::NoVls { .. })
        ));
    }

    #[test]
    fn vertical_links_connect_matching_coordinates() {
        let sys = two_chiplets();
        for vl in sys.vertical_links() {
            let chip = sys.chiplet(vl.chiplet);
            let below = sys.addr(vl.interposer_node);
            assert_eq!(below.layer, Layer::Interposer);
            assert_eq!(below.coord, chip.to_interposer(vl.chiplet_coord));
            assert_eq!(sys.vertical_peer(vl.chiplet_node), Some(vl.interposer_node));
            assert_eq!(sys.vertical_peer(vl.interposer_node), Some(vl.chiplet_node));
            assert!(sys.is_boundary_router(vl.chiplet_node));
            assert!(!sys.is_boundary_router(vl.interposer_node));
        }
    }

    #[test]
    fn neighbors_respect_mesh_and_vl_structure() {
        let sys = two_chiplets();
        // Chiplet 0 corner (0,0): east + north only (no VL there).
        let corner = sys
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(0, 0),
            ))
            .unwrap();
        let dirs: Vec<Direction> = sys.neighbors_iter(corner).map(|(d, _)| d).collect();
        assert_eq!(dirs, vec![Direction::East, Direction::North]);

        // A boundary router also has Down.
        let vl = &sys.chiplet(ChipletId(0)).vertical_links()[0];
        let dirs: Vec<Direction> = sys
            .neighbors_iter(vl.chiplet_node)
            .map(|(d, _)| d)
            .collect();
        assert!(dirs.contains(&Direction::Down));
        assert!(!dirs.contains(&Direction::Up));

        // The interposer router beneath it has Up.
        let dirs: Vec<Direction> = sys
            .neighbors_iter(vl.interposer_node)
            .map(|(d, _)| d)
            .collect();
        assert!(dirs.contains(&Direction::Up));
        assert!(!dirs.contains(&Direction::Down));

        // Chiplet meshes do not leak into each other horizontally.
        let east_edge = sys
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(3, 0),
            ))
            .unwrap();
        assert_eq!(sys.neighbor(east_edge, Direction::East), None);
    }

    #[test]
    fn interposer_mesh_is_fully_connected() {
        let sys = two_chiplets();
        let mid = sys
            .node_id(NodeAddr::new(Layer::Interposer, Coord::new(3, 1)))
            .unwrap();
        assert_eq!(
            sys.neighbors_iter(mid).count(),
            4 + usize::from(sys.vl_at_node(mid).is_some())
        );
    }

    #[test]
    fn neighbors_iter_matches_the_flat_adjacency_row() {
        let sys = two_chiplets();
        for node in sys.nodes() {
            for (dir, nbr) in sys.neighbors_iter(node) {
                assert_eq!(sys.neighbor(node, dir), Some(nbr));
            }
            let listed = sys.neighbors_iter(node).count();
            let dense = Direction::ALL
                .into_iter()
                .filter(|&d| sys.neighbor(node, d).is_some())
                .count();
            assert_eq!(listed, dense);
        }
    }

    #[test]
    fn flat_adjacency_matches_the_computed_neighbors() {
        // The hot-path table must agree with the mesh/VL layout rules it
        // was derived from, for every node and direction.
        let sys = two_chiplets();
        for node in sys.nodes() {
            for dir in Direction::ALL {
                assert_eq!(
                    sys.neighbor(node, dir),
                    sys.neighbor_computed(node, dir),
                    "adjacency mismatch at {node} {dir}"
                );
            }
            assert_eq!(sys.addr(node), sys.addr_computed(node));
        }
    }

    #[test]
    fn link_ids_are_dense_and_round_trip() {
        let sys = two_chiplets();
        assert_eq!(sys.link_count(), sys.unidirectional_vl_count());
        for i in 0..sys.link_count() as u32 {
            let id = LinkId(i);
            let link = sys.link_of(id);
            assert_eq!(sys.link_id(link), id, "round trip failed for {link}");
        }
        // Canonical order: chiplet-major, Down block before Up block.
        assert_eq!(
            sys.link_of(LinkId(0)),
            VlLinkId {
                chiplet: ChipletId(0),
                index: 0,
                dir: crate::VlDir::Down
            }
        );
        let c0_vls = sys.chiplet(ChipletId(0)).vl_count() as u32;
        assert_eq!(
            sys.link_of(LinkId(c0_vls)),
            VlLinkId {
                chiplet: ChipletId(0),
                index: 0,
                dir: crate::VlDir::Up
            }
        );
    }

    #[test]
    fn out_vertical_link_points_along_the_flit_direction() {
        let sys = two_chiplets();
        for vl in sys.vertical_links() {
            let down = sys.out_vertical_link(vl.chiplet_node).expect("boundary");
            assert_eq!(sys.link_of(down).dir, crate::VlDir::Down);
            assert_eq!(sys.link_of(down).chiplet, vl.chiplet);
            assert_eq!(sys.link_of(down).index, vl.index);
            let up = sys.out_vertical_link(vl.interposer_node).expect("under VL");
            assert_eq!(sys.link_of(up).dir, crate::VlDir::Up);
        }
        // A plain mesh node has no vertical out-link.
        let corner = sys
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(0, 0),
            ))
            .unwrap();
        assert_eq!(sys.out_vertical_link(corner), None);
    }

    #[test]
    fn inter_chiplet_hops_matches_manual_count() {
        let sys = two_chiplets();
        let src = sys
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(0)),
                Coord::new(0, 0),
            ))
            .unwrap();
        let dst = sys
            .node_id(NodeAddr::new(
                Layer::Chiplet(ChipletId(1)),
                Coord::new(3, 3),
            ))
            .unwrap();
        let down = &sys.chiplet(ChipletId(0)).vertical_links()[1]; // (3,2)
        let up = &sys.chiplet(ChipletId(1)).vertical_links()[0]; // (0,1) -> interposer (4,1)

        // src (0,0) -> (3,2): 5 hops; down: 1; interposer (3,2)->(4,1): 2; up: 1; (0,1)->(3,3): 5.
        assert_eq!(
            sys.inter_chiplet_hops(src, down, up, dst),
            5 + 1 + 2 + 1 + 5
        );
    }

    #[test]
    fn chiplet_nodes_iterates_exactly_the_chiplet() {
        let sys = two_chiplets();
        let nodes: Vec<NodeId> = sys.chiplet_nodes(ChipletId(1)).collect();
        assert_eq!(nodes.len(), 16);
        for n in nodes {
            assert_eq!(sys.chiplet_of(n), Some(ChipletId(1)));
        }
        assert_eq!(sys.interposer_nodes().count(), 32);
    }
}
