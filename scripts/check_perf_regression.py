#!/usr/bin/env python3
"""Gate CI on engine-throughput regressions.

Compares a freshly-generated ``BENCH_sim.json`` (quick mode, produced by
the CI perf smoke step) against the committed baseline copy, cell by cell
on ``cycles_per_sec``. To stay meaningful on runners of different speeds,
each cell's fresh/baseline ratio is normalized by the **median ratio
across all shared cells**: a uniformly slower (or faster) machine shifts
every ratio equally and cancels out, while a regression localized to one
subsystem — the skip logic, the removal path, the large-grid scaling —
shows up as that cell falling behind its siblings. A normalized drop of
more than ``--fail-below`` (default 30 %) fails the job; smaller drops,
absolute dips, cells too short to time reliably (baseline wall time under
``--min-wall-ms``), and cells present on only one side all warn and never
fail, so adding a cell does not require touching this script. A second
warn-only pass flags per-hop cost: any cell whose machine-normalized
``ns_per_flit_hop`` grew more than ``--warn-hop-growth`` (default 30 %),
which catches regressions that a cycles/sec comparison hides when the
flit-hop count shifts too.

The cost of normalization: a regression that slows *every* cell by the
same factor is indistinguishable from a slow runner and only warns. The
committed full-mode baseline refreshed by each hot-path PR is the
backstop for that case.

Usage: check_perf_regression.py FRESH BASELINE [--fail-below 0.70]
"""

import argparse
import json
import statistics
import sys

# Cells tracked warn-only even when a committed baseline exists: the
# 16x16 scaling datapoint (no stable trajectory yet), the threaded
# large-grid cells, whose ratio to a baseline recorded on a different
# host measures that host's core count rather than the engine, and the
# warm-cache cell, which times disk probe + decode of tiny entries and
# is dominated by the runner's filesystem rather than this codebase.
WARN_ONLY = {
    "large-grid-16x16/DeFT-Dis",
    "large-grid-8x8/DeFT-Dis/tick4",
    "large-grid-8x8/DeFT-Dis/tick8",
    "cache-hit/fig4-sweep/DeFT",
}


def load_cells(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return doc.get("schema", "?"), {
        c["name"]: (
            float(c["cycles_per_sec"]),
            float(c.get("wall_ms", 0.0)),
            float(c.get("ns_per_flit_hop", 0.0)),
        )
        for c in doc.get("cells", [])
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", help="freshly generated BENCH_sim.json")
    ap.add_argument("baseline", help="committed baseline BENCH_sim.json")
    ap.add_argument(
        "--fail-below",
        type=float,
        default=0.70,
        help="fail when a cell's machine-normalized cycles_per_sec ratio "
        "falls below this",
    )
    ap.add_argument(
        "--min-wall-ms",
        type=float,
        default=5.0,
        help="cells whose baseline wall time is below this are warn-only "
        "(too short to time reliably)",
    )
    ap.add_argument(
        "--warn-hop-growth",
        type=float,
        default=0.30,
        help="warn (never fail) when a cell's machine-normalized "
        "ns_per_flit_hop grew by more than this fraction",
    )
    args = ap.parse_args()

    fresh_schema, fresh = load_cells(args.fresh)
    base_schema, base = load_cells(args.baseline)
    print(f"fresh: {fresh_schema} ({len(fresh)} cells)")
    print(f"baseline: {base_schema} ({len(base)} cells)")

    shared = sorted(set(base) & set(fresh))
    ratios = {
        name: fresh[name][0] / base[name][0] for name in shared if base[name][0] > 0
    }
    if not ratios:
        print("::warning::no shared perf cells to compare")
        return 0
    machine = statistics.median(ratios.values())
    print(f"machine-speed factor (median ratio): x{machine:.2f}")

    failures = []
    for name in shared:
        if name not in ratios:
            continue
        ratio = ratios[name]
        norm = ratio / machine if machine > 0 else float("inf")
        line = (
            f"{name}: {fresh[name][0]:.0f} vs baseline {base[name][0]:.0f} "
            f"cycles/sec (x{ratio:.2f} raw, x{norm:.2f} normalized)"
        )
        if norm < args.fail_below:
            if name in WARN_ONLY:
                print(f"::warning::perf drop on warn-only cell {line}")
            elif base[name][1] < args.min_wall_ms:
                print(
                    f"::warning::perf drop on sub-{args.min_wall_ms:.0f}ms "
                    f"cell (not gated) {line}"
                )
            else:
                failures.append(line)
                print(f"::error::perf regression {line}")
        elif ratio < 1.0:
            print(f"::warning::perf dip {line}")
        else:
            print(f"ok {line}")
    # Per-hop cost watch (warn-only): cycles/sec can hide per-hop
    # regressions when a change also shifts how many flit-hops a window
    # simulates, so additionally flag any cell whose ns_per_flit_hop grew
    # more than --warn-hop-growth beyond the machine factor. A slower
    # runner inflates every cell's ns uniformly (by 1/machine), so
    # multiplying the raw growth by the machine factor cancels it the
    # same way the cycles/sec normalization does.
    for name in shared:
        base_ns, fresh_ns = base[name][2], fresh[name][2]
        if base_ns <= 0 or fresh_ns <= 0 or base[name][1] < args.min_wall_ms:
            continue
        growth = fresh_ns / base_ns
        norm_growth = growth * machine if machine > 0 else growth
        if norm_growth > 1.0 + args.warn_hop_growth:
            print(
                f"::warning::per-hop cost growth {name}: {fresh_ns:.2f} vs "
                f"baseline {base_ns:.2f} ns/flit-hop (x{growth:.2f} raw, "
                f"x{norm_growth:.2f} normalized)"
            )

    for name in sorted(set(base) - set(fresh)):
        print(f"::warning::perf cell {name!r} missing from fresh run")
    for name in sorted(set(fresh) - set(base)):
        print(f"::warning::perf cell {name!r} has no committed baseline yet")

    if failures:
        print(
            f"{len(failures)} cell(s) regressed more than "
            f"{(1 - args.fail_below) * 100:.0f}% beyond the machine factor"
        )
        return 1
    print("no perf regression beyond the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
