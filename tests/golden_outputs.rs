//! Golden-hash pins of experiment output bytes at fixed seeds.
//!
//! These tests freeze the *exact bytes* of the CSV blocks behind
//! `deft-repro --quick --out csv --exp recovery` and the Fig. 4 uniform
//! sweep, so any refactor of the topology/routing/simulator hot path that
//! changes a single counter, percentile, or formatting decision fails
//! loudly instead of silently shifting results. The hashes were recorded
//! from the pre-active-set engine and verified byte-identical against the
//! refactored one (the whole-campaign outputs were additionally compared
//! with `cmp` at the binary level).
//!
//! If a change *intentionally* alters simulated behaviour, update the
//! constants — and say so in the commit: these bytes are the repo's
//! reproducibility contract.

use deft::experiments::{
    fig4, fig8, recovery, recovery_scenarios, Algo, ExpConfig, SynPattern, PERF_RATE, RECOVERY_RATE,
};
use deft::report::{latency_sweep_csv, recovery_csv};
use deft::sim::{SimConfig, Simulator};
use deft::traffic::{uniform, Trace, TraceEvent};
use deft_topo::{
    ChipletId, ChipletSystem, FaultEvent, FaultEventKind, FaultState, FaultTimeline, NodeId, VlDir,
    VlLinkId,
};

/// FNV-1a 64-bit, enough to pin output bytes against accidental drift.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The recovery experiment at the CI smoke invocation's configuration
/// (`--quick --jobs 2`): scenario × algorithm × seed grid over dynamic
/// fault timelines.
#[test]
fn recovery_quick_csv_bytes_are_pinned() {
    let sys = ChipletSystem::baseline_4();
    let cfg = ExpConfig::quick().with_jobs(2);
    let csv = recovery_csv(&recovery(&sys, &cfg));
    assert_eq!(
        fnv1a(csv.as_bytes()),
        0x79fb_9523_4ab0_5f28,
        "recovery --quick CSV bytes drifted from the golden hash;\n\
         if this is an intentional behaviour change, update the constant:\n{csv}"
    );
}

/// A Fig. 4 uniform-traffic sweep slice (two rates × the three main
/// algorithms) at the quick windows and default seed.
#[test]
fn fig4_uniform_quick_csv_bytes_are_pinned() {
    let sys = ChipletSystem::baseline_4();
    let cfg = ExpConfig::quick().with_jobs(2);
    let sweep = fig4(
        &sys,
        SynPattern::Uniform,
        &[0.002, 0.004],
        &Algo::MAIN,
        &cfg,
    );
    let csv = latency_sweep_csv(&sweep);
    assert_eq!(
        fnv1a(csv.as_bytes()),
        0xae73_eb37_101d_bb10,
        "fig4 uniform --quick CSV bytes drifted from the golden hash;\n\
         if this is an intentional behaviour change, update the constant:\n{csv}"
    );
}

/// A Fig. 8 ablation slice under the repro binary's 12.5 % fault state:
/// two rates × {DeFT, DeFT-Dis., DeFT-Ran.}. DeFT-Ran is the one
/// algorithm whose *per-injection RNG call sequence* shapes the results,
/// so this pin catches any refactor that re-derives routing work per flit
/// instead of once per worm (an extra or missing draw shifts every
/// subsequent selection).
#[test]
fn fig8_ablation_quick_csv_bytes_are_pinned() {
    let sys = ChipletSystem::baseline_4();
    let mut faults = FaultState::none(&sys);
    for (c, i, dir) in [
        (0, 0, VlDir::Down),
        (1, 1, VlDir::Up),
        (2, 2, VlDir::Down),
        (3, 3, VlDir::Up),
    ] {
        faults.inject(VlLinkId {
            chiplet: ChipletId(c),
            index: i,
            dir,
        });
    }
    let cfg = ExpConfig::quick().with_jobs(2);
    let csv = latency_sweep_csv(&fig8(&sys, &faults, &[0.004, 0.006], &cfg));
    assert_eq!(
        fnv1a(csv.as_bytes()),
        0x6e5d_483b_2ea0_b6c3,
        "fig8 ablation --quick CSV bytes drifted from the golden hash;\n\
         if this is an intentional behaviour change, update the constant:\n{csv}"
    );
}

/// A trickle-load recovery run: sparse *trace-driven* traffic (one packet
/// per ~400 cycles) across a transient inject/heal pair. This is exactly
/// the shape where idle-cycle skipping engages — long provably-quiet
/// windows between arrivals, interrupted by fault transitions — so the
/// pin guarantees the skipping engine reproduces the ticking engine's
/// report bit for bit (epochs, losses, latencies, cycle counts).
#[test]
fn trickle_trace_recovery_report_is_pinned() {
    let sys = ChipletSystem::baseline_4();
    let (src, dst) = (NodeId(5), NodeId(40));
    let events: Vec<TraceEvent> = (0..12u64)
        .map(|k| TraceEvent {
            cycle: k * 400,
            src,
            dst,
        })
        .collect();
    let trace = Trace::new("trickle", events, sys.node_count());
    let link = VlLinkId {
        chiplet: ChipletId(0),
        index: 0,
        dir: VlDir::Down,
    };
    let tl = FaultTimeline::from_events(vec![
        FaultEvent {
            cycle: 1_000,
            kind: FaultEventKind::Inject,
            link,
        },
        FaultEvent {
            cycle: 3_000,
            kind: FaultEventKind::Heal,
            link,
        },
    ]);
    let cfg = SimConfig {
        warmup: 500,
        measure: 4_500,
        drain: 10_000,
        ..SimConfig::default()
    };
    let report = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Box::new(deft::routing::DeftRouting::distance_based(&sys)),
        &trace,
        cfg,
    )
    .with_timeline(&tl)
    .run();
    let rendered = format!("{report:?}");
    assert_eq!(
        fnv1a(rendered.as_bytes()),
        0xf740_5940_38ca_847b,
        "trickle trace recovery report drifted from the golden hash;\n\
         if this is an intentional behaviour change, update the constant:\n{rendered}"
    );
}

/// The large-grid scaling cell (`large-grid-8x8/DeFT-Dis` in the perf
/// harness: an 8×8 grid of 4×4 chiplets, 2048 routers) at the quick
/// windows, pinned at the full `SimReport` debug rendering. This hash was
/// recorded from the **serial** engine before the partitioned parallel
/// tick landed, so it cross-validates the parallel path against
/// pre-refactor bytes — the same discipline PRs 4–6 used for their hot-path
/// swaps. It must stay unchanged by any `tick_threads` setting.
#[test]
fn large_grid_quick_report_is_pinned() {
    let sys = ChipletSystem::chiplet_grid(8, 8).expect("8x8 grid is valid");
    let pattern = uniform(&sys, PERF_RATE);
    let cfg = ExpConfig::quick();
    let report = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Algo::DeftDis.build(&sys),
        &pattern,
        cfg.run_sim(3),
    )
    .run();
    let rendered = format!("{report:?}");
    assert_eq!(
        fnv1a(rendered.as_bytes()),
        0xa47f_2302_fbfd_0980,
        "large-grid-8x8 quick report drifted from the pre-parallel golden hash;\n\
         if this is an intentional behaviour change, update the constant:\n{rendered}"
    );
}

/// The snapshot *bytes* of the `deft-repro checkpoint --quick` setup,
/// paused at a fixed cycle, are pinned: this is the wire-format contract
/// of `deft-codec`'s `FORMAT_VERSION`. Any layout change — a field
/// added, removed, reordered, or re-typed under any `Persist` impl or
/// `save_state` hook — must bump `deft_codec::FORMAT_VERSION` *and*
/// update this constant in the same commit (see the bump rule on the
/// constant's doc comment).
#[test]
fn checkpoint_snapshot_bytes_are_pinned() {
    let sys = ChipletSystem::baseline_4();
    let cfg = ExpConfig::quick();
    let horizon = cfg.sim.warmup + cfg.sim.measure;
    let scenario = recovery_scenarios(horizon)[0];
    let timeline = scenario.timeline(&sys, horizon, cfg.seed);
    let pattern = uniform(&sys, RECOVERY_RATE);
    let mut sim = Simulator::new(
        &sys,
        FaultState::none(&sys),
        Algo::Deft.build(&sys),
        &pattern,
        cfg.run_sim(0xC0),
    )
    .with_timeline(&timeline);
    sim.start();
    assert!(!sim.advance_to(700), "quick windows must outlast cycle 700");
    let snap = sim.snapshot();
    assert_eq!(
        fnv1a(&snap),
        0x554a_504c_bac4_cf16,
        "checkpoint snapshot bytes drifted from the golden hash;\n\
         if the change is intentional, bump deft_codec::FORMAT_VERSION and\n\
         update this constant in the same commit ({} bytes)",
        snap.len()
    );
}

/// The hash function itself is pinned (a silent change to it would
/// invalidate the two golden constants without anyone noticing).
#[test]
fn fnv1a_is_the_reference_implementation() {
    assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
}
